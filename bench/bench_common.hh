/**
 * @file
 * Shared helpers for the benchmark harness: a process-wide optimizer
 * (so multi-app benches share exploration caches), paper-style row
 * printing, paper reference values for side-by-side reporting, and a
 * per-bench run-report harness (BenchReport) that writes the
 * machine-readable BENCH_*.json artifact tools/perf_check diffs.
 */
#ifndef MOONWALK_BENCH_COMMON_HH
#define MOONWALK_BENCH_COMMON_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/optimizer.hh"
#include "obs/report.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace moonwalk::bench {

/** Shared optimizer at bench (full) resolution. */
core::MoonwalkOptimizer &sharedOptimizer();

/**
 * Run-report harness for one benchmark binary; construct it first
 * thing in main().  It
 *
 *   - parses the bench's command line: --report-json <path|off>
 *     (default: BENCH_<name>.json in the working directory, <name>
 *     derived from argv[0] minus the "bench_" prefix), --jobs <n>
 *     (worker threads; model output is identical at any value) and
 *     --cache-dir <dir> (persistent sweep cache, also enabled by
 *     MOONWALK_CACHE_DIR; model output is identical cold, warm, or
 *     off).  Unknown flags exit(2).
 *   - enables metrics collection, so the artifact's perf section
 *     carries the full registry snapshot (histograms included);
 *   - exposes the in-flight report via active(), which is how
 *     printComparison()/printServerTable() record every printed model
 *     row into the artifact automatically;
 *   - on destruction, records the "total" phase, publishes the
 *     explorer cache stats, and writes the artifact.
 *
 * Model rows are deterministic at any --jobs (the exec
 * ordered-reduction rule), so the artifact's rows/outputs sections
 * are byte-identical across thread counts; only the perf section
 * varies run to run.
 */
class BenchReport
{
  public:
    BenchReport(int argc, char **argv);
    ~BenchReport();
    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

    /** The running bench's report, or nullptr (disabled / no
     *  harness — e.g. unit tests calling the print helpers). */
    static obs::RunReport *active();

  private:
    std::string path_;
    uint64_t start_ns_ = 0;
    std::optional<obs::RunReport> report_;
};

/**
 * Record one series on the active bench report; no-op without one.
 * NaNs in @p paper serialize as null (absent reference value).
 */
void recordRow(const std::string &metric,
               const std::vector<std::string> &labels,
               const std::vector<double> &model,
               const std::vector<double> &paper = {});

/** "Tech" header row labels, oldest node first. */
std::vector<std::string> nodeHeaders(const std::string &first_col);

/**
 * Paper reference values for one row of a Tables 7-10 style table,
 * keyed by node; absent nodes print "-".
 */
using PaperRow = std::map<tech::NodeId, double>;

/**
 * Print a Tables 7-10 style server-properties table for @p app, one
 * column per feasible node, with rows matching the paper's.
 */
void printServerTable(const apps::AppSpec &app);

/**
 * Print a two-line paper-vs-model comparison for a named metric.
 */
void printComparison(const std::string &metric, const PaperRow &paper,
                     const std::map<tech::NodeId, double> &model,
                     int digits = 4);

} // namespace moonwalk::bench

#endif // MOONWALK_BENCH_COMMON_HH
