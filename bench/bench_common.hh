/**
 * @file
 * Shared helpers for the benchmark harness: a process-wide optimizer
 * (so multi-app benches share exploration caches), paper-style row
 * printing, and paper reference values for side-by-side reporting.
 */
#ifndef MOONWALK_BENCH_COMMON_HH
#define MOONWALK_BENCH_COMMON_HH

#include <map>
#include <string>
#include <vector>

#include "core/optimizer.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace moonwalk::bench {

/** Shared optimizer at bench (full) resolution. */
core::MoonwalkOptimizer &sharedOptimizer();

/** "Tech" header row labels, oldest node first. */
std::vector<std::string> nodeHeaders(const std::string &first_col);

/**
 * Paper reference values for one row of a Tables 7-10 style table,
 * keyed by node; absent nodes print "-".
 */
using PaperRow = std::map<tech::NodeId, double>;

/**
 * Print a Tables 7-10 style server-properties table for @p app, one
 * column per feasible node, with rows matching the paper's.
 */
void printServerTable(const apps::AppSpec &app);

/**
 * Print a two-line paper-vs-model comparison for a named metric.
 */
void printComparison(const std::string &metric, const PaperRow &paper,
                     const std::map<tech::NodeId, double> &model,
                     int digits = 4);

} // namespace moonwalk::bench

#endif // MOONWALK_BENCH_COMMON_HH
