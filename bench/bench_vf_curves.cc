/**
 * @file
 * Characterization data behind the model: per-node voltage-frequency
 * and voltage-energy curves of the calibrated alpha-power /
 * CV^2 engine — the role the authors' SPICE/CAD characterization
 * played.  Columns show frequency (normalized to the node's nominal
 * point) and energy/op (normalized likewise) at fractions of
 * nominal Vdd, plus the paper's published Bitcoin operating points
 * as anchors.
 */
#include <iostream>

#include "bench_common.hh"
#include "tech/scaling.hh"

using namespace moonwalk;

int
main()
{
    const tech::ScalingModel model;
    const auto &db = model.database();

    std::cout << "=== Voltage-frequency curves (f/f_nominal) ===\n";
    std::vector<std::string> fracs_hdr{"Tech"};
    const double fracs[] = {0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2,
                            1.5};
    for (double f : fracs)
        fracs_hdr.push_back(fixed(f, 1) + "xVdd");
    TextTable tf(fracs_hdr);
    for (const auto &n : db.nodes()) {
        std::vector<std::string> row{n.name};
        const double nominal = model.speedTerm(n, n.vdd_nominal);
        for (double f : fracs) {
            const double v = f * n.vdd_nominal;
            row.push_back(v <= n.vth ? "-" :
                          fixed(model.speedTerm(n, v) / nominal, 3));
        }
        tf.addRow(row);
    }
    tf.print(std::cout);

    std::cout << "\n=== Voltage-energy curves (E/E_nominal, CV^2) "
                 "===\n";
    TextTable te(fracs_hdr);
    for (const auto &n : db.nodes()) {
        std::vector<std::string> row{n.name};
        for (double f : fracs)
            row.push_back(fixed(f * f, 3));
        te.addRow(row);
        break;  // identical for every node by construction
    }
    te.addRow({"(all nodes)", "", "", "", "", "", "", "", "", ""});
    te.print(std::cout);

    std::cout << "\n=== Calibration anchors: Bitcoin Table 7 "
                 "operating points ===\n";
    TextTable ta({"Tech", "paper Vdd", "paper MHz", "model MHz",
                  "error"});
    struct Anchor { tech::NodeId node; double vdd; double mhz; };
    const Anchor anchors[] = {
        {tech::NodeId::N250, 1.081, 37}, {tech::NodeId::N180, 0.857, 54},
        {tech::NodeId::N130, 0.654, 77}, {tech::NodeId::N90, 0.563, 93},
        {tech::NodeId::N65, 0.517, 100}, {tech::NodeId::N40, 0.433, 121},
        {tech::NodeId::N28, 0.459, 149}, {tech::NodeId::N16, 0.424, 169},
    };
    for (const auto &a : anchors) {
        const double f =
            model.frequencyMhz(db.node(a.node), a.vdd, 557.0);
        ta.addRow({tech::to_string(a.node), fixed(a.vdd, 3),
                   fixed(a.mhz, 0), fixed(f, 1),
                   percent(f / a.mhz - 1.0)});
    }
    ta.print(std::cout);
    return 0;
}
