/**
 * @file
 * Figure 11: normalized total cost for all four applications — for
 * each pre-ASIC TCO, the ratio of each node's total cost to the best
 * choice, and the resulting optimal-node ranges (paper examples:
 * 180nm optimal for Bitcoin $860K-$10.6M; Deep Learning's 40nm
 * optimal $3M-$326M).
 */
#include <cmath>
#include <iostream>

#include "bench_common.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    auto &opt = bench::sharedOptimizer();
    // Sweep all four applications in parallel before the serial
    // per-app envelope rendering below.
    opt.prefetch(apps::allApps());

    for (const auto &app : apps::allApps()) {
        const auto lines = opt.totalCostLines(app);
        std::cout << "=== Figure 11: " << app.name()
                  << " normalized total cost ===\n";

        std::vector<std::string> headers{"Baseline TCO", "best"};
        for (const auto &l : lines) {
            headers.push_back(l.node ? tech::to_string(*l.node)
                                     : "baseline");
        }
        TextTable t(headers);
        for (double b = 3e5; b <= 3e10; b *= std::sqrt(10.0)) {
            double best = 1e300;
            for (const auto &l : lines)
                best = std::min(best, l.at(b));
            std::vector<std::string> row{money(b, 2), money(best, 3)};
            for (const auto &l : lines)
                row.push_back(times(l.at(b) / best, 3));
            t.addRow(row);
        }
        t.print(std::cout);

        std::cout << "\nOptimal-node ranges:\n";
        std::vector<std::string> who_labels;
        std::vector<double> from_tco;
        for (const auto &r :
             core::MoonwalkOptimizer::optimalNodeRanges(lines)) {
            const std::string who = r.line.node ?
                tech::to_string(*r.line.node) : "baseline";
            std::cout << "  " << who << ": " << money(r.b_low, 3)
                      << " to "
                      << (std::isinf(r.b_high) ? "inf"
                                               : money(r.b_high, 3))
                      << "\n";
            who_labels.push_back(who);
            from_tco.push_back(r.b_low);
        }
        bench::recordRow(app.name() + ": optimal from TCO ($)",
                         who_labels, from_tco);
        std::cout << "\n";
    }
    return 0;
}
