/**
 * @file
 * Extension (paper Section 8): structured ASICs trade marginal-cost
 * penalties (area, energy, frequency) for much lower NRE.  This
 * bench prices both implementation paths for Bitcoin at each node
 * and finds the workload range where the structured fabric wins —
 * i.e. how far "NRE reduction by construction" extends ASIC Clouds
 * below the full-custom break-even.
 */
#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "dse/explorer.hh"
#include "nre/structured_asic.hh"

using namespace moonwalk;

int
main()
{
    const auto app = apps::bitcoin();
    const nre::StructuredAsicParams params;
    const auto structured_rca =
        nre::applyStructuredPenalties(app.rca, params);

    auto &opt = bench::sharedOptimizer();
    const double base_tco_per_ops = opt.baselineTcoPerOps(app);

    std::cout << "=== Structured ASIC vs full custom (Bitcoin) ===\n"
              << "penalties: area x" << params.area_penalty
              << ", energy x" << params.energy_penalty
              << ", frequency x" << params.freq_penalty
              << "; design-specific masks "
              << percent(params.mask_fraction, 0) << "\n\n";

    TextTable t({"Tech", "custom TCO/GH/s", "struct TCO/GH/s",
                 "custom NRE", "struct NRE"});

    struct Line { double nre; double slope; bool structured; };
    std::vector<Line> lines;
    lines.push_back({0.0, 1.0, false});  // the GPU baseline

    for (const auto &r : opt.sweepNodes(app)) {
        // Structured implementation at the same node.
        const auto sres =
            opt.explorer().explore(structured_rca, r.node);
        if (!sres.tco_optimal)
            continue;
        const auto &sp = *sres.tco_optimal;

        nre::DesignIpNeeds needs;
        needs.clock_mhz = sp.freq_mhz;
        const auto snre = nre::structuredAsicNre(
            opt.nreModel(),
            opt.explorer().evaluator().scaling().database()
                .node(r.node),
            app.nre, needs, params);

        t.addRow({tech::to_string(r.node),
                  sig(r.optimal.tco_per_ops * 1e9, 4),
                  sig(sp.tco_per_ops * 1e9, 4),
                  money(r.nre.total()), money(snre.total())});

        lines.push_back({r.nre.total(),
                         r.optimal.tco_per_ops / base_tco_per_ops,
                         false});
        lines.push_back({snre.total(),
                         sp.tco_per_ops / base_tco_per_ops, true});
    }
    t.print(std::cout);

    std::cout << "\nCheapest implementation vs workload scale:\n";
    const char *prev = nullptr;
    for (double b = 1e5; b <= 1e10; b *= std::pow(10.0, 0.125)) {
        double best = 1e300;
        const Line *winner = nullptr;
        for (const auto &l : lines) {
            const double total = l.nre + l.slope * b;
            if (total < best) {
                best = total;
                winner = &l;
            }
        }
        const char *label = !winner || winner->slope == 1.0 ?
            "GPU baseline" :
            (winner->structured ? "structured ASIC" : "full custom");
        if (!prev || std::string(prev) != label) {
            std::cout << "  from " << money(b, 3) << ": " << label
                      << "\n";
            prev = label;
        }
    }
    std::cout << "\nReading: the structured fabric's low NRE opens a "
                 "window between the GPU baseline and full-custom "
                 "break-even; at scale, full custom's better "
                 "marginal economics always win.\n";
    return 0;
}
