#include "bench_common.hh"

#include <iostream>

namespace moonwalk::bench {

core::MoonwalkOptimizer &
sharedOptimizer()
{
    static core::MoonwalkOptimizer opt;
    return opt;
}

std::vector<std::string>
nodeHeaders(const std::string &first_col)
{
    std::vector<std::string> h{first_col};
    for (tech::NodeId id : tech::kAllNodes)
        h.push_back(tech::to_string(id));
    return h;
}

void
printServerTable(const apps::AppSpec &app)
{
    auto &opt = sharedOptimizer();
    const auto &sweep = opt.sweepNodes(app);
    const double scale = app.rca.perf_unit_scale;

    std::vector<std::string> headers{"Property"};
    for (const auto &r : sweep)
        headers.push_back(tech::to_string(r.node));
    TextTable t(headers);
    t.setTitle(app.name() + " TCO-optimal ASIC server across nodes");

    auto row = [&](const std::string &name, auto getter, int decimals) {
        std::vector<std::string> cells{name};
        for (const auto &r : sweep)
            cells.push_back(fixed(getter(r), decimals));
        t.addRow(cells);
    };
    auto row_sig = [&](const std::string &name, auto getter,
                       int digits) {
        std::vector<std::string> cells{name};
        for (const auto &r : sweep)
            cells.push_back(sig(getter(r), digits));
        t.addRow(cells);
    };

    row("RCAs per Die", [](const core::NodeResult &r) {
        return double(r.optimal.config.rcas_per_die);
    }, 0);
    if (app.rca.bytes_per_op > 0) {
        row("DRAMs per Die", [](const core::NodeResult &r) {
            return double(r.optimal.config.drams_per_die);
        }, 0);
    }
    row("Die Area (mm2)", [](const core::NodeResult &r) {
        return r.optimal.die_area_mm2;
    }, 0);
    row("Die Cost ($)", [](const core::NodeResult &r) {
        return r.optimal.die_cost;
    }, 0);
    row("Dies/Server", [](const core::NodeResult &r) {
        return double(r.optimal.config.diesPerServer());
    }, 0);
    row("Logic Vdd", [](const core::NodeResult &r) {
        return r.optimal.config.vdd;
    }, 3);
    row("Freq. (MHz)", [](const core::NodeResult &r) {
        return r.optimal.freq_mhz;
    }, 0);
    row_sig(app.rca.perf_unit, [&](const core::NodeResult &r) {
        return r.optimal.perf_ops / scale;
    }, 4);
    row("Power (W)", [](const core::NodeResult &r) {
        return r.optimal.wall_power_w;
    }, 0);
    row_sig("Cost (K$)", [](const core::NodeResult &r) {
        return r.optimal.server_cost / 1e3;
    }, 3);
    row_sig("W/" + app.rca.perf_unit, [&](const core::NodeResult &r) {
        return r.optimal.watts_per_ops * scale;
    }, 4);
    row_sig("$/" + app.rca.perf_unit, [&](const core::NodeResult &r) {
        return r.optimal.cost_per_ops * scale;
    }, 4);
    row_sig("TCO/" + app.rca.perf_unit, [&](const core::NodeResult &r) {
        return r.optimal.tco_per_ops * scale;
    }, 4);
    row_sig("NRE (K$)", [](const core::NodeResult &r) {
        return r.nre.total() / 1e3;
    }, 4);

    t.print(std::cout);
}

void
printComparison(const std::string &metric, const PaperRow &paper,
                const std::map<tech::NodeId, double> &model, int digits)
{
    std::vector<std::string> prow{"paper"};
    std::vector<std::string> mrow{"model"};
    for (tech::NodeId id : tech::kAllNodes) {
        auto pit = paper.find(id);
        prow.push_back(pit == paper.end() ? "-" : sig(pit->second,
                                                      digits));
        auto mit = model.find(id);
        mrow.push_back(mit == model.end() ? "-" : sig(mit->second,
                                                      digits));
    }
    TextTable cmp(nodeHeaders(metric));
    cmp.addRow(prow);
    cmp.addRow(mrow);
    cmp.print(std::cout);
}

} // namespace moonwalk::bench
