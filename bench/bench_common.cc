#include "bench_common.hh"

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "exec/thread_pool.hh"
#include "obs/metrics.hh"

namespace moonwalk::bench {

namespace {

/** --cache-dir, recorded by BenchReport before the lazily-built
 *  optimizer below exists; the explorer also honors
 *  MOONWALK_CACHE_DIR when this stays empty. */
std::string g_cache_dir;

} // namespace

core::MoonwalkOptimizer &
sharedOptimizer()
{
    static core::MoonwalkOptimizer opt = [] {
        dse::ExplorerOptions eo;
        eo.cache_dir = g_cache_dir;
        return core::MoonwalkOptimizer{
            dse::DesignSpaceExplorer{std::move(eo)}};
    }();
    return opt;
}

namespace {

obs::RunReport *g_active = nullptr;

/** argv[0] minus directories and the "bench_" prefix. */
std::string
benchName(const char *argv0)
{
    std::string name = argv0 ? argv0 : "bench";
    const auto slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    if (name.rfind("bench_", 0) == 0)
        name = name.substr(6);
    return name;
}

} // namespace

BenchReport::BenchReport(int argc, char **argv)
{
    const std::string name = benchName(argc > 0 ? argv[0] : nullptr);
    path_ = "BENCH_" + name + ".json";

    std::vector<std::string> raw(argv + (argc > 0 ? 1 : 0),
                                 argv + argc);
    for (size_t i = 0; i < raw.size(); ++i) {
        const std::string &a = raw[i];
        if (a == "--report-json") {
            if (i + 1 >= raw.size()) {
                std::cerr << name
                          << ": --report-json needs a file path "
                             "(or 'off')\n";
                std::exit(2);
            }
            path_ = raw[++i];
        } else if (a == "--jobs") {
            const auto jobs =
                i + 1 < raw.size() ? exec::parseJobs(raw[i + 1])
                                   : std::nullopt;
            if (!jobs) {
                std::cerr << name
                          << ": --jobs needs an integer in [1, "
                          << exec::kMaxJobs << "]\n";
                std::exit(2);
            }
            ++i;
            exec::setGlobalConcurrency(*jobs);
        } else if (a == "--cache-dir") {
            if (i + 1 >= raw.size()) {
                std::cerr << name
                          << ": --cache-dir needs a directory\n";
                std::exit(2);
            }
            g_cache_dir = raw[++i];
        } else {
            std::cerr << name << ": unknown flag '" << a
                      << "' (valid: --report-json <path|off>, "
                         "--jobs <n>, --cache-dir <dir>)\n";
            std::exit(2);
        }
    }
    if (path_ == "off")
        return;
    if (obs::RunReport::toStdout(path_)) {
        // Benches print their tables straight to stdout; a stdout
        // artifact would interleave with them.  The CLI supports
        // --report-json - for pipeline use.
        std::cerr << name << ": --report-json - is not supported by "
                     "benches; use a file path or 'off'\n";
        std::exit(2);
    }

    obs::setMetricsEnabled(true);
    start_ns_ = obs::monotonicNowNs();
    report_.emplace(name);
    Json argv_json = Json::array();
    for (const auto &a : raw)
        argv_json.push(a);
    report_->setInput("argv", std::move(argv_json));
    report_->setInput("jobs", exec::defaultConcurrency());
    g_active = &*report_;
}

BenchReport::~BenchReport()
{
    if (!report_)
        return;
    g_active = nullptr;
    report_->recordPhase(
        "total", (obs::monotonicNowNs() - start_ns_) / 1e6);
    sharedOptimizer().explorer().publishStats();
    if (report_->writeTo(path_))
        std::cerr << "wrote " << path_ << "\n";
    else
        std::cerr << "cannot write run report to " << path_ << "\n";
}

obs::RunReport *
BenchReport::active()
{
    return g_active;
}

void
recordRow(const std::string &metric,
          const std::vector<std::string> &labels,
          const std::vector<double> &model,
          const std::vector<double> &paper)
{
    if (g_active)
        g_active->addRow(metric, labels, model, paper);
}

std::vector<std::string>
nodeHeaders(const std::string &first_col)
{
    std::vector<std::string> h{first_col};
    for (tech::NodeId id : tech::kAllNodes)
        h.push_back(tech::to_string(id));
    return h;
}

void
printServerTable(const apps::AppSpec &app)
{
    auto &opt = sharedOptimizer();
    const auto &sweep = opt.sweepNodes(app);
    const double scale = app.rca.perf_unit_scale;

    std::vector<std::string> headers{"Property"};
    std::vector<std::string> nodes;
    for (const auto &r : sweep) {
        headers.push_back(tech::to_string(r.node));
        nodes.push_back(tech::to_string(r.node));
    }
    TextTable t(headers);
    t.setTitle(app.name() + " TCO-optimal ASIC server across nodes");

    // Every printed property also lands on the active bench report
    // (app-qualified, since multi-app benches share metric names).
    auto record = [&](const std::string &name, auto &getter) {
        std::vector<double> model;
        for (const auto &r : sweep)
            model.push_back(getter(r));
        recordRow(app.name() + ": " + name, nodes, model);
    };
    auto row = [&](const std::string &name, auto getter, int decimals) {
        std::vector<std::string> cells{name};
        for (const auto &r : sweep)
            cells.push_back(fixed(getter(r), decimals));
        t.addRow(cells);
        record(name, getter);
    };
    auto row_sig = [&](const std::string &name, auto getter,
                       int digits) {
        std::vector<std::string> cells{name};
        for (const auto &r : sweep)
            cells.push_back(sig(getter(r), digits));
        t.addRow(cells);
        record(name, getter);
    };

    row("RCAs per Die", [](const core::NodeResult &r) {
        return double(r.optimal.config.rcas_per_die);
    }, 0);
    if (app.rca.bytes_per_op > 0) {
        row("DRAMs per Die", [](const core::NodeResult &r) {
            return double(r.optimal.config.drams_per_die);
        }, 0);
    }
    row("Die Area (mm2)", [](const core::NodeResult &r) {
        return r.optimal.die_area_mm2;
    }, 0);
    row("Die Cost ($)", [](const core::NodeResult &r) {
        return r.optimal.die_cost;
    }, 0);
    row("Dies/Server", [](const core::NodeResult &r) {
        return double(r.optimal.config.diesPerServer());
    }, 0);
    row("Logic Vdd", [](const core::NodeResult &r) {
        return r.optimal.config.vdd;
    }, 3);
    row("Freq. (MHz)", [](const core::NodeResult &r) {
        return r.optimal.freq_mhz;
    }, 0);
    row_sig(app.rca.perf_unit, [&](const core::NodeResult &r) {
        return r.optimal.perf_ops / scale;
    }, 4);
    row("Power (W)", [](const core::NodeResult &r) {
        return r.optimal.wall_power_w;
    }, 0);
    row_sig("Cost (K$)", [](const core::NodeResult &r) {
        return r.optimal.server_cost / 1e3;
    }, 3);
    row_sig("W/" + app.rca.perf_unit, [&](const core::NodeResult &r) {
        return r.optimal.watts_per_ops * scale;
    }, 4);
    row_sig("$/" + app.rca.perf_unit, [&](const core::NodeResult &r) {
        return r.optimal.cost_per_ops * scale;
    }, 4);
    row_sig("TCO/" + app.rca.perf_unit, [&](const core::NodeResult &r) {
        return r.optimal.tco_per_ops * scale;
    }, 4);
    row_sig("NRE (K$)", [](const core::NodeResult &r) {
        return r.nre.total() / 1e3;
    }, 4);

    t.print(std::cout);
}

void
printComparison(const std::string &metric, const PaperRow &paper,
                const std::map<tech::NodeId, double> &model, int digits)
{
    std::vector<std::string> prow{"paper"};
    std::vector<std::string> mrow{"model"};
    std::vector<std::string> nodes;
    std::vector<double> pvals, mvals;
    const double nan = std::nan("");
    for (tech::NodeId id : tech::kAllNodes) {
        nodes.push_back(tech::to_string(id));
        auto pit = paper.find(id);
        prow.push_back(pit == paper.end() ? "-" : sig(pit->second,
                                                      digits));
        pvals.push_back(pit == paper.end() ? nan : pit->second);
        auto mit = model.find(id);
        mrow.push_back(mit == model.end() ? "-" : sig(mit->second,
                                                      digits));
        mvals.push_back(mit == model.end() ? nan : mit->second);
    }
    TextTable cmp(nodeHeaders(metric));
    cmp.addRow(prow);
    cmp.addRow(mrow);
    cmp.print(std::cout);
    recordRow(metric, nodes, mvals, pvals);
}

} // namespace moonwalk::bench
