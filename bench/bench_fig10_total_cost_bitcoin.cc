/**
 * @file
 * Figure 10: total cost (NRE + scaled TCO) of Bitcoin ASIC Clouds
 * versus the workload's pre-ASIC (GPU) TCO, with the crossover points
 * where each node becomes the cheapest option (paper: 250nm from
 * $610K, 180nm from $867K, ... 16nm from $5.6B).
 */
#include <cmath>
#include <iostream>

#include "bench_common.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    auto &opt = bench::sharedOptimizer();
    const auto app = apps::bitcoin();
    const auto lines = opt.totalCostLines(app);

    std::cout << "=== Figure 10: Bitcoin total cost vs pre-ASIC TCO "
                 "===\n";
    // Sampled curves on a log grid of baseline TCO.
    TextTable t(bench::nodeHeaders("Baseline TCO"));
    for (double b = 1e5; b <= 1e10; b *= std::sqrt(10.0)) {
        std::vector<std::string> row{money(b, 2)};
        for (tech::NodeId id : tech::kAllNodes) {
            for (const auto &l : lines) {
                if (l.node && *l.node == id)
                    row.push_back(money(l.at(b), 3));
            }
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\nCrossover points (node becomes cheapest overall):"
              << "\n";
    std::vector<std::string> who_labels;
    std::vector<double> crossovers;
    for (const auto &r : core::MoonwalkOptimizer::optimalNodeRanges(
             lines)) {
        const std::string who = r.line.node ?
            tech::to_string(*r.line.node) : "GPU baseline";
        std::cout << "  from " << money(r.b_low, 3) << ": " << who
                  << "\n";
        who_labels.push_back(who);
        crossovers.push_back(r.b_low);
    }
    bench::recordRow("Bitcoin crossover TCO ($)", who_labels,
                     crossovers);
    std::cout << "(paper: GPU < $610K, 250nm, 180nm from $867K, ..., "
                 "28nm from $1.9B, 16nm from $5.6B)\n";
    return 0;
}
