/**
 * @file
 * Table 9: Litecoin TCO-optimal ASIC server properties across nodes.
 * SRAM-dominated, low power density: optimal voltages sit near
 * nominal to exploit the available cooling headroom.
 */
#include <iostream>

#include "bench_common.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    auto &opt = bench::sharedOptimizer();
    const auto app = apps::litecoin();

    std::cout << "=== Table 9 ===\n";
    bench::printServerTable(app);

    bench::PaperRow paper = {
        {tech::NodeId::N250, 2214}, {tech::NodeId::N180, 854.8},
        {tech::NodeId::N130, 388.5}, {tech::NodeId::N90, 156.8},
        {tech::NodeId::N65, 79.97}, {tech::NodeId::N40, 32.94},
        {tech::NodeId::N28, 19.49}, {tech::NodeId::N16, 8.353},
    };
    std::map<tech::NodeId, double> model;
    for (const auto &r : opt.sweepNodes(app))
        model[r.node] = r.optimal.tco_per_ops * 1e6;
    std::cout << "\nTCO/MH/s, paper vs model:\n";
    bench::printComparison("TCO/MH/s", paper, model);

    // Caption check: voltage relative to nominal vs Bitcoin's.
    const auto &btc = opt.sweepNodes(apps::bitcoin());
    const auto &ltc = opt.sweepNodes(app);
    std::cout << "\nVdd relative to nominal (Litecoin vs Bitcoin):\n";
    for (size_t i = 0; i < ltc.size() && i < btc.size(); ++i) {
        const auto &node = opt.explorer().evaluator().scaling()
            .database().node(ltc[i].node);
        std::cout << "  " << node.name << ": "
                  << percent(ltc[i].optimal.config.vdd /
                             node.vdd_nominal)
                  << " vs "
                  << percent(btc[i].optimal.config.vdd /
                             node.vdd_nominal)
                  << "\n";
    }
    return 0;
}
