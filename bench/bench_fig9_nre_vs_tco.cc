/**
 * @file
 * Figure 9: marginal NRE versus TCO per op/s improvement per node,
 * normalized to the oldest feasible node.  The slope flips after 65nm:
 * NRE starts growing faster than TCO/op/s improves (Section 7.1).
 */
#include <iostream>

#include "bench_common.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    auto &opt = bench::sharedOptimizer();

    for (const auto &app : apps::allApps()) {
        const auto &sweep = opt.sweepNodes(app);
        if (sweep.empty())
            continue;
        const double nre0 = sweep.front().nre.total();
        const double tco0 = sweep.front().tcoPerOps();

        std::cout << "=== Figure 9: " << app.name()
                  << " (normalized to "
                  << tech::to_string(sweep.front().node) << ") ===\n";
        TextTable t({"Tech", "NRE (x)", "TCO/op/s gain (x)",
                     "step NRE (x)", "step TCO gain (x)"});
        std::vector<std::string> nodes;
        std::vector<double> nre_xs, tco_xs;
        for (size_t i = 0; i < sweep.size(); ++i) {
            const double nre_x = sweep[i].nre.total() / nre0;
            const double tco_x = tco0 / sweep[i].tcoPerOps();
            nodes.push_back(tech::to_string(sweep[i].node));
            nre_xs.push_back(nre_x);
            tco_xs.push_back(tco_x);
            std::string step_nre = "-";
            std::string step_tco = "-";
            if (i > 0) {
                step_nre = times(sweep[i].nre.total() /
                                 sweep[i - 1].nre.total());
                step_tco = times(sweep[i - 1].tcoPerOps() /
                                 sweep[i].tcoPerOps());
            }
            t.addRow({tech::to_string(sweep[i].node), times(nre_x),
                      times(tco_x), step_nre, step_tco});
        }
        t.print(std::cout);
        std::cout << "\n";
        bench::recordRow(app.name() + ": NRE (x)", nodes, nre_xs);
        bench::recordRow(app.name() + ": TCO/op/s gain (x)", nodes,
                         tco_xs);
    }
    return 0;
}
