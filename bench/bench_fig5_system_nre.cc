/**
 * @file
 * Figure 5 + Tables 3/5: system-level (non-ASIC) NRE per application
 * — PCB design, FPGA firmware and cloud-software development.
 */
#include <iostream>

#include "bench_common.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    nre::NreModel model;
    const auto &params = model.parameters();

    std::cout << "=== Table 3: node-independent NRE parameters ===\n";
    TextTable t3({"Parameter", "Value"});
    t3.addRow({"Frontend labor salary", money(params.frontend_salary) +
               "/yr"});
    t3.addRow({"Frontend CAD licenses",
               money(params.frontend_cad_per_mm) + "/Mm"});
    t3.addRow({"Backend labor salary", money(params.backend_salary) +
               "/yr"});
    t3.addRow({"Backend CAD licenses",
               money(params.backend_cad_per_month) + "/month"});
    t3.addRow({"Overhead on salary", percent(params.overhead, 0)});
    t3.addRow({"Top-level gates", si(params.top_level_gates)});
    t3.addRow({"Flip-chip package NRE", money(params.package_nre)});
    t3.print(std::cout);

    std::cout << "\n=== Table 5: application-dependent NRE parameters "
                 "===\n";
    TextTable t5({"Application", "RCA gates", "FE CAD-months", "FE Mm",
                  "FPGA job Mm", "FPGA BIOS Mm", "Cloud SW Mm",
                  "PCB ($)"});
    for (const auto &app : apps::allApps()) {
        const auto &n = app.nre;
        t5.addRow({n.app_name, si(n.rca_gate_count),
                   fixed(n.frontend_cad_months, 0),
                   fixed(n.frontend_mm, 1), fixed(
                       n.fpga_job_distribution_mm, 0),
                   fixed(n.fpga_bios_mm, 0),
                   fixed(n.cloud_software_mm, 0),
                   money(n.pcb_design_cost)});
    }
    t5.print(std::cout);

    std::cout << "\n=== Figure 5: system-level (non-ASIC) NRE ===\n";
    TextTable f5({"Application", "PCB design", "FPGA firmware",
                  "Cloud software", "Total"});
    std::vector<std::string> app_names;
    std::vector<double> pcb, fpga, cloud, totals;
    for (const auto &app : apps::allApps()) {
        const auto &n = app.nre;
        const double fw = params.laborCost(
            n.fpga_job_distribution_mm + n.fpga_bios_mm,
            params.frontend_salary);
        const double sw = params.laborCost(n.cloud_software_mm,
                                           params.frontend_salary);
        f5.addRow({n.app_name, money(n.pcb_design_cost), money(fw),
                   money(sw), money(n.pcb_design_cost + fw + sw)});
        app_names.push_back(n.app_name);
        pcb.push_back(n.pcb_design_cost);
        fpga.push_back(fw);
        cloud.push_back(sw);
        totals.push_back(n.pcb_design_cost + fw + sw);
    }
    f5.print(std::cout);
    bench::recordRow("system NRE: PCB design ($)", app_names, pcb);
    bench::recordRow("system NRE: FPGA firmware ($)", app_names, fpga);
    bench::recordRow("system NRE: cloud software ($)", app_names,
                     cloud);
    bench::recordRow("system NRE: total ($)", app_names, totals);
    return 0;
}
