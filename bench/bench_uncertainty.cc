/**
 * @file
 * Extension: Monte Carlo robustness of the node choice.  The paper's
 * inputs are quotes and estimates; this bench perturbs them
 * (lognormal: masks 20%, salaries 15%, IP 25%, electricity 30%,
 * backend 20%, wafers 10%) and reports how often each node wins at
 * three workload scales, plus the spread of total cost.
 */
#include <iostream>

#include "bench_common.hh"
#include "core/uncertainty.hh"

using namespace moonwalk;

int
main()
{
    const auto app = apps::bitcoin();
    core::UncertaintySpec spec;
    spec.samples = 48;

    std::cout << "=== Node-choice robustness under input "
                 "uncertainty (Bitcoin, " << spec.samples
              << " samples) ===\n";

    for (double workload : {2e6, 25e6, 400e6}) {
        core::UncertaintyAnalysis mc(spec);
        const auto r = mc.run(app, workload);
        std::cout << "\n-- workload " << money(workload) << " --\n";
        TextTable t({"Choice", "wins"});
        for (const auto &[name, frac] : r.choice_fraction)
            t.addRow({name, percent(frac)});
        t.print(std::cout);
        std::cout << "modal choice: " << r.modal_choice
                  << "; total cost p10/median/p90: "
                  << money(r.total_cost.p10, 3) << " / "
                  << money(r.total_cost.median, 3) << " / "
                  << money(r.total_cost.p90, 3) << "\n";
    }

    std::cout << "\nReading: near range boundaries the choice "
                 "splits between adjacent nodes, but never jumps "
                 "across the menu — the envelope is robust to "
                 "realistic quote noise.\n";
    return 0;
}
