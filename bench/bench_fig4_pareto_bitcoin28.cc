/**
 * @file
 * Figure 4: design-space Pareto example for Bitcoin at 28nm with 9
 * ASICs per lane.  One curve per die size; within a curve, points run
 * from near-threshold voltage (left: cheap energy, costly silicon) to
 * the thermally-capped maximum (right).
 */
#include <iostream>

#include "bench_common.hh"
#include "dse/explorer.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    const auto app = apps::bitcoin();
    dse::DesignSpaceExplorer explorer;
    const auto &node = explorer.evaluator().scaling().database()
        .node(tech::NodeId::N28);

    std::cout << "=== Figure 4: Bitcoin 28nm voltage/die-area sweep, "
                 "9 ASICs per lane ===\n"
              << "(x = W/GH/s, y = $/GH/s; voltage increases along "
                 "each curve)\n";

    // Die areas spanning the feasible range; ~770 RCAs == the paper's
    // 540mm^2 die.
    const int rca_counts[] = {96, 192, 384, 576, 769, 900};
    for (int rcas : rca_counts) {
        const auto curve = explorer.sweepVoltage(
            app.rca, tech::NodeId::N28, rcas, 9);
        if (curve.empty())
            continue;
        std::cout << "\n-- die " << fixed(curve.front().die_area_mm2, 0)
                  << " mm^2 (" << rcas << " RCAs) --\n";
        TextTable t({"Vdd (V)", "W/GH/s", "$/GH/s", "TCO/GH/s",
                     "GH/s"});
        for (const auto &p : curve) {
            t.addRow({fixed(p.config.vdd, 3),
                      sig(p.watts_per_ops * 1e9, 4),
                      sig(p.cost_per_ops * 1e9, 4),
                      sig(p.tco_per_ops * 1e9, 4),
                      fixed(p.perf_ops / 1e9, 0)});
        }
        t.print(std::cout);
    }

    const auto full = explorer.explore(app.rca, tech::NodeId::N28);
    if (full.tco_optimal) {
        const auto &p = *full.tco_optimal;
        std::cout << "\nTCO-optimal point: " << p.config.rcas_per_die
                  << " RCAs, " << fixed(p.die_area_mm2, 0) << " mm^2, "
                  << p.config.dies_per_lane << " ASICs/lane, Vdd "
                  << fixed(p.config.vdd, 3) << " -> TCO/GH/s "
                  << sig(p.tco_per_ops * 1e9, 4)
                  << " (paper: 769 RCAs, 540mm^2, 9/lane, 0.459V, "
                     "2.912)\n";
        bench::recordRow(
            "Bitcoin 28nm TCO-optimal point",
            {"rcas_per_die", "die_area_mm2", "dies_per_lane", "vdd",
             "tco_per_ghs"},
            {double(p.config.rcas_per_die), p.die_area_mm2,
             double(p.config.dies_per_lane), p.config.vdd,
             p.tco_per_ops * 1e9},
            {769, 540, 9, 0.459, 2.912});
    }
    (void)node;
    return 0;
}
