/**
 * @file
 * Figure 8: NRE cost breakdown across technology nodes for all four
 * applications.  Mask costs dominate at advanced nodes; IP, CAD tool
 * and labor costs dominate at old nodes.
 */
#include <iostream>

#include "bench_common.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    auto &opt = bench::sharedOptimizer();

    for (const auto &app : apps::allApps()) {
        std::cout << "=== Figure 8: " << app.name()
                  << " NRE breakdown (K$) ===\n";
        TextTable t({"Tech", "Mask", "Package", "FE labor", "FE CAD",
                     "BE labor", "BE CAD", "IP", "System", "PCB",
                     "Total"});
        std::vector<std::string> nodes;
        std::vector<double> mask_k, total_k;
        for (const auto &r : opt.sweepNodes(app)) {
            const auto &n = r.nre;
            auto k = [](double v) { return fixed(v / 1e3, 0); };
            t.addRow({tech::to_string(r.node), k(n.mask), k(n.package),
                      k(n.frontend_labor), k(n.frontend_cad),
                      k(n.backend_labor), k(n.backend_cad), k(n.ip),
                      k(n.system_labor), k(n.pcb_design),
                      k(n.total())});
            nodes.push_back(tech::to_string(r.node));
            mask_k.push_back(n.mask / 1e3);
            total_k.push_back(n.total() / 1e3);
        }
        t.print(std::cout);
        bench::recordRow(app.name() + ": NRE mask (K$)", nodes,
                         mask_k);
        bench::recordRow(app.name() + ": NRE total (K$)", nodes,
                         total_k);

        const auto &sweep = opt.sweepNodes(app);
        const auto &newest = sweep.back().nre;
        const auto &oldest = sweep.front().nre;
        std::cout << "mask share: "
                  << percent(oldest.mask / oldest.total()) << " at "
                  << tech::to_string(sweep.front().node) << " -> "
                  << percent(newest.mask / newest.total()) << " at "
                  << tech::to_string(sweep.back().node) << "\n\n";
    }
    return 0;
}
