/**
 * @file
 * Section 6.2, "How many ticks before a tock?": port each node's
 * TCO-optimal die design (frozen RCAs/die, DRAMs/die; SLA frequency
 * for Deep Learning) to every newer node, re-optimizing only voltage
 * and lane packing, and report the TCO penalty versus the
 * destination-native optimum.  Paper: 250nm -> 16nm porting costs
 * 3.68x for Bitcoin, 2.14x Litecoin, 6.71x Video Transcode; one-step
 * ports cost only ~1.05-1.08x.
 */
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "util/math.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    auto &opt = bench::sharedOptimizer();

    for (const auto &app : apps::allApps()) {
        const auto entries = opt.portingStudy(app);
        if (entries.empty())
            continue;
        std::cout << "=== Porting study: " << app.name()
                  << " (TCO penalty of ported design vs native "
                     "optimum) ===\n";
        TextTable t(bench::nodeHeaders("From \\ To"));
        for (tech::NodeId from : tech::kAllNodes) {
            std::vector<std::string> row{tech::to_string(from)};
            bool any = false;
            for (tech::NodeId to : tech::kAllNodes) {
                std::string cell = "-";
                for (const auto &e : entries) {
                    if (e.from == from && e.to == to) {
                        cell = times(e.tco_penalty, 3);
                        any = true;
                    }
                }
                row.push_back(cell);
            }
            if (any)
                t.addRow(row);
        }
        t.print(std::cout);

        // Single-step geometric mean (paper: 1.05-1.08x).
        std::vector<std::string> penalty_labels;
        std::vector<double> penalties;
        std::vector<double> single;
        for (const auto &e : entries)
            if (tech::nodeIndex(e.to) == tech::nodeIndex(e.from) + 1)
                single.push_back(e.tco_penalty);
        if (!single.empty()) {
            std::cout << "one-step port geomean penalty: "
                      << times(geomean(single), 3) << "\n";
            penalty_labels.push_back("one-step geomean");
            penalties.push_back(geomean(single));
        }
        // Full jump from the oldest feasible node to 16nm.
        for (const auto &e : entries) {
            if (e.from == opt.sweepNodes(app).front().node &&
                e.to == tech::NodeId::N16) {
                std::cout << "full jump "
                          << tech::to_string(e.from) << " -> 16nm: "
                          << times(e.tco_penalty, 3) << "\n";
                penalty_labels.push_back(
                    tech::to_string(e.from) + "->16nm");
                penalties.push_back(e.tco_penalty);
            }
        }
        bench::recordRow(app.name() + ": porting penalty (x)",
                         penalty_labels, penalties);
        std::cout << "\n";
    }
    return 0;
}
