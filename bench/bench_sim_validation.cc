/**
 * @file
 * Model-validation experiment: the analytic performance model (the
 * perf rows of Tables 7-10) versus the discrete-event server
 * simulator.  For each application's 28nm TCO-optimal design, the
 * simulator is driven to saturation and must sustain the analytic
 * throughput; a load sweep shows the latency behavior behind SLA
 * constraints (Section 5.3).
 */
#include <iostream>

#include "bench_common.hh"
#include "sim/server_sim.hh"

using namespace moonwalk;

int
main()
{
    auto &opt = bench::sharedOptimizer();

    std::cout << "=== Analytic model vs discrete-event simulation "
                 "(28nm optima) ===\n";
    TextTable t({"App", "model ops/s", "simulated ops/s", "ratio",
                 "RCA util", "p99 latency"});

    for (const auto &app : apps::allApps()) {
        const core::NodeResult *r28 = nullptr;
        for (const auto &r : opt.sweepNodes(app))
            if (r.node == tech::NodeId::N28)
                r28 = &r;
        if (!r28)
            continue;
        const auto &p = r28->optimal;

        sim::ServerModel m;
        m.asics = p.config.diesPerServer();
        m.rcas_per_asic = p.config.rcas_per_die;
        // Delivered per-RCA rate implied by the analytic model
        // (includes yield harvesting and DRAM-bandwidth capping).
        m.rca_ops_per_s =
            p.perf_ops / (double(m.asics) * m.rcas_per_asic);
        sim::ServerSimulator simulator(m);

        sim::Workload w;
        // ~1 ms jobs, 2x overload to saturate.
        w.ops_per_job = m.rca_ops_per_s * 1e-3;
        w.arrival_rate =
            2.0 * simulator.capacityOpsPerS() / w.ops_per_job;
        w.duration_s = 0.5;
        const auto s = simulator.run(w);

        t.addRow({app.name(), sig(p.perf_ops, 4),
                  sig(s.achieved_ops_per_s, 4),
                  percent(s.achieved_ops_per_s / p.perf_ops),
                  percent(s.rca_utilization),
                  sig(s.latency_p99 * 1e3, 3) + " ms"});
    }
    t.print(std::cout);

    // Latency vs load for the Deep Learning server: the behavior the
    // SLA constraint guards.
    std::cout << "\n=== Deep Learning 28nm: latency vs offered load "
                 "===\n";
    const core::NodeResult *dl = nullptr;
    for (const auto &r : opt.sweepNodes(apps::deepLearning()))
        if (r.node == tech::NodeId::N28)
            dl = &r;
    if (dl) {
        sim::ServerModel m;
        m.asics = dl->optimal.config.diesPerServer();
        m.rcas_per_asic = dl->optimal.config.rcas_per_die;
        m.rca_ops_per_s = dl->optimal.perf_ops /
            (double(m.asics) * m.rcas_per_asic);
        sim::ServerSimulator simulator(m);

        TextTable lt({"load", "achieved/capacity", "p50 (ms)",
                      "p99 (ms)", "dropped"});
        for (double load : {0.3, 0.6, 0.9, 1.2}) {
            sim::Workload w;
            w.ops_per_job = m.rca_ops_per_s * 2e-3;  // 2 ms batches
            w.arrival_rate =
                load * simulator.capacityOpsPerS() / w.ops_per_job;
            w.duration_s = 0.5;
            const auto s = simulator.run(w);
            lt.addRow({percent(load, 0),
                       percent(s.achieved_ops_per_s /
                               simulator.capacityOpsPerS()),
                       fixed(s.latency_p50 * 1e3, 3),
                       fixed(s.latency_p99 * 1e3, 3),
                       std::to_string(s.jobs_dropped)});
        }
        lt.print(std::cout);
        std::cout << "Reading: below saturation the p99 latency "
                     "stays near one batch service time; past it, "
                     "queues fill and latency jumps — the regime the "
                     "paper's fixed-frequency SLA avoids.\n";
    }
    return 0;
}
