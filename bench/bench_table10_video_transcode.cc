/**
 * @file
 * Table 10: Video Transcode TCO-optimal ASIC server properties.
 * Servers saturate DRAM bandwidth and trade operating voltage
 * against RCAs per ASIC; DRAM count per die grows with node.
 */
#include <iostream>

#include "bench_common.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    auto &opt = bench::sharedOptimizer();
    const auto app = apps::videoTranscode();

    std::cout << "=== Table 10 ===\n";
    bench::printServerTable(app);

    bench::PaperRow paper = {
        {tech::NodeId::N250, 14722}, {tech::NodeId::N180, 4411},
        {tech::NodeId::N130, 2151}, {tech::NodeId::N90, 652.8},
        {tech::NodeId::N65, 278.4}, {tech::NodeId::N40, 117.2},
        {tech::NodeId::N28, 78.46}, {tech::NodeId::N16, 46.80},
    };
    std::map<tech::NodeId, double> model;
    for (const auto &r : opt.sweepNodes(app))
        model[r.node] = r.optimal.tco_per_ops * 1e3;
    std::cout << "\nTCO/Kfps, paper vs model:\n";
    bench::printComparison("TCO/Kfps", paper, model);

    std::cout << "\nDRAM provisioning (paper: 1,1,1,1,1,3,6,9 per "
                 "die; utilization < 1 when bandwidth-starved):\n";
    for (const auto &r : opt.sweepNodes(app)) {
        std::cout << "  " << tech::to_string(r.node) << ": "
                  << r.optimal.config.drams_per_die
                  << " DRAMs/die, compute utilization "
                  << percent(r.optimal.compute_utilization) << ", "
                  << r.optimal.config.dramsPerServer()
                  << " DRAMs/server\n";
    }
    return 0;
}
