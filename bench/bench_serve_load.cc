/**
 * @file
 * Load generator for `moonwalk serve`: boots the server in-process on
 * an ephemeral loopback port and drives it with a deterministic
 * traffic mix over real TCP sockets —
 *
 *   - duplicate class: 4 connections sending the *same* explore
 *     request in barrier-released waves, so the single-flight layer
 *     demonstrably dedups (hits >= 1 is a CI floor);
 *   - unique class: 3 connections exploring distinct nodes, exercising
 *     concurrent independent computes;
 *   - control class: one connection alternating ping/stats, the
 *     observability path that must keep answering under load.
 *
 * Two waves run back to back; the second is served from the explorer
 * memo, so the bench covers cold and warm result sources.  Because the
 * server runs in-process, the process-wide metrics registry that lands
 * in the report's perf section *is* the server's registry: the full
 * serve.* telemetry (request counters, latency/phase histograms,
 * single-flight gauges) ships in the artifact for perf_check.
 *
 * The report's model rows carry only deterministic values (requests
 * sent per class, ok/rejected/error response counts), so a checked-in
 * baseline pins them exactly; throughput is published as an
 * informational gauge (serve_load.achieved_rps), never compared.
 *
 * Flags mirror the bench harness: --report-json <path|off>
 * (default BENCH_serve_load.json), --jobs <n>, --cache-dir <dir>.
 * The harness itself is not reused because it owns a process-global
 * optimizer; this bench's optimizers live inside the service's
 * profile pool.
 *
 * Exit status: 0 when every response is ok, 1 otherwise.
 */
#ifndef _WIN32

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "serve/server.hh"
#include "util/json.hh"

using namespace moonwalk;

namespace {

// Traffic shape.  Fixed, so the report's model rows are
// byte-identical run to run and a baseline can pin them.
constexpr int kDuplicateConns = 4;
constexpr int kUniqueConns = 3;
constexpr int kWaves = 2;
constexpr int kControlRequests = 8;
// Holds each wave's leader open long enough that the other
// duplicates deterministically join its flight.
constexpr int kHandlerDelayMs = 120;

// Same sweep resolution as tests/serve/serve_check.py: non-trivial
// but fast.
const char *kOptionsJson =
    "{\"voltage_steps\":6,\"rca_count_steps\":8,"
    "\"max_drams_per_die\":2,\"dark_fractions\":[0.0]}";

std::string
exploreRequest(const std::string &node)
{
    return std::string("{\"cmd\":\"explore\",\"app\":\"Bitcoin\","
                       "\"node\":\"") +
           node + "\",\"options\":" + kOptionsJson + "}";
}

/** One-shot gate: released threads all start their wave together. */
class StartGate
{
  public:
    void release()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            open_ = true;
        }
        cv_.notify_all();
    }
    void wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return open_; });
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool open_ = false;
};

/** Blocking loopback client: one socket, line-oriented. */
class Client
{
  public:
    explicit Client(int port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            return;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(port));
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }
    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    bool ok() const { return fd_ >= 0; }

    /** Send one request line, read one response line (sans '\n'). */
    bool roundTrip(const std::string &request, std::string *response)
    {
        std::string line = request + "\n";
        size_t sent = 0;
        while (sent < line.size()) {
            const ssize_t n =
                ::send(fd_, line.data() + sent, line.size() - sent, 0);
            if (n <= 0)
                return false;
            sent += static_cast<size_t>(n);
        }
        response->clear();
        char buf[65536];
        for (;;) {
            const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n <= 0)
                return false;
            response->append(buf, static_cast<size_t>(n));
            const auto nl = response->find('\n');
            if (nl != std::string::npos) {
                response->resize(nl);
                return true;
            }
        }
    }

  private:
    int fd_ = -1;
};

/** Response tallies; only ever deterministic counts. */
struct Tally
{
    std::atomic<int> ok{0};
    std::atomic<int> rejected{0};
    std::atomic<int> error{0};

    void classify(bool transport_ok, const std::string &response)
    {
        if (!transport_ok) {
            ++error;
            return;
        }
        try {
            const Json j = Json::parse(response);
            if (j.contains("ok") && j.at("ok").asBool())
                ++ok;
            else
                ++rejected;
        } catch (const std::exception &) {
            ++error;
        }
    }
};

} // namespace

int
main(int argc, char **argv)
{
    std::string report_path = "BENCH_serve_load.json";
    std::string cache_dir;
    std::vector<std::string> raw(argv + (argc > 0 ? 1 : 0),
                                 argv + argc);
    for (size_t i = 0; i < raw.size(); ++i) {
        const std::string &a = raw[i];
        if (a == "--report-json" && i + 1 < raw.size()) {
            report_path = raw[++i];
        } else if (a == "--jobs" && i + 1 < raw.size()) {
            const auto jobs = exec::parseJobs(raw[++i]);
            if (!jobs) {
                std::cerr << "serve_load: --jobs needs an integer in "
                             "[1, "
                          << exec::kMaxJobs << "]\n";
                return 2;
            }
            exec::setGlobalConcurrency(*jobs);
        } else if (a == "--cache-dir" && i + 1 < raw.size()) {
            cache_dir = raw[++i];
        } else {
            std::cerr << "serve_load: unknown flag '" << a
                      << "' (valid: --report-json <path|off>, "
                         "--jobs <n>, --cache-dir <dir>)\n";
            return 2;
        }
    }

    obs::setMetricsEnabled(true);

    serve::ServerOptions options;
    options.port = 0;
    // Every wave's duplicates + uniques in flight at once, with room.
    options.queue_depth = kDuplicateConns + kUniqueConns + 4;
    options.service.cache_dir = cache_dir;
    options.service.handler_delay_ms = kHandlerDelayMs;

    serve::Server server(options);
    std::string error;
    if (!server.start(&error)) {
        std::cerr << "serve_load: " << error << "\n";
        return 1;
    }
    const int port = server.port();
    std::thread server_thread([&] { server.run(); });

    const uint64_t bench_start_ns = obs::monotonicNowNs();

    // Persistent connections, one per traffic stream.
    std::vector<std::unique_ptr<Client>> duplicates;
    for (int i = 0; i < kDuplicateConns; ++i)
        duplicates.push_back(std::make_unique<Client>(port));
    std::vector<std::unique_ptr<Client>> uniques;
    for (int i = 0; i < kUniqueConns; ++i)
        uniques.push_back(std::make_unique<Client>(port));
    Client control(port);
    bool connected = control.ok();
    for (const auto &c : duplicates)
        connected = connected && c->ok();
    for (const auto &c : uniques)
        connected = connected && c->ok();
    if (!connected) {
        std::cerr << "serve_load: cannot connect to 127.0.0.1:" << port
                  << "\n";
        server.requestStop();
        server_thread.join();
        return 1;
    }

    const std::string dup_line = exploreRequest("28nm");
    const std::vector<std::string> unique_lines = {
        exploreRequest("90nm"), exploreRequest("65nm"),
        exploreRequest("40nm")};

    Tally dup_tally, unique_tally, control_tally;
    for (int wave = 0; wave < kWaves; ++wave) {
        StartGate gate;
        std::vector<std::thread> clients;
        for (auto &c : duplicates) {
            clients.emplace_back([&, client = c.get()] {
                gate.wait();
                std::string response;
                dup_tally.classify(
                    client->roundTrip(dup_line, &response), response);
            });
        }
        for (size_t i = 0; i < uniques.size(); ++i) {
            clients.emplace_back([&, i, client = uniques[i].get()] {
                gate.wait();
                std::string response;
                unique_tally.classify(
                    client->roundTrip(unique_lines[i], &response),
                    response);
            });
        }
        gate.release();
        for (auto &t : clients)
            t.join();

        // Control stream between waves: ping/stats must answer while
        // the serve-side caches are in whatever state the wave left.
        for (int i = 0; i < kControlRequests / kWaves; ++i) {
            const std::string line = (i % 2 == 0)
                                         ? "{\"cmd\":\"ping\"}"
                                         : "{\"cmd\":\"stats\"}";
            std::string response;
            control_tally.classify(control.roundTrip(line, &response),
                                   response);
        }
    }

    const double wall_s =
        (obs::monotonicNowNs() - bench_start_ns) / 1e9;

    server.requestStop();
    server_thread.join();

    // Final snapshot after drain, exactly like the daemon's own
    // shutdown path; then the informational throughput gauge.
    server.service().publishStats();
    const int requests_total = kDuplicateConns * kWaves +
                               kUniqueConns * kWaves +
                               kControlRequests;
    obs::metrics()
        .gauge("serve_load.achieved_rps")
        .set(wall_s > 0 ? requests_total / wall_s : 0.0);

    const int ok_total =
        dup_tally.ok + unique_tally.ok + control_tally.ok;
    const int rejected_total = dup_tally.rejected +
                               unique_tally.rejected +
                               control_tally.rejected;
    const int error_total =
        dup_tally.error + unique_tally.error + control_tally.error;

    std::cout << "serve_load: " << requests_total << " requests in "
              << wall_s << "s (" << ok_total << " ok, "
              << rejected_total << " rejected, " << error_total
              << " transport errors)\n";
    std::cout << "serve_load: singleflight hits="
              << server.service().singleFlightHits()
              << " misses=" << server.service().singleFlightMisses()
              << "\n";

    if (report_path != "off") {
        obs::RunReport report("serve_load");
        Json argv_json = Json::array();
        for (const auto &a : raw)
            argv_json.push(a);
        report.setInput("argv", std::move(argv_json));
        report.setInput("jobs", exec::defaultConcurrency());
        report.setInput("duplicate_conns", kDuplicateConns);
        report.setInput("unique_conns", kUniqueConns);
        report.setInput("waves", kWaves);
        report.setInput("control_requests", kControlRequests);
        report.setInput("handler_delay_ms", kHandlerDelayMs);
        report.addRow("serve_load.requests",
                      {"duplicate", "unique", "control"},
                      {double(kDuplicateConns * kWaves),
                       double(kUniqueConns * kWaves),
                       double(kControlRequests)});
        report.addRow("serve_load.responses",
                      {"ok", "rejected", "error"},
                      {double(ok_total), double(rejected_total),
                       double(error_total)});
        report.setOutput("requests_total", requests_total);
        report.recordPhase("total", wall_s * 1e3);
        if (report.writeTo(report_path))
            std::cerr << "wrote " << report_path << "\n";
        else {
            std::cerr << "cannot write run report to " << report_path
                      << "\n";
            return 1;
        }
    }

    return ok_total == requests_total ? 0 : 1;
}

#else // _WIN32

#include <iostream>

int
main()
{
    std::cout << "serve_load: POSIX sockets unavailable on this "
                 "platform; skipping\n";
    return 0;
}

#endif
