/**
 * @file
 * Table 6: 28nm ASIC Cloud servers versus the best non-ASIC
 * alternative — performance, power, cost, and TCO per op/s.
 */
#include <iostream>

#include "bench_common.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    auto &opt = bench::sharedOptimizer();

    std::cout << "=== Table 6: ASIC servers vs best non-ASIC "
                 "alternative (28nm) ===\n";
    TextTable t({"App", "Cloud HW", "Perf", "Power (W)", "Cost ($)",
                 "TCO/op/s", "ASIC gain"});

    // Paper TCO/op/s reference values for the comparison column.
    const double paper_gain[] = {2320 / 2.9, 2500 / 19.5,
                                 791e3 / 78.5, 17580 / 44.3};
    std::vector<std::string> app_names;
    std::vector<double> model_gain, ref_gain;
    int i = 0;
    for (const auto &app : apps::allApps()) {
        const double scale = app.rca.perf_unit_scale;
        const auto &b = app.baseline;
        const double base_tco = opt.baselineTcoPerOps(app) * scale;
        t.addRow({app.name(), b.hardware,
                  sig(b.perf_ops / scale, 3) + " " + app.rca.perf_unit,
                  fixed(b.power_w, 0), fixed(b.cost, 0),
                  sig(base_tco, 4), ""});

        const core::NodeResult *r28 = nullptr;
        for (const auto &r : opt.sweepNodes(app))
            if (r.node == tech::NodeId::N28)
                r28 = &r;
        if (!r28) {
            t.addRow({app.name(), "28nm ASIC", "infeasible", "-", "-",
                      "-", "-"});
            continue;
        }
        const auto &p = r28->optimal;
        const double gain = base_tco / (p.tco_per_ops * scale);
        t.addRow({app.name(), "28nm ASIC",
                  sig(p.perf_ops / scale, 4) + " " + app.rca.perf_unit,
                  fixed(p.wall_power_w, 0), fixed(p.server_cost, 0),
                  sig(p.tco_per_ops * scale, 4),
                  times(gain, 3) + " (paper " +
                      times(paper_gain[i], 3) + ")"});
        app_names.push_back(app.name());
        model_gain.push_back(gain);
        ref_gain.push_back(paper_gain[i]);
        ++i;
    }
    t.print(std::cout);
    bench::recordRow("28nm ASIC TCO gain (x)", app_names, model_gain,
                     ref_gain);
    return 0;
}
