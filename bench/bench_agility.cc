/**
 * @file
 * Extension (Section 7.4): respin-cadence planning.  Quantifies
 * "reduced NREs allow an ASIC Cloud to be more agile, updating ASICs
 * more frequently to track evolving software": as software drift
 * rises, the optimal strategy moves to older, cheaper-NRE nodes
 * respun more often.
 */
#include <iostream>

#include "bench_common.hh"
#include "core/agility.hh"

using namespace moonwalk;

int
main()
{
    auto &opt = bench::sharedOptimizer();
    core::AgilityPlanner planner(opt);

    for (const char *app_name : {"Bitcoin", "Video Transcode"}) {
        const auto app = apps::appByName(app_name);
        std::cout << "=== Agility study: " << app.name()
                  << " (6-year horizon, $30M/yr workload) ===\n";
        TextTable t({"drift/yr", "best node", "respin every",
                     "tapeouts", "NRE total", "served TCO", "total",
                     "vs baseline"});
        for (double drift : {0.0, 0.15, 0.30, 0.60, 1.20}) {
            core::AgilityParams p;
            p.horizon_years = 6;
            p.annual_workload_tco = 30e6;
            p.software_drift_per_year = drift;
            const auto best = planner.best(app, p);
            const double base = core::AgilityPlanner::baselineCost(p);
            t.addRow({percent(drift, 0),
                      tech::to_string(best.node),
                      std::to_string(best.respin_period_years) + "y",
                      std::to_string(best.tapeouts),
                      money(best.total_nre, 3),
                      money(best.total_served_tco, 3),
                      money(best.totalCost(), 3),
                      percent(best.totalCost() / base)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
