/**
 * @file
 * Ablation: datacenter economics.  Sweeps electricity price and
 * datacenter capex and reports how the TCO-optimal operating points
 * and node crossovers move — cheap energy tilts designs toward high
 * voltage and small dies; expensive energy buys silicon to save
 * joules (Section 5.2's core trade-off).
 */
#include <iostream>

#include "bench_common.hh"
#include "core/sensitivity.hh"

using namespace moonwalk;

int
main()
{
    const auto app = apps::litecoin();

    std::cout << "=== Ablation: electricity price (Litecoin) ===\n";
    for (double scale : {0.5, 1.0, 3.0}) {
        core::Scenario s;
        s.name = "electricity x" + fixed(scale, 1);
        s.electricity_scale = scale;
        core::ScenarioRunner runner(s);

        std::cout << "\n-- " << s.name << " ($"
                  << fixed(0.07 * scale, 3) << "/kWh) --\n";
        TextTable t({"Tech", "Vdd", "W/MH/s", "$/MH/s", "TCO/MH/s"});
        for (const auto &r : runner.optimizer().sweepNodes(app)) {
            t.addRow({tech::to_string(r.node),
                      fixed(r.optimal.config.vdd, 3),
                      sig(r.optimal.watts_per_ops * 1e6, 4),
                      sig(r.optimal.cost_per_ops * 1e6, 4),
                      sig(r.optimal.tco_per_ops * 1e6, 4)});
        }
        t.print(std::cout);
    }

    std::cout << "\n=== Ablation: datacenter capex (Litecoin, 28nm "
                 "optimum) ===\n";
    TextTable t({"DC capex scale", "Vdd", "W/MH/s", "TCO/MH/s"});
    for (double scale : {0.5, 1.0, 2.0}) {
        core::Scenario s;
        s.name = "dc capex x" + fixed(scale, 1);
        s.dc_capex_scale = scale;
        core::ScenarioRunner runner(s);
        for (const auto &r : runner.optimizer().sweepNodes(app)) {
            if (r.node != tech::NodeId::N28)
                continue;
            t.addRow({s.name, fixed(r.optimal.config.vdd, 3),
                      sig(r.optimal.watts_per_ops * 1e6, 4),
                      sig(r.optimal.tco_per_ops * 1e6, 4)});
        }
    }
    t.print(std::cout);
    return 0;
}
