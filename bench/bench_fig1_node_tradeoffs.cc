/**
 * @file
 * Figure 1 + Tables 1/2: node technology trade-offs normalized to
 * 250nm — mask cost (A), energy per op (B, with the Dennard dotted
 * line), $ per op/s (C, power-limited and unlimited), maximum
 * transistors per die (D), transistor frequency (E).
 */
#include <iostream>

#include "bench_common.hh"
#include "tech/scaling.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    const tech::ScalingModel model;
    const auto &db = model.database();

    std::cout << "=== Figure 1: node trade-offs, normalized to 250nm "
                 "===\n\n";

    std::vector<std::string> node_names;
    for (tech::NodeId id : tech::kAllNodes)
        node_names.push_back(tech::to_string(id));

    TextTable t(bench::nodeHeaders("Series"));
    auto series = [&](const std::string &name, auto fn, int digits) {
        std::vector<std::string> row{name};
        std::vector<double> values;
        for (tech::NodeId id : tech::kAllNodes) {
            row.push_back(sig((model.*fn)(id), digits));
            values.push_back((model.*fn)(id));
        }
        t.addRow(row);
        bench::recordRow(name, node_names, values);
    };
    series("A mask cost (x)", &tech::ScalingModel::maskCostNorm, 4);
    series("B energy/op (x)", &tech::ScalingModel::energyPerOpNorm, 4);
    series("B dennard dotted",
           &tech::ScalingModel::energyPerOpDennardNorm, 4);
    series("C $/op/s power-lim",
           &tech::ScalingModel::costPerOpsNormPowerLimited, 4);
    series("C $/op/s unlimited",
           &tech::ScalingModel::costPerOpsNormUnlimited, 4);
    series("D max transistors (x)",
           &tech::ScalingModel::maxTransistorsNorm, 4);
    series("E frequency (x)", &tech::ScalingModel::frequencyNorm, 4);
    t.print(std::cout);

    std::cout << "\nSpans 250nm -> 16nm (paper: 89x mask, 152x "
                 "energy, 28x / 558x $/op/s, 256x transistors, "
                 "15.5x freq):\n";
    auto span = [&](auto fn) {
        const double a = (model.*fn)(tech::NodeId::N250);
        const double b = (model.*fn)(tech::NodeId::N16);
        return a > b ? a / b : b / a;
    };
    std::cout << "  mask cost   : "
              << times(span(&tech::ScalingModel::maskCostNorm)) << "\n"
              << "  energy/op   : "
              << times(span(&tech::ScalingModel::energyPerOpNorm))
              << "\n  $/op/s PL   : "
              << times(span(
                     &tech::ScalingModel::costPerOpsNormPowerLimited))
              << "\n  $/op/s unl  : "
              << times(span(
                     &tech::ScalingModel::costPerOpsNormUnlimited))
              << "\n  transistors : "
              << times(span(&tech::ScalingModel::maxTransistorsNorm))
              << "\n  frequency   : "
              << times(span(&tech::ScalingModel::frequencyNorm))
              << "\n";

    std::cout << "\n=== Table 1: wafer and mask costs ===\n";
    TextTable t1(bench::nodeHeaders("Quantity"));
    std::vector<std::string> masks{"Mask cost ($)"};
    std::vector<std::string> wafers{"Cost per wafer ($)"};
    std::vector<std::string> diam{"Wafer diameter (mm)"};
    std::vector<std::string> be{"Backend labor $/gate"};
    for (tech::NodeId id : tech::kAllNodes) {
        const auto &n = db.node(id);
        masks.push_back(si(n.mask_cost));
        wafers.push_back(fixed(n.wafer_cost, 0));
        diam.push_back(fixed(n.wafer_diameter_mm, 0));
        be.push_back(fixed(n.backend_cost_per_gate, 3));
    }
    t1.addRow(masks);
    t1.addRow(wafers);
    t1.addRow(diam);
    t1.addRow(be);
    t1.print(std::cout);

    std::cout << "\n=== Table 2: nominal supply voltages ===\n";
    TextTable t2(bench::nodeHeaders("Quantity"));
    std::vector<std::string> vdd{"Nom. Vdd (V)"};
    for (tech::NodeId id : tech::kAllNodes)
        vdd.push_back(fixed(db.node(id).vdd_nominal, 1));
    t2.addRow(vdd);
    t2.print(std::cout);
    return 0;
}
