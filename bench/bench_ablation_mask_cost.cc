/**
 * @file
 * Ablation: how mask pricing steers node choice.  Sweeps the mask
 * cost scale (free masks, half, baseline, double) and reports where
 * each node's optimality range lands for Bitcoin — quantifying the
 * paper's claim that mask cost is the dominant NRE knob at advanced
 * nodes (Sections 2 and 6.4).
 */
#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "core/sensitivity.hh"

using namespace moonwalk;

int
main()
{
    const auto app = apps::bitcoin();

    std::cout << "=== Ablation: mask-cost scale vs optimal node "
                 "ranges (Bitcoin) ===\n";
    for (double scale : {0.01, 0.5, 1.0, 2.0}) {
        core::Scenario s;
        s.name = "masks x" + fixed(scale, 2);
        s.mask_cost_scale = scale;
        core::ScenarioRunner runner(s);

        std::cout << "\n-- " << s.name << " --\n";
        TextTable t({"Choice", "from (baseline TCO)", "NRE"});
        for (const auto &r :
             runner.optimizer().optimalNodeRanges(app)) {
            const std::string who = r.line.node ?
                tech::to_string(*r.line.node) : "GPU baseline";
            t.addRow({who, money(r.b_low, 3), money(r.line.nre, 3)});
        }
        t.print(std::cout);
    }

    std::cout << "\nReading: with free masks the 16nm crossover "
                 "collapses by orders of magnitude; doubling mask "
                 "prices stretches every advanced-node crossover "
                 "outward.\n";
    return 0;
}
