/**
 * @file
 * Ablation: cooling strength.  The lane thermal model replaces the
 * paper's CFD; this bench shows how the TCO-optimal Bitcoin servers
 * respond to weaker/stronger fans and a relaxed junction limit,
 * verifying the substitution drives the expected trade-offs
 * (Section 5.2's voltage-vs-thermal tension).
 */
#include <iostream>

#include "bench_common.hh"
#include "core/sensitivity.hh"

using namespace moonwalk;

int
main()
{
    const auto app = apps::bitcoin();

    std::cout << "=== Ablation: cooling strength (Bitcoin, "
                 "TCO-optimal per node) ===\n";

    struct Case { const char *label; double fan; double tj; };
    const Case cases[] = {
        {"0.5x fans", 0.5, 0.0},
        {"baseline", 1.0, 0.0},
        {"2x fans", 2.0, 0.0},
        {"Tj +15C", 1.0, 15.0},
    };

    for (const auto &c : cases) {
        core::Scenario s;
        s.name = c.label;
        s.fan_pressure_scale = c.fan;
        s.tj_margin_c = c.tj;
        core::ScenarioRunner runner(s);

        std::cout << "\n-- " << c.label << " --\n";
        TextTable t({"Tech", "Vdd", "die W cap", "server W",
                     "TCO/GH/s"});
        for (const auto &r :
             runner.optimizer().sweepNodes(app)) {
            t.addRow({tech::to_string(r.node),
                      fixed(r.optimal.config.vdd, 3),
                      fixed(r.optimal.max_die_power_w, 1),
                      fixed(r.optimal.wall_power_w, 0),
                      sig(r.optimal.tco_per_ops * 1e9, 4)});
        }
        t.print(std::cout);
    }

    std::cout << "\nReading: stronger cooling raises per-die power "
                 "ceilings, letting optima run at higher voltage "
                 "(less silicon per op); weaker cooling forces "
                 "near-threshold operation.\n";
    return 0;
}
