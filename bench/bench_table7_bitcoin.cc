/**
 * @file
 * Table 7: Bitcoin TCO-optimal ASIC server properties across all
 * eight technology nodes, with the paper's TCO/GH/s row for
 * comparison.
 */
#include <iostream>

#include "bench_common.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    auto &opt = bench::sharedOptimizer();
    const auto app = apps::bitcoin();

    std::cout << "=== Table 7 ===\n";
    bench::printServerTable(app);

    bench::PaperRow paper = {
        {tech::NodeId::N250, 186.2}, {tech::NodeId::N180, 74.55},
        {tech::NodeId::N130, 33.68}, {tech::NodeId::N90, 15.88},
        {tech::NodeId::N65, 9.115}, {tech::NodeId::N40, 4.039},
        {tech::NodeId::N28, 2.912}, {tech::NodeId::N16, 1.378},
    };
    std::map<tech::NodeId, double> model;
    for (const auto &r : opt.sweepNodes(app))
        model[r.node] = r.optimal.tco_per_ops * 1e9;
    std::cout << "\nTCO/GH/s, paper vs model:\n";
    bench::printComparison("TCO/GH/s", paper, model);
    return 0;
}
