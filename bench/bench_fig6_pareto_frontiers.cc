/**
 * @file
 * Figure 6: Pareto frontiers in (W per op/s, $ per op/s) for every
 * technology node and application, against the GPU/CPU baseline, plus
 * the consecutive-node improvement factors at the TCO-optimal points.
 */
#include <iostream>

#include "bench_common.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    auto &opt = bench::sharedOptimizer();

    for (const auto &app : apps::allApps()) {
        const double scale = app.rca.perf_unit_scale;
        std::cout << "=== Figure 6: " << app.name()
                  << " Pareto frontiers (unit: " << app.rca.perf_unit
                  << ") ===\n";

        // Baseline point.
        const auto &b = app.baseline;
        std::cout << "baseline " << b.hardware << ": $/unit "
                  << sig(b.cost / b.perf_ops * scale, 4) << ", W/unit "
                  << sig(b.power_w / b.perf_ops * scale, 4) << "\n";

        for (const auto &r : opt.sweepNodes(app)) {
            const auto exploration = opt.explorer().explore(
                app.rca, r.node);
            std::cout << "\n-- " << tech::to_string(r.node) << " ("
                      << exploration.pareto.size()
                      << " Pareto points, subsampled; TCO-optimal "
                         "marked *) --\n";
            TextTable t({"$/unit", "W/unit", "Vdd", "opt"});
            // Subsample the front to ~24 evenly spaced points so the
            // output stays plottable by eye.
            std::vector<dse::DesignPoint> shown;
            const size_t n = exploration.pareto.size();
            const size_t stride = n > 24 ? n / 24 : 1;
            for (size_t i = 0; i < n; i += stride)
                shown.push_back(exploration.pareto[i]);
            if (!shown.empty() &&
                shown.back().cost_per_ops !=
                    exploration.pareto.back().cost_per_ops)
                shown.push_back(exploration.pareto.back());
            for (const auto &p : shown) {
                const bool is_opt =
                    p.config.rcas_per_die ==
                        r.optimal.config.rcas_per_die &&
                    p.config.vdd == r.optimal.config.vdd &&
                    p.config.dies_per_lane ==
                        r.optimal.config.dies_per_lane;
                t.addRow({sig(p.cost_per_ops * scale, 4),
                          sig(p.watts_per_ops * scale, 4),
                          fixed(p.config.vdd, 3),
                          is_opt ? "*" : ""});
            }
            t.print(std::cout);
        }

        std::cout << "\nTCO-optimal improvement per node step:\n";
        const auto &sweep = opt.sweepNodes(app);
        std::vector<std::string> steps;
        std::vector<double> cost_x, power_x;
        for (size_t i = 1; i < sweep.size(); ++i) {
            const auto &prev = sweep[i - 1].optimal;
            const auto &cur = sweep[i].optimal;
            std::cout << "  " << tech::to_string(sweep[i - 1].node)
                      << " -> " << tech::to_string(sweep[i].node)
                      << ": cost/perf "
                      << times(prev.cost_per_ops / cur.cost_per_ops)
                      << ", power/perf "
                      << times(prev.watts_per_ops / cur.watts_per_ops)
                      << "\n";
            steps.push_back(tech::to_string(sweep[i - 1].node) +
                            "->" + tech::to_string(sweep[i].node));
            cost_x.push_back(prev.cost_per_ops / cur.cost_per_ops);
            power_x.push_back(prev.watts_per_ops /
                              cur.watts_per_ops);
        }
        bench::recordRow(app.name() + ": step cost/perf gain (x)",
                         steps, cost_x);
        bench::recordRow(app.name() + ": step power/perf gain (x)",
                         steps, power_x);
        // Oldest node vs baseline.
        const auto &oldest = sweep.front().optimal;
        std::cout << "  " << b.hardware << " -> "
                  << tech::to_string(sweep.front().node) << ": TCO "
                  << times(opt.baselineTcoPerOps(app) /
                           oldest.tco_per_ops)
                  << "\n\n";
        bench::recordRow(app.name() + ": baseline TCO gain (x)",
                         {b.hardware + " -> " +
                          tech::to_string(sweep.front().node)},
                         {opt.baselineTcoPerOps(app) /
                          oldest.tco_per_ops});
    }
    return 0;
}
