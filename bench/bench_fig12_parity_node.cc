/**
 * @file
 * Figure 12: optimal node selection from the workload TCO (x axis)
 * and the application's *tech parity node* (key) — the node where the
 * ASIC's TCO per op/s equals the pre-accelerated baseline's.  Parity
 * keys "/N" are hypothetical baselines N times better than the 250nm
 * ASIC.  Left chart: a low-IP-NRE app (Bitcoin-like); right chart: a
 * medium-IP app (Video-Transcode-like).
 */
#include <iostream>

#include "bench_common.hh"

using namespace moonwalk;

namespace {

void
chart(const apps::AppSpec &app)
{
    auto &opt = bench::sharedOptimizer();
    std::cout << "=== Figure 12: " << app.name()
              << "-like NRE profile ===\n";

    struct Parity { std::string label; tech::NodeId node; double scale; };
    std::vector<Parity> parities;
    for (const auto &r : opt.sweepNodes(app))
        parities.push_back({tech::to_string(r.node), r.node, 1.0});
    // Hypothetical baselines better than the oldest node (the /N keys).
    const tech::NodeId oldest = opt.sweepNodes(app).front().node;
    for (double n : {2.0, 4.0, 8.0}) {
        parities.push_back({tech::to_string(oldest) + "/" +
                            fixed(n, 0), oldest, n});
    }

    std::vector<std::string> headers{"Parity node"};
    std::vector<double> tcos;
    for (double b = 1e6; b <= 1e10; b *= 10.0) {
        tcos.push_back(b);
        headers.push_back(money(b, 2));
    }
    TextTable t(headers);
    Json picks_json = Json::object();
    for (const auto &p : parities) {
        std::vector<std::string> row{p.label};
        Json picks = Json::array();
        for (double b : tcos) {
            const auto pick =
                opt.optimalNodeForParity(app, p.node, p.scale, b);
            const std::string name =
                pick ? tech::to_string(*pick) : "baseline";
            row.push_back(name);
            picks.push(name);
        }
        t.addRow(row);
        picks_json.set(p.label, std::move(picks));
    }
    t.print(std::cout);
    std::cout << "\n";
    if (auto *rep = bench::BenchReport::active())
        rep->setOutput(app.name() + " parity picks",
                       std::move(picks_json));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    // Sweep both NRE profiles in parallel up front; the charts then
    // read from the warm per-app cache.
    bench::sharedOptimizer().prefetch(
        {apps::bitcoin(), apps::videoTranscode()});
    chart(apps::bitcoin());         // small IP NRE
    chart(apps::videoTranscode());  // medium IP NRE
    return 0;
}
