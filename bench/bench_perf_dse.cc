/**
 * @file
 * google-benchmark microbenchmarks of the engine itself: single
 * design-point evaluation, thermal solves, Pareto extraction, and a
 * full per-node exploration.
 */
#include <benchmark/benchmark.h>

#include "apps/apps.hh"
#include "dse/explorer.hh"
#include "thermal/lane.hh"

using namespace moonwalk;

namespace {

void
BM_EvaluateDesignPoint(benchmark::State &state)
{
    dse::ServerEvaluator eval;
    const auto rca = apps::bitcoin().rca;
    arch::ServerConfig cfg;
    cfg.node = tech::NodeId::N28;
    cfg.rcas_per_die = 769;
    cfg.dies_per_lane = 9;
    cfg.vdd = 0.459;
    // Warm the thermal cache: steady-state evaluation cost.
    (void)eval.evaluate(rca, cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(eval.evaluate(rca, cfg));
}
BENCHMARK(BM_EvaluateDesignPoint);

void
BM_LaneThermalSolveCold(benchmark::State &state)
{
    const int dies = static_cast<int>(state.range(0));
    for (auto _ : state) {
        thermal::LaneThermalModel model;  // fresh cache each time
        benchmark::DoNotOptimize(model.solve(dies, 540.0));
    }
}
BENCHMARK(BM_LaneThermalSolveCold)->Arg(1)->Arg(8)->Arg(15);

void
BM_VoltageSweep(benchmark::State &state)
{
    dse::DesignSpaceExplorer explorer;
    const auto rca = apps::bitcoin().rca;
    for (auto _ : state) {
        benchmark::DoNotOptimize(explorer.sweepVoltage(
            rca, tech::NodeId::N28, 769, 9));
    }
}
BENCHMARK(BM_VoltageSweep);

void
BM_ExploreNode(benchmark::State &state)
{
    dse::ExplorerOptions o;
    o.voltage_steps = 16;
    o.rca_count_steps = 16;
    dse::DesignSpaceExplorer explorer{o};
    const auto rca = apps::bitcoin().rca;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            explorer.explore(rca, tech::NodeId::N40));
    }
}
BENCHMARK(BM_ExploreNode)->Unit(benchmark::kMillisecond);

void
BM_ParetoExtraction(benchmark::State &state)
{
    std::vector<dse::DesignPoint> pts(
        static_cast<size_t>(state.range(0)));
    uint64_t seed = 42;
    for (auto &p : pts) {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        p.cost_per_ops = 1.0 + (seed >> 40) * 1e-9;
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        p.watts_per_ops = 1.0 + (seed >> 40) * 1e-9;
    }
    for (auto _ : state) {
        auto copy = pts;
        benchmark::DoNotOptimize(dse::paretoFront(std::move(copy)));
    }
}
BENCHMARK(BM_ParetoExtraction)->Arg(1000)->Arg(100000);

} // namespace

BENCHMARK_MAIN();
