/**
 * @file
 * google-benchmark microbenchmarks of the engine itself: single
 * design-point evaluation, thermal solves, Pareto extraction, and a
 * full per-node exploration.
 *
 * `bench_perf_dse --scaling [--json]` instead runs the thread-scaling
 * study: the full bitcoin sweep (every node, full resolution) at 1, 2,
 * 4, and all hardware threads, reporting wall time and speedup and
 * checking that every thread count produced identical designs.  With
 * --json the rows are machine-readable for the perf trajectory.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.hh"
#include "core/optimizer.hh"
#include "dse/explorer.hh"
#include "exec/thread_pool.hh"
#include "thermal/lane.hh"
#include "util/table.hh"

using namespace moonwalk;

namespace {

void
BM_EvaluateDesignPoint(benchmark::State &state)
{
    dse::ServerEvaluator eval;
    const auto rca = apps::bitcoin().rca;
    arch::ServerConfig cfg;
    cfg.node = tech::NodeId::N28;
    cfg.rcas_per_die = 769;
    cfg.dies_per_lane = 9;
    cfg.vdd = 0.459;
    // Warm the thermal cache: steady-state evaluation cost.
    (void)eval.evaluate(rca, cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(eval.evaluate(rca, cfg));
}
BENCHMARK(BM_EvaluateDesignPoint);

void
BM_LaneThermalSolveCold(benchmark::State &state)
{
    const int dies = static_cast<int>(state.range(0));
    for (auto _ : state) {
        thermal::LaneThermalModel model;  // fresh cache each time
        benchmark::DoNotOptimize(model.solve(dies, 540.0));
    }
}
BENCHMARK(BM_LaneThermalSolveCold)->Arg(1)->Arg(8)->Arg(15);

void
BM_VoltageSweep(benchmark::State &state)
{
    dse::DesignSpaceExplorer explorer;
    const auto rca = apps::bitcoin().rca;
    for (auto _ : state) {
        benchmark::DoNotOptimize(explorer.sweepVoltage(
            rca, tech::NodeId::N28, 769, 9));
    }
}
BENCHMARK(BM_VoltageSweep);

void
BM_ExploreNode(benchmark::State &state)
{
    dse::ExplorerOptions o;
    o.voltage_steps = 16;
    o.rca_count_steps = 16;
    dse::DesignSpaceExplorer explorer{o};
    const auto rca = apps::bitcoin().rca;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            explorer.explore(rca, tech::NodeId::N40));
    }
}
BENCHMARK(BM_ExploreNode)->Unit(benchmark::kMillisecond);

void
BM_ParetoExtraction(benchmark::State &state)
{
    std::vector<dse::DesignPoint> pts(
        static_cast<size_t>(state.range(0)));
    uint64_t seed = 42;
    for (auto &p : pts) {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        p.cost_per_ops = 1.0 + (seed >> 40) * 1e-9;
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        p.watts_per_ops = 1.0 + (seed >> 40) * 1e-9;
    }
    for (auto _ : state) {
        auto copy = pts;
        benchmark::DoNotOptimize(dse::paretoFront(std::move(copy)));
    }
}
BENCHMARK(BM_ParetoExtraction)->Arg(1000)->Arg(100000);

/**
 * Canonical digest of a node sweep: every decision the sweep made, at
 * full precision, so any cross-thread-count divergence — even one ULP
 * — shows up as a digest mismatch.
 */
std::string
sweepDigest(const std::vector<core::NodeResult> &sweep)
{
    std::ostringstream os;
    os.precision(17);
    for (const auto &r : sweep) {
        os << tech::to_string(r.node) << ' '
           << r.optimal.config.rcas_per_die << ' '
           << r.optimal.config.dies_per_lane << ' '
           << r.optimal.config.drams_per_die << ' '
           << r.optimal.config.vdd << ' '
           << r.optimal.tco_per_ops << ' '
           << r.nre.total() << '\n';
    }
    return os.str();
}

int
runScaling(bool json)
{
    const auto app = apps::bitcoin();
    std::vector<int> counts{1, 2, 4};
    const int hw = exec::defaultConcurrency();
    if (hw > 4)
        counts.push_back(hw);

    struct Row { int threads; double wall_ms; std::string digest; };
    std::vector<Row> rows;
    for (int threads : counts) {
        // A fresh optimizer per thread count: cold sweep caches, so
        // each run pays the full exploration cost.
        dse::ExplorerOptions options;
        options.max_threads = threads;
        core::MoonwalkOptimizer opt{
            dse::DesignSpaceExplorer{options}};
        const auto t0 = std::chrono::steady_clock::now();
        const auto &sweep = opt.sweepNodes(app);
        const auto t1 = std::chrono::steady_clock::now();
        rows.push_back(
            {threads,
             std::chrono::duration<double, std::milli>(t1 - t0).count(),
             sweepDigest(sweep)});
    }

    bool identical = true;
    for (const auto &row : rows)
        identical = identical && row.digest == rows.front().digest;

    if (json) {
        std::cout << "{\"bench\":\"dse_scaling\",\"app\":\""
                  << app.name() << "\",\"identical\":"
                  << (identical ? "true" : "false") << ",\"runs\":[";
        for (size_t i = 0; i < rows.size(); ++i) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "%s{\"threads\":%d,\"wall_ms\":%.3f,"
                          "\"speedup\":%.3f}",
                          i ? "," : "", rows[i].threads,
                          rows[i].wall_ms,
                          rows[0].wall_ms / rows[i].wall_ms);
            std::cout << buf;
        }
        std::cout << "]}\n";
    } else {
        TextTable t({"Threads", "Wall (ms)", "Speedup"});
        t.setTitle("Full " + app.name() +
                   " sweep, thread scaling (identical results: " +
                   (identical ? "yes" : "NO") + ")");
        for (const auto &row : rows) {
            char wall[32], speedup[32];
            std::snprintf(wall, sizeof(wall), "%.1f", row.wall_ms);
            std::snprintf(speedup, sizeof(speedup), "%.2fx",
                          rows.front().wall_ms / row.wall_ms);
            t.addRow({std::to_string(row.threads), wall, speedup});
        }
        t.print(std::cout);
    }
    return identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool scaling = false;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scaling") == 0)
            scaling = true;
        else if (std::strcmp(argv[i], "--json") == 0)
            json = true;
    }
    if (scaling)
        return runScaling(json);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
