/**
 * @file
 * Table 8: Deep Learning (DaDianNao) TCO-optimal ASIC server
 * properties.  The SLA-pinned 606 MHz clock restricts feasible nodes
 * to 40/28/16nm.
 */
#include <iostream>

#include "bench_common.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    auto &opt = bench::sharedOptimizer();
    const auto app = apps::deepLearning();

    std::cout << "=== Table 8 ===\n";
    bench::printServerTable(app);

    bench::PaperRow paper = {
        {tech::NodeId::N40, 100.4}, {tech::NodeId::N28, 44.28},
        {tech::NodeId::N16, 17.78},
    };
    std::map<tech::NodeId, double> model;
    for (const auto &r : opt.sweepNodes(app))
        model[r.node] = r.optimal.tco_per_ops * 1e12;
    std::cout << "\nTCO/TOps/s, paper vs model:\n";
    bench::printComparison("TCO/TOps/s", paper, model);

    std::cout << "\nDark silicon at the optimum (paper: 15.5% at "
                 "28nm, none at 16nm):\n";
    std::vector<std::string> nodes;
    std::vector<double> dark;
    for (const auto &r : opt.sweepNodes(app)) {
        std::cout << "  " << tech::to_string(r.node) << ": "
                  << percent(r.optimal.config.dark_silicon_fraction)
                  << ", grid " << r.optimal.config.rcas_per_die
                  << " nodes/die\n";
        nodes.push_back(tech::to_string(r.node));
        dark.push_back(r.optimal.config.dark_silicon_fraction);
    }
    bench::recordRow(app.name() + ": dark silicon fraction", nodes,
                     dark);
    return 0;
}
