/**
 * @file
 * Extension: does the paper's conclusion survive past 16nm?
 * Projects hypothetical 10nm and 7nm nodes by continuing the
 * database's 28->16nm log-log trends, substitutes them into the
 * full pipeline (the projected node takes the 16nm slot of a cloned
 * database), and reports Bitcoin TCO-optimal designs, NREs, and the
 * workload scale at which each future node would first pay off —
 * the "even more extreme scale" continuation of Figure 10.
 */
#include <iostream>
#include <memory>

#include "bench_common.hh"
#include "core/optimizer.hh"
#include "tech/projection.hh"

using namespace moonwalk;

int
main()
{
    const auto app = apps::bitcoin();
    auto &base_opt = bench::sharedOptimizer();
    const double base_tco = base_opt.baselineTcoPerOps(app);

    // Real 16nm reference.
    const core::NodeResult *r16 = nullptr;
    for (const auto &r : base_opt.sweepNodes(app))
        if (r.node == tech::NodeId::N16)
            r16 = &r;

    std::cout << "=== Projected future nodes (28->16nm trends "
                 "continued) ===\n";
    TextTable tp({"Node", "Mask cost", "Wafer cost", "Vdd", "Vth",
                  "BE $/gate"});
    for (double f : {10.0, 7.0}) {
        const auto n = tech::projectNode(f);
        tp.addRow({n.name, money(n.mask_cost, 3),
                   fixed(n.wafer_cost, 0), fixed(n.vdd_nominal, 2),
                   fixed(n.vth, 3),
                   fixed(n.backend_cost_per_gate, 3)});
    }
    tp.print(std::cout);

    std::cout << "\n=== Bitcoin on projected nodes (full pipeline) "
                 "===\n";
    TextTable t({"Node", "RCAs/die", "Vdd", "GH/s", "W", "TCO/GH/s",
                 "NRE", "beats 16nm from"});
    if (r16) {
        t.addRow({"16nm (real)",
                  std::to_string(r16->optimal.config.rcas_per_die),
                  fixed(r16->optimal.config.vdd, 3),
                  fixed(r16->optimal.perf_ops / 1e9, 0),
                  fixed(r16->optimal.wall_power_w, 0),
                  sig(r16->optimal.tco_per_ops * 1e9, 4),
                  money(r16->nre.total(), 3), "-"});
    }

    for (double f : {10.0, 7.0}) {
        // Substitute the projected node into the 16nm slot of a
        // cloned database and rerun the whole flow.
        auto db = std::make_unique<tech::TechDatabase>();
        db->mutableNode(tech::NodeId::N16) = tech::projectNode(f);
        dse::DesignSpaceExplorer explorer{
            dse::ExplorerOptions{},
            dse::ServerEvaluator{*db}};
        const auto res = explorer.explore(app.rca,
                                          tech::NodeId::N16);
        if (!res.tco_optimal) {
            t.addRow({tech::projectNode(f).name, "-", "-", "-", "-",
                      "infeasible", "-", "-"});
            continue;
        }
        const auto &p = *res.tco_optimal;

        core::MoonwalkOptimizer opt{std::move(explorer)};
        const auto nre = opt.nreOf(app, p);

        std::string beats = "-";
        if (r16) {
            // Crossover workload where the projected node's total
            // cost drops below real 16nm's.
            const double r_new = p.tco_per_ops / base_tco;
            const double r_old = r16->optimal.tco_per_ops / base_tco;
            if (r_new < r_old) {
                beats = money((nre.total() - r16->nre.total()) /
                              (r_old - r_new), 3);
            }
        }
        t.addRow({tech::projectNode(f).name,
                  std::to_string(p.config.rcas_per_die),
                  fixed(p.config.vdd, 3),
                  fixed(p.perf_ops / 1e9, 0),
                  fixed(p.wall_power_w, 0),
                  sig(p.tco_per_ops * 1e9, 4), money(nre.total(), 3),
                  beats});
    }
    t.print(std::cout);

    std::cout << "\nProjected PHY IP at future nodes (K$): DRAM PHY "
              << fixed(nre::projectedIpCost(nre::IpBlock::DramPhy,
                                            10.0) / 1e3, 0)
              << " @10nm, "
              << fixed(nre::projectedIpCost(nre::IpBlock::DramPhy,
                                            7.0) / 1e3, 0)
              << " @7nm; PCI-E PHY "
              << fixed(nre::projectedIpCost(nre::IpBlock::PciePhy,
                                            7.0) / 1e3, 0)
              << " @7nm\n"
              << "Reading: the paper's trend steepens — each future "
                 "node demands a multi-billion-dollar workload "
                 "before its NRE pays off.\n";
    return 0;
}
