/**
 * @file
 * Figure 3 / Table 4: IP licensing costs across technology nodes.
 * High-speed PHY blocks (DDR, PCI-E) rise exponentially with node.
 */
#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "nre/ip_catalog.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    nre::IpCatalog cat;

    std::vector<std::string> node_names;
    for (tech::NodeId id : tech::kAllNodes)
        node_names.push_back(tech::to_string(id));

    std::cout << "=== Figure 3 / Table 4: IP licensing costs (K$) "
                 "===\n";
    TextTable t(bench::nodeHeaders("IP block"));
    for (nre::IpBlock block : nre::kAllIpBlocks) {
        std::vector<std::string> row{nre::to_string(block)};
        std::vector<double> cost_k;
        for (tech::NodeId id : tech::kAllNodes) {
            const auto c = cat.cost(block, id);
            row.push_back(c ? fixed(*c / 1e3, 1) : "NA");
            cost_k.push_back(c ? *c / 1e3 : std::nan(""));
        }
        t.addRow(row);
        bench::recordRow(std::string("IP cost (K$): ") +
                             nre::to_string(block),
                         node_names, cost_k);
    }
    t.print(std::cout);

    std::cout << "\nPHY cost growth 130nm -> 16nm: DRAM PHY "
              << times(*cat.cost(nre::IpBlock::DramPhy,
                                 tech::NodeId::N16) /
                       *cat.cost(nre::IpBlock::DramPhy,
                                 tech::NodeId::N130))
              << ", PCI-E PHY "
              << times(*cat.cost(nre::IpBlock::PciePhy,
                                 tech::NodeId::N16) /
                       *cat.cost(nre::IpBlock::PciePhy,
                                 tech::NodeId::N130))
              << "\n";
    return 0;
}
