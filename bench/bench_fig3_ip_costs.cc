/**
 * @file
 * Figure 3 / Table 4: IP licensing costs across technology nodes.
 * High-speed PHY blocks (DDR, PCI-E) rise exponentially with node.
 */
#include <iostream>

#include "bench_common.hh"
#include "nre/ip_catalog.hh"

using namespace moonwalk;

int
main()
{
    nre::IpCatalog cat;

    std::cout << "=== Figure 3 / Table 4: IP licensing costs (K$) "
                 "===\n";
    TextTable t(bench::nodeHeaders("IP block"));
    for (nre::IpBlock block : nre::kAllIpBlocks) {
        std::vector<std::string> row{nre::to_string(block)};
        for (tech::NodeId id : tech::kAllNodes) {
            const auto c = cat.cost(block, id);
            row.push_back(c ? fixed(*c / 1e3, 1) : "NA");
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\nPHY cost growth 130nm -> 16nm: DRAM PHY "
              << times(*cat.cost(nre::IpBlock::DramPhy,
                                 tech::NodeId::N16) /
                       *cat.cost(nre::IpBlock::DramPhy,
                                 tech::NodeId::N130))
              << ", PCI-E PHY "
              << times(*cat.cost(nre::IpBlock::PciePhy,
                                 tech::NodeId::N16) /
                       *cat.cost(nre::IpBlock::PciePhy,
                                 tech::NodeId::N130))
              << "\n";
    return 0;
}
