/**
 * @file
 * Figure 7: server-cost component breakdown across technology nodes
 * for the TCO-optimal servers (silicon, package, cooling, power
 * delivery, DRAM, and node-independent system parts).
 */
#include <iostream>

#include "bench_common.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv);
    auto &opt = bench::sharedOptimizer();

    for (const auto &app : apps::allApps()) {
        std::cout << "=== Figure 7: " << app.name()
                  << " server cost breakdown ($) ===\n";
        TextTable t({"Tech", "Silicon", "Package", "Cooling",
                     "PowerDelivery", "DRAM", "System", "Total"});
        std::vector<std::string> nodes;
        std::vector<double> silicon, totals;
        for (const auto &r : opt.sweepNodes(app)) {
            const auto &c = r.optimal.cost_breakdown;
            t.addRow({tech::to_string(r.node), fixed(c.silicon, 0),
                      fixed(c.package, 0), fixed(c.cooling, 0),
                      fixed(c.power_delivery, 0), fixed(c.dram, 0),
                      fixed(c.system, 0), fixed(c.total(), 0)});
            nodes.push_back(tech::to_string(r.node));
            silicon.push_back(c.silicon);
            totals.push_back(c.total());
        }
        t.print(std::cout);
        bench::recordRow(app.name() + ": server cost silicon ($)",
                         nodes, silicon);
        bench::recordRow(app.name() + ": server cost total ($)",
                         nodes, totals);

        // Section 6.3 headline: silicon dominates, system costs stay
        // ~constant.
        const auto &sweep = opt.sweepNodes(app);
        if (!sweep.empty()) {
            const auto &mid = sweep[sweep.size() / 2].optimal;
            std::cout << "silicon share at "
                      << tech::to_string(sweep[sweep.size() / 2].node)
                      << ": "
                      << percent(mid.cost_breakdown.silicon /
                                 mid.cost_breakdown.total())
                      << "\n\n";
        }
    }
    return 0;
}
