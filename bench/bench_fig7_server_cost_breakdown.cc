/**
 * @file
 * Figure 7: server-cost component breakdown across technology nodes
 * for the TCO-optimal servers (silicon, package, cooling, power
 * delivery, DRAM, and node-independent system parts).
 */
#include <iostream>

#include "bench_common.hh"

using namespace moonwalk;

int
main()
{
    auto &opt = bench::sharedOptimizer();

    for (const auto &app : apps::allApps()) {
        std::cout << "=== Figure 7: " << app.name()
                  << " server cost breakdown ($) ===\n";
        TextTable t({"Tech", "Silicon", "Package", "Cooling",
                     "PowerDelivery", "DRAM", "System", "Total"});
        for (const auto &r : opt.sweepNodes(app)) {
            const auto &c = r.optimal.cost_breakdown;
            t.addRow({tech::to_string(r.node), fixed(c.silicon, 0),
                      fixed(c.package, 0), fixed(c.cooling, 0),
                      fixed(c.power_delivery, 0), fixed(c.dram, 0),
                      fixed(c.system, 0), fixed(c.total(), 0)});
        }
        t.print(std::cout);

        // Section 6.3 headline: silicon dominates, system costs stay
        // ~constant.
        const auto &sweep = opt.sweepNodes(app);
        if (!sweep.empty()) {
            const auto &mid = sweep[sweep.size() / 2].optimal;
            std::cout << "silicon share at "
                      << tech::to_string(sweep[sweep.size() / 2].node)
                      << ": "
                      << percent(mid.cost_breakdown.silicon /
                                 mid.cost_breakdown.total())
                      << "\n\n";
        }
    }
    return 0;
}
