/**
 * @file
 * Extension: node selection for emerging planet-scale applications
 * (Section 7.3's researcher scenario) — face recognition and speech
 * recognition accelerators that need both DRAM and PCI-E links.
 * PCI-E IP availability cuts off 250/180nm; the study shows where
 * each node's window lands as demand grows.
 */
#include <cmath>
#include <iostream>

#include "apps/emerging.hh"
#include "bench_common.hh"

using namespace moonwalk;

int
main()
{
    auto &opt = bench::sharedOptimizer();

    for (const auto &app : apps::emergingApps()) {
        const double scale = app.rca.perf_unit_scale;
        std::cout << "=== Emerging app: " << app.name() << " ===\n";
        TextTable t({"Tech", "RCAs/die", "DRAM/die", "Vdd",
                     app.rca.perf_unit, "W", "TCO/unit", "NRE",
                     "gain vs " + app.baseline.hardware});
        const double base = opt.baselineTcoPerOps(app);
        for (const auto &r : opt.sweepNodes(app)) {
            const auto &p = r.optimal;
            t.addRow({tech::to_string(r.node),
                      std::to_string(p.config.rcas_per_die),
                      std::to_string(p.config.drams_per_die),
                      fixed(p.config.vdd, 3),
                      sig(p.perf_ops / scale, 4),
                      fixed(p.wall_power_w, 0),
                      sig(p.tco_per_ops * scale, 4),
                      money(r.nre.total()),
                      times(base / p.tco_per_ops, 3)});
        }
        t.print(std::cout);

        std::cout << "\nOptimal node vs workload scale:\n";
        for (const auto &range : opt.optimalNodeRanges(app)) {
            const std::string who = range.line.node ?
                tech::to_string(*range.line.node) :
                app.baseline.hardware;
            std::cout << "  " << money(range.b_low, 3) << " .. "
                      << (std::isinf(range.b_high) ?
                          std::string("inf") : money(range.b_high, 3))
                      << " : " << who << "\n";
        }
        std::cout << "\n";
    }
    std::cout << "Reading: PCI-E IP does not exist at 250/180nm "
                 "(Table 4), so these apps' menus start at 130nm; "
                 "their DRAM+PHY+PCI-E IP stack makes old-node NRE "
                 "IP-dominated, shrinking the advanced-node premium "
                 "relative to Bitcoin-like apps.\n";
    return 0;
}
