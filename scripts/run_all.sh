#!/usr/bin/env bash
# Build, test, and regenerate every paper table/figure.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo
echo "=== regenerating all tables and figures ==="
for b in build/bench/*; do
    echo
    echo "########## $(basename "$b") ##########"
    "$b"
done
