#include <gtest/gtest.h>

#include "apps/apps.hh"
#include "util/error.hh"

namespace moonwalk::apps {
namespace {

TEST(Apps, FourApplications)
{
    const auto all = allApps();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].name(), "Bitcoin");
    EXPECT_EQ(all[1].name(), "Litecoin");
    EXPECT_EQ(all[2].name(), "Video Transcode");
    EXPECT_EQ(all[3].name(), "Deep Learning");
}

TEST(Apps, LookupByName)
{
    EXPECT_EQ(appByName("Litecoin").rca.gate_count, 96.7e3);
    EXPECT_THROW(appByName("Dogecoin"), ModelError);
}

TEST(Apps, Table5GateCounts)
{
    EXPECT_DOUBLE_EQ(bitcoin().rca.gate_count, 323e3);
    EXPECT_DOUBLE_EQ(litecoin().rca.gate_count, 96.7e3);
    EXPECT_DOUBLE_EQ(videoTranscode().rca.gate_count, 3.56e6);
    EXPECT_DOUBLE_EQ(deepLearning().rca.gate_count, 1.51e6);
}

TEST(Apps, Table5NreParameters)
{
    const auto v = videoTranscode();
    EXPECT_EQ(v.nre.frontend_cad_months, 23);
    EXPECT_EQ(v.nre.frontend_mm, 24);
    EXPECT_EQ(v.nre.cloud_software_mm, 7);
    EXPECT_DOUBLE_EQ(v.nre.pcb_design_cost, 50e3);
    EXPECT_DOUBLE_EQ(v.nre.extra_ip_cost, 200e3);
    const auto b = bitcoin();
    EXPECT_EQ(b.nre.frontend_mm, 9.5);
    EXPECT_DOUBLE_EQ(b.nre.pcb_design_cost, 37e3);
}

TEST(Apps, ApplicationCharacters)
{
    // Section 5.3's one-line characterizations.
    EXPECT_LT(bitcoin().rca.sram_fraction, 0.2);      // logic dense
    EXPECT_GT(litecoin().rca.sram_fraction, 0.5);     // SRAM dense
    EXPECT_GT(videoTranscode().rca.bytes_per_op, 0);  // DRAM bound
    EXPECT_GT(deepLearning().rca.sla_fixed_freq_mhz, 0);  // SLA bound
    EXPECT_TRUE(deepLearning().rca.needs_high_speed_link);
    EXPECT_EQ(deepLearning().rca.server_rca_multiple, 64);
}

TEST(Apps, Table6Baselines)
{
    EXPECT_DOUBLE_EQ(bitcoin().baseline.perf_ops, 0.68e9);
    EXPECT_DOUBLE_EQ(bitcoin().baseline.power_w, 285);
    EXPECT_DOUBLE_EQ(bitcoin().baseline.cost, 400);
    EXPECT_DOUBLE_EQ(videoTranscode().baseline.perf_ops, 1.8);
    EXPECT_DOUBLE_EQ(deepLearning().baseline.cost, 3300);
}

TEST(Apps, PerfAnchorsReproducePaper28nmThroughput)
{
    // Table 7: 72 dies x 769 RCAs x 149 MHz x 1 hash/cycle = 8,245
    // GH/s ~ the paper's 8,223.
    const auto b = bitcoin().rca;
    const double ghs =
        72 * 769 * 149e6 * b.ops_per_cycle / b.perf_unit_scale;
    EXPECT_NEAR(ghs, 8223.0, 0.01 * 8223.0);

    // Table 9: 120 x 910 x 576 MHz / 45,447 cycles = 1,384 MH/s.
    const auto l = litecoin().rca;
    const double mhs =
        120 * 910 * 576e6 * l.ops_per_cycle / l.perf_unit_scale;
    EXPECT_NEAR(mhs, 1384.0, 0.01 * 1384.0);

    // Table 10: 40 x 153 x 429 MHz / 16.63M cycles = 158 Kfps.
    const auto v = videoTranscode().rca;
    const double kfps =
        40 * 153 * 429e6 * v.ops_per_cycle / v.perf_unit_scale;
    EXPECT_NEAR(kfps, 158.0, 0.01 * 158.0);

    // Table 8: 64 x 4 x 606 MHz x 3,030 ops = 470 TOps/s.
    const auto d = deepLearning().rca;
    const double tops =
        64 * 4 * 606e6 * d.ops_per_cycle / d.perf_unit_scale;
    EXPECT_NEAR(tops, 470.0, 0.01 * 470.0);
}

TEST(Apps, UnitScales)
{
    EXPECT_DOUBLE_EQ(bitcoin().rca.perf_unit_scale, 1e9);
    EXPECT_DOUBLE_EQ(litecoin().rca.perf_unit_scale, 1e6);
    EXPECT_DOUBLE_EQ(videoTranscode().rca.perf_unit_scale, 1e3);
    EXPECT_DOUBLE_EQ(deepLearning().rca.perf_unit_scale, 1e12);
}

} // namespace
} // namespace moonwalk::apps
