/**
 * @file
 * Calibration regression tests: evaluating the paper's *published*
 * operating points (Tables 7-10) through the full server model must
 * land on the paper's frequency, throughput and wall power.  These
 * pin the anchor constants in apps.cc and the effective per-node
 * threshold voltages in the tech database; a drive-by change to
 * either breaks these, not just the (flatter) optimizer outputs.
 */
#include <gtest/gtest.h>

#include "apps/apps.hh"
#include "dse/evaluator.hh"
#include "util/math.hh"

namespace moonwalk::apps {
namespace {

using tech::NodeId;

/** One published TCO-optimal operating point. */
struct PaperPoint
{
    const char *app;
    NodeId node;
    int rcas_per_die;
    int dies_per_lane;
    int drams_per_die;
    double vdd;
    double paper_freq_mhz;
    double paper_perf_units;  ///< in the app's display unit
    double paper_wall_w;
    // Tolerances: Bitcoin rows are tight (the per-node delay curves
    // were fitted on them); other apps see their own critical-path
    // curvature and the paper's integer display rounding, so their
    // bands are wider.
    double freq_tol = 0.05;
    double perf_tol = 0.07;
    double power_tol = 0.20;
};

// Rows of Tables 7, 9 and 10 (Deep Learning is voltage-derived, not
// voltage-specified, and is covered separately below).
const PaperPoint kPoints[] = {
    // Bitcoin (Table 7): dies/server 120,120,120,120,120,120,72,48.
    {"Bitcoin", NodeId::N250, 10, 15, 0, 1.081, 37, 42, 1089},
    {"Bitcoin", NodeId::N180, 20, 15, 0, 0.857, 54, 121, 1314},
    {"Bitcoin", NodeId::N130, 39, 15, 0, 0.654, 77, 347, 1509},
    {"Bitcoin", NodeId::N90, 83, 15, 0, 0.563, 93, 914, 1997},
    {"Bitcoin", NodeId::N65, 159, 15, 0, 0.517, 100, 1888, 2541},
    {"Bitcoin", NodeId::N40, 377, 15, 0, 0.433, 121, 5466, 3217},
    {"Bitcoin", NodeId::N28, 769, 9, 0, 0.459, 149, 8223, 3736},
    {"Bitcoin", NodeId::N16, 1818, 6, 0, 0.424, 169, 14687, 3246},
    // Litecoin (Table 9), a sample across the range.  The paper
    // prints "2" MH/s at 250nm, so that row's perf band is wide.
    {"Litecoin", NodeId::N250, 12, 15, 0, 1.845, 78, 2, 516,
     0.15, 0.40, 0.35},
    {"Litecoin", NodeId::N90, 98, 15, 0, 0.924, 239, 62, 1000,
     0.15, 0.20, 0.40},
    {"Litecoin", NodeId::N28, 910, 15, 0, 0.656, 576, 1384, 3662},
    {"Litecoin", NodeId::N16, 2150, 10, 0, 0.594, 776, 2938, 3664,
     0.20, 0.25, 0.35},
    // Video Transcode (Table 10), sample.  The paper's 65nm die is
    // 623mm^2 with 37 RCAs; our S^2-scaled RCA area puts 37 slightly
    // over the reticle, so the row uses 35 (within the perf band).
    // The wide power band reflects the paper's video energy ratios
    // deviating from CV^2 scaling in both directions across nodes
    // (DRAM-generation effects); see EXPERIMENTS.md E11.
    {"Video Transcode", NodeId::N65, 35, 8, 1, 1.015, 215, 30, 1024,
     0.15, 0.20, 0.55},
    {"Video Transcode", NodeId::N28, 153, 5, 6, 0.754, 429, 158, 1633},
};

class PaperOperatingPoints
    : public ::testing::TestWithParam<PaperPoint>
{
  protected:
    dse::ServerEvaluator eval_;
};

TEST_P(PaperOperatingPoints, FrequencyWithinFivePercent)
{
    const auto &c = GetParam();
    const auto app = appByName(c.app);
    const auto &node =
        eval_.scaling().database().node(c.node);
    const double f = eval_.scaling().frequencyMhz(
        node, c.vdd, app.rca.f_nominal_28_mhz);
    EXPECT_LT(moonwalk::relativeError(f, c.paper_freq_mhz),
              c.freq_tol)
        << f << " vs " << c.paper_freq_mhz;
}

TEST_P(PaperOperatingPoints, PointFeasibleAndMatchesPaper)
{
    const auto &c = GetParam();
    const auto app = appByName(c.app);
    arch::ServerConfig cfg;
    cfg.node = c.node;
    cfg.rcas_per_die = c.rcas_per_die;
    cfg.dies_per_lane = c.dies_per_lane;
    cfg.drams_per_die = c.drams_per_die;
    cfg.vdd = c.vdd;

    const auto r = eval_.evaluate(app.rca, cfg);
    ASSERT_TRUE(r.feasible()) << r.infeasible_reason;
    const auto &p = *r.point;

    // Throughput tracks frequency.
    const double perf_units =
        p.perf_ops / app.rca.perf_unit_scale;
    EXPECT_LT(moonwalk::relativeError(perf_units,
                                      c.paper_perf_units), c.perf_tol)
        << perf_units << " vs " << c.paper_perf_units;

    // Wall power band covers PSU/fan/leakage modeling differences.
    EXPECT_LT(moonwalk::relativeError(p.wall_power_w, c.paper_wall_w),
              c.power_tol)
        << p.wall_power_w << " vs " << c.paper_wall_w;
}

INSTANTIATE_TEST_SUITE_P(
    Tables7_9_10, PaperOperatingPoints, ::testing::ValuesIn(kPoints),
    [](const auto &info) {
        std::string name = std::string(info.param.app) + "_" +
            tech::to_string(info.param.node);
        for (auto &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

TEST(DeepLearningCalibration, SlaVoltagesMatchTable8)
{
    // Table 8: 1.285V at 40nm, 0.900V at 28nm, 0.615V at 16nm for
    // the fixed 606 MHz clock.
    dse::ServerEvaluator eval;
    const auto app = deepLearning();
    struct Row { NodeId node; double paper_vdd; double tol; };
    const Row rows[] = {
        {NodeId::N40, 1.285, 0.06},
        {NodeId::N28, 0.900, 0.01},
        {NodeId::N16, 0.615, 0.06},
    };
    for (const auto &row : rows) {
        const auto &node = eval.scaling().database().node(row.node);
        const double v = eval.scaling().voltageForFrequency(
            node, app.rca.sla_fixed_freq_mhz,
            app.rca.f_nominal_28_mhz);
        ASSERT_GT(v, 0.0) << node.name;
        EXPECT_LT(moonwalk::relativeError(v, row.paper_vdd), row.tol)
            << node.name << ": " << v << " vs " << row.paper_vdd;
    }
}

TEST(DeepLearningCalibration, Table8PointReproduces28nm)
{
    dse::ServerEvaluator eval;
    const auto app = deepLearning();
    arch::ServerConfig cfg;
    cfg.node = NodeId::N28;
    cfg.rcas_per_die = 4;   // 2x2
    cfg.dies_per_lane = 8;  // 64 dies/server
    const auto r = eval.evaluate(app.rca, cfg);
    ASSERT_TRUE(r.feasible()) << r.infeasible_reason;
    // Paper: 470 TOps/s, 3,493 W.  Our perf includes the harvested
    // good-RCA fraction (~0.88 for a 64.5mm^2 node at 28nm), which
    // the paper's headline number omits.
    EXPECT_LT(moonwalk::relativeError(r.point->perf_ops / 1e12, 470.0),
              0.15);
    EXPECT_LT(moonwalk::relativeError(r.point->wall_power_w, 3493.0),
              0.20);
}

TEST(EnergyAnchors, WattsPerOpMatchPaperAt28nm)
{
    // W per op/s at the paper's 28nm operating points (Tables 7-10):
    // 0.454 W/GH/s, 2.645 W/MH/s, 10.34 W/Kfps, 7.431 W/TOps/s.
    dse::ServerEvaluator eval;
    struct Row
    {
        const char *app;
        arch::ServerConfig cfg;
        double paper_w_per_unit;
    };
    std::vector<Row> rows;
    rows.push_back({"Bitcoin",
                    {NodeId::N28, 769, 9, 0, 0.459, 0.0}, 0.454});
    rows.push_back({"Litecoin",
                    {NodeId::N28, 910, 15, 0, 0.656, 0.0}, 2.645});
    rows.push_back({"Video Transcode",
                    {NodeId::N28, 153, 5, 6, 0.754, 0.0}, 10.34});
    rows.push_back({"Deep Learning",
                    {NodeId::N28, 4, 8, 0, 0.9, 0.0}, 7.431});
    for (const auto &row : rows) {
        const auto app = appByName(row.app);
        const auto r = eval.evaluate(app.rca, row.cfg);
        ASSERT_TRUE(r.feasible()) << row.app << ": "
                                  << r.infeasible_reason;
        const double w_per_unit =
            r.point->watts_per_ops * app.rca.perf_unit_scale;
        EXPECT_LT(moonwalk::relativeError(w_per_unit,
                                          row.paper_w_per_unit), 0.20)
            << row.app << ": " << w_per_unit << " vs "
            << row.paper_w_per_unit;
    }
}

} // namespace
} // namespace moonwalk::apps
