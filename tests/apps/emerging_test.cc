#include <gtest/gtest.h>

#include "apps/emerging.hh"
#include "core/optimizer.hh"

namespace moonwalk::apps {
namespace {

using tech::NodeId;

class EmergingTest : public ::testing::Test
{
  protected:
    static dse::ExplorerOptions coarse()
    {
        dse::ExplorerOptions o;
        o.voltage_steps = 8;
        o.rca_count_steps = 6;
        o.max_drams_per_die = 6;
        return o;
    }

    core::MoonwalkOptimizer opt_{dse::DesignSpaceExplorer{coarse()}};
};

TEST_F(EmergingTest, TwoApps)
{
    const auto apps = emergingApps();
    ASSERT_EQ(apps.size(), 2u);
    EXPECT_EQ(apps[0].name(), "Face Recognition");
    EXPECT_EQ(apps[1].name(), "Speech Recognition");
}

TEST_F(EmergingTest, PcieNeedExcludesOldestNodes)
{
    // No PCI-E IP exists at 250/180nm (Table 4): the sweep starts at
    // 130nm.
    for (const auto &app : emergingApps()) {
        const auto &sweep = opt_.sweepNodes(app);
        ASSERT_FALSE(sweep.empty()) << app.name();
        EXPECT_EQ(sweep.front().node, NodeId::N130) << app.name();
        EXPECT_EQ(sweep.size(), 6u) << app.name();
    }
}

TEST_F(EmergingTest, NreIncludesPcieAndDramIp)
{
    const auto app = faceRecognition();
    const auto &sweep = opt_.sweepNodes(app);
    for (const auto &r : sweep) {
        // PCI-E ctlr+PHY and DRAM ctlr+PHY are all licensed.
        const auto &cat = opt_.nreModel().ipCatalog();
        const double min_ip =
            *cat.cost(nre::IpBlock::PcieController, r.node) +
            *cat.cost(nre::IpBlock::PciePhy, r.node) +
            *cat.cost(nre::IpBlock::DramController, r.node) +
            *cat.cost(nre::IpBlock::DramPhy, r.node);
        EXPECT_GE(r.nre.ip, min_ip) << tech::to_string(r.node);
    }
}

TEST_F(EmergingTest, AsicBeatsBaselineEverywhere)
{
    for (const auto &app : emergingApps()) {
        const double base = opt_.baselineTcoPerOps(app);
        for (const auto &r : opt_.sweepNodes(app)) {
            EXPECT_LT(r.tcoPerOps(), base / 2.0)
                << app.name() << " " << tech::to_string(r.node);
        }
    }
}

TEST_F(EmergingTest, DramProvisioned)
{
    for (const auto &app : emergingApps()) {
        for (const auto &r : opt_.sweepNodes(app))
            EXPECT_GE(r.optimal.config.drams_per_die, 1)
                << app.name();
    }
}

TEST_F(EmergingTest, NodeRangesExist)
{
    for (const auto &app : emergingApps()) {
        const auto ranges = opt_.optimalNodeRanges(app);
        ASSERT_GE(ranges.size(), 2u) << app.name();
        EXPECT_FALSE(ranges.front().line.node.has_value());
        EXPECT_TRUE(ranges.back().line.node.has_value());
    }
}

} // namespace
} // namespace moonwalk::apps
