#!/usr/bin/env python3
"""End-to-end checks for strict numeric-argument parsing, loud report
write failures, and the persistent disk cache.

Usage: args_check.py <moonwalk-binary> <perf_check-binary>

Covers the regressions this PR pins:
  - `moonwalk select Bitcoin banana` used to run std::atof and
    silently optimize a $0 baseline TCO; now every numeric CLI
    argument is strictly parsed, range-checked, and exits 2 with a
    message naming the bad token.
  - perf_check tolerances (`--rel-tol banana`) used to become 0.0 and
    flip rounding noise into false regressions; now usage errors.
  - `--report-json` to an unwritable path must fail loudly (nonzero
    exit + diagnostic), not pretend success.
  - a warm MOONWALK_CACHE_DIR serves the sweep from disk
    (sweep.diskcache.hits > 0) with byte-identical model sections.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

failures = 0


def run(argv, **kw):
    return subprocess.run(argv, capture_output=True, text=True, **kw)


def check(cond, msg):
    global failures
    if not cond:
        failures += 1
        print("args_check: FAIL:", msg, file=sys.stderr)


def expect_usage_error(argv, token, env=None):
    """argv must exit 2 and name the offending token on stderr."""
    proc = run(argv, env=env)
    check(proc.returncode == 2,
          f"{' '.join(argv[1:])}: expected exit 2, got "
          f"{proc.returncode}")
    check(token in proc.stderr,
          f"{' '.join(argv[1:])}: diagnostic does not name '{token}': "
          f"{proc.stderr.strip()!r}")


def main():
    if len(sys.argv) != 3:
        print("usage: args_check.py <moonwalk> <perf_check>",
              file=sys.stderr)
        return 1
    moonwalk, perf_check = sys.argv[1], sys.argv[2]

    # --- CLI numeric arguments: garbage must be a loud usage error.
    expect_usage_error([moonwalk, "select", "Bitcoin", "banana"],
                       "banana")
    expect_usage_error([moonwalk, "select", "Bitcoin", "30e6x"],
                       "30e6x")  # trailing junk: whole token or bust
    expect_usage_error([moonwalk, "select", "Bitcoin", "0"], "0")
    expect_usage_error([moonwalk, "select", "Bitcoin", "-5"], "-5")
    expect_usage_error([moonwalk, "select", "Bitcoin", "inf"], "inf")
    expect_usage_error([moonwalk, "select", "Bitcoin", "nan"], "nan")
    expect_usage_error([moonwalk, "report", "Bitcoin", "banana"],
                       "banana")
    expect_usage_error([moonwalk, "simulate", "Bitcoin", "1.5"], "1.5")
    expect_usage_error([moonwalk, "simulate", "Bitcoin", "0"], "0")
    expect_usage_error([moonwalk, "provision", "Bitcoin", "lots"],
                       "lots")
    expect_usage_error([moonwalk, "provision", "Bitcoin", "0"], "0")

    # Well-formed numbers (scientific notation included) still work.
    proc = run([moonwalk, "select", "Bitcoin", "30e6"])
    check(proc.returncode == 0,
          f"select Bitcoin 30e6 exited {proc.returncode}: "
          f"{proc.stderr[-500:]}")
    check("build at" in proc.stdout, "select output missing verdict")

    # --- perf_check tolerances: garbage is exit 2, not tolerance 0.
    with tempfile.TemporaryDirectory() as tmp:
        dummy = Path(tmp) / "r.json"
        dummy.write_text("{}")
        d = str(dummy)
        expect_usage_error(
            [perf_check, d, d, "--rel-tol", "banana"], "banana")
        expect_usage_error(
            [perf_check, d, d, "--rel-tol", "1e-9zzz"], "1e-9zzz")
        expect_usage_error(
            [perf_check, d, d, "--rel-tol", "-1"], "-1")
        expect_usage_error(
            [perf_check, d, d, "--wall-tol", "fast"], "fast")
        expect_usage_error(
            [perf_check, d, d, "--metric", "tco=oops"], "oops")

    # --- report writes must fail loudly on an unwritable path.
    proc = run([moonwalk, "version", "--report-json",
                "/dev/null/nodir/report.json"])
    check(proc.returncode != 0,
          "unwritable --report-json exited 0 (silent data loss)")
    check("cannot write run report" in proc.stderr,
          f"missing write diagnostic: {proc.stderr.strip()!r}")

    # --- persistent disk cache: run the same sweep twice against one
    # cache dir; the second run must hit the disk cache and produce
    # byte-identical model rows/outputs.
    with tempfile.TemporaryDirectory() as tmp:
        cache = Path(tmp) / "cache"
        reports = []
        for name in ("cold.json", "warm.json"):
            path = Path(tmp) / name
            proc = run([moonwalk, "sweep", "Bitcoin",
                        "--cache-dir", str(cache),
                        "--report-json", str(path)])
            check(proc.returncode == 0,
                  f"sweep ({name}) exited {proc.returncode}: "
                  f"{proc.stderr[-500:]}")
            reports.append(json.loads(path.read_text()))

        cold, warm = reports
        check(cold["rows"] == warm["rows"],
              "model rows differ between cold and warm cache runs")
        check(cold["outputs"] == warm["outputs"],
              "outputs differ between cold and warm cache runs")
        gauges = warm["perf"]["metrics"]["gauges"]
        check(gauges.get("sweep.diskcache.hits", 0) > 0,
              f"warm run did not hit the disk cache: "
              f"{ {k: v for k, v in gauges.items() if 'diskcache' in k} }")
        cold_gauges = cold["perf"]["metrics"]["gauges"]
        check(cold_gauges.get("sweep.diskcache.inserts", 0) > 0,
              "cold run did not publish disk-cache entries")

    if failures:
        print(f"args_check: {failures} failure(s)", file=sys.stderr)
        return 1
    print("args_check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
