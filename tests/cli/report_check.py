#!/usr/bin/env python3
"""End-to-end check of the CLI run-report artifact and perf_check.

Usage: report_check.py <moonwalk-binary> <perf_check-binary>

Drives `moonwalk sweep Bitcoin --report-json - --metrics`, asserts the
JSON artifact on stdout is well formed (single document: all human
output must have been routed to stderr), then exercises perf_check:
identical reports pass, a perturbed model value fails.
"""

import copy
import json
import math
import subprocess
import sys
import tempfile
from pathlib import Path


def die(msg):
    print("report_check: FAIL:", msg, file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        die(msg)


def main():
    if len(sys.argv) != 3:
        die("usage: report_check.py <moonwalk> <perf_check>")
    moonwalk, perf_check = sys.argv[1], sys.argv[2]

    proc = subprocess.run(
        [moonwalk, "sweep", "Bitcoin", "--report-json", "-",
         "--metrics"],
        capture_output=True, text=True)
    check(proc.returncode == 0,
          f"sweep exited {proc.returncode}: {proc.stderr[-2000:]}")

    # With `--report-json -` the artifact owns stdout; tables and the
    # metrics dump must be on stderr, so stdout parses as one document.
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        die(f"stdout is not a single JSON document: {e}")
    check("Metric" in proc.stderr or "TCO" in proc.stderr,
          "human-readable output missing from stderr")

    check(doc.get("schema_version") == 1, "schema_version != 1")
    check(doc.get("tool") == "moonwalk", "tool != moonwalk")
    check(doc.get("inputs", {}).get("app") == "Bitcoin",
          "inputs.app != Bitcoin")
    check(len(doc.get("rows", [])) > 0, "no model rows")
    for row in doc["rows"]:
        check(len(row["labels"]) == len(row["model"]),
              f"row {row['metric']}: labels/model length mismatch")

    perf = doc.get("perf", {})
    phase_names = {p["name"] for p in perf.get("phases", [])}
    check({"explore", "total"} <= phase_names,
          f"missing phases, got {sorted(phase_names)}")

    metrics = perf.get("metrics", {})
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})

    # Thread-pool instrumentation: counters exist even when zero
    # (steals are legitimately 0 on a single-worker pool).
    for name in ("exec.tasks.submitted", "exec.tasks.stolen"):
        check(name in counters, f"counter {name} missing")
    check(counters["exec.tasks.submitted"] > 0,
          "no tasks were submitted")

    # Cache effectiveness gauges.
    for name in ("dse.sweep_cache.hit_rate", "thermal.cache.hit_rate"):
        check(name in gauges, f"gauge {name} missing")
        check(0.0 <= gauges[name] <= 1.0, f"{name} out of [0,1]")

    # A real sweep rejects far more configs than it accepts.
    rejected = sum(v for k, v in counters.items()
                   if k.startswith("dse.infeasible."))
    check(rejected > 0, "no feasibility rejections recorded")

    # At least one histogram with ordered percentiles.
    check(len(histograms) > 0, "no histograms in snapshot")
    ok_hist = False
    for name, h in histograms.items():
        if h["count"] > 0:
            check(h["p50"] <= h["p90"] <= h["p99"] <= h["max"],
                  f"histogram {name}: percentiles out of order")
            ok_hist = True
    check(ok_hist, "no histogram has samples")

    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp) / "base.json"
        base.write_text(proc.stdout)

        # Identical reports: no regression.
        r = subprocess.run([perf_check, str(base), str(base)],
                           capture_output=True, text=True)
        check(r.returncode == 0,
              f"perf_check self-diff exited {r.returncode}: "
              f"{r.stderr[-2000:]}")

        # Perturb one model value: must be flagged.
        bad_doc = copy.deepcopy(doc)
        row = bad_doc["rows"][0]
        idx = next(i for i, v in enumerate(row["model"])
                   if v is not None and not math.isnan(v))
        row["model"][idx] = row["model"][idx] * 1.5 + 1.0
        bad = Path(tmp) / "bad.json"
        bad.write_text(json.dumps(bad_doc))
        r = subprocess.run([perf_check, str(base), str(bad)],
                           capture_output=True, text=True)
        check(r.returncode != 0,
              "perf_check accepted a perturbed model value")

        # Dropping a row entirely is also a regression.
        short_doc = copy.deepcopy(doc)
        short_doc["rows"] = short_doc["rows"][1:]
        short = Path(tmp) / "short.json"
        short.write_text(json.dumps(short_doc))
        r = subprocess.run([perf_check, str(base), str(short)],
                           capture_output=True, text=True)
        check(r.returncode != 0,
              "perf_check accepted a report with a missing row")

    print("report_check: OK")


if __name__ == "__main__":
    main()
