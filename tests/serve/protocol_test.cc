#include "serve/protocol.hh"

#include <gtest/gtest.h>

#include "apps/apps.hh"
#include "dse/explorer.hh"
#include "obs/metrics.hh"
#include "serve/service.hh"
#include "serve/telemetry.hh"

using moonwalk::Json;
using moonwalk::serve::errorEnvelope;
using moonwalk::serve::okEnvelope;
using moonwalk::serve::optionsProfileKey;
using moonwalk::serve::parseRequest;
using moonwalk::serve::Request;
using moonwalk::serve::RequestError;
using moonwalk::serve::requestKey;

namespace {

Request
mustParse(const std::string &line)
{
    Request request;
    RequestError error;
    EXPECT_TRUE(parseRequest(line, &request, &error))
        << error.reason << ": " << error.message;
    return request;
}

RequestError
mustReject(const std::string &line)
{
    Request request;
    RequestError error;
    EXPECT_FALSE(parseRequest(line, &request, &error)) << line;
    return error;
}

} // namespace

TEST(ServeProtocol, ParsesTheFiveCommands)
{
    EXPECT_EQ(mustParse(R"({"cmd":"ping"})").cmd, "ping");
    EXPECT_EQ(mustParse(R"({"cmd":"stats"})").cmd, "stats");

    const Request explore = mustParse(
        R"({"cmd":"explore","app":"Bitcoin","node":"28nm"})");
    ASSERT_TRUE(explore.app.has_value());
    EXPECT_EQ(explore.app->name(), "Bitcoin");
    ASSERT_TRUE(explore.node.has_value());

    EXPECT_EQ(mustParse(R"({"cmd":"sweep","app":"Bitcoin"})").cmd,
              "sweep");
    const Request report = mustParse(
        R"({"cmd":"report","app":"Bitcoin","tco":30000000})");
    EXPECT_DOUBLE_EQ(report.workload_tco, 30e6);
}

TEST(ServeProtocol, RejectsMalformedRequests)
{
    EXPECT_EQ(mustReject("{not json").reason, "bad_json");
    EXPECT_EQ(mustReject("[1,2,3]").reason, "bad_request");
    EXPECT_EQ(mustReject(R"({"app":"Bitcoin"})").reason,
              "bad_request");  // no cmd
    EXPECT_EQ(mustReject(R"({"cmd":"launch"})").reason,
              "unknown_cmd");
    EXPECT_EQ(mustReject(R"({"cmd":"ping","frobnicate":1})").reason,
              "unknown_field");
    // explore needs both app and node.
    EXPECT_EQ(mustReject(R"({"cmd":"explore","node":"28nm"})").reason,
              "bad_request");
    EXPECT_EQ(
        mustReject(R"({"cmd":"explore","app":"Bitcoin"})").reason,
        "bad_request");
}

TEST(ServeProtocol, UnknownAppAndNodeAre404s)
{
    const RequestError app = mustReject(
        R"({"cmd":"explore","app":"Dogecoin","node":"28nm"})");
    EXPECT_EQ(app.code, 404);
    EXPECT_EQ(app.reason, "unknown_app");

    const RequestError node = mustReject(
        R"({"cmd":"explore","app":"Bitcoin","node":"3nm"})");
    EXPECT_EQ(node.code, 404);
    EXPECT_EQ(node.reason, "unknown_node");
}

TEST(ServeProtocol, ValidatesSweepOptionsStrictly)
{
    const Request r = mustParse(
        R"({"cmd":"sweep","app":"Bitcoin","options":{)"
        R"("voltage_steps":6,"rca_count_steps":8,)"
        R"("max_drams_per_die":2,"dark_fractions":[0.0,0.5]}})");
    EXPECT_EQ(r.options.voltage_steps, 6);
    EXPECT_EQ(r.options.rca_count_steps, 8);
    EXPECT_EQ(r.options.max_drams_per_die, 2);
    ASSERT_EQ(r.options.dark_fractions.size(), 2u);

    EXPECT_EQ(mustReject(R"({"cmd":"sweep","app":"Bitcoin",)"
                         R"("options":{"voltage_steps":1}})")
                  .reason,
              "bad_option");  // below minimum
    EXPECT_EQ(mustReject(R"({"cmd":"sweep","app":"Bitcoin",)"
                         R"("options":{"voltage_steps":6.5}})")
                  .reason,
              "bad_option");  // non-integer
    EXPECT_EQ(mustReject(R"({"cmd":"sweep","app":"Bitcoin",)"
                         R"("options":{"dark_fractions":[2.0]}})")
                  .reason,
              "bad_option");  // out of [0, 0.95]
    EXPECT_EQ(mustReject(R"({"cmd":"sweep","app":"Bitcoin",)"
                         R"("options":{"threads":4}})")
                  .reason,
              "unknown_option");
}

TEST(ServeProtocol, EnvelopesAreSingleLineAndEchoTheId)
{
    const Request with_id = mustParse(R"({"cmd":"ping","id":42})");
    const std::string ok = okEnvelope("{\"pong\":true}", &with_id);
    EXPECT_EQ(ok, R"({"ok":true,"id":42,"result":{"pong":true}})");
    EXPECT_EQ(ok.find('\n'), std::string::npos);

    const RequestError error{429, "overloaded", "retry later"};
    const std::string err = errorEnvelope(error, true, with_id.id);
    EXPECT_NE(err.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(err.find("\"id\":42"), std::string::npos);
    EXPECT_NE(err.find("\"reason\":\"overloaded\""),
              std::string::npos);
    EXPECT_NE(err.find("\"code\":429"), std::string::npos);
    EXPECT_EQ(err.find('\n'), std::string::npos);

    // No id member at all when the request carried none — absent and
    // null are different statements.
    const Request no_id = mustParse(R"({"cmd":"ping"})");
    EXPECT_EQ(okEnvelope("{}", &no_id).find("\"id\""),
              std::string::npos);
}

TEST(ServeTelemetry, PhaseAndCmdNamesAreByteStable)
{
    using moonwalk::serve::cmdLabel;
    using moonwalk::serve::Phase;
    using moonwalk::serve::phaseName;

    // These tokens name histograms and log fields; dashboards and the
    // perf_check baselines depend on them never changing.
    EXPECT_STREQ(phaseName(Phase::Parse), "parse");
    EXPECT_STREQ(phaseName(Phase::Validate), "validate");
    EXPECT_STREQ(phaseName(Phase::Admission), "admission");
    EXPECT_STREQ(phaseName(Phase::FlightWait), "flight_wait");
    EXPECT_STREQ(phaseName(Phase::Compute), "compute");
    EXPECT_STREQ(phaseName(Phase::Serialize), "serialize");
    EXPECT_STREQ(phaseName(Phase::Write), "write");

    EXPECT_STREQ(cmdLabel("ping"), "ping");
    EXPECT_STREQ(cmdLabel("stats"), "stats");
    EXPECT_STREQ(cmdLabel("explore"), "explore");
    EXPECT_STREQ(cmdLabel("sweep"), "sweep");
    EXPECT_STREQ(cmdLabel("report"), "report");
    EXPECT_STREQ(cmdLabel("launch"), "other");
    EXPECT_STREQ(cmdLabel(""), "other");
}

TEST(ServeTelemetry, RequestIdsAreProcessMonotonic)
{
    const auto a = moonwalk::serve::beginRequest("test", 1);
    const auto b = moonwalk::serve::beginRequest("test", 2);
    EXPECT_GT(a.id, 0u);
    EXPECT_EQ(b.id, a.id + 1);
    EXPECT_GE(moonwalk::serve::lastRequestId(), b.id);
}

TEST(ServeTelemetry, StatsReportsUptimeLastIdAndHistograms)
{
    namespace serve = moonwalk::serve;
    moonwalk::obs::setMetricsEnabled(true);
    serve::markServeStart();
    serve::registerServeMetrics();
    const uint64_t floor_id = serve::beginRequest("test", 1).id;

    serve::SweepService service(serve::ServiceOptions{});
    const Request stats = mustParse(R"({"cmd":"stats"})");
    const auto payload = service.handle(stats);
    ASSERT_TRUE(payload);
    const Json j = Json::parse(*payload);

    // Byte-stable field names: clients and the e2e check parse these.
    ASSERT_TRUE(j.contains("uptime_s"));
    EXPECT_GE(j.at("uptime_s").asDouble(), 0.0);
    ASSERT_TRUE(j.contains("requests"));
    ASSERT_TRUE(j.at("requests").contains("last_id"));
    EXPECT_GE(j.at("requests").at("last_id").asDouble(),
              static_cast<double>(floor_id));

    ASSERT_TRUE(j.contains("metrics"));
    ASSERT_TRUE(j.at("metrics").contains("histograms"));
    const Json &histograms = j.at("metrics").at("histograms");
    std::vector<std::string> names;
    for (const char *cmd : serve::kCmdLabels)
        names.push_back(std::string("serve.latency.") + cmd + ".ns");
    for (const auto phase : serve::kAllPhases)
        names.push_back(std::string("serve.phase.") +
                        serve::phaseName(phase) + ".ns");
    for (const auto &name : names) {
        ASSERT_TRUE(histograms.contains(name)) << name;
        const Json &h = histograms.at(name);
        for (const char *field : {"count", "p50", "p90", "p99"})
            EXPECT_TRUE(h.contains(field)) << name << "." << field;
    }
}

TEST(ServeProtocol, ProfileKeySeparatesEveryKnob)
{
    moonwalk::dse::ExplorerOptions base;
    const std::string base_key = optionsProfileKey(base);
    EXPECT_EQ(optionsProfileKey(base), base_key);  // deterministic

    auto variant = base;
    variant.voltage_steps += 1;
    EXPECT_NE(optionsProfileKey(variant), base_key);
    variant = base;
    variant.dark_fractions = {0.25};
    EXPECT_NE(optionsProfileKey(variant), base_key);
}

TEST(ServeProtocol, RequestKeyIsExactOverInputs)
{
    moonwalk::dse::ExplorerOptions options;
    options.voltage_steps = 4;
    options.rca_count_steps = 4;
    options.max_drams_per_die = 1;
    options.dark_fractions = {0.0};
    moonwalk::dse::DesignSpaceExplorer explorer{options};

    const Request a = mustParse(
        R"({"cmd":"explore","app":"Bitcoin","node":"28nm"})");
    const Request b = mustParse(
        R"({"cmd":"explore","app":"Bitcoin","node":"28nm","id":7})");
    // The id routes responses; it is not part of the computation.
    EXPECT_EQ(requestKey(a, explorer), requestKey(b, explorer));

    const Request other_node = mustParse(
        R"({"cmd":"explore","app":"Bitcoin","node":"40nm"})");
    EXPECT_NE(requestKey(other_node, explorer),
              requestKey(a, explorer));
    const Request other_app = mustParse(
        R"({"cmd":"explore","app":"Litecoin","node":"28nm"})");
    EXPECT_NE(requestKey(other_app, explorer),
              requestKey(a, explorer));

    const Request sweep =
        mustParse(R"({"cmd":"sweep","app":"Bitcoin"})");
    EXPECT_NE(requestKey(sweep, explorer), requestKey(a, explorer));
}
