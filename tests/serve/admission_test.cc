#include "serve/admission.hh"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

using moonwalk::serve::AdmissionController;
using moonwalk::serve::AdmitReject;
using moonwalk::serve::ConnectionBudget;

TEST(Admission, GlobalDepthBoundsTotalInflight)
{
    AdmissionController ctl(3, 8);
    ConnectionBudget a, b;
    EXPECT_EQ(ctl.tryAdmit(a), AdmitReject::Admitted);
    EXPECT_EQ(ctl.tryAdmit(a), AdmitReject::Admitted);
    EXPECT_EQ(ctl.tryAdmit(b), AdmitReject::Admitted);
    EXPECT_EQ(ctl.inflight(), 3);
    // Depth exhausted: every connection is refused, even a fresh one.
    ConnectionBudget fresh;
    EXPECT_EQ(ctl.tryAdmit(fresh), AdmitReject::QueueFull);
    EXPECT_EQ(ctl.tryAdmit(a), AdmitReject::QueueFull);

    ctl.release(b);
    EXPECT_EQ(ctl.inflight(), 2);
    EXPECT_EQ(ctl.tryAdmit(fresh), AdmitReject::Admitted);
}

TEST(Admission, PerConnectionCapRejectsOnePipeliningClient)
{
    AdmissionController ctl(8, 2);
    ConnectionBudget greedy, other;
    EXPECT_EQ(ctl.tryAdmit(greedy), AdmitReject::Admitted);
    EXPECT_EQ(ctl.tryAdmit(greedy), AdmitReject::Admitted);
    // The greedy connection is at its cap while the global budget
    // still has room: the rejection names the connection, and other
    // connections are unaffected.
    EXPECT_EQ(ctl.tryAdmit(greedy), AdmitReject::ConnectionLimit);
    EXPECT_EQ(ctl.tryAdmit(other), AdmitReject::Admitted);
    EXPECT_EQ(ctl.inflight(), 3);

    ctl.release(greedy);
    EXPECT_EQ(ctl.tryAdmit(greedy), AdmitReject::Admitted);
}

TEST(Admission, GlobalExhaustionOutranksTheConnectionCap)
{
    // When both limits are hit, the answer is QueueFull: "the server
    // is overloaded" is the actionable signal (retry later); the
    // connection cap would wrongly suggest spreading across sockets.
    AdmissionController ctl(2, 2);
    ConnectionBudget conn;
    EXPECT_EQ(ctl.tryAdmit(conn), AdmitReject::Admitted);
    EXPECT_EQ(ctl.tryAdmit(conn), AdmitReject::Admitted);
    EXPECT_EQ(ctl.tryAdmit(conn), AdmitReject::QueueFull);
}

TEST(Admission, LimitsClampToAtLeastOne)
{
    AdmissionController ctl(0, 0);
    EXPECT_EQ(ctl.queueDepth(), 1);
    EXPECT_EQ(ctl.perConnectionLimit(), 1);
    ConnectionBudget conn;
    EXPECT_EQ(ctl.tryAdmit(conn), AdmitReject::Admitted);
    EXPECT_EQ(ctl.tryAdmit(conn), AdmitReject::QueueFull);
}

TEST(Admission, DrainWaitsForEveryRelease)
{
    AdmissionController ctl(4, 4);
    ConnectionBudget conn;
    ASSERT_EQ(ctl.tryAdmit(conn), AdmitReject::Admitted);
    ASSERT_EQ(ctl.tryAdmit(conn), AdmitReject::Admitted);

    std::atomic<bool> drained{false};
    std::thread drainer([&] {
        ctl.drain();
        drained = true;
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(drained.load());
    ctl.release(conn);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(drained.load());
    ctl.release(conn);
    drainer.join();
    EXPECT_TRUE(drained.load());
    EXPECT_EQ(ctl.inflight(), 0);
}

TEST(Admission, DrainReturnsImmediatelyWhenIdle)
{
    AdmissionController ctl(4, 4);
    ctl.drain();  // must not block
    EXPECT_EQ(ctl.inflight(), 0);
}
