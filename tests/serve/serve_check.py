#!/usr/bin/env python3
"""End-to-end check of `moonwalk serve` over its real TCP socket.

    serve_check.py <moonwalk-binary>

Boots the daemon, then asserts the service contract the header
comments promise:

  1. N concurrent *identical* requests produce byte-identical
     response payloads, serve.singleflight.hits == N-1, and exactly
     one sweep evaluation (one disk-cache insert).
  2. Distinct requests beyond the admission budget fast-fail with a
     structured 429 instead of queueing or crashing.
  3. A pipelining connection beyond its per-connection cap is told
     "connection_limit" while the global budget still has room.
  4. Malformed input gets a structured 400 and the connection stays
     usable.
  5. SIGTERM drains: an in-flight request is still answered, the
     socket then reaches EOF, and the daemon exits with status 0.
  6. Telemetry: every completed request emits one structured access
     line with monotonically increasing ids and an additive phase
     breakdown (sum of phases <= end-to-end); --slow-ms 0 upgrades
     every line to warn, the default leaves them at info; `stats`
     reports uptime_s, requests.last_id, and P50/P90/P99 for every
     serve.latency/serve.phase histogram under byte-stable names.

Exit status: 0 = all checks pass, 1 = a check failed, 2 = usage.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

# Small but non-trivial sweep: big enough that concurrent callers
# genuinely overlap, small enough to keep the test fast.
OPTIONS = {
    "voltage_steps": 6,
    "rca_count_steps": 8,
    "max_drams_per_die": 2,
    "dark_fractions": [0.0],
}

failures = 0


def check(ok, what):
    global failures
    if ok:
        print(f"ok: {what}")
    else:
        failures += 1
        print(f"FAIL: {what}", file=sys.stderr)


def recv_line(sock, deadline_s=120.0):
    """Read one newline-terminated response."""
    sock.settimeout(deadline_s)
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = sock.recv(65536)
        if not chunk:
            raise EOFError("connection closed mid-response")
        buf += chunk
    return buf


def request_raw(port, line, deadline_s=120.0):
    """One request on a fresh connection; returns the raw response."""
    with socket.create_connection(("127.0.0.1", port)) as sock:
        sock.sendall(line.encode() + b"\n")
        return recv_line(sock, deadline_s)


def request(port, obj, deadline_s=120.0):
    return json.loads(request_raw(port, json.dumps(obj), deadline_s))


class Daemon:
    """One `moonwalk serve` process on an ephemeral port."""

    def __init__(self, binary, cache_dir, extra_flags=()):
        self.proc = subprocess.Popen(
            [binary, "serve", "--port", "0",
             "--cache-dir", cache_dir, *extra_flags],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        # The daemon announces its bound port on stdout:
        #   moonwalk: listening on 127.0.0.1:PORT
        line = self.proc.stdout.readline()
        match = re.search(r"listening on [0-9.]+:(\d+)", line)
        if not match:
            self.proc.kill()
            raise RuntimeError(f"no listen line, got: {line!r}")
        self.port = int(match.group(1))

    def stop(self, expect_clean=True):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            rc = self.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
            check(False, "daemon exited within 60s of SIGTERM")
            return
        if expect_clean:
            check(rc == 0, f"daemon exit status 0 (got {rc})")


def stats(port):
    resp = request(port, {"cmd": "stats"})
    assert resp["ok"], resp
    return resp["result"]


def check_singleflight(binary, cache_dir):
    """N identical concurrent requests: one compute, N equal copies."""
    n = 5
    # The handler delay holds the leader open so all N genuinely
    # overlap; queue_depth must be >= N because waiters hold
    # admission slots too (admission runs before single-flight).
    daemon = Daemon(binary, cache_dir,
                    ("--queue-depth", str(n + 2),
                     "--handler-delay-ms", "700"))
    port = daemon.port
    line = json.dumps({
        "cmd": "explore", "app": "Bitcoin", "node": "28nm",
        "options": OPTIONS,
    })

    responses = [None] * n
    def worker(i):
        responses[i] = request_raw(port, line)
    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    check(all(r is not None for r in responses),
          "all concurrent identical requests answered")
    check(len(set(responses)) == 1,
          "identical requests got byte-identical responses")
    first = json.loads(responses[0])
    check(first.get("ok") is True, "exploration succeeded")

    s = stats(port)
    hits = s["singleflight"]["hits"]
    misses = s["singleflight"]["misses"]
    inserts = s["metrics"]["gauges"].get("sweep.diskcache.inserts", 0)
    check(hits == n - 1, f"singleflight hits == {n - 1} (got {hits})")
    check(misses == 1, f"singleflight misses == 1 (got {misses})")
    check(inserts == 1,
          f"exactly one sweep evaluated/inserted (got {inserts})")
    daemon.stop()


def check_overload(binary, cache_dir):
    """Distinct requests beyond the budget fast-fail with 429."""
    depth = 2
    daemon = Daemon(binary, cache_dir,
                    ("--queue-depth", str(depth),
                     "--handler-delay-ms", "1500"))
    port = daemon.port
    nodes = ["90nm", "65nm", "40nm", "28nm", "16nm"]
    responses = [None] * len(nodes)

    def worker(i):
        responses[i] = request(port, {
            "cmd": "explore", "app": "Bitcoin", "node": nodes[i],
            "options": OPTIONS, "id": i,
        })
    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(len(nodes))]
    for t in threads:
        t.start()
        time.sleep(0.1)  # admit in order; rejections are immediate
    for t in threads:
        t.join()

    rejected = [r for r in responses if r and not r["ok"]]
    served = [r for r in responses if r and r["ok"]]
    check(len(rejected) == len(nodes) - depth,
          f"{len(nodes) - depth} requests fast-failed "
          f"(got {len(rejected)})")
    check(all(r["error"]["code"] == 429 and
              r["error"]["reason"] == "overloaded"
              for r in rejected),
          "rejections are structured 429 'overloaded'")
    check(len(served) == depth, f"{depth} requests served")
    # Rejections echo the id, so a pipelining client can tell which
    # request was shed.
    check(all("id" in r for r in rejected), "rejections echo the id")

    # The daemon survived the burst and still answers.
    check(request(port, {"cmd": "ping"})["ok"], "daemon alive after burst")
    daemon.stop()


def check_connection_limit(binary, cache_dir):
    """One pipelining socket beyond its cap: 'connection_limit'."""
    daemon = Daemon(binary, cache_dir,
                    ("--queue-depth", "10",
                     "--max-conn-inflight", "2",
                     "--handler-delay-ms", "1500"))
    port = daemon.port
    with socket.create_connection(("127.0.0.1", port)) as sock:
        for i, node in enumerate(["90nm", "65nm", "40nm"]):
            req = {"cmd": "explore", "app": "Bitcoin", "node": node,
                   "options": OPTIONS, "id": i}
            sock.sendall(json.dumps(req).encode() + b"\n")
            time.sleep(0.1)
        responses = []
        buf = b""
        sock.settimeout(120)
        while len(responses) < 3:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
            while b"\n" in buf:
                line, buf = buf.split(b"\n", 1)
                responses.append(json.loads(line))
    rejected = [r for r in responses if not r["ok"]]
    check(len(rejected) == 1,
          f"third pipelined request rejected (got {len(rejected)})")
    check(rejected and
          rejected[0]["error"]["reason"] == "connection_limit",
          "per-connection rejection says 'connection_limit'")
    daemon.stop()


def check_bad_input(binary, cache_dir):
    """Malformed lines get structured errors; the connection lives."""
    daemon = Daemon(binary, cache_dir)
    port = daemon.port
    with socket.create_connection(("127.0.0.1", port)) as sock:
        sock.sendall(b"this is not json\n")
        bad = json.loads(recv_line(sock))
        check(not bad["ok"] and bad["error"]["code"] == 400 and
              bad["error"]["reason"] == "bad_json",
              "invalid JSON gets a structured 400")
        # Same socket keeps working.
        sock.sendall(b'{"cmd":"ping"}\n')
        check(json.loads(recv_line(sock))["ok"],
              "connection survives a malformed request")

    resp = request(port, {"cmd": "explore", "app": "Dogecoin",
                          "node": "28nm"})
    check(not resp["ok"] and resp["error"]["code"] == 404 and
          resp["error"]["reason"] == "unknown_app",
          "unknown app gets a structured 404")
    daemon.stop()


def check_drain(binary, cache_dir):
    """SIGTERM answers in-flight work, then exits cleanly."""
    daemon = Daemon(binary, cache_dir, ("--handler-delay-ms", "800"))
    port = daemon.port
    with socket.create_connection(("127.0.0.1", port)) as sock:
        req = {"cmd": "explore", "app": "Bitcoin", "node": "28nm",
               "options": OPTIONS}
        sock.sendall(json.dumps(req).encode() + b"\n")
        time.sleep(0.3)  # request is now in flight
        daemon.proc.send_signal(signal.SIGTERM)
        resp = json.loads(recv_line(sock))
        check(resp.get("ok") is True,
              "in-flight request answered after SIGTERM")
        sock.settimeout(30)
        check(sock.recv(100) == b"", "connection EOF after drain")
    daemon.stop()


# One access-log line per completed request, e.g.
#   [warn] serve.access: request id=3 peer=127.0.0.1:5321 cmd=stats
#     outcome=ok status=200 flight=none source=none bytes_in=16
#     bytes_out=2140 slow=true total_ms=0.626 parse_ms=0.004 ...
# The field names and order are a stable contract.
ACCESS_RE = re.compile(
    r"\[(?P<level>warn|info)\] serve\.access: request"
    r" id=(?P<id>\d+) peer=(?P<peer>\S+) cmd=(?P<cmd>\w+)"
    r" outcome=(?P<outcome>\w+) status=(?P<status>\d+)"
    r" flight=(?P<flight>\w+) source=(?P<source>\w+)"
    r" bytes_in=(?P<bytes_in>\d+) bytes_out=(?P<bytes_out>\d+)"
    r" slow=(?P<slow>true|false) total_ms=(?P<total_ms>\d+\.\d{3})"
    r"(?P<phases>( [a-z_]+_ms=\d+\.\d{3})*)$")

PHASE_RE = re.compile(r" ([a-z_]+)_ms=(\d+\.\d{3})")


def access_lines(stderr_text):
    """Parsed access-log records, in emission order."""
    out = []
    for line in stderr_text.splitlines():
        if "serve.access" not in line:
            continue
        match = ACCESS_RE.match(line)
        check(match is not None, f"access line parses: {line!r}")
        if match:
            out.append(match)
    return out


def check_telemetry(binary, cache_dir):
    """Access log, phase additivity, slow upgrade, stats telemetry."""
    daemon = Daemon(binary, cache_dir, ("--slow-ms", "0"))
    port = daemon.port
    check(request(port, {"cmd": "ping"})["ok"], "telemetry: ping ok")
    explore = request(port, {"cmd": "explore", "app": "Bitcoin",
                             "node": "28nm", "options": OPTIONS})
    check(explore["ok"], "telemetry: explore ok")
    s = stats(port)

    # Byte-stable stats fields clients dashboard on.
    check(s.get("uptime_s", -1) >= 0, "stats reports uptime_s >= 0")
    check(s.get("requests", {}).get("last_id") == 3,
          f"stats requests.last_id == 3 "
          f"(got {s.get('requests')})")
    histograms = s["metrics"]["histograms"]
    names = ["serve.latency.%s.ns" % c for c in
             ("ping", "stats", "explore", "sweep", "report", "other")]
    names += ["serve.phase.%s.ns" % p for p in
              ("parse", "validate", "admission", "flight_wait",
               "compute", "serialize", "write")]
    for name in names:
        h = histograms.get(name)
        check(h is not None and
              all(k in h for k in ("count", "p50", "p90", "p99")),
              f"stats histogram {name} has count/p50/p90/p99")
    check(histograms["serve.latency.explore.ns"]["count"] == 1,
          "explore latency histogram counted the one explore")
    check(histograms["serve.latency.sweep.ns"]["count"] == 0,
          "untouched sweep latency histogram is an explicit zero")

    daemon.stop()
    lines = access_lines(daemon.proc.stderr.read())
    check(len(lines) == 3,
          f"one access line per request (got {len(lines)})")
    ids = [int(m.group("id")) for m in lines]
    check(ids == sorted(ids) and len(set(ids)) == len(ids),
          f"request ids strictly increase (got {ids})")
    check(all(m.group("level") == "warn" and m.group("slow") == "true"
              for m in lines),
          "--slow-ms 0 upgrades every request to a slow warn")
    cmds = [m.group("cmd") for m in lines]
    check(cmds == ["ping", "explore", "stats"],
          f"access log covers ping/explore/stats (got {cmds})")
    for m in lines:
        # Phases are disjoint sub-intervals of the request, so their
        # sum must not exceed the end-to-end latency (small slack for
        # the 1 µs-per-field rounding).
        phase_sum = sum(float(v) for _, v in
                        PHASE_RE.findall(m.group("phases")))
        total = float(m.group("total_ms"))
        check(phase_sum <= total * 1.05 + 1.0,
              f"phase breakdown additive for {m.group('cmd')} "
              f"(sum {phase_sum:.3f} <= total {total:.3f})")
    explore_line = lines[1]
    check(explore_line.group("flight") == "leader" and
          explore_line.group("source") in ("computed", "disk", "memo"),
          "explore line records single-flight role and result source")

    # Without --slow-ms, the same traffic logs at info, not slow.
    daemon = Daemon(binary, cache_dir)
    check(request(daemon.port, {"cmd": "ping"})["ok"],
          "telemetry: default-daemon ping ok")
    daemon.stop()
    lines = access_lines(daemon.proc.stderr.read())
    check(len(lines) == 1 and lines[0].group("level") == "info" and
          lines[0].group("slow") == "false",
          "default daemon logs requests at info with slow=false")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    binary = sys.argv[1]
    with tempfile.TemporaryDirectory(prefix="moonwalk-serve-") as tmp:
        # Each check gets its own cache dir: cross-check disk hits
        # would hide the "exactly one evaluation" accounting.
        check_singleflight(binary, os.path.join(tmp, "singleflight"))
        check_overload(binary, os.path.join(tmp, "overload"))
        check_connection_limit(binary,
                               os.path.join(tmp, "connlimit"))
        check_bad_input(binary, os.path.join(tmp, "badinput"))
        check_drain(binary, os.path.join(tmp, "drain"))
        check_telemetry(binary, os.path.join(tmp, "telemetry"))
    if failures:
        print(f"serve_check: {failures} check(s) failed",
              file=sys.stderr)
        return 1
    print("serve_check: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
