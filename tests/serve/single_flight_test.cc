#include "serve/single_flight.hh"

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

using moonwalk::serve::SingleFlight;

TEST(SingleFlight, SequentialCallsEachLead)
{
    SingleFlight<std::string> flight;
    int computes = 0;
    for (int i = 0; i < 3; ++i) {
        bool shared = true;
        auto value = flight.run(
            "k",
            [&] {
                ++computes;
                return std::string("v");
            },
            &shared);
        EXPECT_EQ(*value, "v");
        EXPECT_FALSE(shared);
    }
    // Entries live only while in flight, so sequential calls never
    // dedupe — that is the memo/disk cache's job, not ours.
    EXPECT_EQ(computes, 3);
    EXPECT_EQ(flight.misses(), 3u);
    EXPECT_EQ(flight.hits(), 0u);
    EXPECT_EQ(flight.inflightKeys(), 0u);
}

TEST(SingleFlight, ConcurrentIdenticalKeysShareOneComputation)
{
    constexpr int kCallers = 8;
    SingleFlight<std::string> flight;
    std::atomic<int> computes{0};

    // The leader's compute blocks until every other caller has
    // registered as a waiter (waiters bump hits() before parking), so
    // the dedupe is exercised deterministically, not by racing.
    auto compute = [&] {
        computes.fetch_add(1);
        while (flight.hits() <
               static_cast<uint64_t>(kCallers - 1)) {
            std::this_thread::yield();
        }
        return std::string("result-bytes");
    };

    std::vector<std::shared_ptr<const std::string>> values(kCallers);
    std::vector<char> was_shared(kCallers, 0);
    std::vector<std::thread> threads;
    for (int i = 0; i < kCallers; ++i) {
        threads.emplace_back([&, i] {
            bool shared = false;
            values[i] = flight.run("key", compute, &shared);
            was_shared[i] = shared ? 1 : 0;
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(computes.load(), 1);
    EXPECT_EQ(flight.misses(), 1u);
    EXPECT_EQ(flight.hits(),
              static_cast<uint64_t>(kCallers - 1));
    int leaders = 0;
    for (int i = 0; i < kCallers; ++i) {
        if (!was_shared[i])
            ++leaders;
        ASSERT_NE(values[i], nullptr);
        // The exact same object, not merely equal bytes: waiters
        // receive the leader's shared_ptr.
        EXPECT_EQ(values[i].get(), values[0].get());
    }
    EXPECT_EQ(leaders, 1);
    EXPECT_EQ(flight.inflightKeys(), 0u);
}

TEST(SingleFlight, DistinctKeysComputeIndependently)
{
    SingleFlight<int> flight;
    auto a = flight.run("a", [] { return 1; });
    auto b = flight.run("b", [] { return 2; });
    EXPECT_EQ(*a, 1);
    EXPECT_EQ(*b, 2);
    EXPECT_EQ(flight.misses(), 2u);
    EXPECT_EQ(flight.hits(), 0u);
}

TEST(SingleFlight, LeaderExceptionReachesWaitersThenClears)
{
    SingleFlight<std::string> flight;
    std::atomic<bool> waiter_failed{false};

    auto throwing = [&]() -> std::string {
        while (flight.hits() < 1)
            std::this_thread::yield();
        throw std::runtime_error("sweep exploded");
    };

    std::thread leader([&] {
        EXPECT_THROW(flight.run("k", throwing), std::runtime_error);
    });
    std::thread waiter([&] {
        try {
            flight.run("k", throwing);
        } catch (const std::runtime_error &) {
            waiter_failed = true;
        }
    });
    leader.join();
    waiter.join();
    EXPECT_TRUE(waiter_failed.load());

    // The failed key was unpublished, so a retry computes afresh
    // instead of inheriting the stale exception.
    auto value = flight.run("k", [] { return std::string("ok"); });
    EXPECT_EQ(*value, "ok");
    EXPECT_EQ(flight.inflightKeys(), 0u);
}
