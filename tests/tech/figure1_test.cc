/**
 * @file
 * Reproduces the cross-node ranges the paper quotes for Figure 1
 * (Section 2): "The space from 250nm to 16nm spans a 89x range in mask
 * cost, a 152x range in energy/op, a 28x range in cost per op/s (558x
 * for non-power density limited designs), a 256x range in maximum
 * accelerator size in transistors, and a 15.5x range in maximum
 * transistor frequency."
 */
#include <gtest/gtest.h>

#include "tech/scaling.hh"

namespace moonwalk::tech {
namespace {

class Figure1 : public ::testing::Test
{
  protected:
    ScalingModel model_;

    double range(double (ScalingModel::*fn)(NodeId) const) const
    {
        const double a = (model_.*fn)(NodeId::N250);
        const double b = (model_.*fn)(NodeId::N16);
        return a > b ? a / b : b / a;
    }
};

TEST_F(Figure1, MaskCostRange89x)
{
    EXPECT_NEAR(range(&ScalingModel::maskCostNorm), 5.70e6 / 65e3,
                1e-9);  // 87.7x, the paper rounds to 89x
    EXPECT_NEAR(range(&ScalingModel::maskCostNorm), 89.0, 2.0);
}

TEST_F(Figure1, EnergyPerOpRange152x)
{
    EXPECT_NEAR(range(&ScalingModel::energyPerOpNorm), 152.0, 2.0);
}

TEST_F(Figure1, CostPerOpsRange558xUnlimited)
{
    EXPECT_NEAR(range(&ScalingModel::costPerOpsNormUnlimited), 558.0,
                10.0);
}

TEST_F(Figure1, CostPerOpsRange28xPowerLimited)
{
    EXPECT_NEAR(range(&ScalingModel::costPerOpsNormPowerLimited), 28.0,
                2.0);
}

TEST_F(Figure1, MaxTransistorsRange256x)
{
    // Pure S^2 density scaling gives (250/16)^2 = 244x; the paper's
    // figure annotates 256x.
    EXPECT_NEAR(range(&ScalingModel::maxTransistorsNorm), 256.0, 15.0);
}

TEST_F(Figure1, FrequencyRange15p5x)
{
    EXPECT_NEAR(range(&ScalingModel::frequencyNorm), 15.5, 0.2);
}

TEST_F(Figure1, PowerLimitedCurveMatchesUnlimitedThrough90nm)
{
    for (NodeId id : {NodeId::N250, NodeId::N180, NodeId::N130,
                      NodeId::N90}) {
        EXPECT_DOUBLE_EQ(model_.costPerOpsNormUnlimited(id),
                         model_.costPerOpsNormPowerLimited(id))
            << to_string(id);
    }
}

TEST_F(Figure1, TwentyEightHasWorseCostPerOpsThan40PowerLimited)
{
    // Section 2: "28nm has higher $ per op/s than 40nm because wafer
    // cost rises faster than usable compute density improves."
    EXPECT_GT(model_.costPerOpsNormPowerLimited(NodeId::N28),
              model_.costPerOpsNormPowerLimited(NodeId::N40));
}

TEST_F(Figure1, EnergyImprovementSlowsAfter90nm)
{
    // Dennard-era steps improve energy/op much faster than
    // post-Dennard steps of similar S.
    const double pre = model_.energyPerOpNorm(NodeId::N130) /
        model_.energyPerOpNorm(NodeId::N90);
    const double post = model_.energyPerOpNorm(NodeId::N40) /
        model_.energyPerOpNorm(NodeId::N28);
    EXPECT_GT(pre, post);
}

TEST_F(Figure1, DennardDottedLineBeatsRealEnergyAfter90nm)
{
    for (NodeId id : {NodeId::N65, NodeId::N40, NodeId::N28,
                      NodeId::N16}) {
        EXPECT_LT(model_.energyPerOpDennardNorm(id),
                  model_.energyPerOpNorm(id))
            << to_string(id);
    }
}

TEST_F(Figure1, AllSeriesNormalizedTo250nm)
{
    EXPECT_DOUBLE_EQ(model_.maskCostNorm(NodeId::N250), 1.0);
    EXPECT_DOUBLE_EQ(model_.energyPerOpNorm(NodeId::N250), 1.0);
    EXPECT_DOUBLE_EQ(model_.costPerOpsNormUnlimited(NodeId::N250), 1.0);
    EXPECT_DOUBLE_EQ(model_.maxTransistorsNorm(NodeId::N250), 1.0);
    EXPECT_DOUBLE_EQ(model_.frequencyNorm(NodeId::N250), 1.0);
}

TEST_F(Figure1, MonotonicSeries)
{
    for (int i = 1; i < kNumNodes; ++i) {
        const NodeId prev = kAllNodes[i - 1];
        const NodeId cur = kAllNodes[i];
        EXPECT_GT(model_.maskCostNorm(cur), model_.maskCostNorm(prev));
        EXPECT_LT(model_.energyPerOpNorm(cur),
                  model_.energyPerOpNorm(prev));
        EXPECT_GT(model_.maxTransistorsNorm(cur),
                  model_.maxTransistorsNorm(prev));
        EXPECT_GT(model_.frequencyNorm(cur),
                  model_.frequencyNorm(prev));
        EXPECT_LT(model_.costPerOpsNormUnlimited(cur),
                  model_.costPerOpsNormUnlimited(prev));
    }
}

} // namespace
} // namespace moonwalk::tech
