#include <gtest/gtest.h>

#include "tech/scaling.hh"

namespace moonwalk::tech {
namespace {

class ScalingTest : public ::testing::Test
{
  protected:
    ScalingModel model_;
};

TEST_F(ScalingTest, FrequencyAtReferencePointIsAnchor)
{
    const auto &n28 = model_.database().node(NodeId::N28);
    EXPECT_NEAR(model_.frequencyMhz(n28, 0.9, 427.0), 427.0, 1e-9);
}

TEST_F(ScalingTest, FrequencyScalesWithNodeAtNominal)
{
    const auto &n16 = model_.database().node(NodeId::N16);
    // At 16nm nominal voltage, frequency is freq_factor (1.75x) of
    // the 28nm anchor.
    EXPECT_NEAR(model_.frequencyMhz(n16, n16.vdd_nominal, 400.0),
                700.0, 1e-9);
}

TEST_F(ScalingTest, FrequencyMonotonicInVoltage)
{
    const auto &n = model_.database().node(NodeId::N65);
    double prev = 0.0;
    for (double v = n.vdd_min; v <= n.vddMax(); v += 0.01) {
        const double f = model_.frequencyMhz(n, v, 500.0);
        EXPECT_GT(f, prev) << "at " << v << "V";
        prev = f;
    }
}

TEST_F(ScalingTest, FrequencyZeroAtThreshold)
{
    const auto &n = model_.database().node(NodeId::N28);
    EXPECT_EQ(model_.frequencyMhz(n, n.vth, 400.0), 0.0);
    EXPECT_EQ(model_.frequencyMhz(n, n.vth - 0.1, 400.0), 0.0);
}

TEST_F(ScalingTest, VoltageForFrequencyInvertsModel)
{
    const auto &n = model_.database().node(NodeId::N40);
    const double target = 606.0;
    const double v = model_.voltageForFrequency(n, target, 606.0);
    ASSERT_GT(v, 0.0);
    EXPECT_NEAR(model_.frequencyMhz(n, v, 606.0), target,
                target * 1e-6);
    // 40nm must overdrive above nominal to hold a 28nm-nominal clock
    // (Table 8: 1.285V at 40nm).
    EXPECT_GT(v, n.vdd_nominal);
}

TEST_F(ScalingTest, VoltageForFrequencyUnreachable)
{
    const auto &n65 = model_.database().node(NodeId::N65);
    // 65nm cannot reach the Deep Learning SLA clock even at max
    // voltage: this is what restricts DL to >= 40nm (Section 6.1).
    EXPECT_LT(model_.voltageForFrequency(n65, 606.0, 606.0), 0.0);
}

TEST_F(ScalingTest, EnergyQuadraticInVoltage)
{
    const auto &n = model_.database().node(NodeId::N28);
    const double e_half = model_.energyPerOpJ(n, 0.45, 1e-9);
    const double e_full = model_.energyPerOpJ(n, 0.9, 1e-9);
    EXPECT_NEAR(e_full / e_half, 4.0, 1e-9);
}

TEST_F(ScalingTest, EnergyScalesWithCapacitanceAcrossNodes)
{
    const auto &n65 = model_.database().node(NodeId::N65);
    // At the same voltage, 65nm energy/op is cap_factor (65/28)x the
    // 28nm anchor.
    EXPECT_NEAR(model_.energyPerOpJ(n65, 0.9, 1e-9),
                1e-9 * 65.0 / 28.0, 1e-15);
}

TEST_F(ScalingTest, LeakageGrowsWithAreaAndVoltage)
{
    const auto &n = model_.database().node(NodeId::N28);
    const double l1 = model_.leakagePowerW(n, 0.9, 100.0);
    const double l2 = model_.leakagePowerW(n, 0.9, 200.0);
    const double l3 = model_.leakagePowerW(n, 0.45, 200.0);
    EXPECT_NEAR(l2, 2.0 * l1, 1e-12);
    EXPECT_LT(l3, l2);
}

// -- Parameterized monotonicity sweep over all nodes -------------------

class ScalingAllNodes : public ::testing::TestWithParam<NodeId>
{
  protected:
    ScalingModel model_;
};

TEST_P(ScalingAllNodes, SpeedTermPositiveAboveVddMin)
{
    const auto &n = model_.database().node(GetParam());
    EXPECT_GT(model_.speedTerm(n, n.vdd_min), 0.0);
    EXPECT_GT(model_.speedTerm(n, n.vdd_nominal), 0.0);
}

TEST_P(ScalingAllNodes, EnergyPositiveAndFiniteOverVoltageRange)
{
    const auto &n = model_.database().node(GetParam());
    for (double v = n.vdd_min; v <= n.vddMax(); v += 0.05) {
        const double e = model_.energyPerOpJ(n, v, 1e-9);
        EXPECT_GT(e, 0.0);
        EXPECT_LT(e, 1e-6);
    }
}

TEST_P(ScalingAllNodes, VoltageForFrequencyRoundTrips)
{
    const auto &n = model_.database().node(GetParam());
    const double f_mid =
        0.5 * model_.frequencyMhz(n, n.vdd_nominal, 500.0);
    const double v = model_.voltageForFrequency(n, f_mid, 500.0);
    ASSERT_GT(v, 0.0);
    EXPECT_NEAR(model_.frequencyMhz(n, v, 500.0), f_mid, f_mid * 1e-5);
}

INSTANTIATE_TEST_SUITE_P(AllNodes, ScalingAllNodes,
                         ::testing::ValuesIn(kAllNodes),
                         [](const auto &info) {
                             return to_string(info.param);
                         });

} // namespace
} // namespace moonwalk::tech
