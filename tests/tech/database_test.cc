#include <gtest/gtest.h>

#include "tech/database.hh"
#include "util/error.hh"

namespace moonwalk::tech {
namespace {

TEST(TechDatabase, HasAllEightNodes)
{
    const auto &db = defaultTechDatabase();
    EXPECT_EQ(db.nodes().size(), 8u);
    for (NodeId id : kAllNodes)
        EXPECT_EQ(db.node(id).id, id);
}

TEST(TechDatabase, Table1MaskCosts)
{
    const auto &db = defaultTechDatabase();
    EXPECT_DOUBLE_EQ(db.node(NodeId::N250).mask_cost, 65e3);
    EXPECT_DOUBLE_EQ(db.node(NodeId::N180).mask_cost, 105e3);
    EXPECT_DOUBLE_EQ(db.node(NodeId::N130).mask_cost, 290e3);
    EXPECT_DOUBLE_EQ(db.node(NodeId::N90).mask_cost, 560e3);
    EXPECT_DOUBLE_EQ(db.node(NodeId::N65).mask_cost, 700e3);
    EXPECT_DOUBLE_EQ(db.node(NodeId::N40).mask_cost, 1.25e6);
    EXPECT_DOUBLE_EQ(db.node(NodeId::N28).mask_cost, 2.25e6);
    EXPECT_DOUBLE_EQ(db.node(NodeId::N16).mask_cost, 5.70e6);
}

TEST(TechDatabase, Table1WaferCosts)
{
    const auto &db = defaultTechDatabase();
    EXPECT_DOUBLE_EQ(db.node(NodeId::N250).wafer_cost, 720);
    EXPECT_DOUBLE_EQ(db.node(NodeId::N65).wafer_cost, 3300);
    EXPECT_DOUBLE_EQ(db.node(NodeId::N16).wafer_cost, 11100);
    // 200mm wafers for the two oldest nodes only.
    EXPECT_DOUBLE_EQ(db.node(NodeId::N250).wafer_diameter_mm, 200);
    EXPECT_DOUBLE_EQ(db.node(NodeId::N180).wafer_diameter_mm, 200);
    EXPECT_DOUBLE_EQ(db.node(NodeId::N130).wafer_diameter_mm, 300);
}

TEST(TechDatabase, Table2NominalVdd)
{
    const auto &db = defaultTechDatabase();
    const double expected[] = {2.5, 1.8, 1.2, 1.0, 1.0, 0.9, 0.9, 0.8};
    for (NodeId id : kAllNodes) {
        EXPECT_DOUBLE_EQ(db.node(id).vdd_nominal,
                         expected[nodeIndex(id)])
            << to_string(id);
    }
}

TEST(TechDatabase, BackendCostPerGateJumpsAt16nm)
{
    const auto &db = defaultTechDatabase();
    // Double patterning doubles backend cost per gate (Table 1).
    EXPECT_GT(db.node(NodeId::N16).backend_cost_per_gate,
              1.9 * db.node(NodeId::N28).backend_cost_per_gate);
}

TEST(TechDatabase, MetalLayers)
{
    const auto &db = defaultTechDatabase();
    EXPECT_EQ(db.node(NodeId::N250).metal_layers, 5);
    EXPECT_EQ(db.node(NodeId::N180).metal_layers, 6);
    EXPECT_EQ(db.node(NodeId::N130).metal_layers, 9);
    EXPECT_EQ(db.node(NodeId::N16).metal_layers, 9);
}

TEST(TechDatabase, ScalingFactorBetweenNodes)
{
    const auto &db = defaultTechDatabase();
    EXPECT_NEAR(db.scalingFactor(NodeId::N180, NodeId::N130),
                180.0 / 130.0, 1e-12);
    // The paper calls out the wide 28 -> 16 step (S = 1.75).
    EXPECT_NEAR(db.scalingFactor(NodeId::N28, NodeId::N16), 1.75,
                1e-12);
}

TEST(TechDatabase, NodeByFeature)
{
    const auto &db = defaultTechDatabase();
    EXPECT_EQ(db.nodeByFeature(65).id, NodeId::N65);
    EXPECT_THROW(db.nodeByFeature(45), ModelError);
}

TEST(TechDatabase, VddRangeOrdering)
{
    const auto &db = defaultTechDatabase();
    for (const auto &n : db.nodes()) {
        EXPECT_LT(n.vth, n.vdd_min) << n.name;
        EXPECT_LT(n.vdd_min, n.vdd_nominal) << n.name;
        EXPECT_NEAR(n.vddMax(), 1.5 * n.vdd_nominal, 1e-12) << n.name;
    }
}

TEST(TechDatabase, DramGenerations)
{
    const auto &db = defaultTechDatabase();
    EXPECT_EQ(db.node(NodeId::N250).dram_generation,
              DramGeneration::SDR);
    EXPECT_EQ(db.node(NodeId::N180).dram_generation,
              DramGeneration::SDR);
    EXPECT_EQ(db.node(NodeId::N90).dram_generation,
              DramGeneration::DDR);
    EXPECT_EQ(db.node(NodeId::N65).dram_generation,
              DramGeneration::LPDDR3);
}

TEST(TechDatabase, GrossDiesPerWafer)
{
    const auto &db = defaultTechDatabase();
    // A 540mm^2 die on a 300mm wafer: ~102 gross dies.
    const double gross =
        db.node(NodeId::N28).grossDiesPerWafer(540.0);
    EXPECT_GT(gross, 90.0);
    EXPECT_LT(gross, 115.0);
    // A die larger than the wafer yields zero.
    EXPECT_EQ(db.node(NodeId::N28).grossDiesPerWafer(1e6), 0.0);
    EXPECT_THROW(db.node(NodeId::N28).grossDiesPerWafer(-1.0),
                 ModelError);
}

TEST(TechDatabase, ScalingFactorsFollowFeatureWidth)
{
    const auto &db = defaultTechDatabase();
    for (const auto &n : db.nodes()) {
        const double s = 28.0 / n.feature_nm;
        EXPECT_NEAR(n.density_factor, s * s, 1e-12) << n.name;
        EXPECT_NEAR(n.freq_factor, s, 1e-12) << n.name;
        EXPECT_NEAR(n.cap_factor, 1.0 / s, 1e-12) << n.name;
    }
}

} // namespace
} // namespace moonwalk::tech
