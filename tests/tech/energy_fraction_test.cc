/**
 * @file
 * Energy-scaling-fraction behavior: the share of an accelerator's
 * energy that does not scale with node capacitance (eDRAM, I/O
 * drivers) compresses cross-node energy ratios in both directions.
 */
#include <gtest/gtest.h>

#include "tech/scaling.hh"

namespace moonwalk::tech {
namespace {

class EnergyFraction : public ::testing::Test
{
  protected:
    ScalingModel model_;
};

TEST_F(EnergyFraction, FullScalingMatchesDefault)
{
    const auto &n = model_.database().node(NodeId::N65);
    EXPECT_DOUBLE_EQ(model_.energyPerOpJ(n, 0.9, 1e-9),
                     model_.energyPerOpJ(n, 0.9, 1e-9, 1.0));
}

TEST_F(EnergyFraction, AnchorNodeUnaffected)
{
    // At 28nm (cap_factor == 1) the fraction is irrelevant.
    const auto &n28 = model_.database().node(NodeId::N28);
    for (double fs : {0.0, 0.5, 1.0}) {
        EXPECT_DOUBLE_EQ(model_.energyPerOpJ(n28, 0.7, 1e-9, fs),
                         model_.energyPerOpJ(n28, 0.7, 1e-9, 1.0));
    }
}

TEST_F(EnergyFraction, CompressesRatiosBothDirections)
{
    const auto &n250 = model_.database().node(NodeId::N250);
    const auto &n16 = model_.database().node(NodeId::N16);
    // Old node: partial scaling means *less* energy than pure CV^2.
    EXPECT_LT(model_.energyPerOpJ(n250, 0.9, 1e-9, 0.8),
              model_.energyPerOpJ(n250, 0.9, 1e-9, 1.0));
    // New node: partial scaling means *more* energy than pure CV^2.
    EXPECT_GT(model_.energyPerOpJ(n16, 0.9, 1e-9, 0.8),
              model_.energyPerOpJ(n16, 0.9, 1e-9, 1.0));
}

TEST_F(EnergyFraction, ZeroFractionIsVoltageOnly)
{
    // fs = 0: energy depends on voltage alone, identical across
    // nodes.
    const auto &n250 = model_.database().node(NodeId::N250);
    const auto &n16 = model_.database().node(NodeId::N16);
    EXPECT_DOUBLE_EQ(model_.energyPerOpJ(n250, 0.8, 1e-9, 0.0),
                     model_.energyPerOpJ(n16, 0.8, 1e-9, 0.0));
}

TEST_F(EnergyFraction, InterpolatesLinearly)
{
    const auto &n = model_.database().node(NodeId::N65);
    const double e0 = model_.energyPerOpJ(n, 0.9, 1e-9, 0.0);
    const double e1 = model_.energyPerOpJ(n, 0.9, 1e-9, 1.0);
    const double eh = model_.energyPerOpJ(n, 0.9, 1e-9, 0.5);
    EXPECT_NEAR(eh, 0.5 * (e0 + e1), 1e-18);
}

} // namespace
} // namespace moonwalk::tech
