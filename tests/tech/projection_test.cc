#include <gtest/gtest.h>

#include "nre/ip_catalog.hh"
#include "tech/projection.hh"
#include "util/error.hh"

namespace moonwalk::tech {
namespace {

TEST(Projection, TrendsContinueMonotonically)
{
    const auto &n16 = defaultTechDatabase().node(NodeId::N16);
    const auto n10 = projectNode(10.0);
    const auto n7 = projectNode(7.0);

    EXPECT_GT(n10.mask_cost, n16.mask_cost);
    EXPECT_GT(n7.mask_cost, n10.mask_cost);
    EXPECT_GT(n10.wafer_cost, n16.wafer_cost);
    EXPECT_GT(n7.wafer_cost, n10.wafer_cost);
    EXPECT_LT(n10.vdd_nominal, n16.vdd_nominal);
    EXPECT_LT(n7.vdd_nominal, n10.vdd_nominal);
    EXPECT_GT(n10.vth, n16.vth);
    EXPECT_GT(n10.backend_cost_per_gate, n16.backend_cost_per_gate);
}

TEST(Projection, PlausibleSevenNmMaskSet)
{
    // Industry quotes for 7nm mask sets run $15-30M.
    const auto n7 = projectNode(7.0);
    EXPECT_GT(n7.mask_cost, 12e6);
    EXPECT_LT(n7.mask_cost, 35e6);
}

TEST(Projection, ScalingFactorsFollowS)
{
    const auto n10 = projectNode(10.0);
    const double s = 2.8;
    EXPECT_NEAR(n10.density_factor, s * s, 1e-12);
    EXPECT_NEAR(n10.freq_factor, s, 1e-12);
    EXPECT_NEAR(n10.cap_factor, 1.0 / s, 1e-12);
    EXPECT_NE(n10.name.find("projected"), std::string::npos);
}

TEST(Projection, VoltageOrderingPreserved)
{
    const auto n7 = projectNode(7.0);
    EXPECT_LT(n7.vth, n7.vdd_min);
    EXPECT_LT(n7.vdd_min, n7.vdd_nominal);
}

TEST(Projection, RejectsNonsenseTargets)
{
    EXPECT_THROW(projectNode(16.0), ModelError);
    EXPECT_THROW(projectNode(28.0), ModelError);
    EXPECT_THROW(projectNode(1.0), ModelError);
}

TEST(Projection, IpCostsExtrapolate)
{
    using nre::IpBlock;
    // PHYs keep climbing.
    const double phy16 = 750e3;
    EXPECT_GT(nre::projectedIpCost(IpBlock::DramPhy, 10.0), phy16);
    EXPECT_GT(nre::projectedIpCost(IpBlock::PciePhy, 7.0),
              nre::projectedIpCost(IpBlock::PciePhy, 10.0));
    // Flat-priced blocks stay flat.
    EXPECT_DOUBLE_EQ(
        nre::projectedIpCost(IpBlock::DramController, 7.0), 125e3);
    EXPECT_DOUBLE_EQ(
        nre::projectedIpCost(IpBlock::StdCellsSram, 10.0), 100e3);
    EXPECT_THROW(nre::projectedIpCost(IpBlock::DramPhy, 20.0),
                 ModelError);
}

} // namespace
} // namespace moonwalk::tech
