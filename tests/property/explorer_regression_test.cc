/**
 * @file
 * Seed-pinned regressions for the three explorer hot-path bugs this
 * harness was built to catch, kept in tier-1 so they fail fast and in
 * isolation (the property battery in check_property_test.cc would
 * also catch them, but via a randomized seed):
 *
 *  1. sweepKey() omitted EvaluatorOptions, so two explorers with
 *     different lane policies sharing a cache served each other's
 *     results.
 *  2. The local-refinement loop re-swept RCA counts already on the
 *     coarse grid, emitting duplicate DesignPoints.
 *  3. ExplorationResult::evaluated omitted the feasibility-bisection
 *     probes of maxFeasibleVoltage().
 *
 * Plus the cache-transparency guarantee: cache_sweeps on/off and
 * warm/cold reads return identical results.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <tuple>

#include "apps/apps.hh"
#include "dse/explorer.hh"
#include "tech/database.hh"

using namespace moonwalk;

namespace {

/** Small, fast sweep options shared by these tests. */
dse::ExplorerOptions smallSweep()
{
    dse::ExplorerOptions o;
    o.voltage_steps = 5;
    o.rca_count_steps = 6;
    o.max_drams_per_die = 1;
    o.dark_fractions = {0.0};
    o.max_threads = 1;
    return o;
}

dse::ServerEvaluator evaluatorWith(dse::EvaluatorOptions eo)
{
    return dse::ServerEvaluator(tech::defaultTechDatabase(), {}, {}, {},
                                eo);
}

/** Exact (bitwise) equality of two exploration results. */
void expectIdenticalResults(const dse::ExplorationResult &a,
                            const dse::ExplorationResult &b)
{
    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.feasible, b.feasible);
    ASSERT_EQ(a.pareto.size(), b.pareto.size());
    for (size_t i = 0; i < a.pareto.size(); ++i) {
        const auto &pa = a.pareto[i];
        const auto &pb = b.pareto[i];
        EXPECT_EQ(pa.config.rcas_per_die, pb.config.rcas_per_die);
        EXPECT_EQ(pa.config.dies_per_lane, pb.config.dies_per_lane);
        EXPECT_EQ(pa.config.drams_per_die, pb.config.drams_per_die);
        EXPECT_EQ(pa.config.vdd, pb.config.vdd);
        EXPECT_EQ(pa.cost_per_ops, pb.cost_per_ops);
        EXPECT_EQ(pa.watts_per_ops, pb.watts_per_ops);
        EXPECT_EQ(pa.tco_per_ops, pb.tco_per_ops);
    }
    ASSERT_EQ(a.tco_optimal.has_value(), b.tco_optimal.has_value());
    if (a.tco_optimal)
        EXPECT_EQ(a.tco_optimal->tco_per_ops,
                  b.tco_optimal->tco_per_ops);
}

// -- Bug 1: cache key must cover every result-distinguishing knob ------

TEST(SweepKeyRegression, EncodesEvaluatorOptions)
{
    const auto rca = apps::bitcoin().rca;
    const auto opts = smallSweep();
    dse::DesignSpaceExplorer base{opts, evaluatorWith({})};
    const auto base_key = base.sweepKey(rca, tech::NodeId::N28);

    // Same options => same key (the key is deterministic).
    dse::DesignSpaceExplorer same{opts, evaluatorWith({})};
    EXPECT_EQ(same.sweepKey(rca, tech::NodeId::N28), base_key);

    // A different lane cap changes which dies_per_lane values the
    // sweep may visit, so it must change the key.
    dse::EvaluatorOptions cap;
    cap.max_dies_per_lane = 4;
    dse::DesignSpaceExplorer capped{opts, evaluatorWith(cap)};
    EXPECT_NE(capped.sweepKey(rca, tech::NodeId::N28), base_key);

    // Board margin changes lane geometry and thermals.
    dse::EvaluatorOptions margin;
    margin.die_board_margin_mm = 3.5;
    dse::DesignSpaceExplorer margined{opts, evaluatorWith(margin)};
    EXPECT_NE(margined.sweepKey(rca, tech::NodeId::N28), base_key);
}

TEST(SweepKeyRegression, EncodesKeepFeasiblePoints)
{
    // keep_feasible_points changes the result payload (all_feasible),
    // so a cached slim result must not satisfy a keeping request.
    const auto rca = apps::bitcoin().rca;
    auto opts = smallSweep();
    dse::DesignSpaceExplorer slim{opts, evaluatorWith({})};
    opts.keep_feasible_points = true;
    dse::DesignSpaceExplorer keeping{opts, evaluatorWith({})};
    EXPECT_NE(slim.sweepKey(rca, tech::NodeId::N28),
              keeping.sweepKey(rca, tech::NodeId::N28));
}

// -- Bug 2: refinement must not re-sweep coarse-grid RCA counts --------

TEST(RefinementRegression, NoDuplicateDesignPoints)
{
    // Shrink the RCA so only ~5 fit a 28nm die: at small counts the
    // coarse geometric grid is dense, so the refinement candidates
    // around the best cell (n0 +/- 1..3) all collide with grid values
    // — exactly the regime where the old loop re-swept them and
    // emitted duplicates.
    auto rca = apps::bitcoin().rca;
    const auto &tn = tech::defaultTechDatabase().node(tech::NodeId::N28);
    rca.area_28_mm2 = tn.max_die_area_mm2 * tn.density_factor / 5.5;

    auto opts = smallSweep();
    opts.keep_feasible_points = true;
    dse::DesignSpaceExplorer explorer{opts, evaluatorWith({})};
    const auto result = explorer.explore(rca, tech::NodeId::N28);
    ASSERT_GT(result.all_feasible.size(), 0u);
    EXPECT_EQ(result.all_feasible.size(), result.feasible);

    using Tuple = std::tuple<int, int, int, uint64_t, uint64_t>;
    auto bits = [](double v) {
        uint64_t b = 0;
        static_assert(sizeof(b) == sizeof(v));
        std::memcpy(&b, &v, sizeof(b));
        return b;
    };
    std::set<Tuple> seen;
    for (const auto &p : result.all_feasible) {
        const Tuple t{p.config.rcas_per_die, p.config.dies_per_lane,
                      p.config.drams_per_die,
                      bits(p.config.dark_silicon_fraction),
                      bits(p.config.vdd)};
        EXPECT_TRUE(seen.insert(t).second)
            << "duplicate design point: rcas="
            << p.config.rcas_per_die
            << " dies=" << p.config.dies_per_lane
            << " drams=" << p.config.drams_per_die
            << " vdd=" << p.config.vdd;
    }
}

// -- Bug 3: evaluated must count bisection probes ----------------------

TEST(AccountingRegression, EvaluatedMatchesEvaluatorCalls)
{
    // The copy-shared evaluate() counter is ground truth; the sweep's
    // reported total must match it exactly, bisection probes included
    // (the old code undercounted by up to 32 per configuration).
    auto opts = smallSweep();
    opts.cache_sweeps = false;
    opts.max_threads = 2;  // worker clones bill to the prototype
    dse::DesignSpaceExplorer explorer{opts, evaluatorWith({})};

    const uint64_t before = explorer.evaluator().evaluateCalls();
    const auto result =
        explorer.explore(apps::bitcoin().rca, tech::NodeId::N28);
    const uint64_t calls =
        explorer.evaluator().evaluateCalls() - before;
    ASSERT_TRUE(result.tco_optimal.has_value());
    EXPECT_EQ(calls, result.evaluated);
}

TEST(AccountingRegression, EvaluatedMatchesOnSlaPinnedApp)
{
    // Deep Learning pins the clock via an SLA, which takes the
    // non-bisection path through the voltage search — the accounting
    // identity must hold there too.
    auto opts = smallSweep();
    opts.cache_sweeps = false;
    opts.dark_fractions = {0.0, 0.10};
    dse::DesignSpaceExplorer explorer{opts, evaluatorWith({})};

    const uint64_t before = explorer.evaluator().evaluateCalls();
    const auto result =
        explorer.explore(apps::deepLearning().rca, tech::NodeId::N28);
    const uint64_t calls =
        explorer.evaluator().evaluateCalls() - before;
    EXPECT_EQ(calls, result.evaluated);
}

// -- Cache transparency ------------------------------------------------

TEST(CacheTransparency, CachedAndUncachedResultsIdentical)
{
    const auto rca = apps::litecoin().rca;

    auto cached_opts = smallSweep();
    cached_opts.cache_sweeps = true;
    dse::DesignSpaceExplorer cached{cached_opts, evaluatorWith({})};

    auto raw_opts = smallSweep();
    raw_opts.cache_sweeps = false;
    dse::DesignSpaceExplorer raw{raw_opts, evaluatorWith({})};

    const auto cold = cached.explore(rca, tech::NodeId::N16);
    const auto uncached = raw.explore(rca, tech::NodeId::N16);
    expectIdenticalResults(cold, uncached);
    EXPECT_EQ(cached.sweepCacheHits(), 0u);
    EXPECT_EQ(cached.sweepCacheInserts(), 1u);

    // A warm read is served from the memo cache and is byte-for-byte
    // the same result.
    const auto warm = cached.explore(rca, tech::NodeId::N16);
    expectIdenticalResults(cold, warm);
    EXPECT_EQ(cached.sweepCacheHits(), 1u);
}

} // namespace
