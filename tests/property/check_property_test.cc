/**
 * @file
 * Tier-1 coverage of the self-check subsystem itself: the generator
 * is deterministic per seed, and the invariant battery passes on a
 * pinned seed range (the same battery `moonwalk check` runs, so a
 * model regression that breaks differential correctness fails here
 * with a reproducing seed before CI even reaches the CLI job).
 */
#include <gtest/gtest.h>

#include <sstream>

#include "check/check.hh"
#include "check/generator.hh"

namespace moonwalk::check {
namespace {

TEST(CheckGenerator, DeterministicPerSeed)
{
    for (uint64_t seed : {1ull, 7ull, 42ull, 1000000007ull}) {
        const auto a = generateCase(seed);
        const auto b = generateCase(seed);
        EXPECT_EQ(describeCase(a).dump(), describeCase(b).dump())
            << "seed " << seed;
    }
}

TEST(CheckGenerator, DistinctSeedsDistinctCases)
{
    // Not guaranteed in principle, but with multiplicative
    // perturbations a collision across neighboring seeds would mean
    // the stream is broken.
    const auto a = generateCase(1);
    const auto b = generateCase(2);
    EXPECT_NE(describeCase(a).dump(), describeCase(b).dump());
}

TEST(CheckGenerator, SplitMix64ReferenceVector)
{
    // First outputs for seed 0x1234567812345678, cross-checked against
    // the published SplitMix64 reference implementation; pins the
    // stream so failing seeds reproduce across platforms forever.
    Rng rng(0x1234567812345678ULL);
    EXPECT_EQ(rng.next(), 0xecbee82afc6a46feULL);
    EXPECT_EQ(rng.next(), 0x2129a87462662b44ULL);
}

TEST(CheckGenerator, UniformIntStaysInRange)
{
    Rng rng(99);
    for (int i = 0; i < 1000; ++i) {
        const int v = rng.uniformInt(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        const double d = rng.uniform(0.6, 1.6);
        EXPECT_GE(d, 0.6);
        EXPECT_LT(d, 1.6);
    }
}

TEST(SelfCheck, PinnedSeedRangePasses)
{
    // A handful of seeds keeps this inside the tier-1 time budget;
    // the CI `check` job runs the CLI over 25.
    CheckOptions opts;
    opts.seeds = 6;
    opts.start_seed = 1;
    const auto report = runSelfCheck(opts);
    EXPECT_EQ(report.seeds_run, 6u);
    EXPECT_GT(report.invariants_checked, 0u);
    std::ostringstream os;
    writeReport(os, report);
    EXPECT_TRUE(report.ok()) << os.str();
}

TEST(SelfCheck, ReportNamesFailingSeedAndRepro)
{
    // The report renderer must surface the reproduction command.
    CheckReport report;
    report.seeds_run = 1;
    report.invariants_checked = 3;
    report.failures.push_back(
        {17, "accounting", "expected 5, got 7",
         "moonwalk check --seeds 1 --seed 17", "{}"});
    std::ostringstream os;
    writeReport(os, report);
    const auto text = os.str();
    EXPECT_NE(text.find("seed 17"), std::string::npos);
    EXPECT_NE(text.find("accounting"), std::string::npos);
    EXPECT_NE(text.find("moonwalk check --seeds 1 --seed 17"),
              std::string::npos);
}

} // namespace
} // namespace moonwalk::check
