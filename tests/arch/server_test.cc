#include <gtest/gtest.h>

#include "apps/apps.hh"
#include "arch/server.hh"
#include "tech/database.hh"
#include "util/error.hh"
#include "util/math.hh"

namespace moonwalk::arch {
namespace {

using tech::NodeId;

class ServerArchTest : public ::testing::Test
{
  protected:
    const tech::TechDatabase &db_ = tech::defaultTechDatabase();
};

TEST_F(ServerArchTest, ConfigCounts)
{
    ServerConfig cfg;
    cfg.rcas_per_die = 769;
    cfg.dies_per_lane = 9;
    cfg.drams_per_die = 0;
    EXPECT_EQ(cfg.diesPerServer(), 72);
    EXPECT_EQ(cfg.rcasPerServer(), 72 * 769);
    EXPECT_EQ(cfg.dramsPerServer(), 0);
}

TEST_F(ServerArchTest, RcaAreaScalesWithDensity)
{
    const auto rca = apps::bitcoin().rca;
    const double a28 =
        rca.areaAtNode(db_.node(NodeId::N28).density_factor);
    const double a250 =
        rca.areaAtNode(db_.node(NodeId::N250).density_factor);
    EXPECT_NEAR(a28, 540.0 / 769.0, 1e-9);
    // S^2 area growth: (250/28)^2 = 79.7x.
    EXPECT_NEAR(a250 / a28, (250.0 / 28.0) * (250.0 / 28.0), 1e-9);
}

TEST_F(ServerArchTest, PaperDieAreasReproduced)
{
    // Tables 7 and 9: RCAs-per-die at the published die areas.
    struct Case
    {
        const char *app;
        NodeId node;
        int rcas;
        double paper_area;
    };
    const Case cases[] = {
        {"Bitcoin", NodeId::N250, 10, 559},
        {"Bitcoin", NodeId::N180, 20, 579},
        {"Bitcoin", NodeId::N28, 769, 540},
        {"Bitcoin", NodeId::N16, 1818, 420},
        {"Litecoin", NodeId::N250, 12, 567},
        {"Litecoin", NodeId::N28, 910, 540},
        {"Litecoin", NodeId::N16, 2150, 420},
    };
    for (const auto &c : cases) {
        const auto app = apps::appByName(c.app);
        ServerConfig cfg;
        cfg.node = c.node;
        cfg.rcas_per_die = c.rcas;
        const auto fp =
            computeFloorplan(app.rca, db_.node(c.node), cfg);
        EXPECT_LT(moonwalk::relativeError(fp.total(), c.paper_area),
                  0.03)
            << c.app << " " << tech::to_string(c.node) << ": "
            << fp.total() << " vs " << c.paper_area;
    }
}

TEST_F(ServerArchTest, DramInterfacesAddArea)
{
    const auto app = apps::videoTranscode();
    ServerConfig no_dram;
    no_dram.node = NodeId::N28;
    no_dram.rcas_per_die = 100;
    ServerConfig with_dram = no_dram;
    with_dram.drams_per_die = 6;
    const auto &n = db_.node(NodeId::N28);
    EXPECT_GT(computeFloorplan(app.rca, n, with_dram).total(),
              computeFloorplan(app.rca, n, no_dram).total());
}

TEST_F(ServerArchTest, DarkSiliconAddsArea)
{
    const auto app = apps::deepLearning();
    ServerConfig cfg;
    cfg.node = NodeId::N28;
    cfg.rcas_per_die = 4;
    const auto &n = db_.node(NodeId::N28);
    const double base = computeFloorplan(app.rca, n, cfg).total();
    cfg.dark_silicon_fraction = 0.155;  // the paper's 28nm DL choice
    const double padded = computeFloorplan(app.rca, n, cfg).total();
    EXPECT_NEAR(padded / base, 1.155, 0.01);
}

TEST_F(ServerArchTest, FloorplanRejectsBadConfig)
{
    const auto app = apps::bitcoin();
    ServerConfig cfg;
    cfg.rcas_per_die = 0;
    EXPECT_THROW(
        computeFloorplan(app.rca, db_.node(NodeId::N28), cfg),
        ModelError);
    cfg.rcas_per_die = 1;
    cfg.dark_silicon_fraction = 0.9;
    EXPECT_THROW(
        computeFloorplan(app.rca, db_.node(NodeId::N28), cfg),
        ModelError);
}

TEST_F(ServerArchTest, DramSpecGenerations)
{
    const auto sdr = dramSpec(tech::DramGeneration::SDR);
    const auto lp3 = dramSpec(tech::DramGeneration::LPDDR3);
    EXPECT_LT(sdr.bandwidth_bps, lp3.bandwidth_bps);
    // Section 6.3: SDRAM costs marginally more than LPDDR.
    EXPECT_GT(sdr.unit_cost, lp3.unit_cost);
}

TEST_F(ServerArchTest, DramInterfaceAreaScalesWeakly)
{
    const auto &n28 = db_.node(NodeId::N28);
    const auto &n250 = db_.node(NodeId::N250);
    const double ratio = dramInterfaceAreaMm2(n250) /
        dramInterfaceAreaMm2(n28);
    // PHYs scale ~S (8.9x), much slower than logic's S^2 (79.7x).
    EXPECT_NEAR(ratio, 250.0 / 28.0, 1e-9);
}

} // namespace
} // namespace moonwalk::arch
