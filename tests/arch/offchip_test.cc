#include <gtest/gtest.h>

#include "arch/offchip.hh"

namespace moonwalk::arch {
namespace {

TEST(OffPcb, MenuOrderedByBandwidthAndCost)
{
    const auto &menu = offPcbMenu();
    ASSERT_GE(menu.size(), 3u);
    for (size_t i = 1; i < menu.size(); ++i) {
        EXPECT_GT(menu[i].bandwidth_bps, menu[i - 1].bandwidth_bps);
        EXPECT_GT(menu[i].cost, menu[i - 1].cost);
    }
}

TEST(OffPcb, ControlPlaneGetsCheapestTier)
{
    const auto sel = selectOffPcb(0.0);
    EXPECT_EQ(sel.nic.name, "1 GigE");
    EXPECT_EQ(sel.count, 1);
}

TEST(OffPcb, PicksCheapestSufficientTier)
{
    EXPECT_EQ(selectOffPcb(0.05e9).nic.name, "1 GigE");
    EXPECT_EQ(selectOffPcb(0.5e9).nic.name, "10 GigE");
    EXPECT_EQ(selectOffPcb(2e9).nic.name, "40 GigE");
    EXPECT_EQ(selectOffPcb(8e9).nic.name, "100 GigE");
}

TEST(OffPcb, ReplicatesTopTier)
{
    const auto sel = selectOffPcb(35e9);
    EXPECT_EQ(sel.nic.name, "100 GigE");
    EXPECT_EQ(sel.count, 4);
    EXPECT_GE(sel.totalBandwidthBps(), 35e9);
    EXPECT_DOUBLE_EQ(sel.totalCost(), 4 * sel.nic.cost);
    EXPECT_DOUBLE_EQ(sel.totalPowerW(), 4 * sel.nic.power_w);
}

TEST(OffPcb, BoundaryExactlyAtTier)
{
    // Exactly the tier bandwidth still fits one interface.
    const auto sel = selectOffPcb(1.0e9);
    EXPECT_EQ(sel.nic.name, "10 GigE");
    EXPECT_EQ(sel.count, 1);
}

} // namespace
} // namespace moonwalk::arch
