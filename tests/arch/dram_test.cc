#include <gtest/gtest.h>

#include "arch/dram.hh"
#include "tech/database.hh"

namespace moonwalk::arch {
namespace {

using tech::DramGeneration;
using tech::NodeId;

TEST(Dram, BandwidthOrdering)
{
    // Each generation strictly improves bandwidth.
    EXPECT_LT(dramSpec(DramGeneration::SDR).bandwidth_bps,
              dramSpec(DramGeneration::DDR).bandwidth_bps);
    EXPECT_LT(dramSpec(DramGeneration::DDR).bandwidth_bps,
              dramSpec(DramGeneration::LPDDR3).bandwidth_bps);
}

TEST(Dram, Lpddr3SupportsPaperVideoRates)
{
    // Section 6.3 calibration: one LPDDR3 device sustains ~660 fps
    // of the video RCA's 9.7 MB/frame traffic.
    const auto lp3 = dramSpec(DramGeneration::LPDDR3);
    EXPECT_NEAR(lp3.bandwidth_bps / 9.7e6, 660.0, 20.0);
}

TEST(Dram, PowerAndPitchPositive)
{
    for (auto gen : {DramGeneration::SDR, DramGeneration::DDR,
                     DramGeneration::LPDDR3}) {
        const auto d = dramSpec(gen);
        EXPECT_GT(d.power_w, 0.0);
        EXPECT_LT(d.power_w, 3.0);
        EXPECT_GT(d.board_pitch_mm, 5.0);
        EXPECT_LT(d.board_pitch_mm, 20.0);
        EXPECT_GT(d.unit_cost, 0.0);
    }
}

TEST(Dram, LowPowerGenerationDrawsLess)
{
    EXPECT_LT(dramSpec(DramGeneration::LPDDR3).power_w,
              dramSpec(DramGeneration::SDR).power_w);
}

TEST(Dram, InterfaceAreaMonotoneInFeature)
{
    const auto &db = tech::defaultTechDatabase();
    double prev = 1e9;
    for (tech::NodeId id : tech::kAllNodes) {
        const double a = dramInterfaceAreaMm2(db.node(id));
        EXPECT_LT(a, prev) << tech::to_string(id);
        EXPECT_GT(a, 1.0);
        prev = a;
    }
    // 28nm reference macro is 10mm^2.
    EXPECT_DOUBLE_EQ(dramInterfaceAreaMm2(db.node(NodeId::N28)),
                     10.0);
}

} // namespace
} // namespace moonwalk::arch
