#include <gtest/gtest.h>

#include "sim/events.hh"
#include "util/error.hh"

namespace moonwalk::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    while (q.step()) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
    EXPECT_EQ(q.fired(), 3u);
}

TEST(EventQueue, SimultaneousEventsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    while (q.step()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 10)
            q.schedule(q.now() + 1.0, chain);
    };
    q.schedule(0.0, chain);
    while (q.step()) {
    }
    EXPECT_EQ(count, 10);
    EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, RunUntilStopsAtHorizon)
{
    EventQueue q;
    int fired = 0;
    for (double t : {1.0, 2.0, 3.0, 4.0})
        q.schedule(t, [&] { ++fired; });
    q.runUntil(2.5);
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(q.now(), 2.5);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue q;
    q.runUntil(5.0);
    EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, RejectsPastScheduling)
{
    EventQueue q;
    q.schedule(2.0, [] {});
    q.step();
    EXPECT_THROW(q.schedule(1.0, [] {}), ModelError);
}

} // namespace
} // namespace moonwalk::sim
