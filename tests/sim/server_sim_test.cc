#include <gtest/gtest.h>

#include "sim/server_sim.hh"
#include "util/error.hh"
#include "util/math.hh"

namespace moonwalk::sim {
namespace {

/** A small server so tests run fast: 4 ASICs x 8 RCAs at 1M ops/s. */
ServerModel
smallServer()
{
    ServerModel m;
    m.asics = 4;
    m.rcas_per_asic = 8;
    m.rca_ops_per_s = 1e6;
    m.asic_queue_depth = 16;
    return m;
}

TEST(ServerSim, CapacityArithmetic)
{
    ServerSimulator sim(smallServer());
    EXPECT_DOUBLE_EQ(sim.capacityOpsPerS(), 32e6);
}

TEST(ServerSim, LightLoadLatencyIsServicePlusOverheads)
{
    ServerSimulator sim(smallServer());
    Workload w;
    w.ops_per_job = 1e4;       // 10 ms of work? no: 10e3/1e6 = 10 ms
    w.arrival_rate = 5.0;      // essentially no queueing
    w.duration_s = 20.0;
    const auto s = sim.run(w);
    ASSERT_GT(s.jobs_completed, 50u);
    const double expected = 1e4 / 1e6 + sim.model().dispatch_latency_s +
        sim.model().interconnect_latency_s;
    EXPECT_NEAR(s.latency_p50, expected, 1e-9);
    EXPECT_NEAR(s.latency_max, expected, 1e-6);
    EXPECT_EQ(s.jobs_dropped, 0u);
}

TEST(ServerSim, ThroughputTracksOfferedLoadBelowSaturation)
{
    ServerSimulator sim(smallServer());
    Workload w;
    w.ops_per_job = 1e5;
    w.arrival_rate = 100.0;  // offered 10M ops/s vs 32M capacity
    w.duration_s = 80.0;     // ~8000 jobs: Poisson noise ~1%
    const auto s = sim.run(w);
    const double offered = w.arrival_rate * w.ops_per_job;
    EXPECT_LT(moonwalk::relativeError(s.achieved_ops_per_s, offered),
              0.05);
    EXPECT_NEAR(s.rca_utilization, offered / sim.capacityOpsPerS(),
                0.05);
}

TEST(ServerSim, SaturationApproachesModelCapacity)
{
    // The analytic model's perf_ops is the saturated throughput: at
    // 3x overload the simulator must deliver ~capacity.
    ServerSimulator sim(smallServer());
    Workload w;
    w.ops_per_job = 1e5;
    w.arrival_rate = 3.0 * sim.capacityOpsPerS() / w.ops_per_job;
    w.duration_s = 10.0;
    const auto s = sim.run(w);
    EXPECT_GT(s.achieved_ops_per_s, 0.95 * sim.capacityOpsPerS());
    EXPECT_LE(s.achieved_ops_per_s,
              1.02 * sim.capacityOpsPerS());
    EXPECT_GT(s.jobs_dropped, 0u);
    EXPECT_GT(s.rca_utilization, 0.95);
}

TEST(ServerSim, LatencyGrowsWithLoad)
{
    ServerSimulator sim(smallServer());
    Workload light;
    light.ops_per_job = 1e5;
    light.arrival_rate = 0.3 * 32e6 / 1e5;
    light.duration_s = 10.0;
    Workload heavy = light;
    heavy.arrival_rate = 0.95 * 32e6 / 1e5;
    const auto sl = sim.run(light);
    const auto sh = sim.run(heavy);
    EXPECT_GT(sh.latency_p99, sl.latency_p99);
    EXPECT_GE(sh.latency_p99, sh.latency_p50);
}

TEST(ServerSim, DeterministicForFixedSeed)
{
    ServerSimulator sim(smallServer());
    Workload w;
    w.ops_per_job = 5e4;
    w.arrival_rate = 200.0;
    w.duration_s = 5.0;
    w.seed = 42;
    const auto a = sim.run(w);
    const auto b = sim.run(w);
    EXPECT_EQ(a.jobs_offered, b.jobs_offered);
    EXPECT_EQ(a.jobs_completed, b.jobs_completed);
    EXPECT_DOUBLE_EQ(a.latency_p99, b.latency_p99);

    w.seed = 43;
    const auto c = sim.run(w);
    EXPECT_NE(a.jobs_offered, c.jobs_offered);
}

TEST(ServerSim, ConservationOfJobs)
{
    ServerSimulator sim(smallServer());
    Workload w;
    w.ops_per_job = 1e5;
    w.arrival_rate = 2.0 * 32e6 / 1e5;
    w.duration_s = 5.0;
    w.warmup_fraction = 0.0;
    const auto s = sim.run(w);
    // Every offered job either completes or is dropped (queues drain
    // after the horizon).
    EXPECT_EQ(s.jobs_offered, s.jobs_completed_total + s.jobs_dropped);
    // The measured subset excludes the post-horizon drain.
    EXPECT_LE(s.jobs_completed, s.jobs_completed_total);
}

TEST(ServerSim, QueueDepthZeroDropsBurst)
{
    auto m = smallServer();
    m.asic_queue_depth = 0;
    ServerSimulator sim(m);
    Workload w;
    w.ops_per_job = 1e6;  // 1 s of service: server pins quickly
    w.arrival_rate = 200.0;
    w.duration_s = 2.0;
    w.warmup_fraction = 0.0;
    const auto s = sim.run(w);
    EXPECT_GT(s.jobs_dropped, 0u);
    // At most one job per RCA can ever be in service.
    EXPECT_LE(s.jobs_completed, 32u + 64u);
}

TEST(ServerSim, RejectsBadInputs)
{
    ServerModel bad;
    bad.asics = 0;
    EXPECT_THROW(ServerSimulator{bad}, ModelError);

    ServerSimulator sim(smallServer());
    Workload w;
    w.ops_per_job = 0.0;
    EXPECT_THROW(sim.run(w), ModelError);
    w.ops_per_job = 1.0;
    w.warmup_fraction = 1.0;
    EXPECT_THROW(sim.run(w), ModelError);
}

} // namespace
} // namespace moonwalk::sim
