#include <gtest/gtest.h>

#include "tco/tco_model.hh"
#include "util/error.hh"
#include "util/math.hh"

namespace moonwalk::tco {
namespace {

TEST(Tco, WattCostMatchesPaperFit)
{
    // Tables 7-10 obey TCO ~ server_cost + k * power with
    // k = 4.18-4.34 $/W; the default parameters must land inside.
    TcoModel model;
    EXPECT_GT(model.wattCost(), 4.1);
    EXPECT_LT(model.wattCost(), 4.4);
}

TEST(Tco, LinearInCostAndPower)
{
    TcoModel model;
    const double t0 = model.total(1000.0, 500.0);
    EXPECT_NEAR(model.total(2000.0, 500.0), t0 + 1000.0, 1e-9);
    EXPECT_NEAR(model.total(1000.0, 1000.0),
                t0 + 500.0 * model.wattCost(), 1e-9);
}

TEST(Tco, BreakdownComponents)
{
    TcoModel model;
    const auto b = model.compute(8200.0, 3736.0);
    EXPECT_DOUBLE_EQ(b.server_capex, 8200.0);
    EXPECT_GT(b.datacenter_capex, 0.0);
    EXPECT_GT(b.energy, 0.0);
    EXPECT_DOUBLE_EQ(b.interest, 0.0);  // default: matches paper fit
    EXPECT_NEAR(b.total(), model.total(8200.0, 3736.0), 1e-9);
}

TEST(Tco, InterestAddsCost)
{
    TcoParameters p;
    p.annual_interest = 0.08;
    TcoModel with_interest(p);
    TcoModel without;
    EXPECT_GT(with_interest.total(1000.0, 100.0),
              without.total(1000.0, 100.0));
}

TEST(Tco, PaperTable6BaselineTcoPerOps)
{
    // Table 6: AMD 7970 Bitcoin server: 0.68 GH/s, 285W, $400 ->
    // 2,320 $/GH/s.
    TcoModel model;
    const double tco = model.tcoPerOps(400.0, 285.0, 0.68);
    EXPECT_LT(moonwalk::relativeError(tco, 2320.0), 0.08);
}

TEST(Tco, PaperTable7BitcoinAsic28nm)
{
    // Table 7, 28nm: $8.2K server, 3,736W, 8,223 GH/s -> 2.912.
    TcoModel model;
    const double tco = model.tcoPerOps(8200.0, 3736.0, 8223.0);
    EXPECT_LT(moonwalk::relativeError(tco, 2.912), 0.08);
}

TEST(Tco, RejectsBadInputs)
{
    TcoModel model;
    EXPECT_THROW(model.total(-1.0, 10.0), moonwalk::ModelError);
    EXPECT_THROW(model.tcoPerOps(10.0, 10.0, 0.0),
                 moonwalk::ModelError);
}

TEST(Tco, EnergyDominatesDatacenterCapexAtDefaultPrices)
{
    TcoModel model;
    const auto b = model.compute(0.0, 1000.0);
    EXPECT_GT(b.energy, 0.8 * b.datacenter_capex);
}

} // namespace
} // namespace moonwalk::tco
