#include <gtest/gtest.h>

#include "tco/datacenter.hh"
#include "util/error.hh"

namespace moonwalk::tco {
namespace {

TEST(Datacenter, PlanBasicArithmetic)
{
    DatacenterPlanner planner;
    // 100 servers' worth of work: 4kW boxes, 3 per 15kW rack.
    const auto p = planner.plan(1000.0, 10.0, 4000.0, 8000.0);
    EXPECT_EQ(p.servers, 100);
    EXPECT_EQ(p.servers_per_rack, 3);
    EXPECT_EQ(p.racks, 34);  // ceil(100/3)
    EXPECT_DOUBLE_EQ(p.aggregate_ops, 1000.0);
    EXPECT_DOUBLE_EQ(p.critical_power_w, 400e3);
    EXPECT_DOUBLE_EQ(p.server_capex, 800e3);
    EXPECT_DOUBLE_EQ(p.rack_capex, 34 * 6e3);
}

TEST(Datacenter, RoundsServersUp)
{
    DatacenterPlanner planner;
    const auto p = planner.plan(101.0, 10.0, 1000.0, 1000.0);
    EXPECT_EQ(p.servers, 11);
    EXPECT_GE(p.aggregate_ops, 101.0);
}

TEST(Datacenter, SpaceLimitWhenServersAreSmall)
{
    DatacenterParams params;
    params.rack_power_w = 100e3;  // power never binds
    DatacenterPlanner planner(TcoModel{}, params);
    const auto p = planner.plan(1000.0, 10.0, 100.0, 500.0);
    EXPECT_EQ(p.servers_per_rack, params.rack_units);
}

TEST(Datacenter, TcoIncludesEnergyAndRackOverhead)
{
    DatacenterPlanner planner;
    const auto p = planner.plan(100.0, 10.0, 2000.0, 5000.0);
    TcoModel tco;
    EXPECT_NEAR(p.tco.total(),
                tco.total(p.server_capex, p.critical_power_w), 1e-6);
    EXPECT_GT(p.totalCost(), p.tco.total());
}

TEST(Datacenter, OversizedServerRejected)
{
    DatacenterPlanner planner;
    EXPECT_THROW(planner.plan(10.0, 10.0, 20e3, 1000.0), ModelError);
}

TEST(Datacenter, BadInputsRejected)
{
    DatacenterPlanner planner;
    EXPECT_THROW(planner.plan(0.0, 10.0, 100.0, 100.0), ModelError);
    EXPECT_THROW(planner.plan(10.0, -1.0, 100.0, 100.0), ModelError);
    EXPECT_THROW(planner.plan(10.0, 10.0, 100.0, 0.0), ModelError);
}

TEST(Datacenter, BitcoinExampleScale)
{
    // A 1 EH/s Bitcoin fleet on the paper's 28nm servers
    // (~8,223 GH/s, 3,736W, $8.2K): ~122K servers, tens of MW.
    DatacenterPlanner planner;
    const auto p = planner.plan(1e18, 8223e9, 3736.0, 8200.0);
    EXPECT_NEAR(static_cast<double>(p.servers), 121611, 5.0);
    EXPECT_GT(p.critical_power_w, 400e6);
    EXPECT_EQ(p.servers_per_rack, 4);
}

} // namespace
} // namespace moonwalk::tco
