#include <gtest/gtest.h>

#include "power/power_delivery.hh"
#include "util/error.hh"

namespace moonwalk::power {
namespace {

TEST(Psu, EfficiencyCurvePeaksAtHalfLoad)
{
    PsuParams psu;
    EXPECT_DOUBLE_EQ(psu.efficiencyAt(0.5), psu.eta_peak);
    EXPECT_LT(psu.efficiencyAt(1.0), psu.eta_peak);
    EXPECT_LT(psu.efficiencyAt(0.1), psu.eta_peak);
    EXPECT_NEAR(psu.efficiencyAt(1.0), psu.eta_peak - psu.eta_droop,
                1e-12);
    // Clamped outside the physical range.
    EXPECT_DOUBLE_EQ(psu.efficiencyAt(2.0), psu.efficiencyAt(1.0));
}

TEST(PowerDelivery, PhasesSizedByCurrent)
{
    // 3,000W at 0.5V = 6,000A = 200 x 30A phases.
    const auto plan = planPowerDelivery(3000.0, 0.5, 72, 0.0);
    EXPECT_EQ(plan.dcdc_phases, 200);
    EXPECT_DOUBLE_EQ(plan.dcdc_cost, 200 * 2.2);
}

TEST(PowerDelivery, PerDieMinimumPhases)
{
    // Tiny rail, many dies: local regulation dominates.
    const auto plan = planPowerDelivery(10.0, 1.0, 120, 0.0);
    EXPECT_EQ(plan.dcdc_phases, 120);
}

TEST(PowerDelivery, NearThresholdCostsMoreConversion)
{
    // Same power at lower voltage needs more phases.
    const auto hi = planPowerDelivery(2000.0, 0.9, 72, 0.0);
    const auto lo = planPowerDelivery(2000.0, 0.45, 72, 0.0);
    EXPECT_GT(lo.dcdc_phases, 1.9 * hi.dcdc_phases);
    EXPECT_GT(lo.dcdc_cost, 1.9 * hi.dcdc_cost);
    // Wall power is voltage-independent (efficiency model is flat).
    EXPECT_NEAR(lo.wall_power_w, hi.wall_power_w, 1e-9);
}

TEST(PowerDelivery, WallPowerAccounting)
{
    const auto plan = planPowerDelivery(1000.0, 0.6, 10, 200.0);
    // DC side: 1000/0.93 + 200; wall adds PSU loss at ~87% load.
    const double dc = 1000.0 / 0.93 + 200.0;
    EXPECT_NEAR(plan.wall_power_w, dc / plan.psu_efficiency, 1e-9);
    EXPECT_GT(plan.wall_power_w, dc);
    EXPECT_NEAR(plan.dcdc_loss_w, 1000.0 / 0.93 - 1000.0, 1e-9);
    EXPECT_NEAR(plan.psu_rated_w, dc * 1.15, 1e-9);
    EXPECT_NEAR(plan.psu_efficiency, 0.9368, 1e-3);
}

TEST(PowerDelivery, EffectiveRatesMatchCalibration)
{
    // DESIGN.md calibration: effective chain efficiency ~0.87 and
    // PSU cost ~0.11 $/W of DC power.
    const auto plan = planPowerDelivery(3000.0, 0.46, 72, 300.0);
    const double chain = 3000.0 /
        (plan.wall_power_w - 300.0 / plan.psu_efficiency);
    EXPECT_NEAR(chain, 0.87, 0.01);
    EXPECT_NEAR(plan.psu_cost / (plan.wall_power_w *
                                 plan.psu_efficiency),
                0.109, 0.002);
}

TEST(PowerDelivery, Rejections)
{
    EXPECT_THROW(planPowerDelivery(-1.0, 0.9, 1, 0.0), ModelError);
    EXPECT_THROW(planPowerDelivery(10.0, 0.0, 1, 0.0), ModelError);
    EXPECT_THROW(planPowerDelivery(10.0, 0.9, 0, 0.0), ModelError);
    EXPECT_THROW(planPowerDelivery(10.0, 0.9, 1, -5.0), ModelError);
}

} // namespace
} // namespace moonwalk::power
