#include <gtest/gtest.h>

#include "core/sensitivity.hh"
#include "util/error.hh"

namespace moonwalk::core {
namespace {

using tech::NodeId;

dse::ExplorerOptions
coarse()
{
    dse::ExplorerOptions o;
    o.voltage_steps = 10;
    o.rca_count_steps = 8;
    return o;
}

const NodeResult *
find(const std::vector<NodeResult> &sweep, NodeId id)
{
    for (const auto &r : sweep)
        if (r.node == id)
            return &r;
    return nullptr;
}

TEST(Sensitivity, BaselineScenarioMatchesDefaultOptimizer)
{
    ScenarioRunner base(Scenario{}, coarse());
    MoonwalkOptimizer def{dse::DesignSpaceExplorer{coarse()}};
    const auto &a = base.optimizer().sweepNodes(apps::bitcoin());
    const auto &b = def.sweepNodes(apps::bitcoin());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].tcoPerOps(), b[i].tcoPerOps());
        EXPECT_DOUBLE_EQ(a[i].nre.total(), b[i].nre.total());
    }
}

TEST(Sensitivity, FreeMasksCollapseNreGap)
{
    Scenario s;
    s.name = "masks at 1%";
    s.mask_cost_scale = 0.01;
    ScenarioRunner cheap(s, coarse());
    ScenarioRunner base(Scenario{}, coarse());

    const auto *c16 = find(cheap.optimizer().sweepNodes(
                               apps::bitcoin()), NodeId::N16);
    const auto *b16 = find(base.optimizer().sweepNodes(
                               apps::bitcoin()), NodeId::N16);
    ASSERT_TRUE(c16 && b16);
    // 16nm NRE is ~88% masks; killing mask cost cuts it hugely.
    EXPECT_LT(c16->nre.total(), 0.25 * b16->nre.total());

    // With near-free masks, advanced nodes become optimal at far
    // smaller workloads.
    const auto ranges_cheap =
        cheap.optimizer().optimalNodeRanges(apps::bitcoin());
    const auto ranges_base =
        base.optimizer().optimalNodeRanges(apps::bitcoin());
    double b16_cheap = -1.0;
    double b16_base = -1.0;
    for (const auto &r : ranges_cheap)
        if (r.line.node == NodeId::N16)
            b16_cheap = r.b_low;
    for (const auto &r : ranges_base)
        if (r.line.node == NodeId::N16)
            b16_base = r.b_low;
    if (b16_cheap > 0 && b16_base > 0) {
        EXPECT_LT(b16_cheap, 0.3 * b16_base);
    }
}

TEST(Sensitivity, ExpensiveElectricityFavorsEnergyEfficiency)
{
    Scenario s;
    s.name = "3x electricity";
    s.electricity_scale = 3.0;
    ScenarioRunner pricey(s, coarse());
    ScenarioRunner base(Scenario{}, coarse());

    const auto *p = find(pricey.optimizer().sweepNodes(
                             apps::litecoin()), NodeId::N28);
    const auto *b = find(base.optimizer().sweepNodes(
                             apps::litecoin()), NodeId::N28);
    ASSERT_TRUE(p && b);
    // The optimizer buys energy efficiency with voltage.
    EXPECT_LE(p->optimal.config.vdd, b->optimal.config.vdd);
    EXPECT_LE(p->optimal.watts_per_ops, b->optimal.watts_per_ops);
}

TEST(Sensitivity, StrongerCoolingRaisesThermalCeiling)
{
    Scenario s;
    s.name = "2x fans";
    s.fan_pressure_scale = 2.0;
    ScenarioRunner strong(s, coarse());
    ScenarioRunner base(Scenario{}, coarse());

    const auto *hs = find(strong.optimizer().sweepNodes(
                              apps::bitcoin()), NodeId::N28);
    const auto *hb = find(base.optimizer().sweepNodes(
                              apps::bitcoin()), NodeId::N28);
    ASSERT_TRUE(hs && hb);
    EXPECT_GT(hs->optimal.max_die_power_w,
              hb->optimal.max_die_power_w);
}

TEST(Sensitivity, HigherDefectDensityRaisesDieCost)
{
    Scenario s;
    s.name = "4x defects";
    s.defect_density_scale = 4.0;
    ScenarioRunner dirty(s, coarse());
    ScenarioRunner base(Scenario{}, coarse());
    const auto *d = find(dirty.optimizer().sweepNodes(
                             apps::deepLearning()), NodeId::N28);
    const auto *b = find(base.optimizer().sweepNodes(
                             apps::deepLearning()), NodeId::N28);
    ASSERT_TRUE(d && b);
    // Big DDN RCAs lose more to harvesting; delivered perf per die
    // drops, so TCO/op/s worsens.
    EXPECT_GT(d->optimal.tco_per_ops, b->optimal.tco_per_ops);
}

TEST(Sensitivity, SalaryScaleMovesLaborNotMasks)
{
    Scenario s;
    s.name = "2x salaries";
    s.salary_scale = 2.0;
    ScenarioRunner exp(s, coarse());
    ScenarioRunner base(Scenario{}, coarse());
    const auto *e = find(exp.optimizer().sweepNodes(apps::bitcoin()),
                         NodeId::N65);
    const auto *b = find(base.optimizer().sweepNodes(apps::bitcoin()),
                         NodeId::N65);
    ASSERT_TRUE(e && b);
    EXPECT_NEAR(e->nre.frontend_labor, 2.0 * b->nre.frontend_labor,
                1.0);
    EXPECT_DOUBLE_EQ(e->nre.mask, b->nre.mask);
    // Backend CAD tool cost is schedule-based, and the schedule
    // shrinks as the loaded rate rises.
    EXPECT_LT(e->nre.backend_cad, b->nre.backend_cad);
}

TEST(Sensitivity, IpScaleOnlyTouchesIp)
{
    Scenario s;
    s.name = "2x IP";
    s.ip_cost_scale = 2.0;
    ScenarioRunner exp(s, coarse());
    ScenarioRunner base(Scenario{}, coarse());
    const auto *e = find(exp.optimizer().sweepNodes(
                             apps::videoTranscode()), NodeId::N28);
    const auto *b = find(base.optimizer().sweepNodes(
                             apps::videoTranscode()), NodeId::N28);
    ASSERT_TRUE(e && b);
    EXPECT_NEAR(e->nre.ip, 2.0 * b->nre.ip, 1.0);
    EXPECT_DOUBLE_EQ(e->nre.frontend_labor, b->nre.frontend_labor);
}

TEST(Sensitivity, RejectsNonPositiveScales)
{
    Scenario s;
    s.mask_cost_scale = 0.0;
    EXPECT_THROW(ScenarioRunner(s, coarse()), ModelError);
    Scenario s2;
    s2.electricity_scale = -1.0;
    EXPECT_THROW(ScenarioRunner(s2, coarse()), ModelError);
}

} // namespace
} // namespace moonwalk::core
