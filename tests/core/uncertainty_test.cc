#include <gtest/gtest.h>

#include "core/uncertainty.hh"
#include "util/error.hh"

namespace moonwalk::core {
namespace {

UncertaintySpec
tinySpec(int samples)
{
    UncertaintySpec s;
    s.samples = samples;
    s.seed = 7;
    return s;
}

TEST(Uncertainty, FractionsSumToOne)
{
    UncertaintyAnalysis mc(tinySpec(12));
    const auto r = mc.run(apps::bitcoin(), 25e6);
    double total = 0.0;
    for (const auto &[name, frac] : r.choice_fraction) {
        EXPECT_GT(frac, 0.0);
        EXPECT_LE(frac, 1.0);
        total += frac;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_FALSE(r.modal_choice.empty());
    EXPECT_EQ(r.total_cost.count, 12u);
}

TEST(Uncertainty, DeterministicForSeed)
{
    UncertaintyAnalysis a(tinySpec(8));
    UncertaintyAnalysis b(tinySpec(8));
    const auto ra = a.run(apps::bitcoin(), 25e6);
    const auto rb = b.run(apps::bitcoin(), 25e6);
    EXPECT_EQ(ra.choice_fraction, rb.choice_fraction);
    EXPECT_DOUBLE_EQ(ra.total_cost.mean, rb.total_cost.mean);
}

TEST(Uncertainty, ZeroSigmaCollapsesToNominal)
{
    UncertaintySpec s;
    s.samples = 4;
    s.mask_cost_sigma = 0;
    s.wafer_cost_sigma = 0;
    s.salary_sigma = 0;
    s.ip_cost_sigma = 0;
    s.electricity_sigma = 0;
    s.backend_cost_sigma = 0;
    UncertaintyAnalysis mc(s);
    const auto r = mc.run(apps::bitcoin(), 25e6);
    // Every sample sees the identical model: one choice, zero spread.
    EXPECT_EQ(r.choice_fraction.size(), 1u);
    EXPECT_DOUBLE_EQ(r.total_cost.stddev, 0.0);
}

TEST(Uncertainty, TinyWorkloadAlwaysBaseline)
{
    UncertaintyAnalysis mc(tinySpec(6));
    const auto r = mc.run(apps::bitcoin(), 1e4);
    EXPECT_EQ(r.modal_choice, "baseline");
    EXPECT_DOUBLE_EQ(r.choice_fraction.at("baseline"), 1.0);
    // Baseline cost is exact: no spread.
    EXPECT_DOUBLE_EQ(r.total_cost.stddev, 0.0);
    EXPECT_DOUBLE_EQ(r.total_cost.mean, 1e4);
}

TEST(Uncertainty, HugeWorkloadNeverBaseline)
{
    UncertaintyAnalysis mc(tinySpec(6));
    const auto r = mc.run(apps::bitcoin(), 1e9);
    EXPECT_EQ(r.choice_fraction.count("baseline"), 0u);
}

TEST(Uncertainty, Rejections)
{
    EXPECT_THROW(UncertaintyAnalysis(tinySpec(0)), ModelError);
    UncertaintyAnalysis mc(tinySpec(2));
    EXPECT_THROW(mc.run(apps::bitcoin(), 0.0), ModelError);
}

} // namespace
} // namespace moonwalk::core
