#include <sstream>

#include <gtest/gtest.h>

#include "core/report.hh"

namespace moonwalk::core {
namespace {

class ReportTest : public ::testing::Test
{
  protected:
    static dse::ExplorerOptions coarse()
    {
        dse::ExplorerOptions o;
        o.voltage_steps = 8;
        o.rca_count_steps = 6;
        return o;
    }

    MoonwalkOptimizer opt_{dse::DesignSpaceExplorer{coarse()}};
    ReportGenerator gen_{opt_};
};

TEST_F(ReportTest, TextContainsAllSections)
{
    std::ostringstream os;
    gen_.writeText(os, apps::bitcoin(), 25e6);
    const auto s = os.str();
    EXPECT_NE(s.find("Moonwalk report: Bitcoin"), std::string::npos);
    EXPECT_NE(s.find("TCO-optimal ASIC Cloud server per node"),
              std::string::npos);
    EXPECT_NE(s.find("NRE breakdown"), std::string::npos);
    EXPECT_NE(s.find("Optimal node vs workload scale"),
              std::string::npos);
    EXPECT_NE(s.find("Two-for-two rule"), std::string::npos);
    EXPECT_NE(s.find("Recommendation: build at"), std::string::npos);
    // All eight nodes appear.
    for (tech::NodeId id : tech::kAllNodes)
        EXPECT_NE(s.find(tech::to_string(id)), std::string::npos);
}

TEST_F(ReportTest, WorkloadSectionsSkippedWithoutForecast)
{
    std::ostringstream os;
    gen_.writeText(os, apps::bitcoin());
    EXPECT_EQ(os.str().find("Two-for-two"), std::string::npos);
    EXPECT_EQ(os.str().find("Recommendation"), std::string::npos);
}

TEST_F(ReportTest, JsonStructure)
{
    const auto j = gen_.toJson(apps::litecoin(), 10e6);
    const auto s = j.dump();
    EXPECT_NE(s.find("\"application\":\"Litecoin\""),
              std::string::npos);
    EXPECT_NE(s.find("\"nodes\":["), std::string::npos);
    EXPECT_NE(s.find("\"optimal_node_ranges\""), std::string::npos);
    EXPECT_NE(s.find("\"two_for_two\""), std::string::npos);
    EXPECT_NE(s.find("\"nre\""), std::string::npos);
    EXPECT_NE(s.find("\"server_cost_breakdown\""), std::string::npos);
}

TEST_F(ReportTest, JsonOmitsWorkloadWhenZero)
{
    const auto s = gen_.toJson(apps::litecoin()).dump();
    EXPECT_EQ(s.find("two_for_two"), std::string::npos);
    EXPECT_EQ(s.find("workload_tco"), std::string::npos);
}

TEST_F(ReportTest, DeepLearningReportListsOnlyFeasibleNodes)
{
    std::ostringstream os;
    gen_.writeText(os, apps::deepLearning());
    const auto s = os.str();
    // The per-node table starts after the header; 250nm never
    // appears since DL cannot be built there.
    EXPECT_EQ(s.find("250nm"), std::string::npos);
    EXPECT_NE(s.find("40nm"), std::string::npos);
}

} // namespace
} // namespace moonwalk::core
