#include <gtest/gtest.h>

#include "core/two_for_two.hh"
#include "util/error.hh"

namespace moonwalk::core {
namespace {

using tech::NodeId;

class TwoForTwoTest : public ::testing::Test
{
  protected:
    static dse::ExplorerOptions coarse()
    {
        dse::ExplorerOptions o;
        o.voltage_steps = 10;
        o.rca_count_steps = 8;
        return o;
    }

    MoonwalkOptimizer opt_{dse::DesignSpaceExplorer{coarse()}};
    TwoForTwoRule rule_{opt_};
};

TEST_F(TwoForTwoTest, Condition2AlwaysHoldsForBitcoin)
{
    // Table 6: ASICs beat the GPU baseline by orders of magnitude,
    // so condition 2 passes at every node regardless of scale.
    for (const auto &v : rule_.evaluate(apps::bitcoin(), 1e6)) {
        EXPECT_TRUE(v.condition2) << tech::to_string(v.node);
        EXPECT_GT(v.tco_per_ops_gain, 2.0);
    }
}

TEST_F(TwoForTwoTest, Condition1GatesByScale)
{
    // A $100K workload cannot justify even the cheapest mask set; a
    // $100M workload justifies many nodes.
    for (const auto &v : rule_.evaluate(apps::bitcoin(), 100e3))
        EXPECT_FALSE(v.condition1) << tech::to_string(v.node);

    int passing = 0;
    for (const auto &v : rule_.evaluate(apps::bitcoin(), 100e6))
        if (v.passes())
            ++passing;
    EXPECT_GE(passing, 6);
}

TEST_F(TwoForTwoTest, PaperYouTubeExample)
{
    // Section 1: "if YouTube spends $30 million a year on video
    // transcoding, and the NRE of developing the accelerator is $10
    // million, a 3x ratio, they clearly pass the bar."  Check our
    // video NREs leave a 28nm build passing at $30M scale.
    const auto verdicts = rule_.evaluate(apps::videoTranscode(), 30e6);
    bool found28 = false;
    for (const auto &v : verdicts) {
        if (v.node == NodeId::N28) {
            found28 = true;
            EXPECT_TRUE(v.passes());
            EXPECT_GT(v.tco_over_nre, 3.0);
        }
    }
    EXPECT_TRUE(found28);
}

TEST_F(TwoForTwoTest, NetSavingConsistent)
{
    const double w = 50e6;
    for (const auto &v : rule_.evaluate(apps::litecoin(), w)) {
        // Passing nodes must show positive net saving at 2x gain.
        if (v.passes()) {
            EXPECT_GT(v.net_saving, 0.0) << tech::to_string(v.node);
        }
        // Saving never exceeds the workload itself.
        EXPECT_LT(v.net_saving, w);
    }
}

TEST_F(TwoForTwoTest, BreakEvenMatchesVerdicts)
{
    const auto be = rule_.breakEvenTco(apps::bitcoin());
    ASSERT_TRUE(be.has_value());
    // Just below break-even: nothing passes; just above: something
    // does.
    for (const auto &v : rule_.evaluate(apps::bitcoin(), *be * 0.99))
        EXPECT_FALSE(v.passes());
    bool any = false;
    for (const auto &v : rule_.evaluate(apps::bitcoin(), *be * 1.01))
        any = any || v.passes();
    EXPECT_TRUE(any);
}

TEST_F(TwoForTwoTest, BreakEvenUsesTheCheapestPassingNre)
{
    const auto be = rule_.breakEvenTco(apps::bitcoin());
    ASSERT_TRUE(be.has_value());
    // Bitcoin's cheapest NRE is the 250nm build at ~$560K; break-even
    // is twice that.
    EXPECT_GT(*be, 0.9e6);
    EXPECT_LT(*be, 1.6e6);
}

TEST_F(TwoForTwoTest, CustomRatio)
{
    TwoForTwoRule strict(opt_, 10.0);
    const auto be2 = rule_.breakEvenTco(apps::bitcoin());
    const auto be10 = strict.breakEvenTco(apps::bitcoin());
    ASSERT_TRUE(be2 && be10);
    EXPECT_NEAR(*be10 / *be2, 5.0, 1e-9);
}

TEST_F(TwoForTwoTest, RejectsNegativeWorkload)
{
    EXPECT_THROW(rule_.evaluate(apps::bitcoin(), -1.0), ModelError);
}

} // namespace
} // namespace moonwalk::core
