#include <gtest/gtest.h>

#include "core/agility.hh"
#include "util/error.hh"

namespace moonwalk::core {
namespace {

using tech::NodeId;

class AgilityTest : public ::testing::Test
{
  protected:
    static dse::ExplorerOptions coarse()
    {
        dse::ExplorerOptions o;
        o.voltage_steps = 8;
        o.rca_count_steps = 6;
        return o;
    }

    MoonwalkOptimizer opt_{dse::DesignSpaceExplorer{coarse()}};
    AgilityPlanner planner_{opt_};
};

TEST_F(AgilityTest, PlanAccounting)
{
    AgilityParams p;
    p.horizon_years = 6;
    p.annual_workload_tco = 10e6;
    p.respin_periods = {2};
    for (const auto &plan : planner_.evaluateAll(apps::bitcoin(), p)) {
        EXPECT_EQ(plan.respin_period_years, 2);
        EXPECT_EQ(plan.tapeouts, 3);
        EXPECT_GT(plan.total_nre, 0.0);
        EXPECT_GT(plan.total_served_tco, 0.0);
        // Served cost never exceeds staying on the baseline.
        EXPECT_LE(plan.total_served_tco,
                  AgilityPlanner::baselineCost(p) * (1 + 1e-12));
    }
}

TEST_F(AgilityTest, ZeroDriftPrefersOneTapeout)
{
    // Without software drift there is no reason to respin: the best
    // plan builds once.
    AgilityParams p;
    p.horizon_years = 6;
    p.annual_workload_tco = 20e6;
    p.software_drift_per_year = 0.0;
    const auto best = planner_.best(apps::bitcoin(), p);
    EXPECT_EQ(best.respin_period_years, 6);
    EXPECT_EQ(best.tapeouts, 1);
}

TEST_F(AgilityTest, HighDriftShortensCadence)
{
    AgilityParams slow;
    slow.horizon_years = 6;
    slow.annual_workload_tco = 30e6;
    slow.software_drift_per_year = 0.0;
    AgilityParams fast = slow;
    fast.software_drift_per_year = 1.5;  // ASIC halves in value fast
    const auto b_slow = planner_.best(apps::bitcoin(), slow);
    const auto b_fast = planner_.best(apps::bitcoin(), fast);
    EXPECT_LT(b_fast.respin_period_years, b_slow.respin_period_years);
}

TEST_F(AgilityTest, FrequentRespinsFavorCheaperNre)
{
    // At an annual scale where a single build would justify a newer
    // node, yearly respins push toward older (cheaper-NRE) silicon:
    // the chosen node under high drift is not newer than under none.
    AgilityParams none;
    none.horizon_years = 6;
    none.annual_workload_tco = 50e6;
    none.software_drift_per_year = 0.0;
    AgilityParams high = none;
    high.software_drift_per_year = 2.0;
    const auto b_none = planner_.best(apps::bitcoin(), none);
    const auto b_high = planner_.best(apps::bitcoin(), high);
    EXPECT_LE(tech::nodeIndex(b_high.node),
              tech::nodeIndex(b_none.node));
}

TEST_F(AgilityTest, TotalCostBeatsBaselineAtScale)
{
    AgilityParams p;
    p.horizon_years = 6;
    p.annual_workload_tco = 30e6;
    const auto best = planner_.best(apps::bitcoin(), p);
    EXPECT_LT(best.totalCost(), AgilityPlanner::baselineCost(p));
}

TEST_F(AgilityTest, PeriodsLongerThanHorizonIgnored)
{
    AgilityParams p;
    p.horizon_years = 2;
    p.annual_workload_tco = 10e6;
    p.respin_periods = {1, 2, 3, 6};
    for (const auto &plan : planner_.evaluateAll(apps::bitcoin(), p))
        EXPECT_LE(plan.respin_period_years, 2);
}

TEST_F(AgilityTest, Rejections)
{
    AgilityParams p;
    p.horizon_years = 0;
    EXPECT_THROW(planner_.evaluateAll(apps::bitcoin(), p), ModelError);
    p.horizon_years = 3;
    p.annual_workload_tco = -1;
    EXPECT_THROW(planner_.best(apps::bitcoin(), p), ModelError);
    p.annual_workload_tco = 1e6;
    p.software_drift_per_year = -0.5;
    EXPECT_THROW(planner_.best(apps::bitcoin(), p), ModelError);
}

} // namespace
} // namespace moonwalk::core
