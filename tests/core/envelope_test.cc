/**
 * @file
 * Unit tests for the lower-envelope (optimal node range) machinery of
 * Figures 10/11, using synthetic lines with known crossovers.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "core/optimizer.hh"
#include "util/error.hh"

namespace moonwalk::core {
namespace {

using tech::NodeId;

TotalCostLine
line(std::optional<NodeId> node, double nre, double slope)
{
    return {node, nre, slope};
}

TEST(Envelope, BaselineAloneCoversEverything)
{
    const auto ranges = MoonwalkOptimizer::optimalNodeRanges(
        std::vector<TotalCostLine>{line(std::nullopt, 0, 1.0)});
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0].b_low, 0.0);
    EXPECT_TRUE(std::isinf(ranges[0].b_high));
    EXPECT_FALSE(ranges[0].line.node.has_value());
}

TEST(Envelope, SingleCrossover)
{
    // ASIC: NRE 100, slope 0.5 -> crossover at B = 200.
    const auto ranges = MoonwalkOptimizer::optimalNodeRanges(std::vector<TotalCostLine>{
        line(std::nullopt, 0, 1.0),
        line(NodeId::N65, 100, 0.5),
    });
    ASSERT_EQ(ranges.size(), 2u);
    EXPECT_FALSE(ranges[0].line.node.has_value());
    EXPECT_NEAR(ranges[0].b_high, 200.0, 1e-9);
    EXPECT_EQ(*ranges[1].line.node, NodeId::N65);
    EXPECT_NEAR(ranges[1].b_low, 200.0, 1e-9);
}

TEST(Envelope, MiddleLineSkippedWhenNeverOptimal)
{
    // The middle line is dominated by the envelope of the outer two.
    const auto ranges = MoonwalkOptimizer::optimalNodeRanges(std::vector<TotalCostLine>{
        line(std::nullopt, 0, 1.0),
        line(NodeId::N90, 500, 0.9),   // never cheapest
        line(NodeId::N28, 100, 0.1),
    });
    ASSERT_EQ(ranges.size(), 2u);
    EXPECT_FALSE(ranges[0].line.node.has_value());
    EXPECT_EQ(*ranges[1].line.node, NodeId::N28);
}

TEST(Envelope, ThreeSegmentChain)
{
    const auto ranges = MoonwalkOptimizer::optimalNodeRanges(std::vector<TotalCostLine>{
        line(std::nullopt, 0, 1.0),
        line(NodeId::N250, 50, 0.5),   // takes over at B = 100
        line(NodeId::N16, 1000, 0.1),  // takes over at B = 2375
    });
    ASSERT_EQ(ranges.size(), 3u);
    EXPECT_NEAR(ranges[1].b_low, 100.0, 1e-9);
    EXPECT_NEAR(ranges[2].b_low, 2375.0, 1e-9);
    EXPECT_EQ(*ranges[2].line.node, NodeId::N16);
}

TEST(Envelope, EqualSlopeKeepsCheaperNre)
{
    const auto ranges = MoonwalkOptimizer::optimalNodeRanges(std::vector<TotalCostLine>{
        line(std::nullopt, 0, 1.0),
        line(NodeId::N65, 100, 0.5),
        line(NodeId::N90, 200, 0.5),  // same slope, more NRE: dropped
    });
    for (const auto &r : ranges)
        EXPECT_NE(r.line.node.value_or(NodeId::N250), NodeId::N90);
}

TEST(Envelope, CheaperAndShallowerDominatesSteeper)
{
    // N28 has lower NRE *and* lower slope than N90: N90 never appears.
    const auto ranges = MoonwalkOptimizer::optimalNodeRanges(std::vector<TotalCostLine>{
        line(std::nullopt, 0, 1.0),
        line(NodeId::N90, 500, 0.5),
        line(NodeId::N28, 400, 0.3),
    });
    ASSERT_EQ(ranges.size(), 2u);
    EXPECT_EQ(*ranges[1].line.node, NodeId::N28);
}

TEST(Envelope, SegmentsTileTheAxis)
{
    const auto ranges = MoonwalkOptimizer::optimalNodeRanges(std::vector<TotalCostLine>{
        line(std::nullopt, 0, 1.0),
        line(NodeId::N250, 60, 0.6),
        line(NodeId::N65, 300, 0.25),
        line(NodeId::N16, 5000, 0.05),
    });
    EXPECT_EQ(ranges.front().b_low, 0.0);
    for (size_t i = 1; i < ranges.size(); ++i)
        EXPECT_DOUBLE_EQ(ranges[i].b_low, ranges[i - 1].b_high);
    EXPECT_TRUE(std::isinf(ranges.back().b_high));
}

TEST(Envelope, EnvelopeIsActuallyMinimal)
{
    // Property: at sample points, the envelope's line is the argmin.
    const std::vector<TotalCostLine> lines = {
        line(std::nullopt, 0, 1.0),
        line(NodeId::N250, 61, 0.55),
        line(NodeId::N180, 86, 0.40),
        line(NodeId::N65, 1194, 0.05),
        line(NodeId::N16, 6451, 0.007),
    };
    const auto ranges = MoonwalkOptimizer::optimalNodeRanges(lines);
    for (double b = 1.0; b < 1e7; b *= 1.7) {
        double best = 1e300;
        for (const auto &l : lines)
            best = std::min(best, l.at(b));
        // Which segment covers b?
        for (const auto &r : ranges) {
            if (b >= r.b_low && b < r.b_high) {
                EXPECT_NEAR(r.line.at(b), best,
                            1e-9 * std::max(1.0, best));
            }
        }
    }
}

TEST(Envelope, RejectsEmptyInput)
{
    EXPECT_THROW(MoonwalkOptimizer::optimalNodeRanges(std::vector<TotalCostLine>{}), ModelError);
}

} // namespace
} // namespace moonwalk::core
