/**
 * @file
 * Tech-parity-node selection (Figure 12) properties.
 */
#include <gtest/gtest.h>

#include "core/optimizer.hh"
#include "util/error.hh"

namespace moonwalk::core {
namespace {

using tech::NodeId;

class ParityTest : public ::testing::Test
{
  protected:
    static dse::ExplorerOptions coarse()
    {
        dse::ExplorerOptions o;
        o.voltage_steps = 10;
        o.rca_count_steps = 8;
        return o;
    }

    MoonwalkOptimizer opt_{dse::DesignSpaceExplorer{coarse()}};

    int
    indexOf(const std::optional<NodeId> &node)
    {
        // baseline sorts before every node.
        return node ? 1 + tech::nodeIndex(*node) : 0;
    }
};

TEST_F(ParityTest, MonotoneInWorkload)
{
    // For a fixed parity node, bigger workloads never pick older
    // nodes.
    const auto app = apps::bitcoin();
    int prev = -1;
    for (double b = 1e5; b <= 1e11; b *= 10.0) {
        const auto pick =
            opt_.optimalNodeForParity(app, NodeId::N250, 1.0, b);
        const int idx = indexOf(pick);
        EXPECT_GE(idx, prev) << "at " << b;
        prev = idx;
    }
}

TEST_F(ParityTest, ParityScaleEffects)
{
    // A better hypothetical baseline (the "/N" keys) has two
    // effects.  (1) Less gain to harvest: small workloads stop
    // justifying a build at all.
    const auto app = apps::bitcoin();
    const auto n1 =
        opt_.optimalNodeForParity(app, NodeId::N250, 1.0, 1e6);
    const auto n8 =
        opt_.optimalNodeForParity(app, NodeId::N250, 8.0, 1e6);
    EXPECT_TRUE(n1.has_value());
    EXPECT_FALSE(n8.has_value());

    // (2) Conditional on building, a better baseline scales every
    // ASIC line's slope up, which acts like a larger workload: the
    // chosen node is never older (Figure 12's /N rows shift right).
    int prev = -1;
    for (double scale : {1.0, 2.0, 4.0, 8.0}) {
        const auto pick = opt_.optimalNodeForParity(
            app, NodeId::N250, scale, 100e6);
        ASSERT_TRUE(pick.has_value()) << "/" << scale;
        const int idx = indexOf(pick);
        EXPECT_GE(idx, prev) << "at /" << scale;
        prev = idx;
    }
}

TEST_F(ParityTest, NewerParityNodesPushTowardBaseline)
{
    // If the baseline already matches a 16nm ASIC, no build ever
    // pays off.
    const auto app = apps::bitcoin();
    for (double b : {1e6, 1e8, 1e10}) {
        const auto pick =
            opt_.optimalNodeForParity(app, NodeId::N16, 1.0, b);
        EXPECT_FALSE(pick.has_value()) << "at " << b;
    }
}

TEST_F(ParityTest, PaperReadingExample)
{
    // Section 7.5: "if the parity node is 250nm and the emerging
    // computation has a $25M TCO, then 40nm would be a reasonable
    // target node."  Accept the neighborhood (65nm-28nm).
    const auto pick = opt_.optimalNodeForParity(
        apps::bitcoin(), NodeId::N250, 1.0, 25e6);
    ASSERT_TRUE(pick.has_value());
    EXPECT_GE(tech::nodeIndex(*pick), tech::nodeIndex(NodeId::N65));
    EXPECT_LE(tech::nodeIndex(*pick), tech::nodeIndex(NodeId::N28));
}

TEST_F(ParityTest, InfeasibleParityNodeRejected)
{
    // Deep Learning cannot be built at 250nm, so using it as a
    // parity reference is a user error.
    EXPECT_THROW(opt_.optimalNodeForParity(apps::deepLearning(),
                                           NodeId::N250, 1.0, 1e6),
                 ModelError);
}

} // namespace
} // namespace moonwalk::core
