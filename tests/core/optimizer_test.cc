#include <gtest/gtest.h>

#include "core/optimizer.hh"

namespace moonwalk::core {
namespace {

using tech::NodeId;

class OptimizerTest : public ::testing::Test
{
  protected:
    static dse::ExplorerOptions coarse()
    {
        dse::ExplorerOptions o;
        o.voltage_steps = 10;
        o.rca_count_steps = 8;
        o.max_drams_per_die = 8;
        o.dark_fractions = {0.0, 0.10};
        return o;
    }

    MoonwalkOptimizer opt_{dse::DesignSpaceExplorer{coarse()}};
};

TEST_F(OptimizerTest, BitcoinFeasibleOnAllEightNodes)
{
    const auto &sweep = opt_.sweepNodes(apps::bitcoin());
    EXPECT_EQ(sweep.size(), 8u);
    // Oldest first.
    EXPECT_EQ(sweep.front().node, NodeId::N250);
    EXPECT_EQ(sweep.back().node, NodeId::N16);
}

TEST_F(OptimizerTest, TcoPerOpsImprovesMonotonically)
{
    // Figure 6 / Tables 7-10: every newer node lowers TCO per op/s.
    const auto &sweep = opt_.sweepNodes(apps::bitcoin());
    for (size_t i = 1; i < sweep.size(); ++i)
        EXPECT_LT(sweep[i].tcoPerOps(), sweep[i - 1].tcoPerOps())
            << tech::to_string(sweep[i].node);
}

TEST_F(OptimizerTest, NreGrowsMonotonically)
{
    const auto &sweep = opt_.sweepNodes(apps::bitcoin());
    for (size_t i = 1; i < sweep.size(); ++i)
        EXPECT_GT(sweep[i].nre.total(), sweep[i - 1].nre.total());
}

TEST_F(OptimizerTest, DeepLearningOnlyAt40nmAndNewer)
{
    const auto &sweep = opt_.sweepNodes(apps::deepLearning());
    ASSERT_EQ(sweep.size(), 3u);
    EXPECT_EQ(sweep[0].node, NodeId::N40);
    EXPECT_EQ(sweep[1].node, NodeId::N28);
    EXPECT_EQ(sweep[2].node, NodeId::N16);
}

TEST_F(OptimizerTest, SweepIsCached)
{
    const auto &a = opt_.sweepNodes(apps::bitcoin());
    const auto &b = opt_.sweepNodes(apps::bitcoin());
    EXPECT_EQ(&a, &b);
}

TEST_F(OptimizerTest, BaselineTcoPerOpsMatchesTable6)
{
    // 2,320 $/GH/s for the AMD 7970 (Table 6); ops are hashes here.
    const double t = opt_.baselineTcoPerOps(apps::bitcoin());
    EXPECT_NEAR(t * 1e9, 2320.0, 0.08 * 2320.0);
}

TEST_F(OptimizerTest, AsicBeatsBaselineByOrdersOfMagnitude)
{
    // The two-for-two rule's second condition is over-satisfied
    // (Table 6: >700x for Bitcoin at 28nm; even 250nm is ~12x).
    const auto &sweep = opt_.sweepNodes(apps::bitcoin());
    const double base = opt_.baselineTcoPerOps(apps::bitcoin());
    for (const auto &r : sweep)
        EXPECT_LT(r.tcoPerOps() * 8.0, base) << tech::to_string(r.node);
}

TEST_F(OptimizerTest, TotalCostLinesIncludeBaseline)
{
    const auto lines = opt_.totalCostLines(apps::bitcoin());
    ASSERT_EQ(lines.size(), 9u);  // baseline + 8 nodes
    EXPECT_FALSE(lines[0].node.has_value());
    EXPECT_DOUBLE_EQ(lines[0].nre, 0.0);
    EXPECT_DOUBLE_EQ(lines[0].slope, 1.0);
    for (size_t i = 1; i < lines.size(); ++i) {
        EXPECT_GT(lines[i].nre, 0.0);
        EXPECT_LT(lines[i].slope, 0.2);  // ASICs are far cheaper/op
    }
}

TEST_F(OptimizerTest, OptimalNodeRangesStartAtBaseline)
{
    const auto ranges = opt_.optimalNodeRanges(apps::bitcoin());
    ASSERT_GE(ranges.size(), 3u);
    // Tiny workloads stay on GPUs; huge ones use the newest nodes.
    EXPECT_FALSE(ranges.front().line.node.has_value());
    EXPECT_TRUE(ranges.back().line.node.has_value());
    // Old nodes appear before newer nodes along the TCO axis.
    int prev_index = -1;
    for (size_t i = 1; i < ranges.size(); ++i) {
        ASSERT_TRUE(ranges[i].line.node.has_value());
        const int idx = tech::nodeIndex(*ranges[i].line.node);
        EXPECT_GT(idx, prev_index);
        prev_index = idx;
    }
}

TEST_F(OptimizerTest, PortingPenaltyAtLeastOne)
{
    const auto entries = opt_.portingStudy(apps::bitcoin());
    ASSERT_FALSE(entries.empty());
    for (const auto &e : entries) {
        // >= 1 up to sweep-grid resolution: the ported design can
        // land marginally below the grid-found native optimum.
        EXPECT_GE(e.tco_penalty, 0.97)
            << tech::to_string(e.from) << "->" << tech::to_string(e.to);
        EXPECT_LT(tech::nodeIndex(e.from), tech::nodeIndex(e.to));
    }
}

TEST_F(OptimizerTest, PortingPenaltyGrowsWithDistance)
{
    // Section 6.2: the farther the destination from the source, the
    // less optimal the ported design.  Check 250nm source ported one
    // node vs all the way to 16nm.
    const auto entries = opt_.portingStudy(apps::bitcoin());
    double one_step = 0.0;
    double full_jump = 0.0;
    for (const auto &e : entries) {
        if (e.from == NodeId::N250 && e.to == NodeId::N180)
            one_step = e.tco_penalty;
        if (e.from == NodeId::N250 && e.to == NodeId::N16)
            full_jump = e.tco_penalty;
    }
    ASSERT_GT(one_step, 0.0);
    ASSERT_GT(full_jump, 0.0);
    EXPECT_GT(full_jump, one_step);
}

TEST_F(OptimizerTest, ParityNodeSelection)
{
    // With the real Bitcoin baseline the parity node is far older
    // than 250nm; using 250nm parity and a modest workload should
    // recommend an old node, and a huge workload a newer one.
    const auto small = opt_.optimalNodeForParity(
        apps::bitcoin(), NodeId::N250, 1.0, 25e6);
    const auto huge = opt_.optimalNodeForParity(
        apps::bitcoin(), NodeId::N250, 1.0, 25e9);
    ASSERT_TRUE(small.has_value());
    ASSERT_TRUE(huge.has_value());
    EXPECT_LT(tech::nodeIndex(*small), tech::nodeIndex(*huge));
}

TEST_F(OptimizerTest, ParityTinyWorkloadStaysOnBaseline)
{
    const auto choice = opt_.optimalNodeForParity(
        apps::bitcoin(), NodeId::N250, 1.0, 1e3);
    EXPECT_FALSE(choice.has_value());
}

} // namespace
} // namespace moonwalk::core
