#include <gtest/gtest.h>

#include "cost/yield.hh"
#include "util/error.hh"

namespace moonwalk::cost {
namespace {

TEST(Yield, MurphyLimits)
{
    EXPECT_DOUBLE_EQ(murphyYield(0.0, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(murphyYield(100.0, 0.0), 1.0);
    // Yield falls with area and defect density.
    EXPECT_LT(murphyYield(600.0, 0.2), murphyYield(100.0, 0.2));
    EXPECT_LT(murphyYield(100.0, 0.5), murphyYield(100.0, 0.1));
}

TEST(Yield, MurphyKnownValue)
{
    // AD = 1: y = (1 - e^-1)^2 = 0.3996.
    EXPECT_NEAR(murphyYield(500.0, 0.2), 0.3996, 1e-3);
}

TEST(Yield, PoissonKnownValue)
{
    // AD = 1: y = e^-1.
    EXPECT_NEAR(poissonYield(500.0, 0.2), 0.3679, 1e-3);
}

TEST(Yield, PoissonBelowMurphy)
{
    // Murphy (clustered defects) is always at least Poisson.
    for (double a : {50.0, 200.0, 600.0})
        EXPECT_GE(murphyYield(a, 0.25), poissonYield(a, 0.25));
}

TEST(Yield, RejectsNegativeInputs)
{
    EXPECT_THROW(murphyYield(-1.0, 0.1), ModelError);
    EXPECT_THROW(poissonYield(10.0, -0.1), ModelError);
}

} // namespace
} // namespace moonwalk::cost
