#include <gtest/gtest.h>

#include "cost/die_cost.hh"
#include "tech/database.hh"
#include "util/error.hh"
#include "util/math.hh"

namespace moonwalk::cost {
namespace {

using tech::NodeId;

class DieCostTest : public ::testing::Test
{
  protected:
    const tech::TechDatabase &db_ = tech::defaultTechDatabase();
    DieCostModel model_;
};

TEST_F(DieCostTest, PaperDieCostsWithinBand)
{
    // Tables 7-10 die costs ($) for (node, area): harvested arrays
    // make die cost ~ wafer / gross dies.
    struct Case { NodeId node; double area; double paper; };
    const Case cases[] = {
        {NodeId::N250, 559, 16}, {NodeId::N180, 579, 18},
        {NodeId::N130, 588, 29}, {NodeId::N90, 600, 32},
        {NodeId::N65, 599, 33}, {NodeId::N40, 540, 42},
        {NodeId::N28, 540, 66}, {NodeId::N16, 420, 74},
        {NodeId::N28, 498, 65},  // video transcode
        {NodeId::N16, 177, 34},
    };
    for (const auto &c : cases) {
        const double cost = model_.dieCost(db_.node(c.node), c.area);
        EXPECT_LT(moonwalk::relativeError(cost, c.paper), 0.25)
            << tech::to_string(c.node) << " " << c.area << "mm^2: "
            << cost << " vs " << c.paper;
    }
}

TEST_F(DieCostTest, CostIncreasesWithArea)
{
    const auto &n = db_.node(NodeId::N28);
    double prev = 0.0;
    for (double a : {100.0, 200.0, 400.0, 600.0}) {
        const double c = model_.dieCost(n, a);
        EXPECT_GT(c, prev);
        prev = c;
    }
}

TEST_F(DieCostTest, SuperlinearAtLargeAreaFromEdgeLoss)
{
    const auto &n = db_.node(NodeId::N28);
    const double c300 = model_.dieCost(n, 300.0);
    const double c600 = model_.dieCost(n, 600.0);
    EXPECT_GT(c600, 2.0 * c300);
}

TEST_F(DieCostTest, GoodRcaFractionNearOneForSmallRcas)
{
    const auto &n = db_.node(NodeId::N28);
    // A 0.7mm^2 Bitcoin RCA virtually always yields.
    EXPECT_GT(model_.goodRcaFraction(n, 0.7), 0.995);
    // A 65mm^2 DaDianNao node at 28nm has noticeable fallout.
    EXPECT_LT(model_.goodRcaFraction(n, 65.0), 0.99);
    EXPECT_GT(model_.goodRcaFraction(n, 65.0), 0.80);
}

TEST_F(DieCostTest, OversizedDieRejected)
{
    EXPECT_THROW(model_.dieCost(db_.node(NodeId::N250), 40000.0),
                 ModelError);
}

} // namespace
} // namespace moonwalk::cost
