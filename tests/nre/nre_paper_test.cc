/**
 * @file
 * Reconstructs the paper's published per-node NRE totals (the "NRE K$"
 * rows of Tables 7-10) from Table 3/4/5 inputs and checks our model
 * lands within a ~12% band — the residual is rounding in the paper's
 * man-month figures (see DESIGN.md and EXPERIMENTS.md).
 */
#include <gtest/gtest.h>

#include "apps/apps.hh"
#include "nre/nre_model.hh"
#include "tech/database.hh"
#include "util/math.hh"

namespace moonwalk::nre {
namespace {

using tech::NodeId;

struct PaperNre
{
    const char *app;
    NodeId node;
    double clock_mhz;      // Tables 7-10 "Freq." row
    int dram_interfaces;   // Table 10 "DRAMs per Die" row
    double paper_nre;      // Tables 7-10 "NRE K$" row
};

// Frequencies/DRAM counts are the paper's TCO-optimal designs, which
// determine PLL and DRAM IP needs.
const PaperNre kCases[] = {
    {"Bitcoin", NodeId::N250, 37, 0, 561e3},
    {"Bitcoin", NodeId::N180, 54, 0, 602e3},
    {"Bitcoin", NodeId::N130, 77, 0, 790e3},
    {"Bitcoin", NodeId::N90, 93, 0, 1054e3},
    {"Bitcoin", NodeId::N65, 100, 0, 1194e3},
    {"Bitcoin", NodeId::N40, 121, 0, 1845e3},
    {"Bitcoin", NodeId::N28, 149, 0, 2760e3},
    {"Bitcoin", NodeId::N16, 169, 0, 6451e3},
    {"Litecoin", NodeId::N250, 78, 0, 591e3},
    {"Litecoin", NodeId::N130, 173, 0, 835e3},
    {"Litecoin", NodeId::N28, 576, 0, 2823e3},
    {"Litecoin", NodeId::N16, 776, 0, 6404e3},
    {"Video Transcode", NodeId::N250, 56, 1, 2216e3},
    {"Video Transcode", NodeId::N65, 215, 1, 3179e3},
    {"Video Transcode", NodeId::N28, 429, 6, 4993e3},
    {"Video Transcode", NodeId::N16, 705, 9, 10093e3},
    {"Deep Learning", NodeId::N40, 607, 0, 3259e3},
    {"Deep Learning", NodeId::N28, 606, 0, 4301e3},
    {"Deep Learning", NodeId::N16, 617, 0, 8616e3},
};

class NrePaper : public ::testing::TestWithParam<PaperNre>
{
};

TEST_P(NrePaper, TotalWithinBandOfPaper)
{
    const auto &c = GetParam();
    const auto app = apps::appByName(c.app);
    NreModel model;
    DesignIpNeeds needs;
    needs.clock_mhz = c.clock_mhz;
    needs.dram_interfaces = c.dram_interfaces;
    needs.high_speed_link = app.rca.needs_high_speed_link;
    needs.lvds_io = app.rca.needs_lvds;
    const auto b = model.compute(
        tech::defaultTechDatabase().node(c.node), app.nre, needs);
    EXPECT_LT(moonwalk::relativeError(b.total(), c.paper_nre), 0.08)
        << "model " << b.total() << " vs paper " << c.paper_nre;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTables, NrePaper, ::testing::ValuesIn(kCases),
    [](const auto &info) {
        std::string name = std::string(info.param.app) + "_" +
            tech::to_string(info.param.node);
        for (auto &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

TEST(NrePaperTrends, MaskDominatesAtAdvancedNodes)
{
    // Section 4: mask cost reaches ~90% of NRE for advanced-node
    // Bitcoin; on old nodes non-mask NRE dominates.
    const auto app = apps::bitcoin();
    NreModel model;
    const auto &db = tech::defaultTechDatabase();
    const auto b16 = model.compute(db.node(NodeId::N16), app.nre,
                                   {.clock_mhz = 169});
    const auto b250 = model.compute(db.node(NodeId::N250), app.nre,
                                    {.clock_mhz = 37});
    EXPECT_GT(b16.mask / b16.total(), 0.80);
    EXPECT_LT(b250.mask / b250.total(), 0.20);
}

TEST(NrePaperTrends, NreRisesMonotonicallyWithNode)
{
    const auto app = apps::bitcoin();
    NreModel model;
    double prev = 0.0;
    for (tech::NodeId id : tech::kAllNodes) {
        const auto b = model.compute(
            tech::defaultTechDatabase().node(id), app.nre,
            {.clock_mhz = 100});
        EXPECT_GT(b.total(), prev) << tech::to_string(id);
        prev = b.total();
    }
}

} // namespace
} // namespace moonwalk::nre
