#include <gtest/gtest.h>

#include "nre/nre_model.hh"
#include "tech/database.hh"
#include "util/error.hh"

namespace moonwalk::nre {
namespace {

using tech::NodeId;

class NreModelTest : public ::testing::Test
{
  protected:
    const tech::TechDatabase &db_ = tech::defaultTechDatabase();
    NreModel model_;

    AppNreParams simpleApp() const
    {
        AppNreParams a;
        a.app_name = "toy";
        a.rca_gate_count = 100e3;
        a.frontend_cad_months = 5;
        a.frontend_mm = 6;
        a.fpga_job_distribution_mm = 1;
        a.fpga_bios_mm = 1;
        a.cloud_software_mm = 1;
        a.pcb_design_cost = 30e3;
        return a;
    }
};

TEST_F(NreModelTest, LaborCostIncludesOverhead)
{
    NreParameters p;
    // 12 man-months at $115K/yr with 65% overhead.
    EXPECT_NEAR(p.laborCost(12, 115e3), 115e3 * 1.65, 1e-6);
}

TEST_F(NreModelTest, MaskCostComesFromNode)
{
    const auto b = model_.compute(db_.node(NodeId::N28), simpleApp(),
                                  {});
    EXPECT_DOUBLE_EQ(b.mask, 2.25e6);
    EXPECT_DOUBLE_EQ(b.package, 105e3);
}

TEST_F(NreModelTest, BackendScalesWithGates)
{
    auto small = simpleApp();
    auto large = simpleApp();
    large.rca_gate_count = 10 * small.rca_gate_count;
    const auto &n = db_.node(NodeId::N65);
    const auto bs = model_.compute(n, small, {});
    const auto bl = model_.compute(n, large, {});
    EXPECT_GT(bl.backend_labor, 5.0 * bs.backend_labor);
    EXPECT_GT(bl.backend_cad, 5.0 * bs.backend_cad);
    // Frontend is design-complexity driven, not node/gate driven here.
    EXPECT_DOUBLE_EQ(bl.frontend_labor, bs.frontend_labor);
}

TEST_F(NreModelTest, BackendCadFollowsLaborSchedule)
{
    const auto &n = db_.node(NodeId::N28);
    const auto app = simpleApp();
    const double months = model_.backendManMonths(n, app);
    const auto b = model_.compute(n, app, {});
    EXPECT_NEAR(b.backend_cad,
                months * model_.parameters().backend_cad_per_month,
                1e-6);
}

TEST_F(NreModelTest, SixteenNmBackendDoublePatterningPenalty)
{
    const auto app = simpleApp();
    const auto b28 = model_.compute(db_.node(NodeId::N28), app, {});
    const auto b16 = model_.compute(db_.node(NodeId::N16), app, {});
    EXPECT_NEAR(b16.backend_labor / b28.backend_labor, 0.263 / 0.131,
                1e-9);
}

TEST_F(NreModelTest, PllRequiredOnlyAbove150Mhz)
{
    const auto &n = db_.node(NodeId::N28);
    const auto app = simpleApp();
    DesignIpNeeds slow{.clock_mhz = 149.0};
    DesignIpNeeds fast{.clock_mhz = 151.0};
    EXPECT_NEAR(model_.ipCost(n, app, fast) -
                    model_.ipCost(n, app, slow),
                35e3, 1e-6);
}

TEST_F(NreModelTest, DramFallsBackToFreeSdrAtOldNodes)
{
    const auto app = simpleApp();
    DesignIpNeeds needs{.dram_interfaces = 2};
    // 180nm: no DDR IP -> free SDR controller, so IP cost equals the
    // no-DRAM cost.
    EXPECT_DOUBLE_EQ(model_.ipCost(db_.node(NodeId::N180), app, needs),
                     model_.ipCost(db_.node(NodeId::N180), app, {}));
    // 65nm: controller + PHY are licensed once regardless of count.
    EXPECT_NEAR(model_.ipCost(db_.node(NodeId::N65), app, needs) -
                    model_.ipCost(db_.node(NodeId::N65), app, {}),
                125e3 + 175e3, 1e-6);
}

TEST_F(NreModelTest, HighSpeedLinkImpossibleAtOldestNodes)
{
    const auto app = simpleApp();
    DesignIpNeeds needs{.high_speed_link = true};
    EXPECT_THROW(model_.ipCost(db_.node(NodeId::N250), app, needs),
                 ModelError);
    EXPECT_NO_THROW(model_.ipCost(db_.node(NodeId::N130), app, needs));
}

TEST_F(NreModelTest, ExtraIpCostFlowsThrough)
{
    auto app = simpleApp();
    app.extra_ip_cost = 200e3;  // e.g. the video decoder license
    const auto b = model_.compute(db_.node(NodeId::N65), app, {});
    EXPECT_DOUBLE_EQ(b.ip, 200e3);
}

TEST_F(NreModelTest, SystemLevelNre)
{
    const auto b = model_.compute(db_.node(NodeId::N65), simpleApp(),
                                  {});
    EXPECT_DOUBLE_EQ(b.pcb_design, 30e3);
    EXPECT_GT(b.system_labor, 0.0);
    EXPECT_DOUBLE_EQ(b.systemLevel(), b.system_labor + b.pcb_design);
}

TEST_F(NreModelTest, TotalIsSumOfComponents)
{
    const auto b = model_.compute(db_.node(NodeId::N40), simpleApp(),
                                  DesignIpNeeds{.clock_mhz = 400});
    EXPECT_NEAR(b.total(),
                b.mask + b.package + b.frontend_labor +
                    b.frontend_cad + b.backend_labor + b.backend_cad +
                    b.ip + b.system_labor + b.pcb_design,
                1e-9);
}

} // namespace
} // namespace moonwalk::nre
