#include <gtest/gtest.h>

#include "nre/ip_catalog.hh"

namespace moonwalk::nre {
namespace {

using tech::NodeId;

TEST(IpCatalog, Table4SpotValues)
{
    IpCatalog cat;
    EXPECT_DOUBLE_EQ(*cat.cost(IpBlock::DramPhy, NodeId::N16), 750e3);
    EXPECT_DOUBLE_EQ(*cat.cost(IpBlock::DramPhy, NodeId::N130), 150e3);
    EXPECT_DOUBLE_EQ(*cat.cost(IpBlock::PciePhy, NodeId::N65), 325e3);
    EXPECT_DOUBLE_EQ(*cat.cost(IpBlock::Pll, NodeId::N28), 35e3);
    EXPECT_DOUBLE_EQ(*cat.cost(IpBlock::LvdsIo, NodeId::N250), 7.5e3);
}

TEST(IpCatalog, StandardCellsFreeAt65nmAndOlder)
{
    IpCatalog cat;
    for (NodeId id : {NodeId::N250, NodeId::N180, NodeId::N130,
                      NodeId::N90, NodeId::N65}) {
        EXPECT_DOUBLE_EQ(*cat.cost(IpBlock::StdCellsSram, id), 0.0)
            << tech::to_string(id);
    }
    for (NodeId id : {NodeId::N40, NodeId::N28, NodeId::N16}) {
        EXPECT_DOUBLE_EQ(*cat.cost(IpBlock::StdCellsSram, id), 100e3)
            << tech::to_string(id);
    }
}

TEST(IpCatalog, NoDramOrPcieIpAtOldestNodes)
{
    IpCatalog cat;
    for (NodeId id : {NodeId::N250, NodeId::N180}) {
        EXPECT_FALSE(cat.available(IpBlock::DramController, id));
        EXPECT_FALSE(cat.available(IpBlock::DramPhy, id));
        EXPECT_FALSE(cat.available(IpBlock::PcieController, id));
        EXPECT_FALSE(cat.available(IpBlock::PciePhy, id));
    }
    EXPECT_TRUE(cat.available(IpBlock::DramPhy, NodeId::N130));
}

TEST(IpCatalog, PhyCostsRiseWithAdvancingNodes)
{
    // Figure 3: "High-speed I/O blocks rise exponentially."
    IpCatalog cat;
    double prev = 0.0;
    for (NodeId id : {NodeId::N130, NodeId::N90, NodeId::N65,
                      NodeId::N40, NodeId::N28, NodeId::N16}) {
        const double c = *cat.cost(IpBlock::DramPhy, id);
        EXPECT_GE(c, prev) << tech::to_string(id);
        prev = c;
    }
}

TEST(IpCatalog, BlockNames)
{
    EXPECT_EQ(to_string(IpBlock::DramPhy), "DRAM PHY");
    EXPECT_EQ(to_string(IpBlock::StdCellsSram), "Standard Cells, SRAM");
}

} // namespace
} // namespace moonwalk::nre
