#include <gtest/gtest.h>

#include "apps/apps.hh"
#include "nre/structured_asic.hh"
#include "tech/database.hh"
#include "util/error.hh"

namespace moonwalk::nre {
namespace {

using tech::NodeId;

class StructuredAsicTest : public ::testing::Test
{
  protected:
    NreModel model_;
    StructuredAsicParams params_;
    const tech::TechDatabase &db_ = tech::defaultTechDatabase();
};

TEST_F(StructuredAsicTest, PenaltiesAppliedToRca)
{
    const auto rca = apps::bitcoin().rca;
    const auto s = applyStructuredPenalties(rca, params_);
    EXPECT_NEAR(s.area_28_mm2, rca.area_28_mm2 * 2.2, 1e-12);
    EXPECT_NEAR(s.energy_per_op_28_j,
                rca.energy_per_op_28_j * 1.9, 1e-21);
    EXPECT_NEAR(s.f_nominal_28_mhz, rca.f_nominal_28_mhz * 0.7,
                1e-9);
    // Function is unchanged.
    EXPECT_DOUBLE_EQ(s.ops_per_cycle, rca.ops_per_cycle);
    EXPECT_DOUBLE_EQ(s.gate_count, rca.gate_count);
}

TEST_F(StructuredAsicTest, NreMuchCheaperAtAdvancedNodes)
{
    const auto app = apps::bitcoin();
    const DesignIpNeeds needs{.clock_mhz = 120};
    const auto &n28 = db_.node(NodeId::N28);
    const auto full = model_.compute(n28, app.nre, needs);
    const auto structured =
        structuredAsicNre(model_, n28, app.nre, needs, params_);
    // 28nm full-custom NRE is mask-dominated; the structured option
    // pays only 30% of masks and half the backend.
    EXPECT_LT(structured.total(), 0.55 * full.total());
    EXPECT_NEAR(structured.mask, 0.30 * full.mask, 1e-6);
    EXPECT_NEAR(structured.backend_labor, 0.5 * full.backend_labor,
                1e-6);
    EXPECT_DOUBLE_EQ(structured.package, 0.0);
    // Frontend and system costs unchanged.
    EXPECT_DOUBLE_EQ(structured.frontend_labor, full.frontend_labor);
    EXPECT_DOUBLE_EQ(structured.system_labor, full.system_labor);
}

TEST_F(StructuredAsicTest, SavingSmallerAtOldNodes)
{
    // Old-node NRE is labor/IP dominated, so the structured discount
    // shrinks (relative saving at 250nm < at 16nm).
    const auto app = apps::bitcoin().nre;
    const DesignIpNeeds needs{.clock_mhz = 100};
    auto ratio = [&](NodeId id) {
        const auto &n = db_.node(id);
        return structuredAsicNre(model_, n, app, needs, params_)
                   .total() /
            model_.compute(n, app, needs).total();
    };
    EXPECT_GT(ratio(NodeId::N250), ratio(NodeId::N16));
}

TEST_F(StructuredAsicTest, KeepVendorPackageToggle)
{
    StructuredAsicParams keep = params_;
    keep.reuse_vendor_package = false;
    const auto app = apps::bitcoin().nre;
    const auto &n = db_.node(NodeId::N40);
    const auto b = structuredAsicNre(model_, n, app, {}, keep);
    EXPECT_DOUBLE_EQ(b.package, model_.parameters().package_nre);
}

TEST_F(StructuredAsicTest, RejectsNonsensePenalties)
{
    const auto rca = apps::bitcoin().rca;
    StructuredAsicParams bad = params_;
    bad.area_penalty = 0.5;  // structured cannot beat full custom
    EXPECT_THROW(applyStructuredPenalties(rca, bad), ModelError);
    bad = params_;
    bad.freq_penalty = 1.5;
    EXPECT_THROW(applyStructuredPenalties(rca, bad), ModelError);

    StructuredAsicParams bad_nre = params_;
    bad_nre.mask_fraction = 0.0;
    EXPECT_THROW(structuredAsicNre(model_,
                                   db_.node(NodeId::N28),
                                   apps::bitcoin().nre, {}, bad_nre),
                 ModelError);
    bad_nre = params_;
    bad_nre.backend_scale = 1.5;
    EXPECT_THROW(structuredAsicNre(model_,
                                   db_.node(NodeId::N28),
                                   apps::bitcoin().nre, {}, bad_nre),
                 ModelError);
}

} // namespace
} // namespace moonwalk::nre
