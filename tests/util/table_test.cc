#include <sstream>

#include <gtest/gtest.h>

#include "util/error.hh"
#include "util/table.hh"

namespace moonwalk {
namespace {

TEST(Table, PrintsAlignedColumns)
{
    TextTable t({"Tech", "Mask cost"});
    t.addRow({"250nm", "$65K"});
    t.addRow({"16nm", "$5.70M"});
    std::ostringstream os;
    t.print(os);
    const auto s = os.str();
    EXPECT_NE(s.find("Tech"), std::string::npos);
    EXPECT_NE(s.find("$5.70M"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, TitleAppearsWhenSet)
{
    TextTable t({"a"});
    t.setTitle("Table 1");
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("== Table 1 =="), std::string::npos);
}

TEST(Table, RejectsWrongArity)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), ModelError);
}

TEST(Table, RejectsEmptyHeader)
{
    EXPECT_THROW(TextTable({}), ModelError);
}

TEST(Table, CsvQuotesCommas)
{
    TextTable t({"name", "value"});
    t.addRow({"a,b", "1"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "name,value\n\"a,b\",1\n");
}

TEST(Table, RowCount)
{
    TextTable t({"x"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

} // namespace
} // namespace moonwalk
