#include <gtest/gtest.h>

#include "util/error.hh"

namespace moonwalk {
namespace {

TEST(Error, FatalThrowsModelError)
{
    EXPECT_THROW(fatal("boom"), ModelError);
}

TEST(Error, FatalConcatenatesArguments)
{
    try {
        fatal("expected ", 42, " got ", 3.5, " for ", "thing");
        FAIL() << "fatal did not throw";
    } catch (const ModelError &e) {
        EXPECT_STREQ(e.what(), "expected 42 got 3.5 for thing");
    }
}

TEST(Error, ModelErrorIsRuntimeError)
{
    // Callers may catch the standard hierarchy.
    try {
        fatal("x");
    } catch (const std::runtime_error &e) {
        SUCCEED();
        return;
    }
    FAIL();
}

TEST(ErrorDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("invariant ", 7, " violated"),
                 "moonwalk panic: invariant 7 violated");
}

} // namespace
} // namespace moonwalk
