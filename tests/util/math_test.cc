#include <cmath>

#include <gtest/gtest.h>

#include "util/error.hh"
#include "util/math.hh"

namespace moonwalk {
namespace {

TEST(Math, Clamp)
{
    EXPECT_EQ(clamp(5.0, 0.0, 10.0), 5.0);
    EXPECT_EQ(clamp(-1.0, 0.0, 10.0), 0.0);
    EXPECT_EQ(clamp(11.0, 0.0, 10.0), 10.0);
}

TEST(Math, Lerp)
{
    EXPECT_DOUBLE_EQ(lerp(0.5, 0.0, 10.0, 1.0, 20.0), 15.0);
    EXPECT_DOUBLE_EQ(lerp(0.0, 0.0, 10.0, 1.0, 20.0), 10.0);
    // Degenerate interval returns the midpoint of y.
    EXPECT_DOUBLE_EQ(lerp(3.0, 2.0, 4.0, 2.0, 8.0), 6.0);
}

TEST(Math, LogLogInterpIsPowerLaw)
{
    // Through (1, 1) and (10, 100) the fit is y = x^2.
    EXPECT_NEAR(loglogInterp(3.0, 1.0, 1.0, 10.0, 100.0), 9.0, 1e-9);
}

TEST(Math, Geomean)
{
    const double v[] = {1.0, 4.0, 16.0};
    EXPECT_NEAR(geomean(v), 4.0, 1e-12);
}

TEST(Math, GeomeanRejectsNonPositive)
{
    const double v[] = {1.0, -2.0};
    EXPECT_THROW(geomean(v), ModelError);
    EXPECT_THROW(geomean(std::span<const double>{}), ModelError);
}

TEST(Math, GoldenFindsQuadraticMinimum)
{
    auto f = [](double x) { return (x - 3.0) * (x - 3.0) + 2.0; };
    const auto r = minimizeGolden(f, 0.0, 10.0, 1e-9);
    EXPECT_NEAR(r.x, 3.0, 1e-6);
    EXPECT_NEAR(r.value, 2.0, 1e-9);
}

TEST(Math, GridMinimumOnMultimodal)
{
    // Two minima; the global one is near x = 8.
    auto f = [](double x) {
        return std::min((x - 2) * (x - 2) + 1.0,
                        (x - 8) * (x - 8) + 0.5);
    };
    const auto r = minimizeGrid(f, 0.0, 10.0, 101);
    EXPECT_NEAR(r.x, 8.0, 0.1);
}

TEST(Math, Linspace)
{
    const auto v = linspace(0.0, 1.0, 5);
    ASSERT_EQ(v.size(), 5u);
    EXPECT_DOUBLE_EQ(v.front(), 0.0);
    EXPECT_DOUBLE_EQ(v.back(), 1.0);
    EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(Math, LinspaceCollapsesDegenerateSpan)
{
    // A span at or below the tolerance collapses to one point instead
    // of n copies of (numerically) the same value — the explorer
    // relies on this when a feasibility window is a single voltage.
    const auto collapsed = linspace(0.6, 0.6 + 1e-12, 5, 1e-9);
    ASSERT_EQ(collapsed.size(), 1u);
    EXPECT_DOUBLE_EQ(collapsed.front(), 0.6);

    // Above the tolerance, or with the default tolerance of zero,
    // behavior is unchanged.
    EXPECT_EQ(linspace(0.6, 0.7, 5, 1e-9).size(), 5u);
    EXPECT_EQ(linspace(0.6, 0.6 + 1e-12, 5).size(), 5u);
    EXPECT_EQ(linspace(0.6, 0.6, 1, 1e-9).size(), 1u);
}

TEST(Math, RelativeError)
{
    EXPECT_DOUBLE_EQ(relativeError(11.0, 10.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(3.0, 0.0), 3.0);
}

} // namespace
} // namespace moonwalk
