#include <gtest/gtest.h>

#include "util/error.hh"
#include "util/stats.hh"

namespace moonwalk {
namespace {

TEST(Stats, SummaryOfKnownSamples)
{
    const double v[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    const auto s = summarize(v);
    EXPECT_EQ(s.count, 10u);
    EXPECT_DOUBLE_EQ(s.mean, 5.5);
    EXPECT_NEAR(s.stddev, 3.0277, 1e-3);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 10.0);
    EXPECT_DOUBLE_EQ(s.median, 5.5);
}

TEST(Stats, SummaryUnsortedInput)
{
    const double v[] = {9, 1, 5};
    const auto s = summarize(v);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.median, 5.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, SingleSample)
{
    const double v[] = {7.0};
    const auto s = summarize(v);
    EXPECT_DOUBLE_EQ(s.mean, 7.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.p10, 7.0);
    EXPECT_DOUBLE_EQ(s.p90, 7.0);
}

TEST(Stats, QuantileInterpolates)
{
    const double v[] = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
}

TEST(Stats, Rejections)
{
    EXPECT_THROW(summarize({}), ModelError);
    const double v[] = {1.0};
    EXPECT_THROW(quantile(v, 1.5), ModelError);
    EXPECT_THROW(quantile({}, 0.5), ModelError);
}

} // namespace
} // namespace moonwalk
