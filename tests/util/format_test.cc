#include <gtest/gtest.h>

#include "util/format.hh"

namespace moonwalk {
namespace {

TEST(Format, SiSuffixes)
{
    EXPECT_EQ(si(65e3), "65K");
    EXPECT_EQ(si(5.70e6), "5.7M");
    EXPECT_EQ(si(1.9e9, 2), "1.9B");
    EXPECT_EQ(si(720), "720");
    EXPECT_EQ(si(0.5), "0.5");
}

TEST(Format, SiNegative)
{
    EXPECT_EQ(si(-65e3), "-65K");
}

TEST(Format, Money)
{
    EXPECT_EQ(money(105e3), "$105K");
    EXPECT_EQ(money(2.25e6), "$2.25M");
    EXPECT_EQ(money(-400), "-$400");
}

TEST(Format, SigDigits)
{
    EXPECT_EQ(sig(186.2, 4), "186.2");
    EXPECT_EQ(sig(0.4536, 3), "0.454");
}

TEST(Format, Fixed)
{
    EXPECT_EQ(fixed(2.912, 2), "2.91");
    EXPECT_EQ(fixed(10.0, 1), "10.0");
}

TEST(Format, Times)
{
    EXPECT_EQ(times(3.68), "3.68x");
    EXPECT_EQ(times(12.0, 2), "12x");
}

TEST(Format, Percent)
{
    EXPECT_EQ(percent(0.155), "15.5%");
    EXPECT_EQ(percent(0.65, 0), "65%");
}

} // namespace
} // namespace moonwalk
