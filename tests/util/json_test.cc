#include <gtest/gtest.h>

#include "util/error.hh"
#include "util/json.hh"

namespace moonwalk {
namespace {

TEST(Json, Scalars)
{
    EXPECT_EQ(Json(nullptr).dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(2.5).dump(), "2.5");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersPrintWithoutExponent)
{
    EXPECT_EQ(Json(5.7e6).dump(), "5700000");
    EXPECT_EQ(Json(-65000.0).dump(), "-65000");
}

TEST(Json, NonFiniteBecomesNull)
{
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
    EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ArraysAndObjects)
{
    Json arr = Json::array();
    arr.push(1).push("two").push(Json::object());
    EXPECT_EQ(arr.dump(), "[1,\"two\",{}]");

    Json obj = Json::object();
    obj.set("a", 1).set("b", Json::array());
    EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":[]}");
}

TEST(Json, ObjectPreservesInsertionOrderAndOverwrites)
{
    Json obj = Json::object();
    obj.set("z", 1);
    obj.set("a", 2);
    obj.set("z", 3);  // overwrite keeps position
    EXPECT_EQ(obj.dump(), "{\"z\":3,\"a\":2}");
}

TEST(Json, PrettyPrint)
{
    Json obj = Json::object();
    obj.set("k", Json::array().push(1));
    EXPECT_EQ(obj.dump(2), "{\n  \"k\": [\n    1\n  ]\n}");
}

TEST(Json, TypeErrors)
{
    Json scalar(1);
    EXPECT_THROW(scalar.push(2), ModelError);
    EXPECT_THROW(scalar.set("k", 2), ModelError);
    Json arr = Json::array();
    EXPECT_THROW(arr.set("k", 2), ModelError);
    EXPECT_FALSE(arr.isObject());
    EXPECT_TRUE(arr.isArray());
}

} // namespace
} // namespace moonwalk
