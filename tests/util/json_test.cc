#include <gtest/gtest.h>

#include "util/error.hh"
#include "util/json.hh"

namespace moonwalk {
namespace {

TEST(Json, Scalars)
{
    EXPECT_EQ(Json(nullptr).dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(2.5).dump(), "2.5");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersPrintWithoutExponent)
{
    EXPECT_EQ(Json(5.7e6).dump(), "5700000");
    EXPECT_EQ(Json(-65000.0).dump(), "-65000");
}

TEST(Json, NonFiniteBecomesNull)
{
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
    EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ArraysAndObjects)
{
    Json arr = Json::array();
    arr.push(1).push("two").push(Json::object());
    EXPECT_EQ(arr.dump(), "[1,\"two\",{}]");

    Json obj = Json::object();
    obj.set("a", 1).set("b", Json::array());
    EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":[]}");
}

TEST(Json, ObjectPreservesInsertionOrderAndOverwrites)
{
    Json obj = Json::object();
    obj.set("z", 1);
    obj.set("a", 2);
    obj.set("z", 3);  // overwrite keeps position
    EXPECT_EQ(obj.dump(), "{\"z\":3,\"a\":2}");
}

TEST(Json, PrettyPrint)
{
    Json obj = Json::object();
    obj.set("k", Json::array().push(1));
    EXPECT_EQ(obj.dump(2), "{\n  \"k\": [\n    1\n  ]\n}");
}

TEST(Json, TypeErrors)
{
    Json scalar(1);
    EXPECT_THROW(scalar.push(2), ModelError);
    EXPECT_THROW(scalar.set("k", 2), ModelError);
    Json arr = Json::array();
    EXPECT_THROW(arr.set("k", 2), ModelError);
    EXPECT_FALSE(arr.isObject());
    EXPECT_TRUE(arr.isArray());
}

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(Json::parse("null").isNull());
    EXPECT_TRUE(Json::parse("true").asBool());
    EXPECT_FALSE(Json::parse("false").asBool());
    EXPECT_DOUBLE_EQ(Json::parse("42").asDouble(), 42.0);
    EXPECT_DOUBLE_EQ(Json::parse("-2.5e3").asDouble(), -2500.0);
    EXPECT_EQ(Json::parse("\"hi\"").asString(), "hi");
}

TEST(JsonParse, Containers)
{
    const Json arr = Json::parse(" [1, \"two\", [3], {\"k\": 4}] ");
    ASSERT_TRUE(arr.isArray());
    ASSERT_EQ(arr.size(), 4u);
    EXPECT_DOUBLE_EQ(arr.at(0).asDouble(), 1.0);
    EXPECT_EQ(arr.at(1).asString(), "two");
    EXPECT_DOUBLE_EQ(arr.at(2).at(0).asDouble(), 3.0);
    EXPECT_DOUBLE_EQ(arr.at(3).at("k").asDouble(), 4.0);
    EXPECT_TRUE(arr.at(3).contains("k"));
    EXPECT_FALSE(arr.at(3).contains("missing"));

    EXPECT_EQ(Json::parse("[]").size(), 0u);
    EXPECT_EQ(Json::parse("{}").size(), 0u);
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(Json::parse("\"a\\\"b\\\\c\\n\\t\"").asString(),
              "a\"b\\c\n\t");
    EXPECT_EQ(Json::parse("\"\\u0041\"").asString(), "A");
}

TEST(JsonParse, RoundTripsOwnOutput)
{
    Json obj = Json::object();
    obj.set("name", "sweep \"quoted\"\n");
    obj.set("count", 12345);
    obj.set("ratio", 0.125);
    obj.set("ok", true);
    obj.set("none", nullptr);
    obj.set("list", Json::array().push(1).push(2.5).push("x"));

    for (int indent : {0, 2}) {
        const Json back = Json::parse(obj.dump(indent));
        EXPECT_EQ(back.at("name").asString(), "sweep \"quoted\"\n");
        EXPECT_DOUBLE_EQ(back.at("count").asDouble(), 12345.0);
        EXPECT_DOUBLE_EQ(back.at("ratio").asDouble(), 0.125);
        EXPECT_TRUE(back.at("ok").asBool());
        EXPECT_TRUE(back.at("none").isNull());
        ASSERT_EQ(back.at("list").size(), 3u);
        EXPECT_EQ(back.at("list").at(2).asString(), "x");
        EXPECT_EQ(back.dump(indent), obj.dump(indent));
    }
}

TEST(JsonParse, RejectsMalformedInput)
{
    EXPECT_THROW(Json::parse(""), ModelError);
    EXPECT_THROW(Json::parse("{"), ModelError);
    EXPECT_THROW(Json::parse("[1,]"), ModelError);
    EXPECT_THROW(Json::parse("{\"k\" 1}"), ModelError);
    EXPECT_THROW(Json::parse("\"unterminated"), ModelError);
    EXPECT_THROW(Json::parse("tru"), ModelError);
    EXPECT_THROW(Json::parse("1 2"), ModelError);
    EXPECT_THROW(Json::parse("1.2.3"), ModelError);
}

TEST(JsonParse, RejectsExcessiveNesting)
{
    // The recursive-descent parser caps nesting at 256 levels so
    // adversarial input throws ModelError instead of overflowing the
    // stack (found by the fuzz harness in tests/fuzz/).
    const std::string deep_ok(200, '[');
    EXPECT_THROW(Json::parse(deep_ok), ModelError);  // unterminated
    std::string balanced;
    for (int i = 0; i < 200; ++i) balanced += '[';
    balanced += '1';
    for (int i = 0; i < 200; ++i) balanced += ']';
    EXPECT_NO_THROW(Json::parse(balanced));

    std::string too_deep;
    for (int i = 0; i < 300; ++i) too_deep += '[';
    too_deep += '1';
    for (int i = 0; i < 300; ++i) too_deep += ']';
    EXPECT_THROW(Json::parse(too_deep), ModelError);
}

TEST(JsonParse, AccessorTypeErrors)
{
    const Json v = Json::parse("{\"a\": [1]}");
    EXPECT_THROW(v.at(0), ModelError);
    EXPECT_THROW(v.at("missing"), ModelError);
    EXPECT_THROW(v.at("a").at(5), ModelError);
    EXPECT_THROW(v.asDouble(), ModelError);
    EXPECT_THROW(v.at("a").at(0).asString(), ModelError);
}

} // namespace
} // namespace moonwalk
