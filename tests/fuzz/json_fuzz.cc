/**
 * @file
 * Fuzz target for Json::parse.
 *
 * Built two ways (see tests/CMakeLists.txt):
 *  - with -DMOONWALK_FUZZ=ON under clang, as a libFuzzer binary
 *    (`fuzz_json tests/fuzz/corpus -max_total_time=60`);
 *  - otherwise with a plain main() that replays the files given on
 *    the command line, so CI smoke-tests the exact same harness with
 *    no clang-only dependencies.
 *
 * The harness accepts any byte string: malformed input must throw
 * ModelError and nothing else — crashes, UB, unbounded recursion, or
 * a parse/dump round-trip mismatch are findings.  The parser's
 * 256-level nesting cap exists because this target found the
 * unbounded-recursion stack overflow.
 */
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/error.hh"
#include "util/json.hh"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    const std::string text(reinterpret_cast<const char *>(data), size);
    try {
        const moonwalk::Json value = moonwalk::Json::parse(text);
        // Whatever parses must round-trip: dump() output is valid
        // JSON that parses back to an identical serialization.
        const std::string dumped = value.dump();
        if (moonwalk::Json::parse(dumped).dump() != dumped)
            moonwalk::panic("Json parse/dump round-trip mismatch");
    } catch (const moonwalk::ModelError &) {
        // Malformed input is the expected outcome, not a finding.
    }
    return 0;
}

#ifndef MOONWALK_FUZZ_LIBFUZZER
int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: fuzz_json <corpus-file>...\n"
                     "(plain corpus-replay driver; configure with "
                     "-DMOONWALK_FUZZ=ON under clang for libFuzzer)\n");
        return 2;
    }
    for (int i = 1; i < argc; ++i) {
        std::ifstream in(argv[i], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "fuzz_json: cannot read %s\n",
                         argv[i]);
            return 1;
        }
        std::ostringstream data;
        data << in.rdbuf();
        const std::string text = data.str();
        LLVMFuzzerTestOneInput(
            reinterpret_cast<const uint8_t *>(text.data()),
            text.size());
    }
    std::printf("fuzz_json: replayed %d corpus inputs\n", argc - 1);
    return 0;
}
#endif
