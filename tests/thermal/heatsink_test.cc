#include <gtest/gtest.h>

#include "thermal/heatsink.hh"
#include "util/error.hh"

namespace moonwalk::thermal {
namespace {

HeatSinkGeometry
defaultGeom()
{
    return {};
}

TEST(HeatSink, GeometryHelpers)
{
    HeatSinkGeometry g = defaultGeom();
    EXPECT_TRUE(g.valid());
    EXPECT_GT(g.finGap(), 0.0);
    EXPECT_GT(g.flowArea(), 0.0);
    EXPECT_GT(g.metalVolume(), 0.0);
}

TEST(HeatSink, TooManyFinsInvalid)
{
    HeatSinkGeometry g = defaultGeom();
    g.fin_count = 200;
    g.fin_thickness = 1e-3;  // 200mm of fin metal in a 45mm width
    EXPECT_FALSE(g.valid());
}

TEST(HeatSink, ResistancePositiveAndFinite)
{
    const auto p = evaluateHeatSink(defaultGeom(), 0.01, 540e-6);
    EXPECT_GT(p.r_junction_air, 0.01);
    EXPECT_LT(p.r_junction_air, 10.0);
    EXPECT_GT(p.pressure_drop, 0.0);
    EXPECT_GT(p.air_velocity, 0.0);
}

TEST(HeatSink, MoreFlowLowersResistance)
{
    const auto slow = evaluateHeatSink(defaultGeom(), 0.004, 540e-6);
    const auto fast = evaluateHeatSink(defaultGeom(), 0.016, 540e-6);
    EXPECT_LT(fast.r_junction_air, slow.r_junction_air);
    EXPECT_GT(fast.pressure_drop, slow.pressure_drop);
}

TEST(HeatSink, SmallerDieHasWorseResistance)
{
    // Less spreading area plus larger junction-to-case term.
    const auto big = evaluateHeatSink(defaultGeom(), 0.01, 540e-6);
    const auto small = evaluateHeatSink(defaultGeom(), 0.01, 100e-6);
    EXPECT_GT(small.r_junction_air, big.r_junction_air);
}

TEST(HeatSink, MoreFinAreaHelpsAtFixedFlow)
{
    HeatSinkGeometry sparse = defaultGeom();
    sparse.fin_count = 8;
    HeatSinkGeometry dense = defaultGeom();
    dense.fin_count = 32;
    const auto ps = evaluateHeatSink(sparse, 0.01, 540e-6);
    const auto pd = evaluateHeatSink(dense, 0.01, 540e-6);
    EXPECT_LT(pd.r_junction_air, ps.r_junction_air);
    // ... but costs more pressure.
    EXPECT_GT(pd.pressure_drop, ps.pressure_drop);
}

TEST(HeatSink, RejectsBadInputs)
{
    EXPECT_THROW(evaluateHeatSink(defaultGeom(), 0.0, 540e-6),
                 ModelError);
    EXPECT_THROW(evaluateHeatSink(defaultGeom(), 0.01, -1.0),
                 ModelError);
    HeatSinkGeometry bad = defaultGeom();
    bad.fin_height = -1.0;
    EXPECT_THROW(evaluateHeatSink(bad, 0.01, 540e-6), ModelError);
}

TEST(HeatSink, CostGrowsWithMetal)
{
    HeatSinkGeometry small = defaultGeom();
    HeatSinkGeometry tall = defaultGeom();
    tall.fin_height = 2.0 * small.fin_height;
    EXPECT_GT(heatSinkCost(tall), heatSinkCost(small));
    EXPECT_GT(heatSinkCost(small), 0.0);
    EXPECT_LT(heatSinkCost(small), 50.0);
}

} // namespace
} // namespace moonwalk::thermal
