#include <gtest/gtest.h>

#include "thermal/lane.hh"
#include "util/error.hh"

namespace moonwalk::thermal {
namespace {

TEST(Lane, BudgetInPlausibleServerRange)
{
    LaneThermalModel model;
    // A 9-die lane of 540mm^2 ASICs (the 28nm Bitcoin configuration)
    // should support tens of watts per die.
    const auto &r = model.solve(9, 540.0);
    EXPECT_GT(r.max_power_per_die_w, 30.0);
    EXPECT_LT(r.max_power_per_die_w, 200.0);
    EXPECT_GT(r.airflow_m3s, 0.001);
    EXPECT_GT(r.fan_power_w, 0.0);
    EXPECT_GT(r.heatsink_unit_cost, 0.0);
}

TEST(Lane, MoreDiesLowerPerDieBudget)
{
    LaneThermalModel model;
    double prev = 1e9;
    for (int dies : {1, 3, 6, 9, 12, 15}) {
        const auto &r = model.solve(dies, 540.0);
        EXPECT_LT(r.max_power_per_die_w, prev) << dies << " dies";
        prev = r.max_power_per_die_w;
    }
}

TEST(Lane, BiggerDiesGetMoreTotalLanePower)
{
    // Total extractable lane power should not collapse with area;
    // bigger dies spread heat better per die.
    LaneThermalModel model;
    const auto &small = model.solve(8, 100.0);
    const auto &large = model.solve(8, 600.0);
    EXPECT_GT(large.max_power_per_die_w, small.max_power_per_die_w);
}

TEST(Lane, CacheReturnsSameResult)
{
    LaneThermalModel model;
    const auto &a = model.solve(9, 540.0);
    const auto &b = model.solve(9, 541.0);  // same 20mm^2 bucket
    EXPECT_EQ(&a, &b);
}

TEST(Lane, MaxDiesPerLaneGeometry)
{
    LaneThermalModel model;
    // 540mm^2 dies: edge 23.2mm + 2mm margin -> 15 per 400mm lane.
    EXPECT_EQ(model.maxDiesPerLane(540.0, 2.0), 15);
    // DRAM-laden video dies take more board: fewer fit.
    EXPECT_LT(model.maxDiesPerLane(540.0, 60.0),
              model.maxDiesPerLane(540.0, 2.0));
}

TEST(Lane, HotterAmbientShrinksBudget)
{
    LaneEnvironment hot;
    hot.ambient_c = 35.0;
    LaneThermalModel cool_model;
    LaneThermalModel hot_model(hot);
    EXPECT_LT(hot_model.solve(9, 540.0).max_power_per_die_w,
              cool_model.solve(9, 540.0).max_power_per_die_w);
}

TEST(Lane, WeakFanShrinksBudget)
{
    LaneEnvironment weak;
    weak.fan.q_max = 0.005;
    weak.fan.p_max = 200.0;
    LaneThermalModel weak_model(weak);
    LaneThermalModel strong_model;
    EXPECT_LT(weak_model.solve(9, 540.0).max_power_per_die_w,
              strong_model.solve(9, 540.0).max_power_per_die_w);
}

TEST(Lane, RejectsBadInputs)
{
    LaneThermalModel model;
    EXPECT_THROW(model.solve(0, 540.0), ModelError);
    EXPECT_THROW(model.solve(9, -5.0), ModelError);
}

// Downstream heating invariant: with n dies the budget must be below
// the single-die budget divided by the air-heating-free bound.
TEST(Lane, DownstreamHeatingReducesBudgetConsistently)
{
    LaneThermalModel model;
    const auto &one = model.solve(1, 400.0);
    const auto &ten = model.solve(10, 400.0);
    EXPECT_LT(ten.max_power_per_die_w, one.max_power_per_die_w);
    // But never to zero: air flow still removes heat.
    EXPECT_GT(ten.max_power_per_die_w, 0.05 * one.max_power_per_die_w);
}

} // namespace
} // namespace moonwalk::thermal
