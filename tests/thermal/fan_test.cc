#include <gtest/gtest.h>

#include "thermal/fan.hh"

namespace moonwalk::thermal {
namespace {

TEST(Fan, CurveEndpoints)
{
    Fan f;
    EXPECT_DOUBLE_EQ(f.pressureAt(0.0), f.p_max);
    EXPECT_DOUBLE_EQ(f.pressureAt(f.q_max), 0.0);
    EXPECT_DOUBLE_EQ(f.pressureAt(2.0 * f.q_max), 0.0);
}

TEST(Fan, CurveMonotonicallyDecreasing)
{
    Fan f;
    double prev = f.p_max + 1.0;
    for (double q = 0.0; q <= f.q_max; q += f.q_max / 20) {
        EXPECT_LT(f.pressureAt(q), prev);
        prev = f.pressureAt(q);
    }
}

TEST(Fan, OperatingPointBalancesPressure)
{
    Fan f;
    auto impedance = [](double q) { return 4e6 * q * q; };
    const double q = f.operatingFlow(impedance);
    EXPECT_GT(q, 0.0);
    EXPECT_LT(q, f.q_max);
    EXPECT_NEAR(f.pressureAt(q), impedance(q),
                0.01 * f.p_max);
}

TEST(Fan, HigherImpedanceLowersFlow)
{
    Fan f;
    const double q1 = f.operatingFlow([](double q) {
        return 1e6 * q * q;
    });
    const double q2 = f.operatingFlow([](double q) {
        return 8e6 * q * q;
    });
    EXPECT_GT(q1, q2);
}

TEST(Fan, FreeFlowAgainstZeroImpedance)
{
    Fan f;
    const double q = f.operatingFlow([](double) { return 0.0; });
    EXPECT_NEAR(q, f.q_max, 1e-6);
}

TEST(Fan, ElectricalPowerReasonable)
{
    Fan f;
    // At half flow: P = p(q) q / eta.
    const double q = 0.5 * f.q_max;
    EXPECT_NEAR(f.electricalPowerAt(q),
                f.pressureAt(q) * q / f.efficiency, 1e-12);
    EXPECT_LT(f.electricalPowerAt(q), 100.0);  // sane for a 1U fan
}

} // namespace
} // namespace moonwalk::thermal
