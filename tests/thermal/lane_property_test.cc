/**
 * @file
 * Property sweep over the lane thermal model: physical invariants
 * that must hold at every (dies-per-lane, die-area) grid point.
 */
#include <gtest/gtest.h>

#include "thermal/air.hh"
#include "thermal/lane.hh"

namespace moonwalk::thermal {
namespace {

struct GridPoint
{
    int dies;
    double area_mm2;
};

class LaneGrid : public ::testing::TestWithParam<GridPoint>
{
  protected:
    LaneThermalModel model_;
};

TEST_P(LaneGrid, BudgetPositiveAndBounded)
{
    const auto &r = model_.solve(GetParam().dies, GetParam().area_mm2);
    EXPECT_GT(r.max_power_per_die_w, 0.5);
    EXPECT_LT(r.max_power_per_die_w, 1000.0);
}

TEST_P(LaneGrid, HeatsinkGeometryValid)
{
    const auto &r = model_.solve(GetParam().dies, GetParam().area_mm2);
    EXPECT_TRUE(r.heatsink.valid());
    // Fins stay within the duct envelope.
    EXPECT_LE(r.heatsink.fin_height + r.heatsink.base_thickness,
              model_.environment().duct_height_m + 1e-9);
    EXPECT_LE(r.heatsink.width,
              model_.environment().duct_width_m + 1e-9);
}

TEST_P(LaneGrid, FlowWithinFanEnvelope)
{
    const auto &r = model_.solve(GetParam().dies, GetParam().area_mm2);
    EXPECT_GT(r.airflow_m3s, 0.0);
    EXPECT_LE(r.airflow_m3s, model_.environment().fan.q_max);
    EXPECT_GE(r.fan_power_w, 0.0);
    EXPECT_LT(r.fan_power_w, 200.0);
}

TEST_P(LaneGrid, EnergyConservation)
{
    // Total lane heat at the budget cannot exceed what the airflow
    // can absorb at the allowed temperature rise.
    const auto &env = model_.environment();
    const auto &r = model_.solve(GetParam().dies, GetParam().area_mm2);
    const double lane_heat = GetParam().dies * r.max_power_per_die_w;
    const double mdot_cp = r.airflow_m3s * kAirRhoCp;
    const double max_absorb =
        mdot_cp * (env.tj_max_c - env.ambient_c);
    EXPECT_LE(lane_heat, max_absorb * (1.0 + 1e-9));
}

TEST_P(LaneGrid, ResistanceTimesBudgetWithinDeltaT)
{
    // The first die of the lane sees ambient air; its junction rise
    // R * P must fit the budget.
    const auto &env = model_.environment();
    const auto &r = model_.solve(GetParam().dies, GetParam().area_mm2);
    EXPECT_LE(r.r_junction_air * r.max_power_per_die_w,
              env.tj_max_c - env.ambient_c + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    DiesByArea, LaneGrid,
    ::testing::Values(
        GridPoint{1, 60}, GridPoint{1, 300}, GridPoint{1, 620},
        GridPoint{4, 60}, GridPoint{4, 300}, GridPoint{4, 620},
        GridPoint{8, 60}, GridPoint{8, 300}, GridPoint{8, 620},
        GridPoint{12, 100}, GridPoint{12, 450},
        GridPoint{15, 60}, GridPoint{15, 300}, GridPoint{15, 540}),
    [](const auto &info) {
        return "d" + std::to_string(info.param.dies) + "_a" +
            std::to_string(static_cast<int>(info.param.area_mm2));
    });

TEST(LaneGridGlobal, BudgetMonotoneInDiesAtFixedArea)
{
    LaneThermalModel model;
    for (double area : {100.0, 300.0, 600.0}) {
        double prev = 1e18;
        for (int dies = 1; dies <= 15; ++dies) {
            const double p =
                model.solve(dies, area).max_power_per_die_w;
            EXPECT_LE(p, prev * (1.0 + 1e-9))
                << dies << " dies, " << area << " mm^2";
            prev = p;
        }
    }
}

TEST(LaneGridGlobal, BudgetMonotoneInAreaAtFixedDies)
{
    LaneThermalModel model;
    for (int dies : {2, 8, 14}) {
        double prev = 0.0;
        for (double area = 60.0; area <= 620.0; area += 80.0) {
            const double p =
                model.solve(dies, area).max_power_per_die_w;
            EXPECT_GE(p, prev * (1.0 - 1e-9))
                << dies << " dies, " << area << " mm^2";
            prev = p;
        }
    }
}

} // namespace
} // namespace moonwalk::thermal
