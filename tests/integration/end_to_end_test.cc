/**
 * @file
 * End-to-end workflow tests: a user defines a *new* accelerator (not
 * one of the paper's four), explores the node space and picks a node —
 * exactly the library's intended use.
 */
#include <gtest/gtest.h>

#include "core/optimizer.hh"

namespace moonwalk {
namespace {

using tech::NodeId;

apps::AppSpec
customRegexAccelerator()
{
    // A made-up mid-size streaming accelerator.
    apps::AppSpec app;
    auto &r = app.rca;
    r.name = "RegexMatch";
    r.perf_unit = "GB/s";
    r.perf_unit_scale = 1e9;
    r.gate_count = 800e3;
    r.ops_per_cycle = 8.0;         // bytes matched per cycle
    r.f_nominal_28_mhz = 700.0;
    r.energy_per_op_28_j = 40e-12; // 40 pJ per byte
    r.area_28_mm2 = 2.0;
    r.sram_fraction = 0.4;

    auto &n = app.nre;
    n.app_name = r.name;
    n.rca_gate_count = r.gate_count;
    n.frontend_cad_months = 14;
    n.frontend_mm = 16;
    n.fpga_job_distribution_mm = 2;
    n.fpga_bios_mm = 1;
    n.cloud_software_mm = 3;
    n.pcb_design_cost = 40e3;

    app.baseline = {"Xeon software", 2e9, 300.0, 2000.0};
    return app;
}

class EndToEnd : public ::testing::Test
{
  protected:
    static dse::ExplorerOptions coarse()
    {
        dse::ExplorerOptions o;
        o.voltage_steps = 12;
        o.rca_count_steps = 10;
        return o;
    }

    core::MoonwalkOptimizer opt_{dse::DesignSpaceExplorer{coarse()}};
};

TEST_F(EndToEnd, CustomAcceleratorSweepsAllNodes)
{
    const auto app = customRegexAccelerator();
    const auto &sweep = opt_.sweepNodes(app);
    EXPECT_EQ(sweep.size(), 8u);
    for (const auto &r : sweep) {
        EXPECT_GT(r.optimal.perf_ops, 0.0);
        EXPECT_GT(r.nre.total(), 0.0);
        EXPECT_LE(r.optimal.die_area_mm2, 640.0);
        EXPECT_LE(r.optimal.wall_power_w, 4000.0);
    }
}

TEST_F(EndToEnd, NodeSelectionFollowsWorkloadScale)
{
    const auto app = customRegexAccelerator();
    const auto ranges = opt_.optimalNodeRanges(app);
    ASSERT_GE(ranges.size(), 2u);
    // Every range break is a genuine improvement: slope decreases and
    // NRE increases along the envelope.
    for (size_t i = 1; i < ranges.size(); ++i) {
        EXPECT_LT(ranges[i].line.slope, ranges[i - 1].line.slope);
        EXPECT_GT(ranges[i].line.nre, ranges[i - 1].line.nre);
    }
}

TEST_F(EndToEnd, TwoForTwoRuleApplication)
{
    // The paper's two-for-two rule: deploy when TCO > 2x NRE and the
    // TCO/op/s gain > 2x.  Verify the library exposes everything the
    // rule needs.
    const auto app = customRegexAccelerator();
    const auto &sweep = opt_.sweepNodes(app);
    const double base = opt_.baselineTcoPerOps(app);
    bool some_node_passes = false;
    const double workload_tco = 20e6;  // $20M/3yr workload
    for (const auto &r : sweep) {
        const double gain = base / r.tcoPerOps();
        const bool cond1 = workload_tco > 2.0 * r.nre.total();
        const bool cond2 = gain > 2.0;
        if (cond1 && cond2)
            some_node_passes = true;
    }
    EXPECT_TRUE(some_node_passes);
}

TEST_F(EndToEnd, ExplorationResultInternallyConsistent)
{
    const auto app = customRegexAccelerator();
    const auto res =
        opt_.explorer().explore(app.rca, NodeId::N65);
    ASSERT_TRUE(res.tco_optimal.has_value());
    EXPECT_TRUE(dse::isParetoFront(res.pareto));
    // The TCO optimum is attainable from the front: some front point
    // has TCO within a hair of it (the optimum lies on the front for
    // a linear TCO weighting).
    double best_front = 1e300;
    for (const auto &p : res.pareto)
        best_front = std::min(best_front, p.tco_per_ops);
    EXPECT_NEAR(best_front, res.tco_optimal->tco_per_ops,
                1e-9 * best_front);
}

TEST_F(EndToEnd, DeterministicResults)
{
    // Two independent optimizers produce identical sweeps (the model
    // is pure; no hidden state).
    core::MoonwalkOptimizer a{dse::DesignSpaceExplorer{coarse()}};
    core::MoonwalkOptimizer b{dse::DesignSpaceExplorer{coarse()}};
    const auto app = customRegexAccelerator();
    const auto &ra = a.sweepNodes(app);
    const auto &rb = b.sweepNodes(app);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
        EXPECT_DOUBLE_EQ(ra[i].tcoPerOps(), rb[i].tcoPerOps());
        EXPECT_EQ(ra[i].optimal.config.rcas_per_die,
                  rb[i].optimal.config.rcas_per_die);
        EXPECT_DOUBLE_EQ(ra[i].nre.total(), rb[i].nre.total());
    }
}

} // namespace
} // namespace moonwalk
