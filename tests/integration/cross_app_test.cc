/**
 * @file
 * Cross-application relationships the paper leans on: Bitcoin is the
 * power-density extreme, Litecoin the SRAM/low-density extreme, Video
 * the DRAM-bound case, Deep Learning the SLA-bound case.  These are
 * emergent properties of the whole pipeline, not encoded anywhere.
 */
#include <gtest/gtest.h>

#include "core/optimizer.hh"

namespace moonwalk {
namespace {

using tech::NodeId;

class CrossApp : public ::testing::Test
{
  protected:
    static dse::ExplorerOptions coarse()
    {
        dse::ExplorerOptions o;
        o.voltage_steps = 12;
        o.rca_count_steps = 10;
        o.max_drams_per_die = 8;
        return o;
    }

    core::MoonwalkOptimizer opt_{dse::DesignSpaceExplorer{coarse()}};

    const core::NodeResult *
    at(const apps::AppSpec &app, NodeId node)
    {
        for (const auto &r : opt_.sweepNodes(app))
            if (r.node == node)
                return &r;
        return nullptr;
    }
};

TEST_F(CrossApp, BitcoinHasHighestPowerDensityPotential)
{
    // At the same (node, voltage), a full Bitcoin die dissipates more
    // per mm^2 than a full Litecoin die: that is why its optima sit
    // at far lower voltage.
    dse::ServerEvaluator eval;
    arch::ServerConfig cfg;
    cfg.node = NodeId::N28;
    cfg.dies_per_lane = 4;
    cfg.vdd = 0.5;

    cfg.rcas_per_die = 700;
    const auto btc = eval.evaluate(apps::bitcoin().rca, cfg);
    cfg.rcas_per_die = 850;
    const auto ltc = eval.evaluate(apps::litecoin().rca, cfg);
    ASSERT_TRUE(btc.feasible() && ltc.feasible());
    const double btc_density =
        btc.point->die_power_w / btc.point->die_area_mm2;
    const double ltc_density =
        ltc.point->die_power_w / ltc.point->die_area_mm2;
    EXPECT_GT(btc_density, 1.5 * ltc_density);
}

TEST_F(CrossApp, OnlyVideoBuysDram)
{
    for (const auto &app :
         {apps::bitcoin(), apps::litecoin(), apps::deepLearning()}) {
        for (const auto &r : opt_.sweepNodes(app)) {
            EXPECT_EQ(r.optimal.config.drams_per_die, 0)
                << app.name();
            EXPECT_DOUBLE_EQ(r.optimal.cost_breakdown.dram, 0.0);
        }
    }
    for (const auto &r : opt_.sweepNodes(apps::videoTranscode()))
        EXPECT_GE(r.optimal.config.drams_per_die, 1);
}

TEST_F(CrossApp, NreOrderingTracksDesignComplexity)
{
    // At a fixed node, NRE ordering follows frontend effort + IP:
    // video (3.56M gates, decoder license, DRAM PHY) is the most
    // expensive; bitcoin the cheapest.
    const auto *btc = at(apps::bitcoin(), NodeId::N65);
    const auto *ltc = at(apps::litecoin(), NodeId::N65);
    const auto *vid = at(apps::videoTranscode(), NodeId::N65);
    ASSERT_TRUE(btc && ltc && vid);
    EXPECT_LT(btc->nre.total(), ltc->nre.total());
    EXPECT_LT(ltc->nre.total(), vid->nre.total());
}

TEST_F(CrossApp, DeepLearningVoltageIsSlaDerivedNotSwept)
{
    // DL's per-node voltage must match voltageForFrequency exactly
    // (clamped to vdd_min); other apps land on sweep grid points.
    const auto &scaling = opt_.explorer().evaluator().scaling();
    const auto dl = apps::deepLearning();
    for (const auto &r : opt_.sweepNodes(dl)) {
        const auto &node = scaling.database().node(r.node);
        const double v = std::max(
            scaling.voltageForFrequency(node,
                                        dl.rca.sla_fixed_freq_mhz,
                                        dl.rca.f_nominal_28_mhz),
            node.vdd_min);
        EXPECT_NEAR(r.optimal.config.vdd, v, 1e-6)
            << tech::to_string(r.node);
    }
}

TEST_F(CrossApp, EveryAppBeatsItsBaselineAt28nm)
{
    for (const auto &app : apps::allApps()) {
        const auto *r = at(app, NodeId::N28);
        ASSERT_NE(r, nullptr) << app.name();
        EXPECT_LT(r->tcoPerOps() * 50.0, opt_.baselineTcoPerOps(app))
            << app.name();
    }
}

TEST_F(CrossApp, ServerPowersStayInPaperRegime)
{
    // All four apps' optima live in the 0.5-4 kW wall-power regime of
    // Tables 7-10.
    for (const auto &app : apps::allApps()) {
        for (const auto &r : opt_.sweepNodes(app)) {
            EXPECT_GT(r.optimal.wall_power_w, 300.0)
                << app.name() << " " << tech::to_string(r.node);
            EXPECT_LE(r.optimal.wall_power_w, 4000.0)
                << app.name() << " " << tech::to_string(r.node);
        }
    }
}

TEST_F(CrossApp, ReportedFrequenciesAreOrdered)
{
    // Paper pattern: Litecoin clocks fastest (short SRAM paths),
    // Bitcoin slowest (near-threshold), at 28nm.
    const auto *btc = at(apps::bitcoin(), NodeId::N28);
    const auto *ltc = at(apps::litecoin(), NodeId::N28);
    ASSERT_TRUE(btc && ltc);
    EXPECT_GT(ltc->optimal.freq_mhz, 2.0 * btc->optimal.freq_mhz);
}

} // namespace
} // namespace moonwalk
