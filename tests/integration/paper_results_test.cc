/**
 * @file
 * Integration tests against the paper's headline numbers (moderate
 * sweep resolution for runtime; the bench harness uses full
 * resolution).  Bands are deliberately loose — our thermal substrate
 * is analytic, not the authors' CFD — but the *shape* assertions
 * (who wins, monotonic trends, crossover ordering) are strict.
 */
#include <gtest/gtest.h>

#include "core/optimizer.hh"

namespace moonwalk {
namespace {

using tech::NodeId;

class PaperResults : public ::testing::Test
{
  protected:
    static dse::ExplorerOptions medium()
    {
        dse::ExplorerOptions o;
        o.voltage_steps = 24;
        o.rca_count_steps = 20;
        o.max_drams_per_die = 10;
        o.dark_fractions = {0.0, 0.08, 0.16};
        return o;
    }

    core::MoonwalkOptimizer opt_{dse::DesignSpaceExplorer{medium()}};

    const core::NodeResult *
    result(const apps::AppSpec &app, NodeId node)
    {
        for (const auto &r : opt_.sweepNodes(app))
            if (r.node == node)
                return &r;
        return nullptr;
    }
};

TEST_F(PaperResults, Table7Bitcoin28nmWithinBands)
{
    const auto *r = result(apps::bitcoin(), NodeId::N28);
    ASSERT_NE(r, nullptr);
    const auto &p = r->optimal;
    // Paper: 769 RCAs, 540mm^2, Vdd 0.459, TCO/GH/s 2.912.
    EXPECT_GT(p.config.rcas_per_die, 500);
    EXPECT_GT(p.die_area_mm2, 350.0);
    EXPECT_LT(p.config.vdd, 0.75 * 0.9);  // far below nominal
    const double tco_ghs = p.tco_per_ops * 1e9;
    EXPECT_GT(tco_ghs, 2.912 * 0.5);
    EXPECT_LT(tco_ghs, 2.912 * 2.0);
}

TEST_F(PaperResults, Table7BitcoinSpansNodesWithRightRatios)
{
    // Paper TCO/GH/s: 186.2 at 250nm down to 1.378 at 16nm (135x).
    const auto *r250 = result(apps::bitcoin(), NodeId::N250);
    const auto *r16 = result(apps::bitcoin(), NodeId::N16);
    ASSERT_NE(r250, nullptr);
    ASSERT_NE(r16, nullptr);
    const double span = r250->tcoPerOps() / r16->tcoPerOps();
    EXPECT_GT(span, 135.0 * 0.4);
    EXPECT_LT(span, 135.0 * 2.5);
}

TEST_F(PaperResults, BitcoinVoltagesDropAcrossNodes)
{
    // Section 6.2: "a general trend of decreasing voltages" across
    // nodes (paper: 1.081V at 250nm down to 0.424V at 16nm).  Allow
    // small non-monotonic wiggles, as in the paper's own tables.
    const auto &sweep = opt_.sweepNodes(apps::bitcoin());
    ASSERT_GE(sweep.size(), 2u);
    for (size_t i = 1; i < sweep.size(); ++i) {
        EXPECT_LT(sweep[i].optimal.config.vdd,
                  1.15 * sweep[i - 1].optimal.config.vdd)
            << tech::to_string(sweep[i].node);
    }
    EXPECT_LT(sweep.back().optimal.config.vdd,
              0.65 * sweep.front().optimal.config.vdd);
}

TEST_F(PaperResults, LitecoinRunsNearerNominalThanBitcoin)
{
    // Table 9 caption: Litecoin is SRAM-dominated with low power
    // density, so TCO-optimal voltage sits closer to nominal.
    const auto *lite = result(apps::litecoin(), NodeId::N28);
    const auto *btc = result(apps::bitcoin(), NodeId::N28);
    ASSERT_NE(lite, nullptr);
    ASSERT_NE(btc, nullptr);
    EXPECT_GT(lite->optimal.config.vdd, btc->optimal.config.vdd);
}

TEST_F(PaperResults, Table6AsicVsBaselineImprovements)
{
    // Table 6 improvement factors at 28nm: Bitcoin 800x, Litecoin
    // 128x, Video 10,000x, DL 397x; require the right order of
    // magnitude.
    struct Case { apps::AppSpec app; double paper_factor; };
    const Case cases[] = {
        {apps::bitcoin(), 2320.0 / 2.9},
        {apps::litecoin(), 2500.0 / 19.5},
        {apps::videoTranscode(), 791e3 / 78.5},
        {apps::deepLearning(), 17580.0 / 44.3},
    };
    for (const auto &c : cases) {
        const auto *r = result(c.app, NodeId::N28);
        ASSERT_NE(r, nullptr) << c.app.name();
        const double factor =
            opt_.baselineTcoPerOps(c.app) / r->tcoPerOps();
        EXPECT_GT(factor, c.paper_factor / 4.0) << c.app.name();
        EXPECT_LT(factor, c.paper_factor * 4.0) << c.app.name();
    }
}

TEST_F(PaperResults, VideoDramCountGrowsWithNode)
{
    // Table 10: 1 DRAM/die through 65nm, 3 at 40nm, 6 at 28nm, 9 at
    // 16nm; require monotonic growth from 65nm on.
    const auto *r65 = result(apps::videoTranscode(), NodeId::N65);
    const auto *r28 = result(apps::videoTranscode(), NodeId::N28);
    const auto *r16 = result(apps::videoTranscode(), NodeId::N16);
    ASSERT_NE(r65, nullptr);
    ASSERT_NE(r28, nullptr);
    ASSERT_NE(r16, nullptr);
    EXPECT_LE(r65->optimal.config.drams_per_die,
              r28->optimal.config.drams_per_die);
    EXPECT_LE(r28->optimal.config.drams_per_die,
              r16->optimal.config.drams_per_die);
    EXPECT_GE(r28->optimal.config.drams_per_die, 2);
}

TEST_F(PaperResults, VideoOldNodesCannotSaturateOneDram)
{
    // Section 6.3: 130/90/65nm designs cannot saturate a single
    // DRAM's bandwidth.
    const auto *r65 = result(apps::videoTranscode(), NodeId::N65);
    ASSERT_NE(r65, nullptr);
    EXPECT_EQ(r65->optimal.config.drams_per_die, 1);
    EXPECT_GE(r65->optimal.compute_utilization, 0.99);
}

TEST_F(PaperResults, DeepLearning40nmMatchesTable8Shape)
{
    const auto *r40 = result(apps::deepLearning(), NodeId::N40);
    ASSERT_NE(r40, nullptr);
    // Paper: 2x1 grid, overdriven ~1.285V, 607 MHz.  Our analytic
    // thermal model admits 2x2 as well (see EXPERIMENTS.md), but
    // never the reticle-busting 3x3, and the overdriven operating
    // point matches.
    EXPECT_LE(r40->optimal.config.rcas_per_die, 4);
    EXPECT_GT(r40->optimal.config.vdd, 0.9);
    EXPECT_NEAR(r40->optimal.freq_mhz, 606.0, 1.0);
}

TEST_F(PaperResults, Figure9SlopeChangeAt65nm)
{
    // From 250 to 65nm TCO/op/s improves faster than NRE grows;
    // after 65nm NRE grows faster (Section 7.1).  Compare the total
    // factor on each side.
    const auto &sweep = opt_.sweepNodes(apps::bitcoin());
    auto find = [&](NodeId id) {
        for (const auto &r : sweep)
            if (r.node == id)
                return &r;
        return static_cast<const core::NodeResult *>(nullptr);
    };
    const auto *r250 = find(NodeId::N250);
    const auto *r65 = find(NodeId::N65);
    const auto *r16 = find(NodeId::N16);
    ASSERT_TRUE(r250 && r65 && r16);

    const double tco_gain_old = r250->tcoPerOps() / r65->tcoPerOps();
    const double nre_growth_old = r65->nre.total() / r250->nre.total();
    EXPECT_GT(tco_gain_old, nre_growth_old);

    // After 65nm the TCO-gain-per-NRE-dollar collapses (paper's
    // Bitcoin: 20.4x gain / 2.1x NRE before vs 6.6x / 5.4x after).
    const double tco_gain_new = r65->tcoPerOps() / r16->tcoPerOps();
    const double nre_growth_new = r16->nre.total() / r65->nre.total();
    EXPECT_GT(tco_gain_old / nre_growth_old,
              2.0 * tco_gain_new / nre_growth_new);
}

TEST_F(PaperResults, Figure10CrossoverOrdering)
{
    // Figure 10: nodes become optimal in age order as the workload
    // TCO grows; the first ASIC crossover is well below $10M and 16nm
    // only wins at billion-dollar scale.
    const auto ranges = opt_.optimalNodeRanges(apps::bitcoin());
    ASSERT_GE(ranges.size(), 4u);
    EXPECT_FALSE(ranges.front().line.node.has_value());
    EXPECT_LT(ranges[1].b_low, 10e6);   // paper: $610K
    ASSERT_TRUE(ranges.back().line.node.has_value());
    if (*ranges.back().line.node == NodeId::N16) {
        EXPECT_GT(ranges.back().b_low, 300e6);  // paper: $5.6B
    }
}

} // namespace
} // namespace moonwalk
