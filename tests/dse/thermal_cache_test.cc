/**
 * @file
 * Observability of the evaluator's thermal solve cache: a voltage
 * sweep revisits identical (dies, area) thermal subproblems, so the
 * second sweep of the same configuration must be served from cache.
 */
#include <gtest/gtest.h>

#include "apps/apps.hh"
#include "dse/explorer.hh"
#include "obs/metrics.hh"

using namespace moonwalk;

TEST(ThermalCacheObservability, SecondSweepHitsCache)
{
    dse::DesignSpaceExplorer explorer;
    const auto rca = apps::bitcoin().rca;
    const auto &lane = explorer.evaluator().lane();

    EXPECT_EQ(lane.cacheHits(), 0u);
    EXPECT_EQ(lane.cacheMisses(), 0u);

    const auto first = explorer.sweepVoltage(rca, tech::NodeId::N28,
                                             769, 9);
    ASSERT_FALSE(first.empty());
    const uint64_t misses_after_first = lane.cacheMisses();
    EXPECT_GT(misses_after_first, 0u);
    // Even within one sweep the voltage steps share (dies, area)
    // solves, so the hit rate is already positive.
    EXPECT_GT(lane.cacheHits(), 0u);

    const uint64_t hits_before = lane.cacheHits();
    const auto second = explorer.sweepVoltage(rca, tech::NodeId::N28,
                                              769, 9);
    ASSERT_EQ(second.size(), first.size());
    // The repeat sweep reuses every solve: hits grew, misses did not.
    EXPECT_GT(lane.cacheHits(), hits_before);
    EXPECT_EQ(lane.cacheMisses(), misses_after_first);

    const double hit_rate = static_cast<double>(lane.cacheHits()) /
        (lane.cacheHits() + lane.cacheMisses());
    EXPECT_GT(hit_rate, 0.0);
}

TEST(ThermalCacheObservability, EvaluatorCountsFeasibility)
{
    // dse.* counters only tick while metrics collection is on.
    auto &reg = obs::metrics();
    reg.counter("dse.evaluations").reset();
    reg.counter("dse.feasible").reset();
    reg.counter("dse.infeasible.voltage_range").reset();

    dse::ServerEvaluator eval;
    const auto rca = apps::bitcoin().rca;
    arch::ServerConfig cfg;
    cfg.node = tech::NodeId::N28;
    cfg.rcas_per_die = 769;
    cfg.dies_per_lane = 9;
    cfg.vdd = 0.459;

    ASSERT_TRUE(eval.evaluate(rca, cfg).feasible());
    EXPECT_EQ(reg.counter("dse.evaluations").value(), 0u);

    obs::setMetricsEnabled(true);
    ASSERT_TRUE(eval.evaluate(rca, cfg).feasible());
    cfg.vdd = 99.0;  // far out of range
    ASSERT_FALSE(eval.evaluate(rca, cfg).feasible());
    obs::setMetricsEnabled(false);

    EXPECT_EQ(reg.counter("dse.evaluations").value(), 2u);
    EXPECT_EQ(reg.counter("dse.feasible").value(), 1u);
    EXPECT_EQ(reg.counter("dse.infeasible.voltage_range").value(),
              1u);
}

TEST(ThermalCacheObservability, ExploreRecordsSweepMetrics)
{
    auto &reg = obs::metrics();
    reg.counter("dse.evaluations").reset();

    dse::ExplorerOptions o;
    o.voltage_steps = 8;
    o.rca_count_steps = 8;
    dse::DesignSpaceExplorer explorer{o};
    const auto rca = apps::bitcoin().rca;

    obs::setMetricsEnabled(true);
    const auto result = explorer.explore(rca, tech::NodeId::N40);
    obs::setMetricsEnabled(false);

    ASSERT_TRUE(result.tco_optimal.has_value());
    // Exact accounting: result.evaluated includes the feasibility
    // bisection probes, so it equals the per-evaluate counter.
    EXPECT_EQ(reg.counter("dse.evaluations").value(),
              result.evaluated);

    const auto &timer = reg.timer("dse.sweep.Bitcoin.40nm");
    EXPECT_GE(timer.count(), 1u);
    EXPECT_GT(timer.totalNs(), 0u);

    // Thermal cache gauges were snapshotted by the sweep.
    EXPECT_GT(reg.gauge("thermal.cache.hits").value(), 0.0);
    EXPECT_GT(reg.gauge("thermal.cache.misses").value(), 0.0);
}
