#include <gtest/gtest.h>

#include "apps/apps.hh"
#include "dse/evaluator.hh"

namespace moonwalk::dse {
namespace {

using tech::NodeId;

class EvaluatorTest : public ::testing::Test
{
  protected:
    ServerEvaluator eval_;

    arch::ServerConfig bitcoin28() const
    {
        arch::ServerConfig cfg;
        cfg.node = NodeId::N28;
        cfg.rcas_per_die = 769;
        cfg.dies_per_lane = 9;
        cfg.vdd = 0.459;  // the paper's TCO-optimal point (Table 7)
        return cfg;
    }
};

TEST_F(EvaluatorTest, PaperBitcoinPointIsFeasible)
{
    const auto r = eval_.evaluate(apps::bitcoin().rca, bitcoin28());
    ASSERT_TRUE(r.feasible()) << r.infeasible_reason;
    const auto &p = *r.point;
    EXPECT_NEAR(p.die_area_mm2, 540.0, 5.0);
    // Performance within 25% of the paper's 8,223 GH/s.
    EXPECT_GT(p.perf_ops, 0.75 * 8223e9);
    EXPECT_LT(p.perf_ops, 1.25 * 8223e9);
    // Wall power within 35% of 3,736 W.
    EXPECT_GT(p.wall_power_w, 0.65 * 3736);
    EXPECT_LT(p.wall_power_w, 1.35 * 3736);
    // Server cost within 35% of $8.2K.
    EXPECT_GT(p.server_cost, 0.65 * 8200);
    EXPECT_LT(p.server_cost, 1.35 * 8200);
}

TEST_F(EvaluatorTest, MetricsConsistent)
{
    const auto r = eval_.evaluate(apps::bitcoin().rca, bitcoin28());
    ASSERT_TRUE(r.feasible());
    const auto &p = *r.point;
    EXPECT_NEAR(p.cost_per_ops, p.server_cost / p.perf_ops, 1e-15);
    EXPECT_NEAR(p.watts_per_ops, p.wall_power_w / p.perf_ops, 1e-15);
    EXPECT_NEAR(p.server_cost, p.cost_breakdown.total(), 1e-6);
    EXPECT_GT(p.tco_per_ops, p.cost_per_ops);
    EXPECT_LE(p.die_power_w, p.max_die_power_w);
}

TEST_F(EvaluatorTest, VoltageOutOfRangeRejected)
{
    auto cfg = bitcoin28();
    cfg.vdd = 0.1;
    auto r = eval_.evaluate(apps::bitcoin().rca, cfg);
    EXPECT_FALSE(r.feasible());
    EXPECT_EQ(r.infeasible_reason, "voltage out of range");
    cfg.vdd = 2.0;  // above 1.5 * 0.9V
    r = eval_.evaluate(apps::bitcoin().rca, cfg);
    EXPECT_FALSE(r.feasible());
}

TEST_F(EvaluatorTest, ReticleLimitRejected)
{
    auto cfg = bitcoin28();
    cfg.rcas_per_die = 2000;  // > 640mm^2 at 28nm
    const auto r = eval_.evaluate(apps::bitcoin().rca, cfg);
    EXPECT_FALSE(r.feasible());
    EXPECT_EQ(r.infeasible_reason, "die exceeds reticle");
}

TEST_F(EvaluatorTest, ThermalLimitBindsAtHighVoltage)
{
    // A full lane of reticle-sized Bitcoin dies at maximum voltage
    // must trip the junction limit.
    arch::ServerConfig cfg;
    cfg.node = NodeId::N28;
    cfg.rcas_per_die = 769;
    cfg.dies_per_lane = 15;
    cfg.vdd = 1.35;
    const auto r = eval_.evaluate(apps::bitcoin().rca, cfg);
    EXPECT_FALSE(r.feasible());
    EXPECT_TRUE(r.infeasible_reason == "junction temperature limit" ||
                r.infeasible_reason == "exceeds server power budget")
        << r.infeasible_reason;
}

TEST_F(EvaluatorTest, VideoNeedsDram)
{
    arch::ServerConfig cfg;
    cfg.node = NodeId::N28;
    cfg.rcas_per_die = 100;
    cfg.dies_per_lane = 5;
    cfg.vdd = 0.75;
    cfg.drams_per_die = 0;
    const auto r = eval_.evaluate(apps::videoTranscode().rca, cfg);
    EXPECT_FALSE(r.feasible());
    EXPECT_EQ(r.infeasible_reason, "application needs DRAM");
}

TEST_F(EvaluatorTest, DramBandwidthCapsVideoThroughput)
{
    arch::ServerConfig cfg;
    cfg.node = NodeId::N28;
    cfg.rcas_per_die = 153;
    cfg.dies_per_lane = 4;
    cfg.vdd = 0.754;
    cfg.drams_per_die = 1;  // starved: compute wants ~6 LPDDR3
    const auto r = eval_.evaluate(apps::videoTranscode().rca, cfg);
    ASSERT_TRUE(r.feasible()) << r.infeasible_reason;
    EXPECT_LT(r.point->compute_utilization, 0.5);

    cfg.drams_per_die = 8;
    const auto r8 = eval_.evaluate(apps::videoTranscode().rca, cfg);
    ASSERT_TRUE(r8.feasible()) << r8.infeasible_reason;
    EXPECT_GT(r8.point->perf_ops, 3.0 * r.point->perf_ops);
}

TEST_F(EvaluatorTest, SlaPinsDeepLearningVoltage)
{
    arch::ServerConfig cfg;
    cfg.node = NodeId::N40;
    cfg.rcas_per_die = 2;  // the 2x1 grid of Table 8
    cfg.dies_per_lane = 4;
    cfg.vdd = 0.5;  // ignored: SLA dictates the voltage
    const auto r = eval_.evaluate(apps::deepLearning().rca, cfg);
    ASSERT_TRUE(r.feasible()) << r.infeasible_reason;
    EXPECT_NEAR(r.point->freq_mhz, 606.0, 1.0);
    // Overdriven above 40nm nominal (paper: 1.285V).
    EXPECT_GT(r.point->config.vdd, 0.9);
    EXPECT_LT(r.point->config.vdd, 1.35);
}

TEST_F(EvaluatorTest, SlaUnreachableAtOldNodes)
{
    arch::ServerConfig cfg;
    cfg.node = NodeId::N65;
    cfg.rcas_per_die = 1;
    cfg.dies_per_lane = 4;
    const auto r = eval_.evaluate(apps::deepLearning().rca, cfg);
    EXPECT_FALSE(r.feasible());
    EXPECT_NE(r.infeasible_reason.find("SLA"), std::string::npos);
}

TEST_F(EvaluatorTest, DeepLearningGridRestrictions)
{
    arch::ServerConfig cfg;
    cfg.node = NodeId::N28;
    cfg.rcas_per_die = 3;  // not one of 1x1/2x1/2x2/3x3/2x4
    cfg.dies_per_lane = 8;
    const auto r = eval_.evaluate(apps::deepLearning().rca, cfg);
    EXPECT_FALSE(r.feasible());
}

TEST_F(EvaluatorTest, DeepLearningServerMultiple)
{
    arch::ServerConfig cfg;
    cfg.node = NodeId::N28;
    cfg.rcas_per_die = 4;
    cfg.dies_per_lane = 3;  // 8 lanes * 3 dies * 4 = 96, not % 64
    const auto r = eval_.evaluate(apps::deepLearning().rca, cfg);
    EXPECT_FALSE(r.feasible());
    EXPECT_EQ(r.infeasible_reason,
              "server RCA count not a system multiple");
}

TEST_F(EvaluatorTest, LaneFitRejectsOverpacking)
{
    arch::ServerConfig cfg;
    cfg.node = NodeId::N28;
    cfg.rcas_per_die = 769;
    cfg.dies_per_lane = 15;
    cfg.vdd = 0.40;
    // 540mm^2 dies: 15 fit with the default 2mm margin...
    const auto ok = eval_.evaluate(apps::bitcoin().rca, cfg);
    EXPECT_TRUE(ok.feasible()) << ok.infeasible_reason;
    // ...but video dies with 6 DRAMs each cannot pack 15 deep.
    arch::ServerConfig vcfg;
    vcfg.node = NodeId::N28;
    vcfg.rcas_per_die = 153;
    vcfg.dies_per_lane = 15;
    vcfg.vdd = 0.754;
    vcfg.drams_per_die = 6;
    const auto bad = eval_.evaluate(apps::videoTranscode().rca, vcfg);
    EXPECT_FALSE(bad.feasible());
    EXPECT_EQ(bad.infeasible_reason, "dies do not fit the lane");
}

TEST_F(EvaluatorTest, LowerVoltageImprovesEnergyEfficiency)
{
    // The feasible window at 9 large dies per lane is narrow
    // (thermals cap Bitcoin around 0.5V at 28nm, like the truncated
    // curves of Figure 4).
    auto lo = bitcoin28();
    lo.vdd = 0.42;
    auto hi = bitcoin28();
    hi.vdd = 0.46;
    const auto rl = eval_.evaluate(apps::bitcoin().rca, lo);
    const auto rh = eval_.evaluate(apps::bitcoin().rca, hi);
    ASSERT_TRUE(rl.feasible() && rh.feasible());
    EXPECT_LT(rl.point->watts_per_ops, rh.point->watts_per_ops);
    EXPECT_GT(rl.point->cost_per_ops, rh.point->cost_per_ops);
}

} // namespace
} // namespace moonwalk::dse
