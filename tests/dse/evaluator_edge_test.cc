/**
 * @file
 * Edge-case coverage of the evaluator: every rejection reason is
 * reachable, and secondary accounting (DRAM power, NIC cost, fan
 * power, leakage, yield harvesting) shows up where it should.
 */
#include <gtest/gtest.h>

#include "apps/apps.hh"
#include "dse/evaluator.hh"

namespace moonwalk::dse {
namespace {

using tech::NodeId;

class EvaluatorEdge : public ::testing::Test
{
  protected:
    ServerEvaluator eval_;
};

TEST_F(EvaluatorEdge, RejectionEmptyConfiguration)
{
    arch::ServerConfig cfg;
    cfg.rcas_per_die = 0;
    const auto r = eval_.evaluate(apps::bitcoin().rca, cfg);
    EXPECT_EQ(r.infeasible_reason, "empty configuration");
    arch::ServerConfig cfg2;
    cfg2.dies_per_lane = 0;
    EXPECT_FALSE(eval_.evaluate(apps::bitcoin().rca, cfg2).feasible());
}

TEST_F(EvaluatorEdge, RejectionSlaUnreachableNamesNode)
{
    arch::ServerConfig cfg;
    cfg.node = NodeId::N130;
    cfg.rcas_per_die = 1;
    const auto r = eval_.evaluate(apps::deepLearning().rca, cfg);
    ASSERT_FALSE(r.feasible());
    EXPECT_NE(r.infeasible_reason.find("130nm"), std::string::npos);
}

TEST_F(EvaluatorEdge, DramPowerAndCostAccounted)
{
    arch::ServerConfig cfg;
    cfg.node = NodeId::N28;
    cfg.rcas_per_die = 100;
    cfg.dies_per_lane = 4;
    cfg.vdd = 0.70;
    cfg.drams_per_die = 4;
    const auto r = eval_.evaluate(apps::videoTranscode().rca, cfg);
    ASSERT_TRUE(r.feasible()) << r.infeasible_reason;
    const auto &p = *r.point;
    // 8 lanes x 4 dies x 4 DRAMs at 0.7W each.
    EXPECT_NEAR(p.dram_power_w, 8 * 4 * 4 * 0.7, 1e-9);
    EXPECT_NEAR(p.cost_breakdown.dram, 8 * 4 * 4 * 5.0, 1e-9);
}

TEST_F(EvaluatorEdge, OffPcbInterfaceSizedToTraffic)
{
    // Bitcoin moves control-plane traffic only: the cheapest 1 GigE
    // suffices.  Deep Learning streams batch activations and needs a
    // faster tier, which shows up in the system cost.
    arch::ServerConfig btc;
    btc.node = NodeId::N28;
    btc.rcas_per_die = 200;
    btc.dies_per_lane = 4;
    btc.vdd = 0.45;
    const auto rb = eval_.evaluate(apps::bitcoin().rca, btc);
    ASSERT_TRUE(rb.feasible());
    EXPECT_EQ(rb.point->offpcb_interface, "1 GigE");
    EXPECT_EQ(rb.point->offpcb_count, 1);

    arch::ServerConfig dl;
    dl.node = NodeId::N28;
    dl.rcas_per_die = 4;
    dl.dies_per_lane = 8;
    const auto rd = eval_.evaluate(apps::deepLearning().rca, dl);
    ASSERT_TRUE(rd.feasible());
    EXPECT_NE(rd.point->offpcb_interface, "1 GigE");
    EXPECT_GT(rd.point->cost_breakdown.system,
              rb.point->cost_breakdown.system);
}

TEST_F(EvaluatorEdge, FanPowerIncluded)
{
    arch::ServerConfig cfg;
    cfg.node = NodeId::N28;
    cfg.rcas_per_die = 200;
    cfg.dies_per_lane = 4;
    cfg.vdd = 0.45;
    const auto r = eval_.evaluate(apps::bitcoin().rca, cfg);
    ASSERT_TRUE(r.feasible());
    EXPECT_GT(r.point->fan_power_w, 0.0);
    // Wall power exceeds the silicon+fan sum (conversion losses).
    EXPECT_GT(r.point->wall_power_w,
              r.point->silicon_power_w + r.point->fan_power_w);
}

TEST_F(EvaluatorEdge, YieldHarvestingDiscountsLargeRcas)
{
    // Same total silicon, different RCA granularity: the coarse-RCA
    // design delivers less because whole large RCAs die per defect.
    const auto fine = apps::bitcoin().rca;  // 0.7mm^2 RCA
    auto coarse = fine;
    coarse.area_28_mm2 = fine.area_28_mm2 * 64;
    coarse.ops_per_cycle = fine.ops_per_cycle * 64;
    coarse.gate_count = fine.gate_count * 64;

    arch::ServerConfig cfg_fine;
    cfg_fine.node = NodeId::N28;
    cfg_fine.rcas_per_die = 640;
    cfg_fine.dies_per_lane = 6;
    cfg_fine.vdd = 0.45;
    arch::ServerConfig cfg_coarse = cfg_fine;
    cfg_coarse.rcas_per_die = 10;

    const auto rf = eval_.evaluate(fine, cfg_fine);
    const auto rc = eval_.evaluate(coarse, cfg_coarse);
    ASSERT_TRUE(rf.feasible() && rc.feasible());
    EXPECT_GT(rf.point->perf_ops, rc.point->perf_ops);
}

TEST_F(EvaluatorEdge, SlaVoltageClampedToNodeMinimum)
{
    // An RCA whose SLA clock is trivially low still runs at the node
    // minimum voltage, not below it.
    auto rca = apps::deepLearning().rca;
    rca.sla_fixed_freq_mhz = 1.0;
    rca.needs_high_speed_link = false;
    rca.server_rca_multiple = 1;
    rca.allowed_rcas_per_die.clear();
    arch::ServerConfig cfg;
    cfg.node = NodeId::N28;
    cfg.rcas_per_die = 2;
    cfg.dies_per_lane = 2;
    const auto r = eval_.evaluate(rca, cfg);
    ASSERT_TRUE(r.feasible()) << r.infeasible_reason;
    const auto &node = eval_.scaling().database().node(NodeId::N28);
    EXPECT_GE(r.point->config.vdd, node.vdd_min);
    EXPECT_NEAR(r.point->freq_mhz, 1.0, 1e-9);
}

TEST_F(EvaluatorEdge, MaxRcasPerDieShrinksWithDramAndDark)
{
    const auto rca = apps::videoTranscode().rca;
    const auto &node = eval_.scaling().database().node(NodeId::N28);
    const int plain = eval_.maxRcasPerDie(rca, node, 0, 0.0);
    const int with_dram = eval_.maxRcasPerDie(rca, node, 8, 0.0);
    const int with_dark = eval_.maxRcasPerDie(rca, node, 0, 0.2);
    EXPECT_GT(plain, with_dram);
    EXPECT_GT(plain, with_dark);
    EXPECT_GT(with_dram, 0);
}

TEST_F(EvaluatorEdge, UtilizationReportedWhenDramBound)
{
    arch::ServerConfig cfg;
    cfg.node = NodeId::N16;
    cfg.rcas_per_die = 200;
    cfg.dies_per_lane = 3;
    cfg.vdd = 0.7;
    cfg.drams_per_die = 1;
    const auto r = eval_.evaluate(apps::videoTranscode().rca, cfg);
    ASSERT_TRUE(r.feasible()) << r.infeasible_reason;
    EXPECT_LT(r.point->compute_utilization, 1.0);
    // Perf equals the DRAM bound, not the compute bound.
    const auto dram = arch::dramSpec(tech::DramGeneration::LPDDR3);
    const double bound = 24 * dram.bandwidth_bps /
        apps::videoTranscode().rca.bytes_per_op;
    EXPECT_NEAR(r.point->perf_ops, bound, 1e-6 * bound);
}

} // namespace
} // namespace moonwalk::dse
