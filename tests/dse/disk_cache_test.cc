/**
 * Persistent sweep cache at the explorer level: codec round-trips
 * bit-exactly, warm explorers are served from disk with identical
 * results, version bumps and corruption force recomputation, and
 * cache_sweeps=false bypasses the disk entirely.
 */
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include <gtest/gtest.h>

#include "apps/apps.hh"
#include "dse/explorer.hh"
#include "dse/result_codec.hh"

namespace moonwalk::dse {
namespace {

namespace fs = std::filesystem;
using tech::NodeId;

class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_(fs::temp_directory_path() /
                ("moonwalk-dse-cache-" + tag + "-" +
                 std::to_string(::getpid())))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    std::string str() const { return path_.string(); }
    fs::path path() const { return path_; }

  private:
    fs::path path_;
};

ExplorerOptions
coarse(const std::string &cache_dir = {})
{
    ExplorerOptions o;
    o.voltage_steps = 8;
    o.rca_count_steps = 8;
    o.max_drams_per_die = 4;
    o.dark_fractions = {0.0};
    o.max_threads = 1;
    o.keep_feasible_points = true;  // digest the full sweep output
    o.cache_dir = cache_dir;
    return o;
}

/** Precision-17 digest mirroring the self-check harness's notion of
 *  byte-identical results. */
std::string
digest(const ExplorationResult &r)
{
    std::ostringstream os;
    os.precision(17);
    const auto point = [&os](const DesignPoint &p) {
        os << p.config.rcas_per_die << ' ' << p.config.dies_per_lane
           << ' ' << p.config.drams_per_die << ' ' << p.config.vdd
           << ' ' << p.config.dark_silicon_fraction << ' '
           << p.cost_per_ops << ' ' << p.watts_per_ops << ' '
           << p.tco_per_ops << '\n';
    };
    os << r.evaluated << ' ' << r.feasible << '\n';
    if (r.tco_optimal)
        point(*r.tco_optimal);
    for (const auto &p : r.pareto)
        point(p);
    for (const auto &p : r.all_feasible)
        point(p);
    return os.str();
}

size_t
entryCount(const fs::path &dir)
{
    size_t n = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        (void)e;
        ++n;
    }
    return n;
}

TEST(ResultCodec, RoundTripsARealExplorationBitExactly)
{
    DesignSpaceExplorer explorer{coarse()};
    const auto result =
        explorer.explore(apps::bitcoin().rca, NodeId::N28);
    ASSERT_TRUE(result.tco_optimal.has_value());
    ASSERT_FALSE(result.all_feasible.empty());

    const std::string bytes = encodeExplorationResult(result);
    const auto decoded = decodeExplorationResult(bytes);
    ASSERT_TRUE(decoded.has_value());
    // Byte-equal re-encoding implies every field (strings, ints, and
    // double bit patterns) survived the round trip exactly.
    EXPECT_EQ(encodeExplorationResult(*decoded), bytes);
    EXPECT_EQ(digest(*decoded), digest(result));
}

TEST(ResultCodec, WireFormatIsLittleEndianWithByteOrderMark)
{
    DesignSpaceExplorer explorer{coarse()};
    const auto result =
        explorer.explore(apps::bitcoin().rca, NodeId::N28);
    const std::string bytes = encodeExplorationResult(result);
    ASSERT_GE(bytes.size(), 12u);

    // Header layout is fixed regardless of host endianness: magic
    // "MWER" (0x4d574552), version, then the byte-order mark
    // 0x01020304 — all little-endian, LSB first on the wire.
    const auto u8 = [&](size_t i) {
        return static_cast<unsigned char>(bytes[i]);
    };
    EXPECT_EQ(u8(0), 0x52);  // 'R'
    EXPECT_EQ(u8(1), 0x45);  // 'E'
    EXPECT_EQ(u8(2), 0x57);  // 'W'
    EXPECT_EQ(u8(3), 0x4d);  // 'M'
    EXPECT_EQ(u8(4), kResultCodecVersion & 0xff);
    EXPECT_EQ(u8(8), 0x04);
    EXPECT_EQ(u8(9), 0x03);
    EXPECT_EQ(u8(10), 0x02);
    EXPECT_EQ(u8(11), 0x01);
}

TEST(ResultCodec, RejectsAByteSwappedPayload)
{
    DesignSpaceExplorer explorer{coarse()};
    const auto result =
        explorer.explore(apps::bitcoin().rca, NodeId::N28);
    std::string bytes = encodeExplorationResult(result);
    ASSERT_TRUE(decodeExplorationResult(bytes).has_value());

    // Simulate a cache written by a big-endian host under the raw
    // host-endian v1 layout: every 32-bit header word byte-swapped.
    std::string swapped = bytes;
    for (size_t word = 0; word < 3; ++word) {
        std::swap(swapped[4 * word + 0], swapped[4 * word + 3]);
        std::swap(swapped[4 * word + 1], swapped[4 * word + 2]);
    }
    EXPECT_FALSE(decodeExplorationResult(swapped).has_value());

    // Swapping only the mark (header otherwise intact) must also be
    // rejected — a half-converted payload is corrupt, not decodable.
    std::string marked = bytes;
    std::swap(marked[8], marked[11]);
    std::swap(marked[9], marked[10]);
    EXPECT_FALSE(decodeExplorationResult(marked).has_value());
}

TEST(ResultCodec, RejectsTruncationAndTrailingGarbage)
{
    DesignSpaceExplorer explorer{coarse()};
    const auto result =
        explorer.explore(apps::bitcoin().rca, NodeId::N28);
    const std::string bytes = encodeExplorationResult(result);

    EXPECT_FALSE(decodeExplorationResult("").has_value());
    EXPECT_FALSE(decodeExplorationResult(
                     std::string_view(bytes).substr(0, bytes.size() / 2))
                     .has_value());
    EXPECT_FALSE(decodeExplorationResult(bytes + "x").has_value());
    std::string wrong_magic = bytes;
    wrong_magic[0] ^= 0x01;
    EXPECT_FALSE(decodeExplorationResult(wrong_magic).has_value());
}

TEST(DiskCache, WarmExplorerIsServedFromDiskIdentically)
{
    TempDir dir("warm");
    const auto rca = apps::bitcoin().rca;

    std::string cold_digest;
    {
        DesignSpaceExplorer cold{coarse(dir.str())};
        ASSERT_NE(cold.diskCache(), nullptr);
        cold_digest = digest(cold.explore(rca, NodeId::N28));
        EXPECT_EQ(cold.diskCacheHits(), 0u);
        EXPECT_EQ(cold.diskCacheMisses(), 1u);
        EXPECT_EQ(cold.diskCacheInserts(), 1u);
    }
    ASSERT_EQ(entryCount(dir.path()), 1u);

    // A fresh explorer has an empty in-memory memo: a hit can only
    // come from the published disk entry.
    DesignSpaceExplorer warm{coarse(dir.str())};
    EXPECT_EQ(digest(warm.explore(rca, NodeId::N28)), cold_digest);
    EXPECT_EQ(warm.diskCacheHits(), 1u);
    EXPECT_EQ(warm.diskCacheInserts(), 0u);

    // And the uncached reference agrees, so the cache is transparent.
    auto uncached_opts = coarse();
    uncached_opts.cache_sweeps = false;
    DesignSpaceExplorer uncached{uncached_opts};
    EXPECT_EQ(digest(uncached.explore(rca, NodeId::N28)), cold_digest);
}

TEST(DiskCache, ModelVersionBumpForcesRecompute)
{
    TempDir dir("version");
    const auto rca = apps::bitcoin().rca;
    {
        DesignSpaceExplorer cold{coarse(dir.str())};
        cold.explore(rca, NodeId::N28);
    }
    // Rewrite the entry's version line in place: this is exactly what
    // an entry from an older kSweepModelVersion looks like.
    fs::path entry;
    for (const auto &e : fs::directory_iterator(dir.path()))
        entry = e.path();
    ASSERT_FALSE(entry.empty());
    std::ifstream in(entry, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    const auto pos = text.find("version ");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::strlen("version "), "version old-");
    std::ofstream(entry, std::ios::binary | std::ios::trunc) << text;

    DesignSpaceExplorer warm{coarse(dir.str())};
    warm.explore(rca, NodeId::N28);
    EXPECT_EQ(warm.diskCacheHits(), 0u);
    EXPECT_EQ(warm.diskCache()->evictions(), 1u);
    EXPECT_EQ(warm.diskCacheInserts(), 1u) << "must re-publish";
}

TEST(DiskCache, CorruptEntryIsRecomputedNotTrusted)
{
    TempDir dir("corrupt");
    const auto rca = apps::bitcoin().rca;
    std::string want;
    {
        DesignSpaceExplorer cold{coarse(dir.str())};
        want = digest(cold.explore(rca, NodeId::N28));
    }
    fs::path entry;
    for (const auto &e : fs::directory_iterator(dir.path()))
        entry = e.path();
    std::ifstream in(entry, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    text[text.size() - 9] ^= 0x40;  // flip a payload bit
    std::ofstream(entry, std::ios::binary | std::ios::trunc) << text;

    DesignSpaceExplorer warm{coarse(dir.str())};
    EXPECT_EQ(digest(warm.explore(rca, NodeId::N28)), want);
    EXPECT_EQ(warm.diskCacheHits(), 0u);
    EXPECT_EQ(warm.diskCache()->corrupt(), 1u);
}

TEST(DiskCache, CacheSweepsOffBypassesDisk)
{
    TempDir dir("bypass");
    auto opts = coarse(dir.str());
    opts.cache_sweeps = false;
    DesignSpaceExplorer explorer{opts};
    explorer.explore(apps::bitcoin().rca, NodeId::N28);
    EXPECT_EQ(entryCount(dir.path()), 0u)
        << "cache_sweeps=false must not touch the disk cache";
    EXPECT_EQ(explorer.diskCacheMisses(), 0u);
}

TEST(DiskCache, UnusableDirectoryStillProducesResults)
{
    auto opts = coarse("/dev/null/moonwalk-no-such-dir");
    DesignSpaceExplorer explorer{opts};
    const auto result =
        explorer.explore(apps::bitcoin().rca, NodeId::N28);
    EXPECT_TRUE(result.tco_optimal.has_value());
    ASSERT_NE(explorer.diskCache(), nullptr);
    EXPECT_FALSE(explorer.diskCache()->enabled());
}

} // namespace
} // namespace moonwalk::dse
