#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>

#include "apps/apps.hh"
#include "core/optimizer.hh"
#include "dse/explorer.hh"
#include "obs/metrics.hh"
#include "thermal/lane.hh"

namespace moonwalk::dse {
namespace {

using tech::NodeId;

/** Coarse sweep at a chosen thread budget: fast, but still covers the
 *  full (dark x DRAMs x RCAs x voltage) grid shape. */
ExplorerOptions
coarse(int threads)
{
    ExplorerOptions o;
    o.voltage_steps = 10;
    o.rca_count_steps = 8;
    o.max_drams_per_die = 4;
    o.dark_fractions = {0.0, 0.10};
    o.max_threads = threads;
    return o;
}

/** Full-precision digest of an exploration: any divergence across
 *  thread counts — even one ULP, or a reordered Pareto point — shows
 *  up as a string mismatch. */
std::string
digest(const ExplorationResult &r)
{
    std::ostringstream os;
    os.precision(17);
    const auto point = [&os](const DesignPoint &p) {
        os << p.config.rcas_per_die << ' ' << p.config.dies_per_lane
           << ' ' << p.config.drams_per_die << ' ' << p.config.vdd
           << ' ' << p.config.dark_silicon_fraction << ' '
           << p.cost_per_ops << ' ' << p.watts_per_ops << ' '
           << p.tco_per_ops << '\n';
    };
    os << r.evaluated << ' ' << r.feasible << '\n';
    if (r.tco_optimal)
        point(*r.tco_optimal);
    for (const auto &p : r.pareto)
        point(p);
    return os.str();
}

std::string
digest(const std::vector<core::NodeResult> &sweep)
{
    std::ostringstream os;
    os.precision(17);
    for (const auto &r : sweep) {
        os << tech::to_string(r.node) << ' '
           << r.optimal.config.rcas_per_die << ' '
           << r.optimal.config.dies_per_lane << ' '
           << r.optimal.config.drams_per_die << ' '
           << r.optimal.config.vdd << ' ' << r.optimal.tco_per_ops
           << ' ' << r.nre.total() << '\n';
    }
    return os.str();
}

std::string
digest(const std::vector<core::NodeRange> &ranges)
{
    std::ostringstream os;
    os.precision(17);
    for (const auto &r : ranges) {
        os << (r.line.node ? tech::to_string(*r.line.node) : "baseline")
           << ' ' << r.line.nre << ' ' << r.line.slope << ' '
           << r.b_low << ' ' << r.b_high << '\n';
    }
    return os.str();
}

TEST(ParallelExplorerTest, ExploreBitIdenticalAcrossThreadCounts)
{
    // The ISSUE's core determinism guarantee: explore() is
    // bit-identical at 1, 2, and 8 threads.  Fresh explorers per
    // thread count so the sweep memo cache cannot short-circuit the
    // comparison.
    for (const auto &app : {apps::bitcoin(), apps::videoTranscode()}) {
        const auto serial =
            digest(DesignSpaceExplorer{coarse(1)}.explore(
                app.rca, NodeId::N28));
        EXPECT_FALSE(serial.empty());
        for (int threads : {2, 8}) {
            const auto parallel =
                digest(DesignSpaceExplorer{coarse(threads)}.explore(
                    app.rca, NodeId::N28));
            EXPECT_EQ(parallel, serial)
                << app.name() << " diverged at " << threads
                << " threads";
        }
    }
}

TEST(ParallelExplorerTest, OptimizerEnvelopeIdenticalAcrossThreadCounts)
{
    // Node sweep + optimal-node ranges (the Figure 11 envelope) at 1,
    // 2, and 8 threads; the optimizer fans out across nodes, so this
    // also exercises nested parallelism (nodes x grid cells).
    const auto app = apps::bitcoin();
    std::string sweep1, ranges1;
    for (int threads : {1, 2, 8}) {
        core::MoonwalkOptimizer opt{DesignSpaceExplorer{coarse(threads)}};
        const auto sweep = digest(opt.sweepNodes(app));
        const auto ranges = digest(opt.optimalNodeRanges(app));
        EXPECT_FALSE(sweep.empty());
        EXPECT_FALSE(ranges.empty());
        if (threads == 1) {
            sweep1 = sweep;
            ranges1 = ranges;
        } else {
            EXPECT_EQ(sweep, sweep1) << threads << " threads";
            EXPECT_EQ(ranges, ranges1) << threads << " threads";
        }
    }
}

TEST(ParallelExplorerTest, PrefetchMatchesSerialPerAppSweeps)
{
    const auto apps = apps::allApps();
    core::MoonwalkOptimizer warm{DesignSpaceExplorer{coarse(4)}};
    warm.prefetch(apps);  // apps x nodes fan-out, warm cache
    core::MoonwalkOptimizer cold{DesignSpaceExplorer{coarse(1)}};
    for (const auto &app : apps) {
        EXPECT_EQ(digest(warm.sweepNodes(app)),
                  digest(cold.sweepNodes(app)))
            << app.name();
    }
}

TEST(ParallelExplorerTest, SweepCacheServesRepeatExplorations)
{
    DesignSpaceExplorer explorer{coarse(2)};
    const auto first = explorer.explore(apps::bitcoin().rca,
                                        NodeId::N40);
    EXPECT_EQ(explorer.sweepCacheMisses(), 1u);
    const auto second = explorer.explore(apps::bitcoin().rca,
                                         NodeId::N40);
    EXPECT_EQ(explorer.sweepCacheHits(), 1u);
    EXPECT_EQ(digest(first), digest(second));
}

TEST(ParallelExplorerTest, SweepCacheKeysOnSpecContents)
{
    // Sensitivity/uncertainty studies sweep perturbed copies of a spec
    // under one app name; the memo key must encode the contents, not
    // the name, or a perturbed run would be served the stale result.
    DesignSpaceExplorer explorer{coarse(2)};
    auto rca = apps::bitcoin().rca;
    const auto base = explorer.explore(rca, NodeId::N40);
    rca.energy_per_op_28_j *= 1.25;
    const auto perturbed = explorer.explore(rca, NodeId::N40);
    EXPECT_EQ(explorer.sweepCacheMisses(), 2u);
    EXPECT_EQ(explorer.sweepCacheHits(), 0u);
    ASSERT_TRUE(base.tco_optimal && perturbed.tco_optimal);
    EXPECT_NE(base.tco_optimal->watts_per_ops,
              perturbed.tco_optimal->watts_per_ops);
}

TEST(ParallelExplorerTest, AggregatesWorkerThermalCacheStats)
{
    DesignSpaceExplorer explorer{coarse(2)};
    (void)explorer.explore(apps::bitcoin().rca, NodeId::N28);
    // The thermal solves ran on worker clones; the aggregate view must
    // see them even though the prototype evaluator stayed cold.
    EXPECT_GT(explorer.thermalCacheMisses(), 0u);
    EXPECT_GT(explorer.thermalCacheHits(), 0u);
}

TEST(ParallelExplorerTest, MetricsEpilogueSafeDuringConcurrentSweeps)
{
    // Regression (TSan): explore()'s metrics epilogue aggregates every
    // worker clone's thermal-cache counters while sibling node
    // explorations are still solving on those clones.  The counters
    // are relaxed atomics precisely so this concurrent read is
    // race-free; running the node fan-out with metrics on gives the
    // TSan CI job a chance to see it.
    const bool were_on = obs::metricsEnabled();
    obs::setMetricsEnabled(true);
    core::MoonwalkOptimizer opt{DesignSpaceExplorer{coarse(4)}};
    const auto sweep = opt.sweepNodes(apps::bitcoin());
    obs::setMetricsEnabled(were_on);
    EXPECT_FALSE(sweep.empty());
}

TEST(ParallelExplorerTest, ThermalCloneUsableFromAnotherThread)
{
    // The supported way to move a LaneThermalModel across threads is
    // copying it: the clone keeps the warm memo cache but resets its
    // stats and thread affinity.
    thermal::LaneThermalModel proto;
    const double limit = proto.solve(8, 100.0).max_power_per_die_w;
    EXPECT_EQ(proto.cacheMisses(), 1u);

    thermal::LaneThermalModel clone{proto};
    EXPECT_EQ(clone.cacheSize(), proto.cacheSize());
    EXPECT_EQ(clone.cacheMisses(), 0u);

    double from_thread = std::nan("");
    uint64_t clone_hits = 0;
    std::thread worker([&] {
        from_thread = clone.solve(8, 100.0).max_power_per_die_w;
        clone_hits = clone.cacheHits();
    });
    worker.join();
    EXPECT_EQ(from_thread, limit);
    EXPECT_EQ(clone_hits, 1u);  // warm cache carried over
}

TEST(LaneThermalOwnerDeathTest, CrossThreadSolvePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            thermal::LaneThermalModel model;
            model.solve(8, 100.0);  // claims the owner slot
            std::thread second([&model] { model.solve(8, 200.0); });
            second.join();
        },
        "second thread");
}

} // namespace
} // namespace moonwalk::dse
