#include <gtest/gtest.h>

#include "dse/pareto.hh"

namespace moonwalk::dse {
namespace {

DesignPoint
point(double cost, double watts)
{
    DesignPoint p;
    p.cost_per_ops = cost;
    p.watts_per_ops = watts;
    return p;
}

TEST(Pareto, Dominates)
{
    EXPECT_TRUE(point(1, 1).dominates(point(2, 2)));
    EXPECT_TRUE(point(1, 2).dominates(point(1, 3)));
    EXPECT_FALSE(point(1, 3).dominates(point(2, 2)));
    EXPECT_FALSE(point(1, 1).dominates(point(1, 1)));
}

TEST(Pareto, ExtractsFront)
{
    std::vector<DesignPoint> pts = {
        point(1, 10), point(2, 5), point(3, 7),  // (3,7) dominated
        point(4, 2), point(5, 2),                // (5,2) dominated
    };
    const auto front = paretoFront(pts);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(front[0].cost_per_ops, 1);
    EXPECT_EQ(front[1].cost_per_ops, 2);
    EXPECT_EQ(front[2].cost_per_ops, 4);
    EXPECT_TRUE(isParetoFront(front));
}

TEST(Pareto, SingletonAndEmpty)
{
    EXPECT_TRUE(paretoFront({}).empty());
    const auto one = paretoFront({point(1, 1)});
    EXPECT_EQ(one.size(), 1u);
}

TEST(Pareto, AllDominatedByOne)
{
    std::vector<DesignPoint> pts = {
        point(5, 5), point(1, 1), point(3, 3),
    };
    const auto front = paretoFront(pts);
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0].cost_per_ops, 1);
}

TEST(Pareto, FrontSortedAndAntichain)
{
    std::vector<DesignPoint> pts;
    // A convex-ish cloud.
    for (int i = 0; i < 100; ++i) {
        const double x = 1.0 + (i % 17) * 0.35;
        const double y = 20.0 / x + (i % 5);
        pts.push_back(point(x, y));
    }
    const auto front = paretoFront(pts);
    EXPECT_TRUE(isParetoFront(front));
    for (size_t i = 1; i < front.size(); ++i) {
        EXPECT_GT(front[i].cost_per_ops, front[i - 1].cost_per_ops);
        EXPECT_LT(front[i].watts_per_ops, front[i - 1].watts_per_ops);
    }
}

TEST(Pareto, IsParetoFrontDetectsViolation)
{
    EXPECT_FALSE(isParetoFront({point(1, 1), point(2, 2)}));
    EXPECT_TRUE(isParetoFront({point(1, 2), point(2, 1)}));
}

} // namespace
} // namespace moonwalk::dse
