/**
 * @file
 * Server-cost accounting invariants across evaluated design points
 * (the categories of Figure 7).
 */
#include <gtest/gtest.h>

#include "apps/apps.hh"
#include "dse/evaluator.hh"

namespace moonwalk::dse {
namespace {

using tech::NodeId;

class CostModelTest : public ::testing::Test
{
  protected:
    ServerEvaluator eval_;

    DesignPoint eval(int rcas, int dies, double vdd) const
    {
        arch::ServerConfig cfg;
        cfg.node = NodeId::N28;
        cfg.rcas_per_die = rcas;
        cfg.dies_per_lane = dies;
        cfg.vdd = vdd;
        auto r = eval_.evaluate(apps::bitcoin().rca, cfg);
        EXPECT_TRUE(r.feasible()) << r.infeasible_reason;
        return *r.point;
    }
};

TEST_F(CostModelTest, MoreDiesCostMore)
{
    const auto small = eval(300, 4, 0.45);
    const auto large = eval(300, 12, 0.45);
    EXPECT_GT(large.cost_breakdown.silicon,
              2.5 * small.cost_breakdown.silicon);
    EXPECT_GT(large.cost_breakdown.package,
              2.5 * small.cost_breakdown.package);
    // System components are per-server constants.
    EXPECT_DOUBLE_EQ(large.cost_breakdown.system,
                     small.cost_breakdown.system);
}

TEST_F(CostModelTest, HigherVoltageCostsPowerDelivery)
{
    const auto lo = eval(300, 6, 0.42);
    const auto hi = eval(300, 6, 0.50);
    EXPECT_GT(hi.cost_breakdown.power_delivery,
              lo.cost_breakdown.power_delivery);
    // Silicon cost is voltage-independent.
    EXPECT_DOUBLE_EQ(hi.cost_breakdown.silicon,
                     lo.cost_breakdown.silicon);
}

TEST_F(CostModelTest, SiliconDominatesAtScale)
{
    // Figure 7: silicon is the dominant server-cost component for
    // dense configurations.
    const auto p = eval(600, 12, 0.43);
    const auto &c = p.cost_breakdown;
    EXPECT_GT(c.silicon, c.package);
    EXPECT_GT(c.silicon, c.cooling);
    EXPECT_GT(c.silicon, c.power_delivery);
    EXPECT_GT(c.silicon, c.system);
    EXPECT_GT(c.silicon / c.total(), 0.45);
}

TEST_F(CostModelTest, CoolingIncludesFansPerLane)
{
    const auto p = eval(300, 4, 0.45);
    // 8 lane fans at $20 minimum, plus heatsinks per die.
    EXPECT_GE(p.cost_breakdown.cooling, 8 * 20.0);
}

TEST_F(CostModelTest, BreakdownSumsToTotal)
{
    const auto p = eval(450, 9, 0.44);
    const auto &c = p.cost_breakdown;
    EXPECT_NEAR(c.total(),
                c.silicon + c.package + c.cooling +
                    c.power_delivery + c.dram + c.system,
                1e-9);
    EXPECT_DOUBLE_EQ(p.server_cost, c.total());
    EXPECT_DOUBLE_EQ(c.dram, 0.0);  // Bitcoin has no DRAM
}

TEST_F(CostModelTest, TcoBreakdownConsistent)
{
    const auto p = eval(450, 9, 0.44);
    EXPECT_DOUBLE_EQ(p.tco_breakdown.server_capex, p.server_cost);
    EXPECT_GT(p.tco_breakdown.energy, 0.0);
    EXPECT_GT(p.tco_breakdown.total(), p.server_cost);
}

} // namespace
} // namespace moonwalk::dse
