/**
 * @file
 * Exploration invariants checked at every technology node for two
 * contrasting applications (logic-dense Bitcoin, SRAM-dense
 * Litecoin): every design the explorer emits must satisfy all
 * constraints, and the reported optimum must be the sweep's best.
 */
#include <gtest/gtest.h>

#include "apps/apps.hh"
#include "dse/explorer.hh"

namespace moonwalk::dse {
namespace {

using tech::NodeId;

struct Case
{
    const char *app;
    NodeId node;
};

class ExploreAllNodes : public ::testing::TestWithParam<Case>
{
  protected:
    static ExplorerOptions coarse()
    {
        ExplorerOptions o;
        o.voltage_steps = 8;
        o.rca_count_steps = 8;
        o.max_drams_per_die = 6;
        return o;
    }

    DesignSpaceExplorer explorer_{coarse()};
};

TEST_P(ExploreAllNodes, EveryEmittedDesignSatisfiesConstraints)
{
    const auto app = apps::appByName(GetParam().app);
    const auto &node =
        explorer_.evaluator().scaling().database()
            .node(GetParam().node);
    const auto result = explorer_.explore(app.rca, GetParam().node);
    ASSERT_TRUE(result.tco_optimal.has_value());

    auto check = [&](const DesignPoint &p) {
        EXPECT_GE(p.config.vdd, node.vdd_min - 1e-9);
        EXPECT_LE(p.config.vdd, node.vddMax() + 1e-9);
        EXPECT_LE(p.die_area_mm2, node.max_die_area_mm2 + 1e-9);
        EXPECT_LE(p.die_power_w, p.max_die_power_w + 1e-9);
        EXPECT_LE(p.wall_power_w, 4000.0 + 1e-6);
        EXPECT_GT(p.perf_ops, 0.0);
        EXPECT_GT(p.server_cost, 0.0);
        EXPECT_LE(p.compute_utilization, 1.0 + 1e-12);
        // Derived metrics consistent.
        EXPECT_NEAR(p.tco_per_ops * p.perf_ops,
                    p.tco_breakdown.total(),
                    1e-6 * p.tco_breakdown.total());
    };
    check(*result.tco_optimal);
    for (const auto &p : result.pareto)
        check(p);
}

TEST_P(ExploreAllNodes, OptimumIsBestOfParetoFront)
{
    const auto app = apps::appByName(GetParam().app);
    const auto result = explorer_.explore(app.rca, GetParam().node);
    ASSERT_TRUE(result.tco_optimal.has_value());
    EXPECT_TRUE(isParetoFront(result.pareto));
    double best = 1e300;
    for (const auto &p : result.pareto)
        best = std::min(best, p.tco_per_ops);
    // With a TCO linear in ($, W) per op/s, the optimum lies on the
    // Pareto front.
    EXPECT_NEAR(best, result.tco_optimal->tco_per_ops, 1e-9 * best);
}

TEST_P(ExploreAllNodes, FeasibleCountedCorrectly)
{
    const auto app = apps::appByName(GetParam().app);
    const auto result = explorer_.explore(app.rca, GetParam().node);
    EXPECT_GT(result.feasible, 0u);
    EXPECT_GE(result.evaluated, result.feasible);
    EXPECT_GE(result.feasible, result.pareto.size());
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const char *app : {"Bitcoin", "Litecoin"})
        for (NodeId id : tech::kAllNodes)
            cases.push_back({app, id});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AppsByNodes, ExploreAllNodes, ::testing::ValuesIn(allCases()),
    [](const auto &info) {
        return std::string(info.param.app) + "_" +
            tech::to_string(info.param.node);
    });

} // namespace
} // namespace moonwalk::dse
