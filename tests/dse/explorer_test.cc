#include <gtest/gtest.h>

#include "apps/apps.hh"
#include "dse/explorer.hh"

namespace moonwalk::dse {
namespace {

using tech::NodeId;

class ExplorerTest : public ::testing::Test
{
  protected:
    // Coarse sweeps keep unit tests fast; benches use defaults.
    static ExplorerOptions coarse()
    {
        ExplorerOptions o;
        o.voltage_steps = 12;
        o.rca_count_steps = 10;
        o.max_drams_per_die = 8;
        o.dark_fractions = {0.0, 0.10};
        return o;
    }

    DesignSpaceExplorer explorer_{coarse()};
};

TEST_F(ExplorerTest, RcaCandidatesRespectReticle)
{
    const auto rca = apps::bitcoin().rca;
    const auto counts =
        explorer_.rcaCountCandidates(rca, NodeId::N28, 0, 0.0);
    ASSERT_FALSE(counts.empty());
    EXPECT_EQ(counts.front(), 1);
    // Reticle max: 640mm^2 / 0.702mm^2 ~ 910 RCAs.
    EXPECT_GT(counts.back(), 850);
    EXPECT_LT(counts.back(), 920);
    // Sorted unique.
    for (size_t i = 1; i < counts.size(); ++i)
        EXPECT_GT(counts[i], counts[i - 1]);
}

TEST_F(ExplorerTest, RcaCandidatesForRestrictedGrids)
{
    const auto rca = apps::deepLearning().rca;
    const auto counts40 =
        explorer_.rcaCountCandidates(rca, NodeId::N40, 0, 0.0);
    // 3x3 (1184mm^2) and 2x4 do not fit a 40nm reticle.
    EXPECT_EQ(counts40, (std::vector<int>{1, 2, 4}));
    const auto counts16 =
        explorer_.rcaCountCandidates(rca, NodeId::N16, 0, 0.0);
    EXPECT_EQ(counts16, (std::vector<int>{1, 2, 4, 8, 9}));
}

TEST_F(ExplorerTest, BitcoinExplorationFindsOptimum)
{
    const auto result =
        explorer_.explore(apps::bitcoin().rca, NodeId::N28);
    ASSERT_TRUE(result.tco_optimal.has_value());
    EXPECT_GT(result.feasible, 0u);
    EXPECT_GT(result.evaluated, result.feasible);
    EXPECT_FALSE(result.pareto.empty());
    EXPECT_TRUE(isParetoFront(result.pareto));

    // The optimum must not beat every Pareto point in both metrics
    // (it lies on or inside the front).
    const auto &opt = *result.tco_optimal;
    for (const auto &p : result.pareto)
        EXPECT_FALSE(opt.dominates(p) && p.dominates(opt));
}

TEST_F(ExplorerTest, OptimalTcoBelowAllSweepPoints)
{
    const auto result =
        explorer_.explore(apps::bitcoin().rca, NodeId::N40);
    ASSERT_TRUE(result.tco_optimal.has_value());
    for (const auto &p : result.pareto)
        EXPECT_GE(p.tco_per_ops,
                  result.tco_optimal->tco_per_ops - 1e-12);
}

TEST_F(ExplorerTest, VoltageSweepMatchesFigure4Shape)
{
    // Figure 4: voltage rises left to right; $/op/s falls (faster
    // silicon) while W/op/s rises.
    const auto curve = explorer_.sweepVoltage(
        apps::bitcoin().rca, NodeId::N28, 769, 9);
    ASSERT_GT(curve.size(), 3u);
    for (size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GT(curve[i].config.vdd, curve[i - 1].config.vdd);
        EXPECT_LT(curve[i].cost_per_ops, curve[i - 1].cost_per_ops);
        EXPECT_GT(curve[i].watts_per_ops, curve[i - 1].watts_per_ops);
    }
}

TEST_F(ExplorerTest, DeepLearningInfeasibleBelow40nm)
{
    for (NodeId id : {NodeId::N250, NodeId::N180, NodeId::N130,
                      NodeId::N90, NodeId::N65}) {
        const auto r = explorer_.explore(apps::deepLearning().rca, id);
        EXPECT_FALSE(r.tco_optimal.has_value()) << tech::to_string(id);
    }
    const auto r40 =
        explorer_.explore(apps::deepLearning().rca, NodeId::N40);
    EXPECT_TRUE(r40.tco_optimal.has_value());
}

TEST_F(ExplorerTest, VideoOptimalUsesMultipleDramsAt28nm)
{
    const auto r =
        explorer_.explore(apps::videoTranscode().rca, NodeId::N28);
    ASSERT_TRUE(r.tco_optimal.has_value());
    EXPECT_GE(r.tco_optimal->config.drams_per_die, 2);
}

TEST_F(ExplorerTest, FixedDieExplorationRestrictsSpace)
{
    const auto full = explorer_.explore(apps::bitcoin().rca,
                                        NodeId::N40);
    ASSERT_TRUE(full.tco_optimal.has_value());
    const auto fixed = explorer_.exploreFixedDie(
        apps::bitcoin().rca, NodeId::N40, 10, 0, 0.0);
    ASSERT_TRUE(fixed.tco_optimal.has_value());
    // A frozen (tiny) die design can do no better than the full
    // exploration.
    EXPECT_GE(fixed.tco_optimal->tco_per_ops,
              full.tco_optimal->tco_per_ops - 1e-12);
}

} // namespace
} // namespace moonwalk::dse
