#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/parallel.hh"
#include "exec/sweep_cache.hh"

namespace moonwalk::exec {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce)
{
    const size_t n = 1000;
    std::vector<int> visits(n, 0);  // distinct slots, no data race
    parallelFor(n, [&](size_t i) { visits[i]++; });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i], 1) << "index " << i;
}

TEST(ParallelForTest, HandlesEmptyAndSingletonRanges)
{
    std::atomic<int> ran{0};
    parallelFor(0, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 0);
    parallelFor(1, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelForTest, SerialModeStaysOnCallerThread)
{
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(64);
    parallelFor(
        64, [&](size_t i) { seen[i] = std::this_thread::get_id(); },
        /*max_threads=*/1);
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
}

TEST(ParallelForTest, RethrowsBodyException)
{
    std::atomic<int> ran{0};
    EXPECT_THROW(
        parallelFor(100,
                    [&](size_t i) {
                        ran.fetch_add(1);
                        if (i == 37)
                            throw std::runtime_error("body failed");
                    }),
        std::runtime_error);
    // Every claimed index completed (ran or was skipped) — no hang,
    // and the loop never claims an index twice.
    EXPECT_LE(ran.load(), 100);
}

TEST(ParallelForTest, NestedLoopsMakeProgress)
{
    // Caller-participation design: inner parallelFor calls issued from
    // pool workers must complete even with every worker busy.
    std::atomic<int> total{0};
    parallelFor(4, [&](size_t) {
        parallelFor(32, [&](size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 4 * 32);
}

TEST(ParallelMapTest, PreservesIndexOrder)
{
    const auto squares = parallelMap<long>(
        257, [](size_t i) { return static_cast<long>(i * i); });
    ASSERT_EQ(squares.size(), 257u);
    for (size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], static_cast<long>(i * i));
}

TEST(ParallelMapTest, IdenticalResultsAtEveryThreadCount)
{
    // THE ORDERED-REDUCTION RULE: bit-identical output regardless of
    // parallelism.
    const auto run = [](int threads) {
        return parallelMap<double>(
            512,
            [](size_t i) {
                double x = 1.0 + static_cast<double>(i) * 1e-3;
                for (int k = 0; k < 20; ++k)
                    x = x * 1.0000001 + 1.0 / (x + static_cast<double>(k));
                return x;
            },
            threads);
    };
    const auto serial = run(1);
    for (int threads : {2, 8}) {
        const auto parallel = run(threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(parallel[i], serial[i]) << "threads=" << threads
                                              << " index=" << i;
    }
}

TEST(ParallelMapTest, SupportsMoveOnlyFriendlyTypes)
{
    const auto strings = parallelMap<std::string>(
        64, [](size_t i) { return std::string(i, 'x'); });
    for (size_t i = 0; i < strings.size(); ++i)
        EXPECT_EQ(strings[i].size(), i);
}

TEST(WorkerLocalTest, OneInstancePerParticipatingThread)
{
    WorkerLocal<int> locals;
    std::mutex mutex;
    std::set<std::thread::id> threads;
    std::set<const int *> instances;
    parallelFor(256, [&](size_t) {
        int &mine = locals.get([] { return 41; });
        EXPECT_EQ(mine, 41);
        // Same thread must get the same instance back.
        EXPECT_EQ(&locals.get([] { return 0; }), &mine);
        std::lock_guard<std::mutex> lock(mutex);
        threads.insert(std::this_thread::get_id());
        instances.insert(&mine);
    });
    EXPECT_EQ(locals.size(), threads.size());
    EXPECT_EQ(instances.size(), threads.size());

    size_t visited = 0;
    locals.forEach([&](const int &v) {
        EXPECT_EQ(v, 41);
        ++visited;
    });
    EXPECT_EQ(visited, locals.size());

    locals.clear();
    EXPECT_EQ(locals.size(), 0u);
}

TEST(WorkerLocalTest, CopiesStartEmpty)
{
    WorkerLocal<int> locals;
    (void)locals.get([] { return 1; });
    ASSERT_EQ(locals.size(), 1u);
    WorkerLocal<int> copy{locals};
    EXPECT_EQ(copy.size(), 0u);
    copy = locals;
    EXPECT_EQ(copy.size(), 0u);
}

TEST(ShardedCacheTest, ComputesOncePerKey)
{
    ShardedCache<std::string, int> cache;
    std::atomic<int> computes{0};
    const auto compute = [&] {
        computes.fetch_add(1);
        return 99;
    };
    EXPECT_EQ(cache.getOrCompute("k", compute), 99);
    EXPECT_EQ(cache.getOrCompute("k", compute), 99);
    EXPECT_EQ(computes.load(), 1);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedCacheTest, ConcurrentDistinctKeys)
{
    ShardedCache<std::string, size_t> cache;
    parallelFor(128, [&](size_t i) {
        const std::string key = "key-" + std::to_string(i);
        EXPECT_EQ(cache.getOrCompute(key, [i] { return i; }), i);
    });
    EXPECT_EQ(cache.size(), 128u);
    // Re-read everything: all hits, values intact.
    parallelFor(128, [&](size_t i) {
        const std::string key = "key-" + std::to_string(i);
        EXPECT_EQ(cache.getOrCompute(key, [] { return size_t{0}; }), i);
    });
    EXPECT_EQ(cache.hits(), 128u);
}

TEST(ShardedCacheTest, RacingComputesAgreeOnFirstInsert)
{
    ShardedCache<int, size_t> cache;
    // Many threads race on the same fresh key; every caller must
    // observe the single inserted value.
    std::atomic<size_t> disagreements{0};
    parallelFor(64, [&](size_t) {
        const size_t got = cache.getOrCompute(7, [] { return size_t{7}; });
        if (got != 7)
            disagreements.fetch_add(1);
    });
    EXPECT_EQ(disagreements.load(), 0u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(HashTest, FnvDistinguishesInputs)
{
    const uint64_t a = hashValue(fnv1a("", 0), std::string("abc"));
    const uint64_t b = hashValue(fnv1a("", 0), std::string("abd"));
    EXPECT_NE(a, b);
    EXPECT_NE(hashValue(a, 1.0), hashValue(a, 2.0));
    EXPECT_NE(hashValue(a, 1), hashValue(a, 2));
    // Same input, same hash (the memo key must be stable).
    EXPECT_EQ(hashValue(a, 1.5), hashValue(a, 1.5));
}

} // namespace
} // namespace moonwalk::exec
