#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "util/error.hh"

namespace moonwalk::exec {
namespace {

using namespace std::chrono_literals;

/** Spin (politely) until @p done or ~10s elapse. */
template <typename Pred>
bool
waitFor(Pred &&done)
{
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (!done()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(1ms);
    }
    return true;
}

TEST(ParseJobsTest, AcceptsIntegersInRange)
{
    EXPECT_EQ(parseJobs("1"), 1);
    EXPECT_EQ(parseJobs("4"), 4);
    EXPECT_EQ(parseJobs("013"), 13);
    EXPECT_EQ(parseJobs("1024"), kMaxJobs);
}

TEST(ParseJobsTest, RejectsGarbage)
{
    for (const char *bad :
         {"", "0", "-1", "abc", "4x", "x4", "1.5", " 4", "4 ", "+4",
          "1025", "99999", "999999999999999999999999"}) {
        EXPECT_FALSE(parseJobs(bad).has_value()) << "'" << bad << "'";
    }
}

TEST(ThreadPoolTest, RunsEverySubmittedTask)
{
    std::atomic<int> ran{0};
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3);
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    EXPECT_TRUE(waitFor([&] { return ran.load() == 100; }));
}

TEST(ThreadPoolTest, AsyncReturnsValues)
{
    ThreadPool pool(2);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.async([i] { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, AsyncPropagatesExceptions)
{
    ThreadPool pool(2);
    auto bad = pool.async([]() -> int {
        throw std::runtime_error("task failed");
    });
    auto good = pool.async([] { return 7; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // A throwing task must not poison the pool.
    EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, AsyncRunsOnWorkerThread)
{
    ThreadPool pool(2);
    EXPECT_FALSE(pool.onWorkerThread());
    EXPECT_TRUE(pool.async([&pool] {
        return pool.onWorkerThread();
    }).get());
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks)
{
    // Clean-shutdown contract: tasks still sitting in the deques when
    // the destructor runs must execute, not be dropped.
    std::atomic<int> ran{0};
    std::promise<void> gate;
    auto opened = gate.get_future().share();
    {
        ThreadPool pool(2);
        // Pin both workers so the counting tasks stay queued.
        for (int i = 0; i < 2; ++i)
            pool.submit([opened] { opened.wait(); });
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        EXPECT_TRUE(waitFor([&] { return pool.queuedTasks() >= 64; }));
        EXPECT_EQ(ran.load(), 0);
        gate.set_value();
        // Destructor: drain all 64, then join.
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, UnevenTaskSizesExerciseStealing)
{
    auto &stolen = obs::metrics().counter("exec.tasks.stolen");
    const uint64_t stolen_before = stolen.value();
    const bool metrics_were_on = obs::metricsEnabled();
    obs::setMetricsEnabled(true);

    std::promise<void> gate;
    auto opened = gate.get_future().share();
    std::atomic<bool> pinned{false};
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        // One long task pins a worker (wait until it actually runs);
        // submission then round-robins 32 short tasks across both
        // deques, so the ~16 queued on the pinned worker's deque can
        // only finish by being stolen.
        pool.submit([opened, &pinned] {
            pinned.store(true);
            opened.wait();
        });
        ASSERT_TRUE(waitFor([&] { return pinned.load(); }));
        for (int i = 0; i < 32; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        EXPECT_TRUE(waitFor([&] { return ran.load() == 32; }))
            << "short tasks stuck behind the pinned worker";
        gate.set_value();
    }
    obs::setMetricsEnabled(metrics_were_on);
    EXPECT_EQ(ran.load(), 32);
    EXPECT_GT(stolen.value(), stolen_before);
}

TEST(ThreadPoolTest, WakesIdleWorkerForEverySubmit)
{
    // Regression for a lost-wakeup race in submit(): the notify used
    // to fire without synchronizing with sleep_mutex_, so a worker
    // caught between its predicate check and its block could miss it,
    // leaving the task queued and future::get() hung forever.  Each
    // iteration here lets the worker drain and go idle, then demands
    // one more wakeup; thousands of round trips make the original
    // window very likely to be hit at least once.
    ThreadPool pool(1);
    for (int i = 0; i < 2000; ++i) {
        auto f = pool.async([i] { return i; });
        ASSERT_EQ(f.wait_for(10s), std::future_status::ready)
            << "submit " << i << " never woke the worker";
        EXPECT_EQ(f.get(), i);
    }
}

TEST(ThreadPoolTest, ManyProducersOneConsumerPool)
{
    ThreadPool pool(1);
    std::atomic<int> ran{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&pool, &ran] {
            for (int i = 0; i < 50; ++i)
                pool.submit([&ran] { ran.fetch_add(1); });
        });
    }
    for (auto &t : producers)
        t.join();
    EXPECT_TRUE(waitFor([&] { return ran.load() == 200; }));
}

TEST(GlobalConcurrencyTest, RejectsOutOfRangeWidths)
{
    EXPECT_THROW(setGlobalConcurrency(0), ModelError);
    EXPECT_THROW(setGlobalConcurrency(-2), ModelError);
    EXPECT_THROW(setGlobalConcurrency(kMaxJobs + 1), ModelError);
}

TEST(GlobalConcurrencyTest, DefaultConcurrencyIsPositive)
{
    EXPECT_GE(defaultConcurrency(), 1);
    EXPECT_LE(defaultConcurrency(), kMaxJobs);
}

} // namespace
} // namespace moonwalk::exec
