#include "exec/persistent_cache.hh"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

namespace fs = std::filesystem;
using moonwalk::exec::PersistentCache;

namespace {

/** Fresh per-test cache directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_(fs::temp_directory_path() /
                ("moonwalk-pcache-" + tag + "-" +
                 std::to_string(::getpid())))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return text;
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

} // namespace

TEST(PersistentCache, DisabledWithoutDirectory)
{
    PersistentCache cache("", "v1");
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.store("k", "payload"));
    EXPECT_FALSE(cache.load("k").has_value());
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(PersistentCache, StoreThenLoadRoundTrips)
{
    TempDir dir("roundtrip");
    PersistentCache cache(dir.str(), "v1");
    ASSERT_TRUE(cache.enabled());

    // Binary-safe payloads: embedded NULs and newlines must survive.
    const std::string payload("a\0b\nc\r\xff", 7);
    EXPECT_TRUE(cache.store("key-1", payload));
    const auto got = cache.load("key-1");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.inserts(), 1u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(PersistentCache, MissOnAbsentKey)
{
    TempDir dir("miss");
    PersistentCache cache(dir.str(), "v1");
    EXPECT_FALSE(cache.load("never-stored").has_value());
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(PersistentCache, EntriesSurviveReopen)
{
    TempDir dir("reopen");
    {
        PersistentCache cache(dir.str(), "v1");
        ASSERT_TRUE(cache.store("key", "persisted"));
    }
    PersistentCache cache(dir.str(), "v1");
    const auto got = cache.load("key");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "persisted");
}

TEST(PersistentCache, VersionBumpEvictsOldEntries)
{
    TempDir dir("version");
    {
        PersistentCache old(dir.str(), "model-v1");
        ASSERT_TRUE(old.store("key", "stale-result"));
    }
    PersistentCache cache(dir.str(), "model-v2");
    EXPECT_FALSE(cache.load("key").has_value());
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    // The stale file is gone; a fresh store under v2 then hits.
    EXPECT_FALSE(fs::exists(cache.entryPath("key")));
    EXPECT_TRUE(cache.store("key", "fresh-result"));
    ASSERT_TRUE(cache.load("key").has_value());
}

TEST(PersistentCache, CorruptPayloadIsDiscarded)
{
    TempDir dir("corrupt");
    PersistentCache cache(dir.str(), "v1");
    ASSERT_TRUE(cache.store("key", "payload-payload-payload"));

    // Flip one byte near the end (inside the payload body).
    const std::string path = cache.entryPath("key");
    std::string text = readFile(path);
    ASSERT_FALSE(text.empty());
    text.back() ^= 0x01;
    writeFile(path, text);

    EXPECT_FALSE(cache.load("key").has_value());
    EXPECT_EQ(cache.corrupt(), 1u);
    EXPECT_FALSE(fs::exists(path)) << "corrupt entry must be removed";
}

TEST(PersistentCache, TruncatedEntryIsDiscarded)
{
    TempDir dir("truncated");
    PersistentCache cache(dir.str(), "v1");
    ASSERT_TRUE(cache.store("key", "some payload worth keeping"));

    const std::string path = cache.entryPath("key");
    const std::string text = readFile(path);
    writeFile(path, text.substr(0, text.size() / 2));

    EXPECT_FALSE(cache.load("key").has_value());
    EXPECT_EQ(cache.corrupt(), 1u);
    EXPECT_FALSE(fs::exists(path));
}

TEST(PersistentCache, GarbageFileIsDiscarded)
{
    TempDir dir("garbage");
    PersistentCache cache(dir.str(), "v1");
    writeFile(cache.entryPath("key"), "not a cache entry at all\n");
    EXPECT_FALSE(cache.load("key").has_value());
    EXPECT_EQ(cache.corrupt(), 1u);
}

TEST(PersistentCache, ForeignKeyInEntryIsAMissNotAHit)
{
    // Simulate a 128-bit file-name collision: a valid entry for key A
    // sitting at key B's path must not be returned for B (the stored
    // key disambiguates), and must not be destroyed either — it is
    // not corrupt, it is someone else's entry.
    TempDir dir("collision");
    PersistentCache cache(dir.str(), "v1");
    ASSERT_TRUE(cache.store("key-a", "a-payload"));
    fs::rename(cache.entryPath("key-a"), cache.entryPath("key-b"));

    EXPECT_FALSE(cache.load("key-b").has_value());
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.corrupt(), 0u);
    EXPECT_TRUE(fs::exists(cache.entryPath("key-b")));
}

TEST(PersistentCache, ConcurrentWritersOnOneKeyBothSucceed)
{
    TempDir dir("race");
    PersistentCache cache(dir.str(), "v1");

    // Deterministic results mean racing writers carry identical
    // payloads; whichever rename lands last, the entry is complete
    // and valid.  Hammer one key from several threads.
    const std::string payload(4096, 'x');
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 25; ++i)
                if (!cache.store("hot-key", payload))
                    failures.fetch_add(1);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(cache.inserts(), 200u);

    const auto got = cache.load("hot-key");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);

    // No temp-file litter: exactly the one published entry remains.
    size_t files = 0;
    for (const auto &e : fs::directory_iterator(dir.str())) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST(PersistentCache, UnusableDirectoryDegradesToNoop)
{
    // /dev/null is not a directory, so the entry dir cannot be
    // created even with root's CAP_DAC_OVERRIDE (permission-bit
    // tricks do not block root in CI containers).
    PersistentCache cache("/dev/null/moonwalk-cache", "v1");
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.store("k", "payload"));
    EXPECT_FALSE(cache.load("k").has_value());
}

TEST(PersistentCache, StatsSnapshotAggregatesAllCounters)
{
    TempDir dir("stats");
    PersistentCache cache(dir.str(), "v1");
    ASSERT_TRUE(cache.store("k", "v"));
    ASSERT_TRUE(cache.load("k").has_value());
    EXPECT_FALSE(cache.load("absent").has_value());
    const auto s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.inserts, 1u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.corrupt, 0u);
}

TEST(PersistentCache, UsageCountsEntriesBytesAndTempLitter)
{
    TempDir dir("usage");
    PersistentCache cache(dir.str(), "v1");
    ASSERT_TRUE(cache.store("a", std::string(100, 'x')));
    ASSERT_TRUE(cache.store("b", std::string(300, 'y')));

    auto u = cache.usage();
    EXPECT_EQ(u.entries, 2u);
    // Entry files carry a header (version stamp, key, digest) on top
    // of the payload, so bytes is a strict upper bound check.
    EXPECT_GE(u.bytes, 400u);
    EXPECT_EQ(u.temp_files, 0u);

    // A stale temp file from a crashed writer is litter, not an entry.
    writeFile(dir.str() + "/deadbeef.mwc.tmp.123.1", "partial");
    u = cache.usage();
    EXPECT_EQ(u.entries, 2u);
    EXPECT_EQ(u.temp_files, 1u);
}

TEST(PersistentCache, UsageIsZeroWhenDisabled)
{
    PersistentCache cache("", "v1");
    const auto u = cache.usage();
    EXPECT_EQ(u.entries, 0u);
    EXPECT_EQ(u.bytes, 0u);
    EXPECT_EQ(u.temp_files, 0u);
}

TEST(PersistentCache, PruneEvictsOldestWritesFirst)
{
    TempDir dir("prune-lru");
    PersistentCache cache(dir.str(), "v1");
    ASSERT_TRUE(cache.store("old", std::string(200, 'a')));
    ASSERT_TRUE(cache.store("new", std::string(200, 'b')));

    // Make the age difference unambiguous instead of racing the
    // filesystem clock: push "old"'s mtime firmly into the past.
    for (const auto &e : fs::directory_iterator(dir.str())) {
        const auto text = readFile(e.path().string());
        if (text.find("old") != std::string::npos) {
            fs::last_write_time(
                e.path(),
                fs::last_write_time(e.path()) -
                    std::chrono::hours(1));
        }
    }

    const auto total = cache.usage().bytes;
    const auto r = cache.prune(total - 1);  // must drop exactly one
    EXPECT_EQ(r.removed_entries, 1u);
    EXPECT_EQ(r.after.entries, 1u);
    EXPECT_LE(r.after.bytes, total - 1);

    // LRU-by-write: the older entry went, the newer one survives.
    EXPECT_FALSE(cache.load("old").has_value());
    EXPECT_TRUE(cache.load("new").has_value());
}

TEST(PersistentCache, PruneToZeroClearsEverythingIncludingTemps)
{
    TempDir dir("prune-zero");
    PersistentCache cache(dir.str(), "v1");
    ASSERT_TRUE(cache.store("a", "payload-a"));
    ASSERT_TRUE(cache.store("b", "payload-b"));
    writeFile(dir.str() + "/deadbeef.mwc.tmp.9.1", "partial");

    const auto r = cache.prune(0);
    EXPECT_EQ(r.removed_entries, 2u);
    EXPECT_GT(r.removed_bytes, 0u);
    EXPECT_EQ(r.removed_temp_files, 1u);
    EXPECT_EQ(r.after.entries, 0u);
    EXPECT_EQ(r.after.bytes, 0u);

    // A pruned entry is a plain miss; the cache keeps working.
    EXPECT_FALSE(cache.load("a").has_value());
    ASSERT_TRUE(cache.store("a", "recomputed"));
    EXPECT_TRUE(cache.load("a").has_value());
}

TEST(PersistentCache, PruneUnderBudgetRemovesOnlyTempFiles)
{
    TempDir dir("prune-noop");
    PersistentCache cache(dir.str(), "v1");
    ASSERT_TRUE(cache.store("keep", "small"));
    writeFile(dir.str() + "/deadbeef.mwc.tmp.7.1", "partial");

    const auto r = cache.prune(1 << 20);
    EXPECT_EQ(r.removed_entries, 0u);
    EXPECT_EQ(r.removed_temp_files, 1u);
    EXPECT_EQ(r.after.entries, 1u);
    EXPECT_TRUE(cache.load("keep").has_value());
}
