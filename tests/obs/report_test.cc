#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "apps/apps.hh"
#include "dse/evaluator.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"

using namespace moonwalk;
using namespace moonwalk::obs;

namespace {

TEST(RunReport, SchemaCarriesInputsRowsOutputsAndPerf)
{
    RunReport report("sweep Bitcoin");
    report.setInput("app", "Bitcoin");
    report.setInput("jobs", 2);
    report.addRow("tco_per_ops", {"28nm", "16nm"}, {2.9, 1.4},
                  {2.912, 1.378});
    report.addRow("model_only", {"a"}, {1.0});
    report.setOutput("tco_optimal",
                     Json::object().set("node", "16nm"));
    report.recordPhase("explore", 12.5);

    const Json doc = report.toJson();
    EXPECT_DOUBLE_EQ(doc.at("schema_version").asDouble(),
                     RunReport::kSchemaVersion);
    EXPECT_EQ(doc.at("tool").asString(), "moonwalk");
    EXPECT_EQ(doc.at("command").asString(), "sweep Bitcoin");
    EXPECT_EQ(doc.at("inputs").at("app").asString(), "Bitcoin");
    EXPECT_DOUBLE_EQ(doc.at("inputs").at("jobs").asDouble(), 2.0);

    ASSERT_EQ(doc.at("rows").size(), 2u);
    const Json &row = doc.at("rows").at(0);
    EXPECT_EQ(row.at("metric").asString(), "tco_per_ops");
    EXPECT_EQ(row.at("labels").at(1).asString(), "16nm");
    EXPECT_DOUBLE_EQ(row.at("model").at(0).asDouble(), 2.9);
    EXPECT_DOUBLE_EQ(row.at("paper").at(1).asDouble(), 1.378);
    // Model-only rows omit the paper array entirely.
    EXPECT_FALSE(doc.at("rows").at(1).contains("paper"));

    EXPECT_EQ(doc.at("outputs").at("tco_optimal").at("node")
                  .asString(),
              "16nm");
    const Json &phases = doc.at("perf").at("phases");
    ASSERT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases.at(0).at("name").asString(), "explore");
    EXPECT_DOUBLE_EQ(phases.at(0).at("wall_ms").asDouble(), 12.5);
    // The perf section embeds a full registry snapshot.
    EXPECT_TRUE(doc.at("perf").at("metrics").contains("counters"));
    EXPECT_TRUE(doc.at("perf").at("metrics").contains("histograms"));
}

TEST(RunReport, MissingPaperValuesSerializeAsNull)
{
    RunReport report("bench");
    report.addRow("partial", {"a", "b"}, {1.0, 2.0},
                  {std::nan(""), 4.0});
    const Json doc = report.toJson();
    const Json &row = doc.at("rows").at(0);
    EXPECT_TRUE(row.at("paper").at(0).isNull());
    EXPECT_DOUBLE_EQ(row.at("paper").at(1).asDouble(), 4.0);
}

TEST(RunReport, ScopedPhaseRecordsElapsedWallTime)
{
    RunReport report("cmd");
    {
        RunReport::ScopedPhase phase(report, "work");
    }
    const Json doc = report.toJson();
    const Json &phases = doc.at("perf").at("phases");
    ASSERT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases.at(0).at("name").asString(), "work");
    EXPECT_GE(phases.at(0).at("wall_ms").asDouble(), 0.0);
}

// The satellite acceptance check: a thermally-infeasible evaluation
// bumps the matching rejection counter, and that counter shows up in
// the run report's metrics snapshot.
TEST(RunReport, ThermalRejectionCounterAppearsInReport)
{
    setMetricsEnabled(true);
    auto &counter =
        metrics().counter("dse.infeasible.thermal");
    const uint64_t before = counter.value();

    dse::ServerEvaluator eval;
    arch::ServerConfig cfg;
    cfg.node = tech::NodeId::N28;
    cfg.rcas_per_die = 769;  // the paper's 540 mm^2 Bitcoin die...
    cfg.dies_per_lane = 9;
    cfg.vdd = 0.80;  // ...way above its ~0.5 V thermal ceiling
    const auto r = eval.evaluate(apps::bitcoin().rca, cfg);
    ASSERT_FALSE(r.feasible());
    EXPECT_EQ(r.infeasible_reason, "junction temperature limit");
    EXPECT_EQ(counter.value(), before + 1);

    RunReport report("sweep Bitcoin");
    const Json doc = report.toJson();
    const Json &counters =
        doc.at("perf").at("metrics").at("counters");
    ASSERT_TRUE(counters.contains("dse.infeasible.thermal"));
    EXPECT_GE(counters.at("dse.infeasible.thermal").asDouble(),
              static_cast<double>(before + 1));
    setMetricsEnabled(false);
}

TEST(RunReport, WriteToUnwritablePathReportsFailure)
{
    RunReport report("sweep Bitcoin");
    // /dev/null is a file, so no path below it can be opened.
    EXPECT_FALSE(report.writeTo("/dev/null/nodir/report.json"));
}

// Regression for the buffered-write bug: writeTo used to check the
// stream state without flushing, so a full disk (every write to
// /dev/full fails with ENOSPC, but only once the buffer drains)
// reported success — the failure surfaced inside close(), after the
// check.  The explicit flush makes the state check authoritative.
TEST(RunReport, WriteToFullDeviceReportsFailure)
{
    std::ifstream probe("/dev/full");
    if (!probe)
        GTEST_SKIP() << "/dev/full not available on this platform";
    RunReport report("sweep Bitcoin");
    report.addRow("tco", {"28nm"}, {1.0});
    EXPECT_FALSE(report.writeTo("/dev/full"));
}

} // namespace
