#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hh"

using namespace moonwalk;
using namespace moonwalk::obs;

TEST(Metrics, CounterIncrements)
{
    auto &reg = MetricsRegistry::instance();
    auto &c = reg.counter("test.metrics.counter");
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, LookupByNameReturnsSameInstance)
{
    auto &reg = MetricsRegistry::instance();
    auto &a = reg.counter("test.metrics.same");
    auto &b = reg.counter("test.metrics.same");
    EXPECT_EQ(&a, &b);
    auto &other = reg.counter("test.metrics.other");
    EXPECT_NE(&a, &other);
}

TEST(Metrics, GaugeSetAndHighWater)
{
    auto &g = MetricsRegistry::instance().gauge("test.metrics.gauge");
    g.reset();
    g.set(3.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    g.max(2.0);  // below: ignored
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    g.max(7.25);
    EXPECT_DOUBLE_EQ(g.value(), 7.25);
}

TEST(Metrics, TimerAccumulates)
{
    auto &t = MetricsRegistry::instance().timer("test.metrics.timer");
    t.reset();
    t.record(1000);
    t.record(3000);
    EXPECT_EQ(t.count(), 2u);
    EXPECT_EQ(t.totalNs(), 4000u);
    EXPECT_EQ(t.minNs(), 1000u);
    EXPECT_EQ(t.maxNs(), 3000u);
    EXPECT_DOUBLE_EQ(t.meanNs(), 2000.0);
}

TEST(Metrics, ScopedTimerRespectsEnableFlag)
{
    auto &t = MetricsRegistry::instance().timer("test.metrics.scoped");
    t.reset();
    setMetricsEnabled(false);
    {
        ScopedTimer scope(t);
    }
    EXPECT_EQ(t.count(), 0u);
    setMetricsEnabled(true);
    {
        ScopedTimer scope(t);
    }
    setMetricsEnabled(false);
    EXPECT_EQ(t.count(), 1u);
}

TEST(Metrics, ConcurrentCounterBumps)
{
    auto &reg = MetricsRegistry::instance();
    auto &c = reg.counter("test.metrics.concurrent");
    c.reset();
    constexpr int kThreads = 8;
    constexpr int kBumps = 10000;
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        // Half the threads also register fresh names, exercising the
        // registration mutex against concurrent increments.
        threads.emplace_back([&reg, &c, i] {
            for (int j = 0; j < kBumps; ++j) {
                c.inc();
                if (i % 2 == 0 && j % 1000 == 0) {
                    reg.counter("test.metrics.concurrent.t" +
                                std::to_string(i))
                        .inc();
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(),
              static_cast<uint64_t>(kThreads) * kBumps);
}

TEST(Metrics, SnapshotNamesSortedAndTyped)
{
    auto &reg = MetricsRegistry::instance();
    reg.counter("test.snapshot.a").inc(5);
    reg.gauge("test.snapshot.b").set(1.5);
    reg.timer("test.snapshot.c").record(2000000);

    bool saw_counter = false, saw_gauge = false, saw_timer = false;
    const auto snap = reg.snapshot();
    for (size_t i = 1; i < snap.size(); ++i)
        EXPECT_LT(snap[i - 1].name, snap[i].name);
    for (const auto &s : snap) {
        if (s.name == "test.snapshot.a") {
            saw_counter = s.kind == MetricSample::Kind::Counter &&
                s.value >= 5.0;
        } else if (s.name == "test.snapshot.b") {
            saw_gauge = s.kind == MetricSample::Kind::Gauge &&
                s.value == 1.5;
        } else if (s.name == "test.snapshot.c") {
            saw_timer = s.kind == MetricSample::Kind::Timer &&
                s.count >= 1;
        }
    }
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_gauge);
    EXPECT_TRUE(saw_timer);
}

TEST(Metrics, JsonAndTableRenderers)
{
    auto &reg = MetricsRegistry::instance();
    reg.counter("test.render.count").inc(3);
    reg.gauge("test.render.gauge").set(0.5);
    reg.timer("test.render.timer").record(1500000);

    const Json j = reg.toJson();
    ASSERT_TRUE(j.isObject());
    EXPECT_GE(j.at("counters").at("test.render.count").asDouble(),
              3.0);
    EXPECT_DOUBLE_EQ(
        j.at("gauges").at("test.render.gauge").asDouble(), 0.5);
    EXPECT_GE(
        j.at("timers").at("test.render.timer").at("count").asDouble(),
        1.0);
    // The dump round-trips through our own parser.
    EXPECT_TRUE(Json::parse(j.dump(2)).isObject());

    std::ostringstream os;
    reg.writeTable(os);
    EXPECT_NE(os.str().find("test.render.count"), std::string::npos);
    EXPECT_NE(os.str().find("counter"), std::string::npos);
}
