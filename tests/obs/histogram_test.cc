#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "util/stats.hh"

using namespace moonwalk;
using namespace moonwalk::obs;

namespace {

// Log-linear bucketing with 8 sub-buckets per octave bounds the
// relative quantile error by 1/8; tests allow a little slack on top.
constexpr double kRelTol = 0.15;

TEST(Histogram, EmptyReportsZeros)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(Histogram, SingleValueIsExactAtEveryQuantile)
{
    Histogram h;
    h.record(1234.5);
    EXPECT_EQ(h.count(), 1u);
    // Percentiles clamp to the tracked exact min/max, so a
    // one-sample distribution is exact despite 12.5% buckets.
    for (double q : {0.0, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h.percentile(q), 1234.5) << "q=" << q;
    EXPECT_DOUBLE_EQ(h.minValue(), 1234.5);
    EXPECT_DOUBLE_EQ(h.maxValue(), 1234.5);
    EXPECT_DOUBLE_EQ(h.mean(), 1234.5);
}

TEST(Histogram, BucketBoundaries)
{
    // Everything below 1.0 (and non-finite garbage) lands in the
    // underflow bucket 0.
    EXPECT_EQ(Histogram::bucketIndex(0.0), 0);
    EXPECT_EQ(Histogram::bucketIndex(0.999), 0);
    EXPECT_EQ(Histogram::bucketIndex(-5.0), 0);
    EXPECT_EQ(Histogram::bucketIndex(std::nan("")), 0);
    // First octave starts at 1.0; octave o begins at index 1 + 8*o.
    EXPECT_EQ(Histogram::bucketIndex(1.0), 1);
    EXPECT_EQ(Histogram::bucketIndex(2.0), 9);
    EXPECT_EQ(Histogram::bucketIndex(4.0), 17);
    // Every finite value sits inside its bucket's [low, high) range.
    for (double v : {1.0, 1.06, 1.9999, 2.0, 3.7, 1000.0, 1e9, 1e18}) {
        const int i = Histogram::bucketIndex(v);
        EXPECT_GE(v, Histogram::bucketLow(i)) << v;
        EXPECT_LT(v, Histogram::bucketHigh(i)) << v;
    }
    // Bucket ranges tile without gaps.
    for (int i = 1; i + 1 < Histogram::kBuckets; ++i) {
        EXPECT_DOUBLE_EQ(Histogram::bucketHigh(i),
                         Histogram::bucketLow(i + 1)) << i;
    }
}

TEST(Histogram, PercentilesTrackExactQuantiles)
{
    // A deliberately skewed distribution spanning several octaves.
    std::vector<double> samples;
    Histogram h;
    for (int i = 1; i <= 10000; ++i) {
        const double v = std::pow(double(i), 1.7);
        samples.push_back(v);
        h.record(v);
    }
    std::sort(samples.begin(), samples.end());

    EXPECT_EQ(h.count(), samples.size());
    EXPECT_DOUBLE_EQ(h.minValue(), samples.front());
    EXPECT_DOUBLE_EQ(h.maxValue(), samples.back());
    for (double q : {0.10, 0.50, 0.90, 0.99}) {
        const double exact = quantile(samples, q);
        const double approx = h.percentile(q);
        EXPECT_NEAR(approx, exact, kRelTol * exact) << "q=" << q;
    }
    // The extreme quantile clamps to the true maximum.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), samples.back());
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h;
    h.record(5.0);
    h.record(500.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    h.record(7.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 7.0);
}

TEST(Histogram, TimerExposesPercentiles)
{
    auto &t = MetricsRegistry::instance()
                  .timer("test.histogram.timer");
    t.reset();
    for (int i = 1; i <= 100; ++i)
        t.record(static_cast<uint64_t>(i) * 1000);
    EXPECT_DOUBLE_EQ(t.percentileNs(1.0), 100000.0);
    EXPECT_NEAR(t.percentileNs(0.5), 50000.0, kRelTol * 50000.0);
    EXPECT_NEAR(t.percentileNs(0.99), 99000.0, kRelTol * 99000.0);
    EXPECT_EQ(t.histogram().count(), 100u);
}

TEST(Histogram, RegistrySnapshotAndJsonCarryPercentiles)
{
    auto &reg = MetricsRegistry::instance();
    auto &h = reg.histogram("test.histogram.json");
    h.reset();
    for (int i = 1; i <= 1000; ++i)
        h.record(double(i));

    const Json doc = reg.toJson();
    ASSERT_TRUE(doc.contains("histograms"));
    const Json &entry =
        doc.at("histograms").at("test.histogram.json");
    EXPECT_DOUBLE_EQ(entry.at("count").asDouble(), 1000.0);
    EXPECT_DOUBLE_EQ(entry.at("max").asDouble(), 1000.0);
    EXPECT_NEAR(entry.at("p50").asDouble(), 500.0, kRelTol * 500.0);
    EXPECT_NEAR(entry.at("p90").asDouble(), 900.0, kRelTol * 900.0);
    EXPECT_NEAR(entry.at("p99").asDouble(), 990.0, kRelTol * 990.0);

    bool found = false;
    for (const auto &s : reg.snapshot()) {
        if (s.kind == MetricSample::Kind::Histogram &&
            s.name == "test.histogram.json") {
            found = true;
            EXPECT_EQ(s.count, 1000u);
            EXPECT_DOUBLE_EQ(s.max, 1000.0);
        }
    }
    EXPECT_TRUE(found);
}

// Named for the TSan CI filter: many threads hammer one histogram and
// no sample, sum, or extreme may be lost.
TEST(HistogramConcurrency, ParallelRecordingIsLossless)
{
    Histogram h;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            for (int i = 0; i < kPerThread; ++i)
                h.record(double(i % 1000) + t + 1);
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(h.count(),
              static_cast<uint64_t>(kThreads) * kPerThread);
    double expected_sum = 0;
    for (int t = 0; t < kThreads; ++t)
        for (int i = 0; i < kPerThread; ++i)
            expected_sum += double(i % 1000) + t + 1;
    EXPECT_NEAR(h.sum(), expected_sum, 1e-6 * expected_sum);
    EXPECT_DOUBLE_EQ(h.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 999.0 + kThreads);
    const double p50 = h.percentile(0.5);
    EXPECT_GT(p50, 350.0);
    EXPECT_LT(p50, 650.0);
}

} // namespace
