#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/trace.hh"
#include "util/json.hh"

using namespace moonwalk;
using namespace moonwalk::obs;

TEST(Trace, DisabledSpansRecordNothing)
{
    auto &tc = traceCollector();
    tc.start();
    tc.stop();  // enabled=false, buffer cleared by the start()
    {
        TraceSpan span("ignored");
        EXPECT_FALSE(span.active());
    }
    EXPECT_EQ(tc.eventCount(), 0u);
}

TEST(Trace, SpansProduceValidChromeTraceJson)
{
    auto &tc = traceCollector();
    tc.start();
    {
        TraceSpan outer("explore", "dse");
        outer.arg("app", "Bitcoin").arg("node", "28nm");
        {
            TraceSpan inner("solve", "thermal");
        }
    }
    tc.stop();
    ASSERT_EQ(tc.eventCount(), 2u);

    // The serialized document must parse with our own JSON reader and
    // carry the Chrome trace-event fields Perfetto requires.
    const Json doc = Json::parse(tc.toJson().dump(2));
    ASSERT_TRUE(doc.isObject());
    ASSERT_TRUE(doc.at("traceEvents").isArray());
    ASSERT_EQ(doc.at("traceEvents").size(), 2u);
    for (size_t i = 0; i < doc.at("traceEvents").size(); ++i) {
        const Json &ev = doc.at("traceEvents").at(i);
        EXPECT_EQ(ev.at("ph").asString(), "X");
        EXPECT_TRUE(ev.at("ts").isNumber());
        EXPECT_TRUE(ev.at("dur").isNumber());
        EXPECT_GE(ev.at("dur").asDouble(), 0.0);
        EXPECT_TRUE(ev.at("name").isString());
    }

    // Inner span completed first, so it is recorded first; the outer
    // span carries its args.
    EXPECT_EQ(doc.at("traceEvents").at(0).at("name").asString(),
              "solve");
    const Json &outer_ev = doc.at("traceEvents").at(1);
    EXPECT_EQ(outer_ev.at("args").at("app").asString(), "Bitcoin");
    EXPECT_EQ(outer_ev.at("args").at("node").asString(), "28nm");
}

TEST(Trace, NestedSpanDurationsAreOrdered)
{
    auto &tc = traceCollector();
    tc.start();
    {
        TraceSpan outer("outer");
        TraceSpan inner("inner");
    }
    tc.stop();
    const Json doc = tc.toJson();
    const Json &inner = doc.at("traceEvents").at(0);
    const Json &outer = doc.at("traceEvents").at(1);
    EXPECT_LE(outer.at("ts").asDouble(), inner.at("ts").asDouble());
    EXPECT_GE(outer.at("dur").asDouble(), inner.at("dur").asDouble());
}

TEST(Trace, WriteToFileRoundTrips)
{
    const std::string path = ::testing::TempDir() + "moonwalk_trace_test.json";
    auto &tc = traceCollector();
    tc.start();
    {
        TraceSpan span("filed", "test");
    }
    tc.stop();
    ASSERT_TRUE(tc.writeTo(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    const Json doc = Json::parse(buf.str());
    EXPECT_EQ(doc.at("traceEvents").size(), 1u);
    EXPECT_EQ(doc.at("traceEvents").at(0).at("name").asString(),
              "filed");
    std::remove(path.c_str());
}

TEST(Trace, StartClearsPreviousEvents)
{
    auto &tc = traceCollector();
    tc.start();
    {
        TraceSpan span("first");
    }
    tc.start();  // restart: previous buffer discarded
    {
        TraceSpan span("second");
    }
    tc.stop();
    ASSERT_EQ(tc.eventCount(), 1u);
    EXPECT_EQ(
        tc.toJson().at("traceEvents").at(0).at("name").asString(),
        "second");
}
