#include <gtest/gtest.h>

#include <sstream>

#include "obs/log.hh"

using namespace moonwalk::obs;

namespace {

/** Captures log output and restores level + sink on scope exit. */
class LogCapture
{
  public:
    LogCapture()
        : saved_level_(logLevel())
    {
        setLogSink(&os_);
    }
    ~LogCapture()
    {
        setLogSink(nullptr);
        setLogLevel(saved_level_);
    }
    std::string text() const { return os_.str(); }

  private:
    std::ostringstream os_;
    LogLevel saved_level_;
};

} // namespace

TEST(Log, LevelParsing)
{
    EXPECT_EQ(logLevelFromString("debug"), LogLevel::Debug);
    EXPECT_EQ(logLevelFromString("info"), LogLevel::Info);
    EXPECT_EQ(logLevelFromString("warn"), LogLevel::Warn);
    EXPECT_EQ(logLevelFromString("error"), LogLevel::Error);
    EXPECT_EQ(logLevelFromString("off"), LogLevel::Off);
    EXPECT_FALSE(logLevelFromString("verbose").has_value());
    EXPECT_FALSE(logLevelFromString("").has_value());
}

TEST(Log, OffSuppressesEverything)
{
    LogCapture cap;
    setLogLevel(LogLevel::Off);
    MOONWALK_LOG(Error, "test").msg("should not appear");
    MOONWALK_LOG(Debug, "test").msg("nor this");
    EXPECT_TRUE(cap.text().empty());
}

TEST(Log, ThresholdFiltersBySeverity)
{
    LogCapture cap;
    setLogLevel(LogLevel::Warn);
    MOONWALK_LOG(Error, "test").msg("visible-error");
    MOONWALK_LOG(Warn, "test").msg("visible-warn");
    MOONWALK_LOG(Info, "test").msg("hidden-info");
    MOONWALK_LOG(Debug, "test").msg("hidden-debug");
    const std::string out = cap.text();
    EXPECT_NE(out.find("visible-error"), std::string::npos);
    EXPECT_NE(out.find("visible-warn"), std::string::npos);
    EXPECT_EQ(out.find("hidden-info"), std::string::npos);
    EXPECT_EQ(out.find("hidden-debug"), std::string::npos);
}

TEST(Log, StructuredFieldsRender)
{
    LogCapture cap;
    setLogLevel(LogLevel::Debug);
    MOONWALK_LOG(Info, "dse.sweep")
        .msg("done")
        .field("node", "28nm")
        .field("evaluated", 12345);
    const std::string out = cap.text();
    EXPECT_NE(out.find("[info] dse.sweep: done"), std::string::npos);
    EXPECT_NE(out.find("node=28nm"), std::string::npos);
    EXPECT_NE(out.find("evaluated=12345"), std::string::npos);
}

TEST(Log, DisabledSiteDoesNotEvaluateArguments)
{
    LogCapture cap;
    setLogLevel(LogLevel::Error);
    int calls = 0;
    auto expensive = [&calls] {
        ++calls;
        return std::string("x");
    };
    MOONWALK_LOG(Debug, "test").field("v", expensive());
    EXPECT_EQ(calls, 0);
    MOONWALK_LOG(Error, "test").field("v", expensive());
    EXPECT_EQ(calls, 1);
}

TEST(Log, EnabledPredicateMatchesThreshold)
{
    LogCapture cap;
    setLogLevel(LogLevel::Info);
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    EXPECT_TRUE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
    EXPECT_FALSE(logEnabled(LogLevel::Off));
}
