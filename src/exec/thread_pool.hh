/**
 * @file
 * Work-stealing thread pool for the Moonwalk execution runtime.
 *
 * Each worker owns a deque of tasks: the owner pushes and pops at the
 * back (LIFO, cache-friendly), idle workers steal from the front of a
 * victim's deque (FIFO, oldest work first).  Submission from outside
 * the pool round-robins across worker deques.
 *
 * The process-wide pool (ThreadPool::global()) is created lazily on
 * first use and sized by, in priority order:
 *
 *   1. setGlobalConcurrency(n) — the CLI's --jobs flag,
 *   2. the MOONWALK_JOBS environment variable,
 *   3. std::thread::hardware_concurrency().
 *
 * Destruction drains every queued task before joining the workers, so
 * submitted work always runs exactly once.
 *
 * Observability (all gated on the PR-1 obs switches, zero cost when
 * off): counters exec.tasks.{submitted,executed,stolen} and
 * exec.worker.wakeups (idle sleeps ended), gauge exec.queue.depth
 * (+ .max high-water), timer exec.worker.busy (per task execution, so
 * utilization = busy / (wall * workers); timers now expose
 * p50/p90/p99 via their backing histogram), and one trace span per
 * worker busy-burst when --trace is active.  All pool metrics are
 * registered at construction so they appear (zero-valued) in every
 * metrics snapshot and run report.
 */
#ifndef MOONWALK_EXEC_THREAD_POOL_HH
#define MOONWALK_EXEC_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace moonwalk::exec {

/** Upper bound accepted for --jobs / MOONWALK_JOBS. */
inline constexpr int kMaxJobs = 1024;

/**
 * Parse a job count: accepts only a full decimal integer in
 * [1, kMaxJobs]; anything else (empty, non-numeric, zero, negative,
 * absurd) yields nullopt so callers can emit their own diagnostic.
 */
std::optional<int> parseJobs(const std::string &text);

/** The work-stealing pool. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to [1, kMaxJobs]). */
    explicit ThreadPool(int threads);

    /** Drains all queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int size() const { return static_cast<int>(workers_.size()); }

    /** True when called from one of this pool's worker threads. */
    bool onWorkerThread() const;

    /** Enqueue @p task; it runs exactly once, on some worker. */
    void submit(std::function<void()> task);

    /**
     * Enqueue a callable and get a future for its result.  Exceptions
     * thrown by the callable propagate through future::get().
     */
    template <typename F>
    auto async(F &&f) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(f));
        auto future = task->get_future();
        submit([task] { (*task)(); });
        return future;
    }

    /** Tasks sitting in deques, not yet picked up. */
    size_t queuedTasks() const
    {
        return queued_.load(std::memory_order_relaxed);
    }

    /**
     * The lazily-created process-wide pool.  Size is fixed at first
     * use; see the file comment for the resolution order.
     */
    static ThreadPool &global();

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(int index);
    /** Pop from own back, else steal from a victim's front.  Sets
     *  @p stolen when the task came from another worker's deque. */
    std::function<void()> nextTask(int index, bool &stolen);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex sleep_mutex_;
    std::condition_variable wakeup_;
    std::atomic<bool> stop_{false};
    std::atomic<size_t> queued_{0};
    std::atomic<uint64_t> submit_cursor_{0};
};

/**
 * Concurrency the global pool will use (or already uses): the --jobs
 * override if set, else MOONWALK_JOBS, else hardware_concurrency.
 * Throws ModelError when MOONWALK_JOBS is set but invalid.
 */
int defaultConcurrency();

/**
 * Set the global pool width (the CLI's --jobs).  Must be called
 * before the first ThreadPool::global() use; throws ModelError on an
 * out-of-range value or when the pool already exists with a
 * different size.
 */
void setGlobalConcurrency(int n);

} // namespace moonwalk::exec

#endif // MOONWALK_EXEC_THREAD_POOL_HH
