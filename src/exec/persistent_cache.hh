/**
 * @file
 * Persistent on-disk cache for expensive deterministic computations,
 * layered under the in-memory ShardedCache (sweep_cache.hh).
 *
 * The cache stores opaque byte payloads, one file per entry, under a
 * directory the caller names (--cache-dir / MOONWALK_CACHE_DIR; empty
 * means disabled).  Each entry file carries
 *
 *   - a format magic and a caller-supplied *version stamp* (the model
 *     layer bumps it whenever code changes numeric results, so stale
 *     entries from an older binary are discarded, never trusted);
 *   - the full key verbatim (file names are a 128-bit FNV-1a digest
 *     of the key, so a name collision is detected by comparing the
 *     stored key and treated as a plain miss);
 *   - a content digest over key + payload, verified on every load
 *     (torn or bit-rotted entries are discarded and recomputed).
 *
 * Writes are atomic: the entry is written to a process-unique temp
 * file, flushed, and rename()d into place.  Two processes racing on
 * one key both succeed — each rename publishes a complete, identical
 * entry (the payloads are deterministic functions of the key).
 *
 * Degradation: if the directory cannot be created or a write fails
 * (read-only filesystem, disk full), the cache logs one warning and
 * continues as a no-op — computations still happen, results are just
 * not persisted.  Nothing in this class throws on I/O trouble.
 *
 * Trust model: entries are integrity-checked, not authenticated.  The
 * cache directory must be as trusted as the binary itself; do not
 * point MOONWALK_CACHE_DIR at a directory hostile users can write.
 */
#ifndef MOONWALK_EXEC_PERSISTENT_CACHE_HH
#define MOONWALK_EXEC_PERSISTENT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace moonwalk::exec {

/** Monotonic totals for one PersistentCache instance. */
struct PersistentCacheStats
{
    uint64_t hits = 0;       ///< loads served from a valid entry
    uint64_t misses = 0;     ///< loads that found no usable entry
    uint64_t inserts = 0;    ///< entries successfully published
    uint64_t evictions = 0;  ///< version-mismatched entries removed
    uint64_t corrupt = 0;    ///< integrity failures removed
};

/** On-disk footprint of a cache directory (entry files only; stale
 *  temp files are counted separately so prune can report them). */
struct PersistentCacheUsage
{
    uint64_t entries = 0;     ///< *.mwc entry files
    uint64_t bytes = 0;       ///< their total size
    uint64_t temp_files = 0;  ///< leftover *.tmp.* from dead writers
};

/** What one prune() pass removed, and what remains. */
struct PersistentCachePruneResult
{
    uint64_t removed_entries = 0;
    uint64_t removed_bytes = 0;
    uint64_t removed_temp_files = 0;
    PersistentCacheUsage after;
};

/** The cache.  All methods are safe to call from many threads. */
class PersistentCache
{
  public:
    /**
     * @p dir: entry directory, created on demand; empty disables the
     * cache.  @p version: the caller's version stamp; entries written
     * under any other stamp are evicted on load.
     */
    PersistentCache(std::string dir, std::string version);

    /** False when constructed with an empty dir, or after the
     *  directory turned out to be unusable. */
    bool enabled() const
    {
        return !broken_.load(std::memory_order_relaxed) &&
            !dir_.empty();
    }
    const std::string &directory() const { return dir_; }
    const std::string &version() const { return version_; }

    /**
     * Fetch the payload stored for @p key, or nullopt on miss.
     * Version-mismatched, corrupt, or colliding entries are never
     * returned; the first two are deleted on sight.
     */
    std::optional<std::string> load(const std::string &key);

    /**
     * Atomically publish @p payload for @p key, replacing any prior
     * entry.  Returns false (after warning once) when the entry
     * cannot be durably written.
     */
    bool store(const std::string &key, const std::string &payload);

    /** Remove the entry for @p key, counting it as corrupt — for
     *  callers whose payload decode fails after the digest passed. */
    void discardCorrupt(const std::string &key);

    /**
     * Scan the directory and report entry count and on-disk bytes.
     * O(entries); meant for explicit stats requests and prune passes,
     * not per-lookup bookkeeping.  Zero when the cache is disabled or
     * the directory is unreadable.
     */
    PersistentCacheUsage usage() const;

    /**
     * Shrink the directory to at most @p max_bytes of entry files by
     * deleting entries oldest-modification-time first (an entry's
     * mtime is its publish time, so this is LRU-by-write; hits do not
     * refresh it).  Leftover temp files from crashed writers are
     * always removed.  Safe against concurrent readers and writers:
     * a pruned entry simply misses and recomputes.
     */
    PersistentCachePruneResult prune(uint64_t max_bytes);

    PersistentCacheStats stats() const;
    uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
    uint64_t inserts() const { return inserts_.load(std::memory_order_relaxed); }
    uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
    uint64_t corrupt() const { return corrupt_.load(std::memory_order_relaxed); }

    /** Entry file path for @p key (tests use this to corrupt
     *  entries); meaningful only when enabled(). */
    std::string entryPath(const std::string &key) const;

    /**
     * Resolve the effective cache directory: @p explicit_dir when
     * non-empty, else the MOONWALK_CACHE_DIR environment variable,
     * else "" (disabled).
     */
    static std::string resolveDir(const std::string &explicit_dir);

  private:
    /** Log the degradation warning once per instance and mark the
     *  cache broken; every later call is a cheap no-op. */
    void degrade(const std::string &why);

    std::string dir_;
    std::string version_;
    std::atomic<bool> broken_{false};
    std::atomic<bool> warned_{false};
    mutable std::atomic<uint64_t> hits_{0};
    mutable std::atomic<uint64_t> misses_{0};
    mutable std::atomic<uint64_t> inserts_{0};
    mutable std::atomic<uint64_t> evictions_{0};
    mutable std::atomic<uint64_t> corrupt_{0};
};

} // namespace moonwalk::exec

#endif // MOONWALK_EXEC_PERSISTENT_CACHE_HH
