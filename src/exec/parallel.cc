#include "exec/parallel.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>

#include "exec/thread_pool.hh"

namespace moonwalk::exec {

namespace {

/** Shared state of one parallelFor: the claim cursor, completion
 *  count, and the first captured exception. */
struct ForState
{
    explicit ForState(size_t count,
                      const std::function<void(size_t)> &fn)
        : n(count), body(&fn)
    {}

    const size_t n;
    const std::function<void(size_t)> *body;

    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<bool> failed{false};

    std::mutex mutex;
    std::condition_variable all_done;
    std::exception_ptr error;

    /** Claim and run indices until the cursor runs out.  After a
     *  failure, remaining indices are claimed but skipped so the
     *  completion count still reaches n. */
    void drain()
    {
        size_t i;
        while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) {
            if (!failed.load(std::memory_order_acquire)) {
                try {
                    (*body)(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (!error)
                        error = std::current_exception();
                    failed.store(true, std::memory_order_release);
                }
            }
            finish(1);
        }
    }

    void finish(size_t count)
    {
        if (done.fetch_add(count, std::memory_order_acq_rel) + count ==
            n) {
            std::lock_guard<std::mutex> lock(mutex);
            all_done.notify_all();
        }
    }
};

} // namespace

void
parallelFor(size_t n, const std::function<void(size_t)> &body,
            int max_threads)
{
    if (n == 0)
        return;
    if (max_threads == 1 || n == 1) {
        // Serial fast path: never touches (or creates) the pool.
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    auto &pool = ThreadPool::global();
    const size_t width = max_threads > 0 ?
        static_cast<size_t>(max_threads) :
        static_cast<size_t>(pool.size()) + 1;

    // Helpers beyond the caller; each is a cheap shared_ptr capture,
    // and a helper that arrives after the cursor is exhausted simply
    // returns, so over-submission is harmless.
    auto state = std::make_shared<ForState>(n, body);
    const size_t helpers =
        std::min({width - 1, n - 1, static_cast<size_t>(pool.size())});
    for (size_t h = 0; h < helpers; ++h)
        pool.submit([state] { state->drain(); });

    state->drain();  // the caller always participates (see file doc)

    {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->all_done.wait(lock, [&] {
            return state->done.load(std::memory_order_acquire) ==
                state->n;
        });
        if (state->error)
            std::rethrow_exception(state->error);
    }
}

} // namespace moonwalk::exec
