/**
 * @file
 * Deterministic parallel-sweep facade over the work-stealing pool.
 *
 * parallelFor(n, body) runs body(0..n-1) with the calling thread
 * participating: indices are claimed from a shared atomic cursor, the
 * caller submits up to (width - 1) helper tasks to the global pool and
 * then drains indices itself until none remain.  Because the caller
 * always drains, nested parallelFor calls from inside pool tasks make
 * progress even when every pool worker is busy — there is no
 * wait-for-a-worker deadlock by construction.
 *
 * THE ORDERED-REDUCTION RULE: parallel results are only ever combined
 * in index order.  parallelMap writes result i into slot i and returns
 * the slots in order, so any reduction over its output (concatenation,
 * min-element with first-wins tie-break, Pareto extraction) is
 * bit-identical to the serial loop at every thread count.  Code built
 * on this facade must never fold results in completion order.
 *
 * Exceptions thrown by a body are captured; the first one (by claim
 * order, not index order) is rethrown on the calling thread after all
 * claimed indices finish.
 */
#ifndef MOONWALK_EXEC_PARALLEL_HH
#define MOONWALK_EXEC_PARALLEL_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace moonwalk::exec {

/**
 * Run body(i) for i in [0, n) across the global pool plus the calling
 * thread.  @p max_threads caps the number of participating threads
 * (0 = pool width + caller; 1 = plain serial loop on the caller, the
 * pool untouched).  Blocks until every index has run; rethrows the
 * first body exception.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &body,
                 int max_threads = 0);

/**
 * Ordered parallel map: returns {fn(0), ..., fn(n-1)} — always in
 * index order, regardless of thread count or scheduling.
 */
template <typename R>
std::vector<R>
parallelMap(size_t n, const std::function<R(size_t)> &fn,
            int max_threads = 0)
{
    std::vector<std::optional<R>> slots(n);
    parallelFor(
        n, [&](size_t i) { slots[i].emplace(fn(i)); }, max_threads);
    std::vector<R> out;
    out.reserve(n);
    for (auto &slot : slots)
        out.push_back(std::move(*slot));
    return out;
}

/**
 * One lazily-created T per participating thread.
 *
 * The clone-per-worker pattern: models with hidden mutable state (the
 * evaluator's thermal solve-cache) cannot be shared across threads, so
 * each thread working on a sweep gets its own copy, created from a
 * prototype on first use and reused for the life of this WorkerLocal.
 * Copying a WorkerLocal yields an empty one (per-thread state is not
 * transferable between owners).
 */
template <typename T>
class WorkerLocal
{
  public:
    WorkerLocal() = default;
    WorkerLocal(const WorkerLocal &) {}
    WorkerLocal &operator=(const WorkerLocal &) { return *this; }

    /** This thread's instance, creating it via @p make() if needed. */
    template <typename Make>
    T &get(Make &&make)
    {
        const auto id = std::this_thread::get_id();
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = slots_.find(id);
        if (it == slots_.end()) {
            it = slots_.emplace(id, std::make_unique<T>(make())).first;
        }
        return *it->second;
    }

    /** Visit every per-thread instance (e.g. to aggregate stats).
     *  May run concurrently with get() — the slot map is locked — but
     *  @p fn must only touch state of T that is itself safe to read
     *  while the owning thread works (e.g. atomic counters). */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[id, slot] : slots_)
            fn(*slot);
    }

    size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return slots_.size();
    }

    void clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        slots_.clear();
    }

  private:
    mutable std::mutex mutex_;
    std::map<std::thread::id, std::unique_ptr<T>> slots_;
};

} // namespace moonwalk::exec

#endif // MOONWALK_EXEC_PARALLEL_HH
