#include "exec/persistent_cache.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "exec/sweep_cache.hh"
#include "obs/log.hh"

namespace moonwalk::exec {

namespace fs = std::filesystem;

namespace {

/**
 * Entry file layout (version 1): a line-oriented header followed by
 * the raw key and payload bytes, in that order.
 *
 *   moonwalk-cache 1\n
 *   version <stamp>\n
 *   key <bytes>\n
 *   payload <bytes>\n
 *   digest <16 hex chars>\n
 *   \n
 *   <key><payload>
 *
 * The digest is FNV-1a over key then payload (one running hash), so
 * a truncated or bit-flipped body can never verify.
 */
constexpr const char *kMagicLine = "moonwalk-cache 1";

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

uint64_t
bodyDigest(const std::string &key, const std::string &payload)
{
    return fnv1a(payload.data(), payload.size(),
                 fnv1a(key.data(), key.size()));
}

/** Read one "\n"-terminated header line; false on EOF/overlength. */
bool
readLine(std::istream &in, std::string &line)
{
    line.clear();
    char ch;
    while (in.get(ch)) {
        if (ch == '\n')
            return true;
        line.push_back(ch);
        if (line.size() > 4096)
            return false;  // headers are short; this is not an entry
    }
    return false;
}

/** Parse "<label> <value>"; false when the label does not match. */
bool
labeledValue(const std::string &line, const std::string &label,
             std::string &value)
{
    if (line.rfind(label + ' ', 0) != 0)
        return false;
    value = line.substr(label.size() + 1);
    return true;
}

bool
parseSize(const std::string &text, size_t *out)
{
    if (text.empty() || text.size() > 18)
        return false;
    size_t value = 0;
    for (char ch : text) {
        if (ch < '0' || ch > '9')
            return false;
        value = value * 10 + static_cast<size_t>(ch - '0');
    }
    *out = value;
    return true;
}

} // namespace

PersistentCache::PersistentCache(std::string dir, std::string version)
    : dir_(std::move(dir)), version_(std::move(version))
{
    if (dir_.empty())
        return;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_, ec))
        degrade("cannot create cache directory " + dir_);
}

std::string
PersistentCache::entryPath(const std::string &key) const
{
    // 128 bits of FNV-1a (two independent seeds) name the file; the
    // stored key disambiguates the astronomically rare collision.
    const uint64_t a = fnv1a(key.data(), key.size());
    const uint64_t b =
        fnv1a(key.data(), key.size(), 0x9e3779b97f4a7c15ULL);
    return (fs::path(dir_) / (hex64(a) + hex64(b) + ".mwc")).string();
}

std::string
PersistentCache::resolveDir(const std::string &explicit_dir)
{
    if (!explicit_dir.empty())
        return explicit_dir;
    if (const char *env = std::getenv("MOONWALK_CACHE_DIR"))
        return env;
    return "";
}

void
PersistentCache::degrade(const std::string &why)
{
    broken_.store(true, std::memory_order_relaxed);
    if (!warned_.exchange(true, std::memory_order_relaxed)) {
        MOONWALK_LOG(Warn, "exec.diskcache")
            .msg("disk cache disabled; continuing uncached")
            .field("why", why);
    }
}

std::optional<std::string>
PersistentCache::load(const std::string &key)
{
    if (!enabled())
        return std::nullopt;
    const std::string path = entryPath(key);

    const auto miss = [&]() -> std::optional<std::string> {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    };
    const auto drop = [&](std::atomic<uint64_t> &counter) {
        counter.fetch_add(1, std::memory_order_relaxed);
        std::error_code ec;
        fs::remove(path, ec);  // never trusted again; best effort
        return miss();
    };

    std::ifstream in(path, std::ios::binary);
    if (!in)
        return miss();

    std::string line, value;
    if (!readLine(in, line) || line != kMagicLine)
        return drop(corrupt_);
    if (!readLine(in, line) || !labeledValue(line, "version", value))
        return drop(corrupt_);
    if (value != version_)
        return drop(evictions_);  // older model/codec; recompute
    size_t key_size = 0, payload_size = 0;
    if (!readLine(in, line) || !labeledValue(line, "key", value) ||
        !parseSize(value, &key_size))
        return drop(corrupt_);
    if (!readLine(in, line) || !labeledValue(line, "payload", value) ||
        !parseSize(value, &payload_size))
        return drop(corrupt_);
    if (!readLine(in, line) || !labeledValue(line, "digest", value))
        return drop(corrupt_);
    const std::string want_digest = value;
    if (!readLine(in, line) || !line.empty())
        return drop(corrupt_);

    std::string stored_key(key_size, '\0');
    in.read(stored_key.data(),
            static_cast<std::streamsize>(key_size));
    std::string payload(payload_size, '\0');
    in.read(payload.data(),
            static_cast<std::streamsize>(payload_size));
    if (!in || in.get() != std::ifstream::traits_type::eof())
        return drop(corrupt_);
    if (hex64(bodyDigest(stored_key, payload)) != want_digest)
        return drop(corrupt_);
    if (stored_key != key)
        return miss();  // 128-bit file-name collision; not our entry

    hits_.fetch_add(1, std::memory_order_relaxed);
    return payload;
}

bool
PersistentCache::store(const std::string &key,
                       const std::string &payload)
{
    if (!enabled())
        return false;
    const std::string path = entryPath(key);

    // Process-unique temp name: racing writers (threads or separate
    // processes) each stage their own file, then rename into place.
    static std::atomic<uint64_t> seq{0};
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << ::getpid() << "."
             << seq.fetch_add(1, std::memory_order_relaxed);
    const std::string tmp = tmp_name.str();

    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            degrade("cannot create " + tmp);
            return false;
        }
        out << kMagicLine << '\n'
            << "version " << version_ << '\n'
            << "key " << key.size() << '\n'
            << "payload " << payload.size() << '\n'
            << "digest " << hex64(bodyDigest(key, payload)) << '\n'
            << '\n';
        out.write(key.data(), static_cast<std::streamsize>(key.size()));
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        // Flush before checking: the stream buffers, so a disk-full
        // failure otherwise surfaces only at close(), after the state
        // check — the same silent-success bug RunReport::writeTo had.
        out.flush();
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            degrade("write failed for " + tmp);
            return false;
        }
    }

    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        std::error_code ec2;
        fs::remove(tmp, ec2);
        degrade("rename failed for " + path + ": " + ec.message());
        return false;
    }
    inserts_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

namespace {

/** True for names produced by entryPath(): 32 hex chars + ".mwc". */
bool
isEntryName(const std::string &name)
{
    const std::string suffix = ".mwc";
    if (name.size() != 32 + suffix.size() ||
        name.compare(32, suffix.size(), suffix) != 0)
        return false;
    for (size_t i = 0; i < 32; ++i) {
        const char ch = name[i];
        if (!((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')))
            return false;
    }
    return true;
}

/** True for writer staging files: "<entry>.tmp.<pid>.<seq>". */
bool
isTempName(const std::string &name)
{
    return name.find(".mwc.tmp.") != std::string::npos;
}

} // namespace

PersistentCacheUsage
PersistentCache::usage() const
{
    PersistentCacheUsage u;
    if (dir_.empty())
        return u;
    std::error_code ec;
    fs::directory_iterator it(dir_, ec);
    if (ec)
        return u;
    for (const auto &de : it) {
        const std::string name = de.path().filename().string();
        if (isEntryName(name)) {
            ++u.entries;
            std::error_code size_ec;
            const auto size = fs::file_size(de.path(), size_ec);
            if (!size_ec)
                u.bytes += size;
        } else if (isTempName(name)) {
            ++u.temp_files;
        }
    }
    return u;
}

PersistentCachePruneResult
PersistentCache::prune(uint64_t max_bytes)
{
    PersistentCachePruneResult result;
    if (dir_.empty()) {
        return result;
    }
    struct Entry
    {
        fs::path path;
        uint64_t bytes = 0;
        fs::file_time_type mtime;
    };
    std::vector<Entry> entries;
    uint64_t total_bytes = 0;
    std::error_code ec;
    fs::directory_iterator it(dir_, ec);
    if (ec)
        return result;
    for (const auto &de : it) {
        const std::string name = de.path().filename().string();
        if (isTempName(name)) {
            // A live writer holds its temp file only for the duration
            // of one store(); anything observable here during an
            // explicit prune is near-certainly a dead writer's
            // leftover.  Removing a just-staged temp at worst costs
            // that writer one failed rename, i.e. one recompute.
            std::error_code rm_ec;
            if (fs::remove(de.path(), rm_ec))
                ++result.removed_temp_files;
            continue;
        }
        if (!isEntryName(name))
            continue;
        Entry entry;
        entry.path = de.path();
        std::error_code size_ec, time_ec;
        const auto size = fs::file_size(de.path(), size_ec);
        entry.bytes = size_ec ? 0 : size;
        entry.mtime = fs::last_write_time(de.path(), time_ec);
        if (time_ec)
            entry.mtime = fs::file_time_type::min();
        total_bytes += entry.bytes;
        entries.push_back(std::move(entry));
    }

    // Oldest publish time first; path breaks ties so the order is
    // deterministic even on coarse-mtime filesystems.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });
    for (const auto &entry : entries) {
        if (total_bytes <= max_bytes)
            break;
        std::error_code rm_ec;
        if (fs::remove(entry.path, rm_ec)) {
            ++result.removed_entries;
            result.removed_bytes += entry.bytes;
            total_bytes -= entry.bytes;
        }
    }
    result.after = usage();
    if (result.removed_entries || result.removed_temp_files) {
        MOONWALK_LOG(Info, "exec.diskcache")
            .msg("pruned cache directory")
            .field("dir", dir_)
            .field("removed_entries", result.removed_entries)
            .field("removed_bytes", result.removed_bytes)
            .field("removed_temp_files", result.removed_temp_files)
            .field("remaining_entries", result.after.entries)
            .field("remaining_bytes", result.after.bytes);
    }
    return result;
}

void
PersistentCache::discardCorrupt(const std::string &key)
{
    if (dir_.empty())
        return;
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    std::error_code ec;
    fs::remove(entryPath(key), ec);
}

PersistentCacheStats
PersistentCache::stats() const
{
    return {hits(), misses(), inserts(), evictions(), corrupt()};
}

} // namespace moonwalk::exec
