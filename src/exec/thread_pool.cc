#include "exec/thread_pool.hh"

#include <cstdlib>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/error.hh"

namespace moonwalk::exec {

namespace {

// Pool workers are anonymous threads; these let onWorkerThread() (and
// future nested-scheduling policies) identify them without a lookup.
thread_local const ThreadPool *tl_pool = nullptr;

std::atomic<int> g_requested{0};       // setGlobalConcurrency value
std::atomic<int> g_global_size{0};     // size of the live global pool

// Serializes the setGlobalConcurrency handshake against the global
// pool's first-use size latch: a racing setGlobalConcurrency either
// lands before the latch (and is honored) or after (and reliably hits
// the already-running fatal path) — never silently ignored.
std::mutex &
configMutex()
{
    static std::mutex m;
    return m;
}

// Out of line so the registry lookup stays off the submit/execute
// fast path; only reached when metrics collection is on.
[[gnu::noinline]] void
bumpCounter(const char *name, uint64_t n = 1)
{
    obs::metrics().counter(name).inc(n);
}

[[gnu::noinline]] void
noteQueueDepth(size_t depth)
{
    auto &reg = obs::metrics();
    reg.gauge("exec.queue.depth").set(static_cast<double>(depth));
    reg.gauge("exec.queue.depth.max").max(static_cast<double>(depth));
}

} // namespace

std::optional<int>
parseJobs(const std::string &text)
{
    if (text.empty() || text.size() > 9)
        return std::nullopt;
    long value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return std::nullopt;
        value = value * 10 + (c - '0');
    }
    if (value < 1 || value > kMaxJobs)
        return std::nullopt;
    return static_cast<int>(value);
}

ThreadPool::ThreadPool(int threads)
{
    // Touch the obs singletons before any worker exists: function-local
    // statics are destroyed in reverse construction order, so this
    // guarantees the metrics registry and trace collector outlive the
    // global pool's at-exit destructor — a worker's final counter bump
    // or span must never race registry teardown.  Registering the pool
    // metrics eagerly also guarantees they appear (zero-valued) in
    // every run report, even when a run never exercises a path that
    // bumps them (e.g. steals on a single-worker pool).
    auto &reg = obs::metrics();
    reg.counter("exec.tasks.submitted");
    reg.counter("exec.tasks.executed");
    reg.counter("exec.tasks.stolen");
    reg.counter("exec.worker.wakeups");
    reg.gauge("exec.queue.depth");
    reg.gauge("exec.queue.depth.max");
    obs::traceCollector();

    const int n = std::min(std::max(threads, 1), kMaxJobs);
    workers_.reserve(n);
    for (int i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(n);
    for (int i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        stop_.store(true, std::memory_order_release);
    }
    wakeup_.notify_all();
    for (auto &t : threads_)
        t.join();
}

bool
ThreadPool::onWorkerThread() const
{
    return tl_pool == this;
}

void
ThreadPool::submit(std::function<void()> task)
{
    const uint64_t cursor =
        submit_cursor_.fetch_add(1, std::memory_order_relaxed);
    Worker &w = *workers_[cursor % workers_.size()];
    size_t depth;
    {
        std::lock_guard<std::mutex> lock(w.mutex);
        w.tasks.push_back(std::move(task));
        depth = queued_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    if (obs::metricsEnabled()) [[unlikely]] {
        bumpCounter("exec.tasks.submitted");
        noteQueueDepth(depth);
    }
    // Lost-wakeup fence: a worker that read queued_ == 0 under
    // sleep_mutex_ may not have blocked in wait() yet, and a notify
    // fired in that window would vanish.  Acquiring and releasing the
    // mutex here cannot complete until any such worker has atomically
    // released it inside wait() — i.e. is parked and reachable by the
    // notify — while workers that re-check the predicate afterwards
    // observe the queued_ increment above and never block.
    { std::lock_guard<std::mutex> fence(sleep_mutex_); }
    wakeup_.notify_one();
}

std::function<void()>
ThreadPool::nextTask(int index, bool &stolen)
{
    const int n = static_cast<int>(workers_.size());
    // Own deque first, back (most recently pushed) end.
    {
        Worker &own = *workers_[index];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            auto task = std::move(own.tasks.back());
            own.tasks.pop_back();
            queued_.fetch_sub(1, std::memory_order_relaxed);
            stolen = false;
            return task;
        }
    }
    // Steal from victims' front (oldest) end, scanning round-robin
    // from our right neighbour so thieves spread across the pool.
    for (int step = 1; step < n; ++step) {
        Worker &victim = *workers_[(index + step) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            auto task = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            queued_.fetch_sub(1, std::memory_order_relaxed);
            stolen = true;
            return task;
        }
    }
    stolen = false;
    return nullptr;
}

void
ThreadPool::workerLoop(int index)
{
    tl_pool = this;
    // One trace span per busy burst (idle -> busy -> idle), so the
    // trace viewer shows scheduler occupancy without a span per task.
    std::optional<obs::TraceSpan> burst;
    uint64_t burst_tasks = 0;

    for (;;) {
        bool stolen = false;
        auto task = nextTask(index, stolen);
        if (!task) {
            if (burst) {
                burst->arg("tasks", static_cast<double>(burst_tasks));
                burst.reset();
                burst_tasks = 0;
            }
            std::unique_lock<std::mutex> lock(sleep_mutex_);
            if (stop_.load(std::memory_order_acquire) &&
                queued_.load(std::memory_order_relaxed) == 0) {
                return;  // drained: every submitted task has run
            }
            wakeup_.wait(lock, [this] {
                return stop_.load(std::memory_order_acquire) ||
                       queued_.load(std::memory_order_relaxed) > 0;
            });
            // Idle-path accounting only: a wakeup means this worker
            // slept and was prodded (work arrived or shutdown), so the
            // counter approximates scheduler churn, not throughput.
            if (obs::metricsEnabled()) [[unlikely]]
                bumpCounter("exec.worker.wakeups");
            continue;
        }

        if (!burst && obs::traceCollector().enabled()) {
            burst.emplace("worker " + std::to_string(index), "exec");
        }
        ++burst_tasks;

        const bool counted = obs::metricsEnabled();
        const uint64_t t0 = counted ? obs::monotonicNowNs() : 0;
        task();
        if (counted) [[unlikely]] {
            bumpCounter("exec.tasks.executed");
            if (stolen)
                bumpCounter("exec.tasks.stolen");
            obs::metrics().timer("exec.worker.busy")
                .record(obs::monotonicNowNs() - t0);
        }
    }
}

int
defaultConcurrency()
{
    const int requested = g_requested.load(std::memory_order_relaxed);
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("MOONWALK_JOBS")) {
        const auto jobs = parseJobs(env);
        if (!jobs) {
            fatal("MOONWALK_JOBS must be an integer in [1, ", kMaxJobs,
                  "], got '", env, "'");
        }
        return *jobs;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
setGlobalConcurrency(int n)
{
    if (n < 1 || n > kMaxJobs)
        fatal("job count must be in [1, ", kMaxJobs, "], got ", n);
    std::lock_guard<std::mutex> lock(configMutex());
    const int live = g_global_size.load(std::memory_order_acquire);
    if (live > 0 && live != n) {
        fatal("global thread pool already running with ", live,
              " threads; set --jobs/MOONWALK_JOBS before any "
              "parallel work");
    }
    g_requested.store(n, std::memory_order_relaxed);
}

ThreadPool &
ThreadPool::global()
{
    // The pool is a function-local static so its workers are joined
    // cleanly at exit (keeps TSan and leak checkers quiet).  Size is
    // latched on first use, under configMutex() so a concurrent
    // setGlobalConcurrency call cannot slip between the size check and
    // the latch (it would be silently ignored instead of fatal).
    static ThreadPool pool = [] {
        std::lock_guard<std::mutex> lock(configMutex());
        const int n = defaultConcurrency();
        g_global_size.store(n, std::memory_order_release);
        return ThreadPool(n);
    }();
    return pool;
}

} // namespace moonwalk::exec
