/**
 * @file
 * Sharded concurrent memo cache for sweep results.
 *
 * Lookups hash the key to one of Shards shards, each an independently
 * locked map, so concurrent explorations of different (app, node)
 * pairs rarely contend.  Values are computed OUTSIDE the shard lock:
 * two threads racing on the same fresh key may both compute, but only
 * the first insert wins and both observe the same value — acceptable
 * for pure memoization of deterministic computations, and it keeps a
 * multi-second sweep from blocking every key in its shard.
 *
 * The design-space layer keys this by a string serializing the full
 * (app, node, options, spec-content) tuple; see
 * dse::DesignSpaceExplorer.  Keys used for correctness should encode
 * their fields verbatim — the fnv1a helpers below are fine for shard
 * selection or diagnostics, but a 64-bit digest is not
 * collision-free enough to stand in for the key itself.
 */
#ifndef MOONWALK_EXEC_SWEEP_CACHE_HH
#define MOONWALK_EXEC_SWEEP_CACHE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>

namespace moonwalk::exec {

/** FNV-1a, the building block for options/spec hashes. */
inline uint64_t
fnv1a(const void *data, size_t size, uint64_t seed = 14695981039346656037ULL)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ULL;
    }
    return h;
}

/** Fold one trivially-copyable value into a running hash. */
template <typename T>
uint64_t
hashValue(uint64_t seed, const T &value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    return fnv1a(&value, sizeof(value), seed);
}

inline uint64_t
hashValue(uint64_t seed, const std::string &value)
{
    return fnv1a(value.data(), value.size(), seed);
}

/**
 * The cache.  Key must be less-than-comparable (shard maps are
 * ordered) and hashable via std::hash.
 */
template <typename Key, typename Value, size_t Shards = 16>
class ShardedCache
{
    static_assert(Shards > 0);

  public:
    /**
     * Return the cached value for @p key, computing and inserting it
     * via @p compute() on a miss.  See the file comment for the
     * duplicate-compute race semantics.
     */
    template <typename Compute>
    Value getOrCompute(const Key &key, Compute &&compute)
    {
        Shard &shard = shardFor(key);
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            auto it = shard.map.find(key);
            if (it != shard.map.end()) {
                hits_.fetch_add(1, std::memory_order_relaxed);
                return it->second;
            }
        }
        misses_.fetch_add(1, std::memory_order_relaxed);
        Value value = compute();
        std::lock_guard<std::mutex> lock(shard.mutex);
        // first insert wins; a racing thread's identical result is
        // discarded
        auto [it, inserted] = shard.map.emplace(key, std::move(value));
        if (inserted)
            inserts_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }

    uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }
    uint64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }
    /** Inserts that actually landed; misses() - inserts() counts
     *  duplicate computations lost to the first-insert-wins race. */
    uint64_t inserts() const
    {
        return inserts_.load(std::memory_order_relaxed);
    }

    size_t size() const
    {
        size_t total = 0;
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            total += shard.map.size();
        }
        return total;
    }

    void clear()
    {
        for (auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.map.clear();
        }
    }

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::map<Key, Value> map;
    };

    Shard &shardFor(const Key &key)
    {
        return shards_[std::hash<Key>{}(key) % Shards];
    }

    std::array<Shard, Shards> shards_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> inserts_{0};
};

} // namespace moonwalk::exec

#endif // MOONWALK_EXEC_SWEEP_CACHE_HH
