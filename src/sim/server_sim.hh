/**
 * @file
 * Functional (discrete-event) simulator of one ASIC Cloud server
 * (paper Section 3): RPC jobs arrive at the FPGA bridge over the
 * off-PCB interface, are dispatched across lanes/ASICs onto
 * replicated compute accelerators through the on-die NoC, execute
 * for ops/throughput-derived service times, and return.
 *
 * The simulator validates the analytic performance model (a server's
 * sustained throughput should approach perf_ops as offered load
 * saturates it) and exposes the latency behavior behind SLA
 * constraints like Deep Learning's (Section 5.3).
 */
#ifndef MOONWALK_SIM_SERVER_SIM_HH
#define MOONWALK_SIM_SERVER_SIM_HH

#include <cstdint>
#include <vector>

#include "sim/events.hh"

namespace moonwalk::sim {

/**
 * Static description of the simulated server.
 */
struct ServerModel
{
    int asics = 72;              ///< dies per server
    int rcas_per_asic = 769;
    /** Application ops completed per second by one RCA. */
    double rca_ops_per_s = 149e6;
    /** FPGA dispatch overhead per job (s): RPC decode + routing. */
    double dispatch_latency_s = 2e-6;
    /** On-PCB network + on-die NoC traversal per job (s). */
    double interconnect_latency_s = 1e-6;
    /** Per-ASIC job queue bound; arrivals beyond it are dropped. */
    int asic_queue_depth = 64;
};

/**
 * Offered load.
 */
struct Workload
{
    /** Application ops in one RPC job (e.g. hashes per share batch,
     *  or 1.0 for one frame). */
    double ops_per_job = 1e6;
    /** Mean job arrival rate (Poisson), jobs/s. */
    double arrival_rate = 1e5;
    /** Simulated horizon (s). */
    double duration_s = 1.0;
    /** Warmup fraction excluded from statistics. */
    double warmup_fraction = 0.1;
    uint64_t seed = 1;
};

/**
 * Simulation results.
 */
struct SimStats
{
    uint64_t jobs_offered = 0;
    /** Discrete events fired by the event queue over the run. */
    uint64_t events_dispatched = 0;
    /** Deepest any single ASIC's job queue ever got. */
    int queue_depth_hwm = 0;
    /** Jobs counted in the measurement window (arrived after warmup,
     *  completed before the horizon). */
    uint64_t jobs_completed = 0;
    /** All completions, including warmup and post-horizon drain. */
    uint64_t jobs_completed_total = 0;
    uint64_t jobs_dropped = 0;
    /** Sustained application ops/s over the measured window. */
    double achieved_ops_per_s = 0;
    /** Mean busy fraction across all RCAs. */
    double rca_utilization = 0;
    // Latency (s), measured jobs only.
    double latency_mean = 0;
    double latency_p50 = 0;
    double latency_p95 = 0;
    double latency_p99 = 0;
    double latency_max = 0;
};

/**
 * The simulator.  Deterministic for a fixed (model, workload, seed).
 */
class ServerSimulator
{
  public:
    explicit ServerSimulator(ServerModel model);

    const ServerModel &model() const { return model_; }

    /** Run one workload and return statistics. */
    SimStats run(const Workload &workload) const;

    /** Aggregate service capacity (ops/s) of the modeled server. */
    double capacityOpsPerS() const
    {
        return static_cast<double>(model_.asics) *
            model_.rcas_per_asic * model_.rca_ops_per_s;
    }

  private:
    ServerModel model_;
};

} // namespace moonwalk::sim

#endif // MOONWALK_SIM_SERVER_SIM_HH
