#include "sim/events.hh"

#include "util/error.hh"

namespace moonwalk::sim {

void
EventQueue::schedule(SimTime when, Action action)
{
    if (when < now_)
        fatal("cannot schedule event in the past: ", when, " < ",
              now_);
    heap_.push(Entry{when, seq_++, std::move(action)});
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // Move the entry out before firing: the action may schedule new
    // events and mutate the heap.
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    ++fired_;
    e.action();
    return true;
}

void
EventQueue::runUntil(SimTime horizon)
{
    while (!heap_.empty() && heap_.top().when <= horizon)
        step();
    if (now_ < horizon)
        now_ = horizon;
}

} // namespace moonwalk::sim
