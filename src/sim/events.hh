/**
 * @file
 * Discrete-event core for the ASIC Cloud server simulator: a time-
 * ordered event queue with stable FIFO ordering for simultaneous
 * events.
 */
#ifndef MOONWALK_SIM_EVENTS_HH
#define MOONWALK_SIM_EVENTS_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace moonwalk::sim {

/** Simulated time in seconds. */
using SimTime = double;

/**
 * A time-ordered event queue.  Events scheduled for the same instant
 * fire in scheduling order (stable), which keeps runs deterministic.
 */
class EventQueue
{
  public:
    using Action = std::function<void()>;

    /** Schedule @p action at absolute time @p when (>= now). */
    void schedule(SimTime when, Action action);

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Current simulation time (time of the last fired event). */
    SimTime now() const { return now_; }

    /** Number of events fired so far. */
    uint64_t fired() const { return fired_; }

    /**
     * Fire the earliest event.  Returns false if the queue is empty.
     */
    bool step();

    /** Run until the queue empties or time exceeds @p horizon. */
    void runUntil(SimTime horizon);

  private:
    struct Entry
    {
        SimTime when;
        uint64_t seq;
        Action action;
    };
    struct Later
    {
        bool operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    SimTime now_ = 0.0;
    uint64_t seq_ = 0;
    uint64_t fired_ = 0;
};

} // namespace moonwalk::sim

#endif // MOONWALK_SIM_EVENTS_HH
