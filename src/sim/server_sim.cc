#include "sim/server_sim.hh"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <random>

#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/error.hh"

namespace moonwalk::sim {

ServerSimulator::ServerSimulator(ServerModel model)
    : model_(model)
{
    if (model_.asics < 1 || model_.rcas_per_asic < 1)
        fatal("server needs at least one ASIC and one RCA");
    if (model_.rca_ops_per_s <= 0.0)
        fatal("RCA throughput must be positive");
    if (model_.asic_queue_depth < 0)
        fatal("queue depth must be non-negative");
}

namespace {

/** Per-ASIC state: busy RCA count plus a FIFO of waiting jobs. */
struct AsicState
{
    int busy = 0;
    std::deque<double> queue;  ///< arrival timestamps of queued jobs

    int load() const { return busy + static_cast<int>(queue.size()); }
};

double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double idx = p * (sorted.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - lo;
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

SimStats
ServerSimulator::run(const Workload &w) const
{
    if (w.ops_per_job <= 0.0 || w.arrival_rate <= 0.0 ||
        w.duration_s <= 0.0) {
        fatal("workload needs positive ops/job, rate and duration");
    }
    if (w.warmup_fraction < 0.0 || w.warmup_fraction >= 1.0)
        fatal("warmup fraction must be in [0, 1)");

    const double service_s = w.ops_per_job / model_.rca_ops_per_s;
    const double warmup_end = w.warmup_fraction * w.duration_s;

    EventQueue events;
    std::mt19937_64 rng(w.seed);
    std::exponential_distribution<double> interarrival(w.arrival_rate);

    std::vector<AsicState> asics(model_.asics);
    SimStats stats;
    std::vector<double> latencies;
    double busy_ops = 0.0;  // ops completed inside the window

    // One completion chain per RCA-start; declared up front so the
    // lambdas can recurse.
    std::function<void(int, double)> start_service =
        [&](int asic, double arrived) {
            AsicState &a = asics[static_cast<size_t>(asic)];
            ++a.busy;
            const double done = events.now() + service_s;
            events.schedule(done, [&, asic, arrived, done] {
                AsicState &s = asics[static_cast<size_t>(asic)];
                --s.busy;
                const double latency = done - arrived;
                ++stats.jobs_completed_total;
                // Steady-state measurement window: skip warmup and
                // the post-horizon drain so sustained throughput is
                // not inflated by queued backlog.
                if (arrived >= warmup_end && done <= w.duration_s) {
                    ++stats.jobs_completed;
                    latencies.push_back(latency);
                    busy_ops += w.ops_per_job;
                }
                if (!s.queue.empty()) {
                    const double next_arrived = s.queue.front();
                    s.queue.pop_front();
                    start_service(asic, next_arrived);
                }
            });
        };

    // Arrival process: each arrival schedules the next one until the
    // horizon, then dispatches itself to the least-loaded ASIC.
    std::function<void()> arrive = [&] {
        const double arrived = events.now();
        ++stats.jobs_offered;

        const double next = arrived + interarrival(rng);
        if (next <= w.duration_s)
            events.schedule(next, arrive);

        // FPGA dispatch + interconnect delay before the job reaches
        // its ASIC.
        const double at_asic = arrived + model_.dispatch_latency_s +
            model_.interconnect_latency_s;
        // Join-shortest-queue across ASICs (the FPGA sees per-ASIC
        // occupancy through its job-distribution protocol).
        int best = 0;
        for (int i = 1; i < model_.asics; ++i) {
            if (asics[static_cast<size_t>(i)].load() <
                asics[static_cast<size_t>(best)].load()) {
                best = i;
            }
        }
        events.schedule(at_asic, [&, best, arrived] {
            AsicState &a = asics[static_cast<size_t>(best)];
            if (a.busy < model_.rcas_per_asic) {
                start_service(best, arrived);
            } else if (static_cast<int>(a.queue.size()) <
                       model_.asic_queue_depth) {
                a.queue.push_back(arrived);
                stats.queue_depth_hwm =
                    std::max(stats.queue_depth_hwm,
                             static_cast<int>(a.queue.size()));
            } else {
                ++stats.jobs_dropped;
            }
        });
    };

    events.schedule(interarrival(rng), arrive);

    // Run to the horizon, then drain in-flight work.
    {
        obs::TraceSpan span("sim.run", "sim");
        span.arg("arrival_rate", w.arrival_rate)
            .arg("duration_s", w.duration_s);
        while (events.step()) {
        }
    }
    stats.events_dispatched = events.fired();

    const double window = w.duration_s - warmup_end;
    stats.achieved_ops_per_s = busy_ops / window;
    stats.rca_utilization = busy_ops / model_.rca_ops_per_s /
        (window * model_.asics * model_.rcas_per_asic);

    std::sort(latencies.begin(), latencies.end());
    if (!latencies.empty()) {
        double sum = 0.0;
        for (double l : latencies)
            sum += l;
        stats.latency_mean = sum / latencies.size();
        stats.latency_p50 = percentile(latencies, 0.50);
        stats.latency_p95 = percentile(latencies, 0.95);
        stats.latency_p99 = percentile(latencies, 0.99);
        stats.latency_max = latencies.back();
    }

    if (obs::metricsEnabled()) {
        auto &reg = obs::metrics();
        reg.counter("sim.events.dispatched")
            .inc(stats.events_dispatched);
        reg.counter("sim.jobs.offered").inc(stats.jobs_offered);
        reg.counter("sim.jobs.dropped").inc(stats.jobs_dropped);
        reg.gauge("sim.queue.depth_hwm")
            .max(static_cast<double>(stats.queue_depth_hwm));
    }
    MOONWALK_LOG(Info, "sim.run")
        .msg("simulation complete")
        .field("offered", stats.jobs_offered)
        .field("completed", stats.jobs_completed)
        .field("dropped", stats.jobs_dropped)
        .field("events", stats.events_dispatched)
        .field("queue_hwm", stats.queue_depth_hwm);
    return stats;
}

} // namespace moonwalk::sim
