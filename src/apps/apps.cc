#include "apps/apps.hh"

#include "util/error.hh"

namespace moonwalk::apps {

// Anchor derivations (DESIGN.md section 5): performance anchors come
// from Tables 7-10 at 28nm, e.g. Bitcoin's 8,223 GH/s from 72 dies x
// 769 RCAs at 149 MHz gives exactly 1 hash/cycle/RCA; energy anchors
// back out wall-power overheads (PSU/DCDC efficiency, fans, DRAM) and
// re-reference the paper's sub-nominal operating voltage to 0.9V via
// the CV^2 law.

AppSpec
bitcoin()
{
    AppSpec app;
    auto &r = app.rca;
    r.name = "Bitcoin";
    r.perf_unit = "GH/s";
    r.perf_unit_scale = 1e9;
    r.gate_count = 323e3;              // Table 5
    r.ops_per_cycle = 1.0;             // one double-SHA256 per cycle
    r.f_nominal_28_mhz = 557.0;        // 149 MHz at 0.459V (Table 7)
    r.energy_per_op_28_j = 1.32e-9;    // J per hash, silicon, 0.9V
    r.area_28_mm2 = 540.0 / 769.0;     // Table 7, 28nm column
    r.sram_fraction = 0.05;

    auto &n = app.nre;
    n.app_name = r.name;
    n.rca_gate_count = r.gate_count;
    n.frontend_cad_months = 8;         // Table 5
    n.frontend_mm = 9.5;
    n.fpga_job_distribution_mm = 1;
    n.fpga_bios_mm = 1;
    n.cloud_software_mm = 2;
    n.pcb_design_cost = 37e3;

    app.baseline = {"AMD 7970 GPU", 0.68e9, 285.0, 400.0};  // Table 6
    return app;
}

AppSpec
litecoin()
{
    AppSpec app;
    auto &r = app.rca;
    r.name = "Litecoin";
    r.perf_unit = "MH/s";
    r.perf_unit_scale = 1e6;
    r.gate_count = 96.7e3;             // Table 5
    // 1,384 MH/s from 120 dies x 910 RCAs at 576 MHz (Table 9, 28nm)
    // gives 45,447 cycles per scrypt hash.
    r.ops_per_cycle = 1.0 / 45447.0;
    r.f_nominal_28_mhz = 919.0;        // 576 MHz at 0.656V (Table 9)
    r.energy_per_op_28_j = 2.78e-6;    // J per hash, silicon, 0.9V
    r.area_28_mm2 = 540.0 / 910.0;     // SRAM-dominated RCA
    r.sram_fraction = 0.75;

    auto &n = app.nre;
    n.app_name = r.name;
    n.rca_gate_count = r.gate_count;
    n.frontend_cad_months = 12;
    n.frontend_mm = 15;
    n.fpga_job_distribution_mm = 1;
    n.fpga_bios_mm = 1;
    n.cloud_software_mm = 2;
    n.pcb_design_cost = 37e3;

    app.baseline = {"AMD 7970 GPU", 0.63e6, 285.0, 400.0};
    return app;
}

AppSpec
videoTranscode()
{
    AppSpec app;
    auto &r = app.rca;
    r.name = "Video Transcode";
    r.perf_unit = "Kfps";
    r.perf_unit_scale = 1e3;
    r.gate_count = 3.56e6;             // Table 5, H.265/HEVC [31]
    // 158 Kfps from 40 dies x 153 RCAs at 429 MHz (Table 10, 28nm):
    // 16.63M cycles per transcoded frame.
    r.ops_per_cycle = 1.0 / 16.63e6;
    r.f_nominal_28_mhz = 546.0;        // 429 MHz at 0.754V (Table 10)
    r.energy_per_op_28_j = 6.4e-3;     // J per frame, silicon, 0.9V
    r.area_28_mm2 = 498.0 / 153.0;
    r.sram_fraction = 0.30;
    // One LPDDR3 device (6.4 GB/s) sustains ~660 fps (Section 6.3:
    // 28nm ASICs saturate 6 DRAMs at 3.95 Kfps per die).
    r.bytes_per_op = 9.7e6;
    r.needs_lvds = true;               // high off-PCB bandwidth
    // Compressed video in + out crossing the server boundary.
    r.offpcb_bytes_per_op = 6e4;

    auto &n = app.nre;
    n.app_name = r.name;
    n.rca_gate_count = r.gate_count;
    n.frontend_cad_months = 23;
    n.frontend_mm = 24;
    n.fpga_job_distribution_mm = 3;
    n.fpga_bios_mm = 1;
    n.cloud_software_mm = 7;
    n.pcb_design_cost = 50e3;
    n.extra_ip_cost = 200e3;           // licensed H.265 decoder

    app.baseline = {"Core i7-4790K", 1.8, 155.0, 725.0};
    return app;
}

AppSpec
deepLearning()
{
    AppSpec app;
    auto &r = app.rca;
    r.name = "Deep Learning";
    r.perf_unit = "TOps/s";
    r.perf_unit_scale = 1e12;
    r.gate_count = 1.51e6;             // Table 5, DaDianNao node [13]
    // 470 TOps/s from 64 dies x 4 nodes at 606 MHz (Table 8, 28nm):
    // 3,030 ops per node-cycle.
    r.ops_per_cycle = 3030.0;
    r.f_nominal_28_mhz = 606.0;
    r.energy_per_op_28_j = 5.0e-12;    // J per op, silicon, 0.9V
    r.area_28_mm2 = 64.5;              // one DDN node (67.7mm^2 chip
                                       // less its HT pads)
    r.sram_fraction = 0.55;            // eDRAM/SRAM-heavy
    // eDRAM arrays and HyperTransport drivers dominate DDN energy and
    // scale poorly with node (Table 8's 16nm energy sits well above
    // pure CV^2 scaling).
    r.energy_scaling_fraction = 0.8;
    r.sla_fixed_freq_mhz = 606.0;      // latency SLA (Section 5.3)
    r.needs_high_speed_link = true;    // HyperTransport
    // Batch activations in/out, amortized per MAC-equivalent op
    // (layers reuse weights on-die; ~100 GigE at server scale).
    r.offpcb_bytes_per_op = 2e-4;
    // DDN grids that fit a reticle: 1x1, 2x1, 2x2, 3x3, 2x4.
    r.allowed_rcas_per_die = {1, 2, 4, 8, 9};
    r.server_rca_multiple = 64;        // whole 8x8 systems per server
    r.allow_dark_silicon = true;       // hotspot spreading (S 6.3)

    auto &n = app.nre;
    n.app_name = r.name;
    n.rca_gate_count = r.gate_count;
    n.frontend_cad_months = 26;
    n.frontend_mm = 30;
    n.fpga_job_distribution_mm = 2;
    n.fpga_bios_mm = 1;
    n.cloud_software_mm = 6;
    n.pcb_design_cost = 37e3;

    app.baseline = {"NVIDIA Tesla K20X", 0.26e12, 225.0, 3300.0};
    return app;
}

std::vector<AppSpec>
allApps()
{
    return {bitcoin(), litecoin(), videoTranscode(), deepLearning()};
}

AppSpec
appByName(const std::string &name)
{
    for (auto &app : allApps())
        if (app.name() == name)
            return app;
    fatal("unknown application: ", name);
}

} // namespace moonwalk::apps
