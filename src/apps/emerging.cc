#include "apps/emerging.hh"

namespace moonwalk::apps {

AppSpec
faceRecognition()
{
    AppSpec app;
    auto &r = app.rca;
    r.name = "Face Recognition";
    r.perf_unit = "Kimg/s";
    r.perf_unit_scale = 1e3;
    r.gate_count = 2.2e6;          // conv arrays + embedding head
    // ~1.1 GFLOP-equivalent per image on a 512-MAC array at 80%
    // utilization: ~2.7M cycles per image.
    r.ops_per_cycle = 1.0 / 2.7e6;
    r.f_nominal_28_mhz = 640.0;
    r.energy_per_op_28_j = 2.4e-3; // J per image, silicon, 0.9V
    r.area_28_mm2 = 5.6;
    r.sram_fraction = 0.45;        // weight/activation buffers
    r.bytes_per_op = 0.9e6;        // image + activation traffic
    r.needs_high_speed_link = true;  // PCI-E ingest from storage
    r.offpcb_bytes_per_op = 2e4;     // compressed image ingest
    // Non-scaling share: DRAM PHY and PCI-E SerDes energy.
    r.energy_scaling_fraction = 0.85;

    auto &n = app.nre;
    n.app_name = r.name;
    n.rca_gate_count = r.gate_count;
    n.frontend_cad_months = 20;
    n.frontend_mm = 22;
    n.fpga_job_distribution_mm = 2;
    n.fpga_bios_mm = 1;
    n.cloud_software_mm = 5;
    n.pcb_design_cost = 45e3;

    // Best alternative: a GPU inference server.
    app.baseline = {"GPU inference server", 1.4e3, 900.0, 24e3};
    return app;
}

AppSpec
speechRecognition()
{
    AppSpec app;
    auto &r = app.rca;
    r.name = "Speech Recognition";
    r.perf_unit = "Kutt/s";        // utterances per second
    r.perf_unit_scale = 1e3;
    r.gate_count = 1.8e6;          // acoustic DNN + beam search
    // ~40M cycles per 3-second utterance.
    r.ops_per_cycle = 1.0 / 40e6;
    r.f_nominal_28_mhz = 700.0;
    r.energy_per_op_28_j = 30e-3;  // J per utterance, silicon, 0.9V
    r.area_28_mm2 = 8.5;
    r.sram_fraction = 0.6;         // on-chip acoustic model caches
    r.bytes_per_op = 14e6;         // language-model lookups in DRAM
    r.needs_high_speed_link = true;
    r.offpcb_bytes_per_op = 1e5;   // 3s of 16-bit audio per utterance
    r.energy_scaling_fraction = 0.8;

    auto &n = app.nre;
    n.app_name = r.name;
    n.rca_gate_count = r.gate_count;
    n.frontend_cad_months = 24;
    n.frontend_mm = 26;
    n.fpga_job_distribution_mm = 2;
    n.fpga_bios_mm = 1;
    n.cloud_software_mm = 6;
    n.pcb_design_cost = 45e3;

    app.baseline = {"2S Xeon + GPU", 0.35e3, 700.0, 15e3};
    return app;
}

std::vector<AppSpec>
emergingApps()
{
    return {faceRecognition(), speechRecognition()};
}

} // namespace moonwalk::apps
