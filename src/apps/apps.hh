/**
 * @file
 * The paper's four benchmark applications (Section 5.3) and their
 * best non-ASIC baselines (Table 6).
 *
 * Per-RCA performance/energy/area anchors are reconstructed from the
 * paper's published 28nm results (Tables 5-10); see DESIGN.md for the
 * derivations.  Energy anchors are silicon-level: the paper's W columns
 * are wall power, which the server model reproduces by adding DRAM,
 * fan, and power-conversion losses.
 */
#ifndef MOONWALK_APPS_APPS_HH
#define MOONWALK_APPS_APPS_HH

#include <string>
#include <vector>

#include "arch/rca.hh"
#include "nre/nre_model.hh"

namespace moonwalk::apps {

/**
 * The best non-ASIC alternative server (Table 6), used as the TCO
 * baseline of Figures 6 and 10-12.
 */
struct BaselineServer
{
    std::string hardware;
    double perf_ops = 0;   ///< application ops/s (same unit as RCA)
    double power_w = 0;
    double cost = 0;
};

/**
 * A complete application: the RCA, its NRE parameters (Table 5) and
 * its baseline.
 */
struct AppSpec
{
    arch::RcaSpec rca;
    nre::AppNreParams nre;
    BaselineServer baseline;

    const std::string &name() const { return rca.name; }
};

/** Bitcoin: logic-dense SHA256 miner, extreme power density, no SRAM
 *  or DRAM (Section 5.3). */
AppSpec bitcoin();

/** Litecoin: scrypt miner, SRAM-dominated, low power density. */
AppSpec litecoin();

/** Video Transcode: H.265/HEVC, DRAM-bandwidth-bound, high off-PCB
 *  bandwidth; decoder IP licensed for $200K (Section 5.3). */
AppSpec videoTranscode();

/** Deep Learning: DaDianNao nodes with a fixed 606 MHz SLA clock and
 *  HyperTransport links; server groups of 64 nodes (8x8 systems). */
AppSpec deepLearning();

/** All four applications in the paper's presentation order. */
std::vector<AppSpec> allApps();

/** Look up an application by (case-sensitive) name. */
AppSpec appByName(const std::string &name);

} // namespace moonwalk::apps

#endif // MOONWALK_APPS_APPS_HH
