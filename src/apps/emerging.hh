/**
 * @file
 * Hypothetical emerging-application suite (paper Section 1: "growing
 * classes of planet-scale workloads — think Facebook's face
 * recognition of uploaded pictures, or Apple's Siri voice
 * recognition, or the IRS performing tax audits with neural nets").
 *
 * These are *not* from the paper's evaluation; they are documented,
 * plausible accelerator specs for the node-selection workflow of
 * Section 7.3, where a researcher studies an application that has no
 * established demand yet.  Parameters are stated per-RCA at the 28nm
 * reference point like the built-in suite's.
 */
#ifndef MOONWALK_APPS_EMERGING_HH
#define MOONWALK_APPS_EMERGING_HH

#include "apps/apps.hh"

namespace moonwalk::apps {

/** CNN face-embedding accelerator: compute-dense, DRAM-streaming,
 *  PCI-E attached; latency-tolerant (batch photo ingest). */
AppSpec faceRecognition();

/** Speech-to-text accelerator: acoustic DNN + beam search; SRAM-
 *  heavy with DRAM-resident language model and PCI-E host link. */
AppSpec speechRecognition();

/** Both emerging applications. */
std::vector<AppSpec> emergingApps();

} // namespace moonwalk::apps

#endif // MOONWALK_APPS_EMERGING_HH
