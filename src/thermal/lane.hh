/**
 * @file
 * Ducted-lane thermal model: dies with heatsinks in series along a lane,
 * a dedicated fan per lane (paper Section 3/5.1).  Optimizes the
 * heatsink (fin count, fin thickness, base thickness — Section 5.1)
 * for each (die area, dies-per-lane) pair and reports the maximum
 * power each die may dissipate without exceeding the junction limit.
 */
#ifndef MOONWALK_THERMAL_LANE_HH
#define MOONWALK_THERMAL_LANE_HH

#include <cstdint>
#include <map>
#include <utility>

#include "thermal/fan.hh"
#include "thermal/heatsink.hh"

namespace moonwalk::thermal {

/**
 * Fixed lane geometry and environment.  Defaults model a 1U server
 * with 8 lanes across a 19-inch chassis.
 */
struct LaneEnvironment
{
    double duct_width_m = 0.045;    ///< heatsink width across the duct
    double duct_height_m = 0.032;   ///< fin + base height envelope
    double lane_length_m = 0.400;   ///< usable PCB length per lane
    double ambient_c = 22.0;        ///< cold-aisle inlet temperature
    double tj_max_c = 90.0;         ///< junction temperature limit
    Fan fan;                        ///< one fan per lane
};

/**
 * Result of solving one lane configuration.
 */
struct LaneThermalResult
{
    /** Highest uniform per-die power (W) meeting the junction limit
     *  at the last (hottest-inlet) die of the lane. */
    double max_power_per_die_w = 0.0;
    /** Lane airflow at the fan/system balance point (m^3/s). */
    double airflow_m3s = 0.0;
    /** Junction-to-local-air resistance of the optimized sink (K/W). */
    double r_junction_air = 0.0;
    /** Optimized heatsink geometry. */
    HeatSinkGeometry heatsink;
    /** Fan electrical power at the operating point (W, per lane). */
    double fan_power_w = 0.0;
    /** Manufacturing cost of one heatsink ($). */
    double heatsink_unit_cost = 0.0;
};

/**
 * Lane thermal solver with heatsink optimization.
 *
 * Results are memoized per (dies-per-lane, die-area) pair, since the
 * design-space explorer revisits identical thermal subproblems for
 * every voltage step.
 */
class LaneThermalModel
{
  public:
    explicit LaneThermalModel(LaneEnvironment env = {})
        : env_(env)
    {}

    const LaneEnvironment &environment() const { return env_; }

    /**
     * Optimize the heatsink and return thermal limits for
     * @p dies_per_lane dies of @p die_area_mm2 each.
     */
    const LaneThermalResult &solve(int dies_per_lane,
                                   double die_area_mm2) const;

    /** Largest number of dies that physically fit in the lane given
     *  the die edge plus @p extra_pitch_mm of per-die board space
     *  (package margin, DRAM chips, ...). */
    int maxDiesPerLane(double die_area_mm2,
                       double extra_pitch_mm = 4.0) const;

    // Solve-cache accounting, for sweep observability: solve() calls
    // served from the memo vs full heatsink optimizations run.
    uint64_t cacheHits() const { return cache_hits_; }
    uint64_t cacheMisses() const { return cache_misses_; }
    size_t cacheSize() const { return cache_.size(); }

  private:
    LaneThermalResult solveUncached(int dies_per_lane,
                                    double die_area_mm2) const;

    LaneEnvironment env_;
    mutable std::map<std::pair<int, long>, LaneThermalResult> cache_;
    mutable uint64_t cache_hits_ = 0;
    mutable uint64_t cache_misses_ = 0;
};

} // namespace moonwalk::thermal

#endif // MOONWALK_THERMAL_LANE_HH
