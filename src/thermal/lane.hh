/**
 * @file
 * Ducted-lane thermal model: dies with heatsinks in series along a lane,
 * a dedicated fan per lane (paper Section 3/5.1).  Optimizes the
 * heatsink (fin count, fin thickness, base thickness — Section 5.1)
 * for each (die area, dies-per-lane) pair and reports the maximum
 * power each die may dissipate without exceeding the junction limit.
 */
#ifndef MOONWALK_THERMAL_LANE_HH
#define MOONWALK_THERMAL_LANE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <utility>

#include "thermal/fan.hh"
#include "thermal/heatsink.hh"

namespace moonwalk::thermal {

/**
 * Fixed lane geometry and environment.  Defaults model a 1U server
 * with 8 lanes across a 19-inch chassis.
 */
struct LaneEnvironment
{
    double duct_width_m = 0.045;    ///< heatsink width across the duct
    double duct_height_m = 0.032;   ///< fin + base height envelope
    double lane_length_m = 0.400;   ///< usable PCB length per lane
    double ambient_c = 22.0;        ///< cold-aisle inlet temperature
    double tj_max_c = 90.0;         ///< junction temperature limit
    Fan fan;                        ///< one fan per lane
};

/**
 * Result of solving one lane configuration.
 */
struct LaneThermalResult
{
    /** Highest uniform per-die power (W) meeting the junction limit
     *  at the last (hottest-inlet) die of the lane. */
    double max_power_per_die_w = 0.0;
    /** Lane airflow at the fan/system balance point (m^3/s). */
    double airflow_m3s = 0.0;
    /** Junction-to-local-air resistance of the optimized sink (K/W). */
    double r_junction_air = 0.0;
    /** Optimized heatsink geometry. */
    HeatSinkGeometry heatsink;
    /** Fan electrical power at the operating point (W, per lane). */
    double fan_power_w = 0.0;
    /** Manufacturing cost of one heatsink ($). */
    double heatsink_unit_cost = 0.0;
};

/**
 * Lane thermal solver with heatsink optimization.
 *
 * Results are memoized per (dies-per-lane, die-area) pair, since the
 * design-space explorer revisits identical thermal subproblems for
 * every voltage step.
 *
 * THREADING CONTRACT (clone-per-worker): the memo cache behind the
 * const solve() method is unsynchronized, so one instance must only
 * ever be solved from a single thread.  Parallel sweeps give each
 * worker thread its own copy (see exec::WorkerLocal); copying is the
 * supported way to hand the model to another thread.  A copy inherits
 * the source's warm cache but resets its hit/miss statistics and its
 * thread affinity.  solve() enforces the contract with a cheap atomic
 * owner-thread check and panics on a cross-thread call.  The hit/miss
 * statistics themselves are relaxed atomics, so aggregating them from
 * another thread (the explorer's metrics epilogue reads every worker
 * clone while siblings still solve) is safe, if only approximately
 * point-in-time.
 */
class LaneThermalModel
{
  public:
    explicit LaneThermalModel(LaneEnvironment env = {})
        : env_(env)
    {}

    /** Clone for another worker: warm cache, fresh stats/affinity. */
    LaneThermalModel(const LaneThermalModel &other)
        : env_(other.env_), cache_(other.cache_)
    {}

    LaneThermalModel &operator=(const LaneThermalModel &other)
    {
        if (this != &other) {
            env_ = other.env_;
            cache_ = other.cache_;
            cache_hits_.store(0, std::memory_order_relaxed);
            cache_misses_.store(0, std::memory_order_relaxed);
            owner_.store(std::thread::id{},
                         std::memory_order_relaxed);
        }
        return *this;
    }

    const LaneEnvironment &environment() const { return env_; }

    /**
     * Optimize the heatsink and return thermal limits for
     * @p dies_per_lane dies of @p die_area_mm2 each.
     */
    const LaneThermalResult &solve(int dies_per_lane,
                                   double die_area_mm2) const;

    /** Largest number of dies that physically fit in the lane given
     *  the die edge plus @p extra_pitch_mm of per-die board space
     *  (package margin, DRAM chips, ...). */
    int maxDiesPerLane(double die_area_mm2,
                       double extra_pitch_mm = 4.0) const;

    // Solve-cache accounting, for sweep observability: solve() calls
    // served from the memo vs full heatsink optimizations run.  Safe
    // to read from any thread while the owner solves (relaxed loads).
    uint64_t cacheHits() const
    {
        return cache_hits_.load(std::memory_order_relaxed);
    }
    uint64_t cacheMisses() const
    {
        return cache_misses_.load(std::memory_order_relaxed);
    }
    size_t cacheSize() const { return cache_.size(); }

  private:
    LaneThermalResult solveUncached(int dies_per_lane,
                                    double die_area_mm2) const;
    /** Claim-or-verify the owning thread; panics on a second thread
     *  touching the unsynchronized solve cache. */
    void checkOwnerThread() const;

    LaneEnvironment env_;
    mutable std::map<std::pair<int, long>, LaneThermalResult> cache_;
    // Atomic (unlike cache_) so cross-thread stat aggregation during a
    // sweep is race-free; relaxed everywhere, they are only counters.
    mutable std::atomic<uint64_t> cache_hits_{0};
    mutable std::atomic<uint64_t> cache_misses_{0};
    /** First thread to call solve(); id{} until then. */
    mutable std::atomic<std::thread::id> owner_{};
};

} // namespace moonwalk::thermal

#endif // MOONWALK_THERMAL_LANE_HH
