/**
 * @file
 * Fan model: a quadratic pressure-flow curve typical of high-static-
 * pressure 1U server fans, with electrical power and unit cost.
 */
#ifndef MOONWALK_THERMAL_FAN_HH
#define MOONWALK_THERMAL_FAN_HH

#include <functional>

namespace moonwalk::thermal {

/**
 * A ducted lane fan (each lane has a dedicated fan, Section 3).
 *
 * The pressure available at volumetric flow Q follows the standard
 * quadratic approximation dP(Q) = p_max * (1 - (Q/q_max)^2).
 */
struct Fan
{
    /** Free-flow volumetric rate (m^3/s). Default models a dual
     *  counter-rotating 40mm server fan pair. */
    double q_max = 0.020;
    /** Stalled static pressure (Pa). */
    double p_max = 800.0;
    /** Aerodynamic efficiency (electrical -> air power). */
    double efficiency = 0.25;
    /** Unit cost ($) per lane fan assembly. */
    double unit_cost = 20.0;

    /** Static pressure (Pa) available at flow @p q (m^3/s). */
    double pressureAt(double q) const
    {
        if (q >= q_max)
            return 0.0;
        const double r = q / q_max;
        return p_max * (1.0 - r * r);
    }

    /**
     * Operating flow (m^3/s) against a monotonically increasing system
     * impedance @p system_dp(Q) -> Pa, found by bisection.
     */
    double operatingFlow(const std::function<double(double)> &system_dp)
        const;

    /** Electrical power (W) drawn when moving flow @p q against the
     *  fan's own pressure at that flow. */
    double electricalPowerAt(double q) const
    {
        return pressureAt(q) * q / efficiency;
    }
};

} // namespace moonwalk::thermal

#endif // MOONWALK_THERMAL_FAN_HH
