#include "thermal/heatsink.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "thermal/air.hh"
#include "util/error.hh"

namespace moonwalk::thermal {

HeatSinkPerformance
evaluateHeatSink(const HeatSinkGeometry &geom, double q_m3s,
                 double die_area_m2)
{
    if (!geom.valid())
        fatal("invalid heatsink geometry");
    if (q_m3s <= 0.0 || die_area_m2 <= 0.0)
        fatal("heatsink evaluation needs positive flow and die area");

    HeatSinkPerformance perf;

    const double gap = geom.finGap();
    const double area_flow = geom.flowArea();
    const double v = q_m3s / area_flow;
    perf.air_velocity = v;

    // Hydraulic diameter of one rectangular fin channel.
    const double dh = 2.0 * gap * geom.fin_height /
        (gap + geom.fin_height);
    const double re = v * dh / kAirNu;

    // -- Pressure drop: laminar channel friction + inlet/outlet loss.
    const double dyn = 0.5 * kAirDensity * v * v;
    double friction;
    if (re < 2300.0) {
        friction = 96.0 / std::max(re, 1.0);
    } else {
        friction = 0.316 / std::pow(re, 0.25);  // Blasius, turbulent
    }
    const double k_minor = 0.6;  // contraction + expansion
    perf.pressure_drop =
        (friction * geom.length / dh + k_minor) * dyn;

    // -- Convection: developing laminar flow between parallel plates;
    //    constant-flux Nusselt with a Graetz entrance correction.
    const double gz = re * kAirPr * dh / geom.length;
    const double nu = 8.23 +
        0.03 * gz / (1.0 + 0.016 * std::pow(gz, 2.0 / 3.0));
    const double h = nu * kAirK / dh;

    // Fin efficiency for straight rectangular fins.
    const double m = std::sqrt(
        2.0 * h / (kAluminumK * geom.fin_thickness));
    const double mh = m * geom.fin_height;
    const double eta = mh > 1e-9 ? std::tanh(mh) / mh : 1.0;

    const double area_fins =
        2.0 * geom.fin_count * geom.fin_height * geom.length;
    const double area_base_exposed =
        (geom.fin_count - 1) * gap * geom.length;
    const double ha = h * (eta * area_fins + area_base_exposed);

    // Air-saturation effectiveness: the air warms as it crosses the
    // sink, capping extractable heat at m_dot*cp*(T_base - T_in).
    const double mdot_cp = q_m3s * kAirRhoCp;
    const double eff = 1.0 - std::exp(-ha / mdot_cp);
    const double r_conv = 1.0 / (mdot_cp * eff);

    // -- Conduction stack under the fins.
    const double base_area = geom.width * geom.length;
    const double r_base =
        geom.base_thickness / (kAluminumK * base_area);

    // Spreading from the die footprint to the base plate
    // (dimensionless closed-form approximation).
    const double die_area = std::min(die_area_m2, base_area);
    const double eps = std::sqrt(die_area / base_area);
    const double r_die_eq = std::sqrt(die_area / std::numbers::pi);
    const double r_spread = std::pow(1.0 - eps, 1.5) /
        (2.0 * kAluminumK * std::numbers::pi * r_die_eq);

    // Thermal interface material: 0.1mm of 3 W/(m K) grease.
    const double r_tim = 0.1e-3 / (3.0 * die_area);

    // Junction-to-case through the silicon and lid; shrinks with die
    // area (reference 0.05 K/W at 500 mm^2).
    const double r_jc = 0.05 * (500e-6 / die_area);

    perf.r_junction_air = r_conv + r_base + r_spread + r_tim + r_jc;
    return perf;
}

double
heatSinkCost(const HeatSinkGeometry &geom)
{
    // Extruded aluminum: fixed handling cost plus volume-proportional
    // material + machining.
    const double volume_cm3 = geom.metalVolume() * 1e6;
    return 1.0 + 0.06 * volume_cm3;
}

} // namespace moonwalk::thermal
