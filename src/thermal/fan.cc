#include "thermal/fan.hh"

namespace moonwalk::thermal {

double
Fan::operatingFlow(const std::function<double(double)> &system_dp) const
{
    // The fan curve decreases with Q while the system impedance
    // increases, so the balance point is unique; bisect on
    // fan(Q) - system(Q).
    double lo = 0.0;
    double hi = q_max;
    for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (pressureAt(mid) > system_dp(mid))
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace moonwalk::thermal
