/**
 * @file
 * Parallel-plate-fin heatsink model.
 *
 * Substitutes for the paper's CFD runs (see DESIGN.md): given a fin
 * geometry and an airflow, computes junction-to-air thermal resistance
 * (convection with developing-flow Nusselt correction, fin efficiency,
 * air-saturation effectiveness, base conduction, spreading, TIM and
 * junction-to-case terms) and the pressure drop the heatsink presents
 * to the lane fan.
 */
#ifndef MOONWALK_THERMAL_HEATSINK_HH
#define MOONWALK_THERMAL_HEATSINK_HH

namespace moonwalk::thermal {

/**
 * Geometry of one die's heatsink inside the lane duct.  All lengths in
 * meters.  Airflow travels along @c length.
 */
struct HeatSinkGeometry
{
    double width = 0.045;          ///< across the duct
    double length = 0.027;         ///< along the airflow (die pitch)
    double base_thickness = 0.005;
    double fin_height = 0.025;
    int fin_count = 24;
    double fin_thickness = 0.0006;

    /** Gap between adjacent fins (m). */
    double finGap() const
    {
        if (fin_count < 2)
            return width;
        return (width - fin_count * fin_thickness) / (fin_count - 1);
    }

    /** True when fins fit in the width with positive gaps. */
    bool valid() const
    {
        return fin_count >= 2 && finGap() > 0.2e-3 && fin_height > 0 &&
            base_thickness > 0 && fin_thickness > 0;
    }

    /** Open frontal flow area between fins (m^2). */
    double flowArea() const
    {
        return (fin_count - 1) * finGap() * fin_height;
    }

    /** Approximate metal volume (m^3), for the cost model. */
    double metalVolume() const
    {
        return width * length * base_thickness +
            fin_count * fin_thickness * fin_height * length;
    }
};

/**
 * Thermal/hydraulic evaluation of one heatsink at a given lane flow.
 */
struct HeatSinkPerformance
{
    /** Junction-to-local-air thermal resistance (K/W). */
    double r_junction_air = 0.0;
    /** Pressure drop across this heatsink (Pa). */
    double pressure_drop = 0.0;
    /** Mean air velocity between fins (m/s). */
    double air_velocity = 0.0;
};

/**
 * Evaluate @p geom cooled by volumetric flow @p q_m3s, for a die of
 * @p die_area_m2 mounted under the base center.
 */
HeatSinkPerformance evaluateHeatSink(const HeatSinkGeometry &geom,
                                     double q_m3s, double die_area_m2);

/** Unit manufacturing cost ($) of an extruded aluminum heatsink. */
double heatSinkCost(const HeatSinkGeometry &geom);

} // namespace moonwalk::thermal

#endif // MOONWALK_THERMAL_HEATSINK_HH
