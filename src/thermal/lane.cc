#include "thermal/lane.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "thermal/air.hh"
#include "util/error.hh"

namespace moonwalk::thermal {

int
LaneThermalModel::maxDiesPerLane(double die_area_mm2,
                                 double extra_pitch_mm) const
{
    const double edge_mm = std::sqrt(die_area_mm2);
    const double pitch_mm = edge_mm + extra_pitch_mm;
    const int fit =
        static_cast<int>(env_.lane_length_m * 1e3 / pitch_mm);
    return std::max(0, fit);
}

void
LaneThermalModel::checkOwnerThread() const
{
    // Two relaxed-ish atomics per solve -- noise next to the cache
    // lookup -- buys an always-on guard against accidentally sharing
    // one solve cache between sweep workers (the clone-per-worker
    // contract in the header).
    const auto self = std::this_thread::get_id();
    std::thread::id expected{};
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
        return;  // first solve: claim ownership
    }
    if (expected != self) {
        panic("LaneThermalModel::solve called from a second thread; "
              "clone the model per worker instead of sharing it");
    }
}

const LaneThermalResult &
LaneThermalModel::solve(int dies_per_lane, double die_area_mm2) const
{
    checkOwnerThread();
    if (dies_per_lane < 1)
        fatal("lane needs at least one die, got ", dies_per_lane);
    if (die_area_mm2 <= 0.0)
        fatal("die area must be positive, got ", die_area_mm2);

    // Quantize the die area to 20 mm^2 buckets: thermal resistance
    // varies slowly with area, and the explorer revisits thousands of
    // nearby areas per sweep.
    const long bucket = std::max(1L, std::lround(die_area_mm2 / 20.0));
    const auto key = std::make_pair(dies_per_lane, bucket);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
        cache_misses_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metricsEnabled()) [[unlikely]] {
            // Only uncached solves are timed: hits are map lookups and
            // would drown the histogram in sub-microsecond samples.
            const uint64_t t0 = obs::monotonicNowNs();
            it = cache_.emplace(
                key,
                solveUncached(dies_per_lane, bucket * 20.0)).first;
            obs::metrics().histogram("thermal.solve.ns")
                .record(static_cast<double>(
                    obs::monotonicNowNs() - t0));
        } else {
            it = cache_.emplace(
                key,
                solveUncached(dies_per_lane, bucket * 20.0)).first;
        }
    } else {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return it->second;
}

LaneThermalResult
LaneThermalModel::solveUncached(int dies_per_lane,
                                double die_area_mm2) const
{
    if (dies_per_lane < 1)
        fatal("lane needs at least one die, got ", dies_per_lane);
    if (die_area_mm2 <= 0.0)
        fatal("die area must be positive");

    const double die_area_m2 = die_area_mm2 * 1e-6;

    // The heatsink occupies the die's share of the lane, capped at a
    // practical extrusion length.
    const double pitch_m = env_.lane_length_m / dies_per_lane;
    const double sink_length =
        std::clamp(pitch_m - 2e-3, 0.010, 0.050);

    LaneThermalResult best;

    // Section 5.1: "the optimal heatsink is selected by optimizing fin
    // count and thickness as well as base thickness."
    static constexpr int kFinCounts[] = {8, 12, 16, 20, 24, 28, 32,
                                         40, 48};
    static constexpr double kFinThk[] = {0.4e-3, 0.6e-3, 0.8e-3};
    static constexpr double kBaseThk[] = {3e-3, 5e-3, 7e-3};

    for (int fins : kFinCounts) {
        for (double t_fin : kFinThk) {
            for (double t_base : kBaseThk) {
                HeatSinkGeometry g;
                g.width = env_.duct_width_m;
                g.length = sink_length;
                g.base_thickness = t_base;
                g.fin_height = env_.duct_height_m - t_base;
                g.fin_count = fins;
                g.fin_thickness = t_fin;
                if (!g.valid())
                    continue;

                // Lane impedance: all heatsinks in series.
                auto system_dp = [&](double q) {
                    return dies_per_lane *
                        evaluateHeatSink(g, q, die_area_m2)
                        .pressure_drop;
                };
                const double q = env_.fan.operatingFlow(system_dp);
                if (q <= 1e-6)
                    continue;

                const auto perf = evaluateHeatSink(g, q, die_area_m2);
                const double mdot_cp = q * kAirRhoCp;

                // Uniform per-die power P: the last die of the lane
                // sees air preheated by its n-1 upstream neighbors,
                //   Tj = Tamb + (n-1) P / (mdot cp) + P R  <=  Tj_max.
                const double dt = env_.tj_max_c - env_.ambient_c;
                const double p_max = dt /
                    (perf.r_junction_air +
                     (dies_per_lane - 1) / mdot_cp);

                if (p_max > best.max_power_per_die_w) {
                    best.max_power_per_die_w = p_max;
                    best.airflow_m3s = q;
                    best.r_junction_air = perf.r_junction_air;
                    best.heatsink = g;
                    best.fan_power_w = env_.fan.electricalPowerAt(q);
                    best.heatsink_unit_cost = heatSinkCost(g);
                }
            }
        }
    }

    if (best.max_power_per_die_w <= 0.0) {
        fatal("no feasible heatsink for ", dies_per_lane, " dies of ",
              die_area_mm2, " mm^2");
    }
    return best;
}

} // namespace moonwalk::thermal
