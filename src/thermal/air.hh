/**
 * @file
 * Air and material properties used by the thermal model (SI units,
 * evaluated at ~40C, typical of server exhaust).
 */
#ifndef MOONWALK_THERMAL_AIR_HH
#define MOONWALK_THERMAL_AIR_HH

namespace moonwalk::thermal {

/** Air density (kg/m^3). */
constexpr double kAirDensity = 1.10;
/** Air specific heat (J/(kg K)). */
constexpr double kAirCp = 1006.0;
/** Air thermal conductivity (W/(m K)). */
constexpr double kAirK = 0.027;
/** Air kinematic viscosity (m^2/s). */
constexpr double kAirNu = 1.7e-5;
/** Air Prandtl number. */
constexpr double kAirPr = 0.71;

/** Aluminum (heatsink) thermal conductivity (W/(m K)). */
constexpr double kAluminumK = 200.0;

/** Volumetric heat capacity rho*cp (J/(m^3 K)). */
constexpr double kAirRhoCp = kAirDensity * kAirCp;

} // namespace moonwalk::thermal

#endif // MOONWALK_THERMAL_AIR_HH
