#include "check/check.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <ostream>
#include <set>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "check/generator.hh"
#include "dse/pareto.hh"
#include "tech/database.hh"
#include "util/error.hh"
#include "util/math.hh"

namespace moonwalk::check {

namespace {

/**
 * Full-precision digest of an exploration, including the retained
 * all_feasible list: any divergence between two evaluation paths —
 * one ULP in one metric, one reordered point, one extra duplicate —
 * shows up as a string mismatch.
 */
std::string
digest(const dse::ExplorationResult &r)
{
    std::ostringstream os;
    os.precision(17);
    const auto point = [&os](const dse::DesignPoint &p) {
        os << p.config.rcas_per_die << ' ' << p.config.dies_per_lane
           << ' ' << p.config.drams_per_die << ' ' << p.config.vdd
           << ' ' << p.config.dark_silicon_fraction << ' '
           << p.cost_per_ops << ' ' << p.watts_per_ops << ' '
           << p.tco_per_ops << '\n';
    };
    os << r.evaluated << ' ' << r.feasible << '\n';
    if (r.tco_optimal)
        point(*r.tco_optimal);
    for (const auto &p : r.pareto)
        point(p);
    for (const auto &p : r.all_feasible)
        point(p);
    return os.str();
}

/** The identity of a swept configuration, bit-exact in the doubles. */
std::string
designTuple(const dse::DesignPoint &p)
{
    const auto bits = [](double v) {
        uint64_t b;
        std::memcpy(&b, &v, sizeof(b));
        return b;
    };
    std::ostringstream os;
    os << p.config.rcas_per_die << '/' << p.config.dies_per_lane << '/'
       << p.config.drams_per_die << '/'
       << bits(p.config.dark_silicon_fraction) << '/'
       << bits(p.config.vdd);
    return os.str();
}

/** Collects failures for one seed and owns its repro strings. */
class SeedChecker
{
  public:
    SeedChecker(const GeneratedCase &c, CheckReport &report)
        : case_(c), report_(report)
    {
        std::ostringstream repro;
        repro << "moonwalk check --seeds 1 --seed " << c.seed;
        repro_ = repro.str();
    }

    bool failed() const { return failed_; }

    /** Record one invariant evaluation; @p ok == false files a
     *  failure carrying the seed, detail, and serialized case. */
    void expect(bool ok, const std::string &invariant,
                const std::string &detail)
    {
        ++report_.invariants_checked;
        if (ok)
            return;
        failed_ = true;
        report_.failures.push_back({case_.seed, invariant, detail,
                                    repro_,
                                    describeCase(case_).dump(2)});
    }

  private:
    const GeneratedCase &case_;
    CheckReport &report_;
    std::string repro_;
    bool failed_ = false;
};

dse::ExplorerOptions
withExecution(const dse::ExplorerOptions &base, int threads, bool cache,
              bool keep = true)
{
    dse::ExplorerOptions o = base;
    o.max_threads = threads;
    o.cache_sweeps = cache;
    o.keep_feasible_points = keep;
    return o;
}

/** The memo key must move when any result-shaping knob moves; a knob
 *  the key ignores aliases two different sweeps to one entry. */
void
checkKeySensitivity(SeedChecker &check, const GeneratedCase &c,
                    const dse::ServerEvaluator &ev)
{
    const auto opts = withExecution(c.explorer, 1, true);
    const dse::DesignSpaceExplorer base{opts, ev};
    const std::string key = base.sweepKey(c.rca, c.node);

    const auto expectDiffers = [&](const char *what,
                                   const std::string &other) {
        check.expect(other != key, "cache-key-sensitivity",
                     std::string("sweep cache key ignores ") + what);
    };

    {
        auto perturbed = c.evaluator;
        perturbed.max_dies_per_lane += 1;
        dse::ServerEvaluator ev2(tech::defaultTechDatabase(), {}, {},
                                 {}, perturbed);
        const dse::DesignSpaceExplorer ex{opts, ev2};
        expectDiffers("EvaluatorOptions::max_dies_per_lane",
                      ex.sweepKey(c.rca, c.node));
    }
    {
        auto perturbed = c.evaluator;
        perturbed.die_board_margin_mm *= 1.5;
        dse::ServerEvaluator ev2(tech::defaultTechDatabase(), {}, {},
                                 {}, perturbed);
        const dse::DesignSpaceExplorer ex{opts, ev2};
        expectDiffers("EvaluatorOptions::die_board_margin_mm",
                      ex.sweepKey(c.rca, c.node));
    }
    {
        auto o2 = opts;
        o2.voltage_steps += 1;
        const dse::DesignSpaceExplorer ex{o2, ev};
        expectDiffers("ExplorerOptions::voltage_steps",
                      ex.sweepKey(c.rca, c.node));
    }
    {
        auto rca2 = c.rca;
        rca2.energy_per_op_28_j *= 1.0000001;
        expectDiffers("RcaSpec::energy_per_op_28_j",
                      base.sweepKey(rca2, c.node));
    }
}

/** Feasibility must be monotone across the bisected boundary: every
 *  voltage at or below v_hi feasible, every voltage above infeasible. */
void
checkMonotoneFeasibility(SeedChecker &check, const GeneratedCase &c,
                         const dse::DesignSpaceExplorer &explorer,
                         const dse::ExplorationResult &result)
{
    if (c.rca.sla_fixed_freq_mhz > 0.0 || !result.tco_optimal)
        return;  // SLA pins the voltage; no bisection runs

    const auto &tn =
        explorer.evaluator().scaling().database().node(c.node);
    const auto &cfg0 = result.tco_optimal->config;
    const double v_hi = explorer.maxFeasibleVoltage(
        c.rca, c.node, cfg0.rcas_per_die, cfg0.dies_per_lane,
        cfg0.drams_per_die, cfg0.dark_silicon_fraction);
    check.expect(v_hi >= tn.vdd_min, "monotone-feasibility",
                 "boundary search found no feasible voltage for a "
                 "configuration the sweep proved feasible");
    if (v_hi < tn.vdd_min)
        return;

    arch::ServerConfig cfg = cfg0;
    const auto feasibleAt = [&](double vdd) {
        cfg.vdd = vdd;
        return explorer.evaluator().evaluate(c.rca, cfg).feasible();
    };

    for (double vdd : linspace(tn.vdd_min, v_hi, 4)) {
        std::ostringstream detail;
        detail.precision(17);
        detail << "vdd " << vdd << " below boundary " << v_hi
               << " is infeasible";
        check.expect(feasibleAt(vdd), "monotone-feasibility",
                     detail.str());
    }

    // Margin above the bisection's own resolution, so the probes sit
    // clearly past the boundary rather than inside its uncertainty.
    const double eps = (tn.vddMax() - tn.vdd_min) * 1e-6;
    if (v_hi + eps >= tn.vddMax())
        return;  // feasible all the way up; nothing above to probe
    for (double vdd : linspace(v_hi + eps, tn.vddMax(), 4)) {
        std::ostringstream detail;
        detail.precision(17);
        detail << "vdd " << vdd << " above boundary " << v_hi
               << " is feasible again";
        check.expect(!feasibleAt(vdd), "monotone-feasibility",
                     detail.str());
    }
}

void
checkParetoValidity(SeedChecker &check,
                    const dse::ExplorationResult &result)
{
    check.expect(isParetoFront(result.pareto), "pareto-validity",
                 "a Pareto front point dominates another");
    check.expect(result.feasible == result.all_feasible.size(),
                 "pareto-validity",
                 "result.feasible disagrees with the retained "
                 "feasible-point list");
    check.expect(result.evaluated >= result.feasible,
                 "pareto-validity",
                 "more feasible points than evaluations");

    std::set<std::string> seen;
    size_t duplicates = 0;
    for (const auto &p : result.all_feasible)
        if (!seen.insert(designTuple(p)).second)
            ++duplicates;
    std::ostringstream dup;
    dup << duplicates
        << " duplicate (rcas, dies, drams, dark, vdd) design tuples";
    check.expect(duplicates == 0, "pareto-validity", dup.str());

    if (!result.tco_optimal)
        return;
    double best_front = 1e300;
    for (const auto &p : result.pareto)
        best_front = std::min(best_front, p.tco_per_ops);
    double best_all = 1e300;
    for (const auto &p : result.all_feasible)
        best_all = std::min(best_all, p.tco_per_ops);
    const double opt = result.tco_optimal->tco_per_ops;
    check.expect(opt == best_all, "pareto-validity",
                 "tco_optimal is not the minimum over all feasible "
                 "points");
    // TCO is linear in the two Pareto metrics, so the optimum lies on
    // (or numerically within a whisker of) the front.
    check.expect(opt <= best_front * (1.0 + 1e-9), "pareto-validity",
                 "tco_optimal lies above the Pareto front");
}

void
checkSeed(uint64_t seed, CheckReport &report)
{
    const GeneratedCase c = generateCase(seed);
    SeedChecker check(c, report);

    const dse::ServerEvaluator ev(tech::defaultTechDatabase(), {}, {},
                                  {}, c.evaluator);

    // Serial uncached baseline: the reference every other evaluation
    // path must match byte-for-byte.
    const dse::DesignSpaceExplorer serial{
        withExecution(c.explorer, 1, false), ev};
    const auto baseline = serial.explore(c.rca, c.node);
    const std::string want = digest(baseline);

    // (a) Cache transparency: cold miss and warm replay both match.
    {
        const dse::DesignSpaceExplorer cached{
            withExecution(c.explorer, 1, true), ev};
        check.expect(digest(cached.explore(c.rca, c.node)) == want,
                     "cache-transparency",
                     "cache_sweeps=on (cold) differs from cache off");
        check.expect(digest(cached.explore(c.rca, c.node)) == want,
                     "cache-transparency",
                     "warm cache replay differs from cache off");
        check.expect(cached.sweepCacheHits() == 1,
                     "cache-transparency",
                     "repeat exploration was not served from cache");
    }
    checkKeySensitivity(check, c, ev);

    // (f) Disk-cache transparency: a cold write-through run, warm
    // replays under 1/2/8 threads, and the cache-disabled baseline
    // must all be byte-identical.  The warm explorers are fresh
    // instances, so their in-memory memo is empty and a matching
    // digest proves the result really travelled through the disk
    // entry (decode of the exact bit patterns included).
    {
        namespace fs = std::filesystem;
        std::error_code ec;
        std::ostringstream dirname;
        dirname << "moonwalk-check-" << ::getpid() << "-" << seed;
        const fs::path dir = fs::temp_directory_path(ec) / dirname.str();
        if (!ec)
            fs::remove_all(dir, ec);  // stale dir from a killed run
        fs::create_directories(dir, ec);
        if (!ec) {
            auto diskOpts = [&](int threads) {
                auto o = withExecution(c.explorer, threads, true);
                o.cache_dir = dir.string();
                return o;
            };
            {
                const dse::DesignSpaceExplorer cold{diskOpts(1), ev};
                check.expect(
                    digest(cold.explore(c.rca, c.node)) == want,
                    "disk-cache-transparency",
                    "cold disk-cache run differs from cache off");
                check.expect(cold.diskCacheInserts() == 1,
                             "disk-cache-transparency",
                             "cold run did not publish a disk entry");
            }
            for (int threads : {1, 2, 8}) {
                const dse::DesignSpaceExplorer warm{diskOpts(threads),
                                                    ev};
                std::ostringstream detail;
                detail << "warm disk-cache replay at max_threads="
                       << threads << " differs from cache off";
                check.expect(
                    digest(warm.explore(c.rca, c.node)) == want,
                    "disk-cache-transparency", detail.str());
                check.expect(warm.diskCacheHits() == 1,
                             "disk-cache-transparency",
                             "replay was not served from the disk "
                             "entry");
            }
            fs::remove_all(dir, ec);
        }
    }

    // (b) Parallel determinism, with (e) accounting measured around
    // the 2-thread run so the counter also covers worker clones.
    {
        const dse::DesignSpaceExplorer two{
            withExecution(c.explorer, 2, false), ev};
        const uint64_t calls_before = ev.evaluateCalls();
        const auto r2 = two.explore(c.rca, c.node);
        const uint64_t calls = ev.evaluateCalls() - calls_before;
        check.expect(digest(r2) == want, "parallel-determinism-2",
                     "max_threads=2 differs from serial");
        std::ostringstream detail;
        detail << "result.evaluated=" << r2.evaluated
               << " but the evaluator saw " << calls << " calls";
        check.expect(calls == r2.evaluated, "accounting",
                     detail.str());

        const dse::DesignSpaceExplorer eight{
            withExecution(c.explorer, 8, false), ev};
        check.expect(digest(eight.explore(c.rca, c.node)) == want,
                     "parallel-determinism-8",
                     "max_threads=8 differs from serial");
    }

    // (c) + (d) on the baseline result.
    checkMonotoneFeasibility(check, c, serial, baseline);
    checkParetoValidity(check, baseline);
}

} // namespace

CheckReport
runSelfCheck(const CheckOptions &options)
{
    CheckReport report;
    for (uint64_t i = 0; i < options.seeds; ++i) {
        const uint64_t seed = options.start_seed + i;
        const size_t failures_before = report.failures.size();
        try {
            checkSeed(seed, report);
        } catch (const ModelError &e) {
            const GeneratedCase c = generateCase(seed);
            std::ostringstream repro;
            repro << "moonwalk check --seeds 1 --seed " << seed;
            report.failures.push_back(
                {seed, "model-error",
                 std::string("unexpected ModelError: ") + e.what(),
                 repro.str(), describeCase(c).dump(2)});
        }
        ++report.seeds_run;
        if (options.progress) {
            const bool ok = report.failures.size() == failures_before;
            *options.progress << "seed " << seed << ": "
                              << (ok ? "ok" : "FAIL") << "\n";
        }
        if (options.stop_on_failure && !report.ok())
            break;
    }
    return report;
}

void
writeReport(std::ostream &os, const CheckReport &report)
{
    os << "self-check: " << report.seeds_run << " seeds, "
       << report.invariants_checked << " invariants, "
       << report.failures.size() << " failure"
       << (report.failures.size() == 1 ? "" : "s") << "\n";
    for (const auto &f : report.failures) {
        os << "\nFAIL [" << f.invariant << "] seed " << f.seed << "\n"
           << "  " << f.detail << "\n"
           << "  reproduce: " << f.repro << "\n"
           << "  case: " << f.case_json << "\n";
    }
}

} // namespace moonwalk::check
