/**
 * @file
 * Model self-check subsystem: a battery of differential invariants
 * run over seeded randomized inputs (see generator.hh), validating
 * that the design-space explorer's parallel, memoized hot path is
 * exactly equivalent to the straightforward serial computation.
 *
 * The paper's headline claims rest on explore() producing the same
 * optimum regardless of thread count, cache state, or sweep order;
 * frameworks in the same space (Chiplet Actuary, Monad) cross-check
 * independent evaluation paths for the same reason.  Invariants:
 *
 *  - cache transparency: explore() with cache_sweeps on and off, and
 *    a warm-cache replay, return byte-identical results — and the
 *    memo key distinguishes every result-shaping knob (explorer
 *    options, evaluator options, spec contents);
 *  - parallel determinism: max_threads 1, 2 and 8 agree bit-for-bit;
 *  - monotone feasibility: the voltage-bisection premise holds —
 *    feasibility never reappears above the boundary found by
 *    maxFeasibleVoltage, and holds everywhere below it;
 *  - Pareto validity: the front is mutually non-dominating, contains
 *    no duplicate design tuples, and the TCO optimum lies on it;
 *  - accounting: ExplorationResult::evaluated equals the evaluator's
 *    actual evaluate() call count (ServerEvaluator::evaluateCalls());
 *  - disk-cache transparency: with a persistent cache directory
 *    configured, a cold write-through run and warm replays under 1, 2
 *    and 8 threads are byte-identical (digest at precision 17) to the
 *    cache-disabled baseline, and the replays really are served from
 *    the disk entry.
 *
 * Every violation reports the seed plus the serialized case, so it
 * reproduces with `moonwalk check --seeds 1 --seed <seed>`.
 */
#ifndef MOONWALK_CHECK_CHECK_HH
#define MOONWALK_CHECK_CHECK_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace moonwalk::check {

/** Harness knobs. */
struct CheckOptions
{
    /** Number of consecutive seeds to run. */
    uint64_t seeds = 25;
    /** First seed (inclusive). */
    uint64_t start_seed = 1;
    /** Abort the run at the first failing seed. */
    bool stop_on_failure = false;
    /** When non-null, a one-line progress report per seed. */
    std::ostream *progress = nullptr;
};

/** One invariant violation, with everything needed to reproduce it. */
struct CheckFailure
{
    uint64_t seed = 0;
    /** Which invariant tripped (e.g. "parallel-determinism-8"). */
    std::string invariant;
    /** Human-readable expected-vs-actual description. */
    std::string detail;
    /** One command that reproduces the failure. */
    std::string repro;
    /** The serialized generated case (JSON). */
    std::string case_json;
};

/** Aggregate outcome of a self-check run. */
struct CheckReport
{
    uint64_t seeds_run = 0;
    uint64_t invariants_checked = 0;
    std::vector<CheckFailure> failures;

    bool ok() const { return failures.empty(); }
};

/** Run the battery over [start_seed, start_seed + seeds). */
CheckReport runSelfCheck(const CheckOptions &options = {});

/** Render @p report (summary plus each failure) to @p os. */
void writeReport(std::ostream &os, const CheckReport &report);

} // namespace moonwalk::check

#endif // MOONWALK_CHECK_CHECK_HH
