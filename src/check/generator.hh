/**
 * @file
 * Deterministic seeded test-case generator for the model self-check
 * harness (see check.hh).
 *
 * Each seed maps to one (RcaSpec, node, ExplorerOptions,
 * EvaluatorOptions) tuple: a real application anchor perturbed
 * multiplicatively so the generated spec stays inside the physical
 * envelope the models were built for, plus randomized sweep and
 * evaluator knobs.  Generation uses a self-contained SplitMix64
 * stream — never std::random distributions, whose output is not
 * specified across standard-library implementations — so a failing
 * seed reproduces bit-for-bit on any platform.
 */
#ifndef MOONWALK_CHECK_GENERATOR_HH
#define MOONWALK_CHECK_GENERATOR_HH

#include <cstdint>

#include "arch/rca.hh"
#include "dse/evaluator.hh"
#include "dse/explorer.hh"
#include "tech/node.hh"
#include "util/json.hh"

namespace moonwalk::check {

/**
 * SplitMix64 pseudo-random stream (Steele et al., the JDK
 * splittable-seed mixer): tiny, full-period over 2^64, and identical
 * on every platform and compiler.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    uint64_t next();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    int uniformInt(int lo, int hi);

    /** True with probability @p p. */
    bool chance(double p) { return uniform(0.0, 1.0) < p; }

  private:
    uint64_t state_;
};

/** One generated self-check input. */
struct GeneratedCase
{
    uint64_t seed = 0;
    /** Name of the application anchor the spec was perturbed from. */
    std::string base_app;
    arch::RcaSpec rca;
    tech::NodeId node = tech::NodeId::N28;
    dse::ExplorerOptions explorer;
    dse::EvaluatorOptions evaluator;
};

/** The deterministic seed -> case mapping. */
GeneratedCase generateCase(uint64_t seed);

/**
 * Serialize a case (spec contents included) as JSON, so an invariant
 * failure report carries everything needed to reproduce it without
 * re-running the generator.
 */
Json describeCase(const GeneratedCase &c);

} // namespace moonwalk::check

#endif // MOONWALK_CHECK_GENERATOR_HH
