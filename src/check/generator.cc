#include "check/generator.hh"

#include <cmath>

#include "apps/apps.hh"
#include "tech/database.hh"
#include "util/math.hh"

namespace moonwalk::check {

uint64_t
Rng::next()
{
    // SplitMix64: one additive step, two xor-shift-multiply mixes.
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
Rng::uniform(double lo, double hi)
{
    // 53 mantissa bits -> uniform in [0, 1) with full double precision.
    const double u =
        static_cast<double>(next() >> 11) * 0x1.0p-53;
    return lo + (hi - lo) * u;
}

int
Rng::uniformInt(int lo, int hi)
{
    const auto span = static_cast<uint64_t>(hi - lo + 1);
    return lo + static_cast<int>(next() % span);
}

GeneratedCase
generateCase(uint64_t seed)
{
    // Seed 0 would collapse SplitMix64's first outputs toward the
    // mixer constants; fold the seed through a fixed offset instead.
    Rng rng(seed * 0x2545f4914f6cdd1dULL + 0x9e3779b97f4a7c15ULL);

    GeneratedCase c;
    c.seed = seed;

    const auto apps = apps::allApps();
    const auto &base =
        apps[rng.uniformInt(0, static_cast<int>(apps.size()) - 1)];
    c.base_app = base.name();
    c.rca = base.rca;
    c.node = tech::kAllNodes[rng.uniformInt(0, tech::kNumNodes - 1)];

    // Perturb the spec multiplicatively around its anchor.  Factors in
    // [0.6, 1.6] keep every derived quantity (die area, power density,
    // DRAM demand) inside the envelope the evaluator's submodels are
    // calibrated for while still exercising genuinely different design
    // spaces per seed.
    auto scale = [&rng](double &field) {
        field *= rng.uniform(0.6, 1.6);
    };
    scale(c.rca.gate_count);
    scale(c.rca.f_nominal_28_mhz);
    scale(c.rca.energy_per_op_28_j);
    scale(c.rca.area_28_mm2);
    if (c.rca.bytes_per_op > 0.0)
        scale(c.rca.bytes_per_op);
    if (c.rca.offpcb_bytes_per_op > 0.0)
        scale(c.rca.offpcb_bytes_per_op);
    c.rca.energy_scaling_fraction =
        clamp(c.rca.energy_scaling_fraction * rng.uniform(0.7, 1.3),
              0.2, 1.0);
    if (!c.rca.allow_dark_silicon && c.rca.allowed_rcas_per_die.empty())
        c.rca.allow_dark_silicon = rng.chance(0.25);

    // Small-RCA-count regime, 40% of seeds: size the RCA so only a
    // handful fit the chosen node's reticle.  At small counts the
    // coarse geometric grid is dense (often exhaustive), which is
    // precisely where the local-refinement loop historically re-swept
    // grid candidates and emitted duplicate design points — keep that
    // regime well represented.
    if (c.rca.allowed_rcas_per_die.empty() && rng.chance(0.4)) {
        const auto &tn = tech::defaultTechDatabase().node(c.node);
        const double target =
            rng.uniformInt(2, 10) + rng.uniform(0.2, 0.8);
        c.rca.area_28_mm2 =
            tn.max_die_area_mm2 * tn.density_factor / target;
    }

    // Coarse sweep knobs: the harness runs several explorations per
    // seed, so each one must stay small.
    c.explorer.voltage_steps = rng.uniformInt(3, 6);
    c.explorer.rca_count_steps = rng.uniformInt(3, 6);
    c.explorer.max_drams_per_die = rng.uniformInt(1, 2);
    c.explorer.dark_fractions = {0.0};
    if (rng.chance(0.5))
        c.explorer.dark_fractions.push_back(rng.uniform(0.05, 0.25));
    c.explorer.max_threads = 1;

    // Evaluator policy knobs vary per seed: the sweep cache key must
    // distinguish them (invariant "cache transparency" fails loudly if
    // it does not), and small lane caps keep the sweeps fast.
    c.evaluator.max_dies_per_lane = rng.uniformInt(2, 6);
    c.evaluator.die_board_margin_mm = rng.uniform(1.0, 4.0);

    return c;
}

Json
describeCase(const GeneratedCase &c)
{
    Json spec = Json::object();
    spec.set("name", c.rca.name);
    spec.set("gate_count", c.rca.gate_count);
    spec.set("ops_per_cycle", c.rca.ops_per_cycle);
    spec.set("f_nominal_28_mhz", c.rca.f_nominal_28_mhz);
    spec.set("energy_per_op_28_j", c.rca.energy_per_op_28_j);
    spec.set("area_28_mm2", c.rca.area_28_mm2);
    spec.set("energy_scaling_fraction", c.rca.energy_scaling_fraction);
    spec.set("sla_fixed_freq_mhz", c.rca.sla_fixed_freq_mhz);
    spec.set("bytes_per_op", c.rca.bytes_per_op);
    spec.set("offpcb_bytes_per_op", c.rca.offpcb_bytes_per_op);
    spec.set("needs_high_speed_link", c.rca.needs_high_speed_link);
    spec.set("needs_lvds", c.rca.needs_lvds);
    spec.set("server_rca_multiple", c.rca.server_rca_multiple);
    spec.set("allow_dark_silicon", c.rca.allow_dark_silicon);
    Json grids = Json::array();
    for (int n : c.rca.allowed_rcas_per_die)
        grids.push(n);
    spec.set("allowed_rcas_per_die", std::move(grids));

    Json explorer = Json::object();
    explorer.set("voltage_steps", c.explorer.voltage_steps);
    explorer.set("rca_count_steps", c.explorer.rca_count_steps);
    explorer.set("max_drams_per_die", c.explorer.max_drams_per_die);
    Json darks = Json::array();
    for (double d : c.explorer.dark_fractions)
        darks.push(d);
    explorer.set("dark_fractions", std::move(darks));

    Json evaluator = Json::object();
    evaluator.set("max_dies_per_lane", c.evaluator.max_dies_per_lane);
    evaluator.set("die_board_margin_mm",
                  c.evaluator.die_board_margin_mm);

    Json out = Json::object();
    out.set("seed", static_cast<double>(c.seed));
    out.set("base_app", c.base_app);
    out.set("node", tech::to_string(c.node));
    out.set("rca", std::move(spec));
    out.set("explorer_options", std::move(explorer));
    out.set("evaluator_options", std::move(evaluator));
    return out;
}

} // namespace moonwalk::check
