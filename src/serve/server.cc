#include "serve/server.hh"

#include <cerrno>
#include <condition_variable>
#include <cstring>

#include "obs/log.hh"
#include "obs/metrics.hh"

#ifndef _WIN32
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace moonwalk::serve {

namespace {

void
countRequest(const char *which)
{
    if (obs::metricsEnabled())
        obs::metrics().counter(std::string("serve.requests.") + which)
            .inc();
}

} // namespace

/** Per-connection state, shared by the reader and handler threads. */
struct Server::Connection
{
    int fd = -1;
    /** Peer address "ip:port", for the access log. */
    std::string peer = "-";
    ConnectionBudget budget;

    /** Serializes whole response lines onto the socket. */
    std::mutex write_mutex;
    /** Set on write/read failure; readers and writers give up. */
    std::atomic<bool> dead{false};
    /** Reader finished; the accept loop may join its thread. */
    std::atomic<bool> reader_done{false};

    /** Live handler threads (detached); the reader waits for zero
     *  before closing fd, so no handler ever writes a closed fd. */
    std::mutex handlers_mutex;
    std::condition_variable handlers_cv;
    int handlers_live = 0;

    /** Send one response line (appending '\n'), atomically with
     *  respect to other writers on this connection. */
    void writeLine(const std::string &response)
    {
#ifndef _WIN32
        if (dead.load(std::memory_order_relaxed))
            return;
        std::lock_guard<std::mutex> lock(write_mutex);
        std::string out = response;
        out.push_back('\n');
        size_t sent = 0;
        while (sent < out.size()) {
            const ssize_t n =
                ::send(fd, out.data() + sent, out.size() - sent,
                       MSG_NOSIGNAL);
            if (n <= 0) {
                dead.store(true, std::memory_order_relaxed);
                return;
            }
            sent += static_cast<size_t>(n);
        }
#else
        (void)response;
#endif
    }
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      service_(options_.service),
      admission_(options_.queue_depth, options_.max_conn_inflight)
{
}

void
Server::writeResponse(const std::shared_ptr<Connection> &conn,
                      const std::string &response,
                      RequestTelemetry &telemetry)
{
    telemetry.bytes_out = response.size() + 1;  // writeLine adds '\n'
    PhaseTimer write(&telemetry, Phase::Write);
    conn->writeLine(response);
}

Server::~Server()
{
#ifndef _WIN32
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
    if (wake_read_fd_ >= 0)
        ::close(wake_read_fd_);
    if (wake_write_fd_ >= 0)
        ::close(wake_write_fd_);
#endif
}

#ifndef _WIN32

bool
Server::start(std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        return false;
    };

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0)
        return fail(std::string("pipe: ") + std::strerror(errno));
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(static_cast<uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) !=
        1)
        return fail("invalid listen address '" + options_.host +
                    "' (numeric IPv4 only)");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        return fail(std::string("socket: ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind " + options_.host + ":" +
                    std::to_string(options_.port) + ": " +
                    std::strerror(errno));
    if (::listen(listen_fd_, 64) != 0)
        return fail(std::string("listen: ") + std::strerror(errno));

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0)
        return fail(std::string("getsockname: ") +
                    std::strerror(errno));
    port_ = ntohs(bound.sin_port);

    // Telemetry epoch + eager registration: every serve.* metric
    // exists (as an explicit zero) from the first stats snapshot.
    markServeStart();
    registerServeMetrics();

    MOONWALK_LOG(Info, "serve")
        .msg("listening")
        .field("host", options_.host)
        .field("port", port_)
        .field("queue_depth", admission_.queueDepth())
        .field("max_conn_inflight", admission_.perConnectionLimit());
    return true;
}

void
Server::requestStop()
{
    stopping_.store(true, std::memory_order_relaxed);
    if (wake_write_fd_ >= 0) {
        const char byte = 'x';
        // Async-signal-safe; the self-pipe is how SIGINT/SIGTERM
        // reach the poll loop.  A full pipe still wakes the poller.
        [[maybe_unused]] ssize_t n =
            ::write(wake_write_fd_, &byte, 1);
    }
}

void
Server::run()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd fds[2] = {{listen_fd_, POLLIN, 0},
                         {wake_read_fd_, POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            MOONWALK_LOG(Warn, "serve")
                .msg("poll failed; shutting down")
                .field("errno", std::strerror(errno));
            break;
        }
        if (fds[1].revents & POLLIN)
            break;
        if (fds[0].revents & POLLIN)
            acceptOne();
        reapConnections(false);
    }

    // Graceful drain: no new connections, no new requests, every
    // admitted request still answers.
    ::close(listen_fd_);
    listen_fd_ = -1;
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        for (auto &entry : conns_) {
            if (entry.conn->fd >= 0)
                ::shutdown(entry.conn->fd, SHUT_RD);
        }
    }
    admission_.drain();
    reapConnections(true);
    MOONWALK_LOG(Info, "serve").msg("drained; exiting");
}

void
Server::acceptOne()
{
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd = ::accept(
        listen_fd_, reinterpret_cast<sockaddr *>(&peer), &peer_len);
    if (fd < 0)
        return;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    char addr[INET_ADDRSTRLEN] = "?";
    if (peer.sin_family == AF_INET)
        ::inet_ntop(AF_INET, &peer.sin_addr, addr, sizeof(addr));
    conn->peer =
        std::string(addr) + ":" + std::to_string(ntohs(peer.sin_port));
    if (obs::metricsEnabled()) {
        obs::metrics().counter("serve.connections.accepted").inc();
    }
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(
        {conn, std::thread([this, conn] { readerLoop(conn); })});
    if (obs::metricsEnabled())
        obs::metrics().gauge("serve.connections.open")
            .set(static_cast<double>(conns_.size()));
}

void
Server::reapConnections(bool all)
{
    std::vector<std::thread> joinable;
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        size_t keep = 0;
        for (size_t i = 0; i < conns_.size(); ++i) {
            if (all ||
                conns_[i].conn->reader_done.load(
                    std::memory_order_acquire)) {
                joinable.push_back(std::move(conns_[i].reader));
                continue;
            }
            // Guard the self-move: assigning a joinable std::thread
            // to itself terminates the process.
            if (keep != i)
                conns_[keep] = std::move(conns_[i]);
            ++keep;
        }
        conns_.erase(conns_.begin() +
                         static_cast<std::ptrdiff_t>(keep),
                     conns_.end());
        if (obs::metricsEnabled())
            obs::metrics().gauge("serve.connections.open")
                .set(static_cast<double>(conns_.size()));
    }
    for (auto &t : joinable)
        t.join();
}

void
Server::readerLoop(const std::shared_ptr<Connection> &conn)
{
    std::string buffer;
    char chunk[4096];
    bool keep_going = true;
    while (keep_going) {
        const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        // One clock read per recv: every complete line in this chunk
        // arrived (at the latest) now, so this is the telemetry epoch
        // its end-to-end latency is measured from.
        const uint64_t arrival_ns = obs::monotonicNowNs();
        buffer.append(chunk, static_cast<size_t>(n));
        size_t start = 0;
        for (;;) {
            const size_t nl = buffer.find('\n', start);
            if (nl == std::string::npos)
                break;
            std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            if (!handleLine(conn, line, arrival_ns)) {
                keep_going = false;
                break;
            }
        }
        buffer.erase(0, start);
        if (buffer.size() > kMaxRequestBytes) {
            // Unframed flood: answer once, then drop the connection
            // — resynchronizing inside a megabyte of garbage is not
            // worth attempting.
            countRequest("invalid");
            RequestTelemetry telemetry =
                beginRequest(conn->peer, arrival_ns);
            telemetry.bytes_in = buffer.size();
            telemetry.outcome = "invalid";
            telemetry.status = 400;
            writeResponse(conn,
                          errorEnvelope(
                              {400, "line_too_long",
                               "request line exceeds " +
                                   std::to_string(kMaxRequestBytes) +
                                   " bytes"},
                              false, Json()),
                          telemetry);
            finishRequest(telemetry);
            break;
        }
    }

    // Let every in-flight handler write its response before the fd
    // goes away; admission drain in run() relies on this ordering.
    {
        std::unique_lock<std::mutex> lock(conn->handlers_mutex);
        conn->handlers_cv.wait(
            lock, [&] { return conn->handlers_live == 0; });
    }
    ::close(conn->fd);
    conn->fd = -1;
    conn->reader_done.store(true, std::memory_order_release);
}

bool
Server::handleLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line, uint64_t arrival_ns)
{
    RequestTelemetry telemetry = beginRequest(conn->peer, arrival_ns);
    telemetry.bytes_in = line.size() + 1;  // + the newline
    Request request;
    RequestError error;
    const bool parsed =
        parseRequest(line, &request, &error, &telemetry);
    telemetry.cmd = cmdLabel(request.cmd);
    if (!parsed) {
        countRequest("invalid");
        telemetry.outcome = "invalid";
        telemetry.status = error.code;
        writeResponse(conn,
                      errorEnvelope(error, request.has_id, request.id),
                      telemetry);
        finishRequest(telemetry);
        return true;  // framing is intact; keep the connection
    }

    // Cheap commands answer inline and skip admission: ping costs
    // nothing, and stats must answer precisely when the server is
    // loaded enough to reject sweeps.
    if (request.cmd == "ping" || request.cmd == "stats") {
        countRequest("accepted");
        const auto payload = service_.handle(request, &telemetry);
        writeResponse(conn, okEnvelope(*payload, &request), telemetry);
        countRequest("completed");
        finishRequest(telemetry);
        return true;
    }

    switch (admission_.tryAdmit(conn->budget, &telemetry)) {
    case AdmitReject::QueueFull:
        countRequest("rejected");
        telemetry.outcome = "rejected";
        telemetry.status = 429;
        writeResponse(conn,
                      errorEnvelope(
                          {429, "overloaded",
                           "server at queue depth " +
                               std::to_string(
                                   admission_.queueDepth()) +
                               "; retry later"},
                          request.has_id, request.id),
                      telemetry);
        finishRequest(telemetry);
        return true;
    case AdmitReject::ConnectionLimit:
        countRequest("rejected");
        telemetry.outcome = "rejected";
        telemetry.status = 429;
        writeResponse(conn,
                      errorEnvelope(
                          {429, "connection_limit",
                           "connection already has " +
                               std::to_string(
                                   admission_.perConnectionLimit()) +
                               " requests in flight"},
                          request.has_id, request.id),
                      telemetry);
        finishRequest(telemetry);
        return true;
    case AdmitReject::Admitted:
        break;
    }

    countRequest("accepted");
    spawnHandler(conn, std::move(request), std::move(telemetry));
    return true;
}

void
Server::spawnHandler(const std::shared_ptr<Connection> &conn,
                     Request request, RequestTelemetry telemetry)
{
    {
        std::lock_guard<std::mutex> lock(conn->handlers_mutex);
        ++conn->handlers_live;
    }
    std::thread([this, conn, request = std::move(request),
                 telemetry = std::move(telemetry)]() mutable {
        std::string response;
        try {
            const auto payload = service_.handle(request, &telemetry);
            response = okEnvelope(*payload, &request);
        } catch (const std::exception &e) {
            countRequest("failed");
            telemetry.outcome = "error";
            telemetry.status = 500;
            telemetry.source = "error";
            response = errorEnvelope(
                {500, "internal_error", e.what()}, request.has_id,
                request.id);
        }
        writeResponse(conn, response, telemetry);
        admission_.release(conn->budget);
        countRequest("completed");
        finishRequest(telemetry);
        {
            std::lock_guard<std::mutex> lock(conn->handlers_mutex);
            --conn->handlers_live;
        }
        conn->handlers_cv.notify_all();
    }).detach();
}

#else  // _WIN32: the serve transport is POSIX-only.

bool
Server::start(std::string *error)
{
    if (error)
        *error = "moonwalk serve is not supported on this platform";
    return false;
}

void
Server::requestStop()
{
    stopping_.store(true, std::memory_order_relaxed);
}

void Server::run() {}
void Server::acceptOne() {}
void Server::reapConnections(bool) {}
void Server::readerLoop(const std::shared_ptr<Connection> &) {}
bool
Server::handleLine(const std::shared_ptr<Connection> &,
                   const std::string &, uint64_t)
{
    return false;
}
void
Server::spawnHandler(const std::shared_ptr<Connection> &, Request,
                     RequestTelemetry)
{
}

#endif

} // namespace moonwalk::serve
