/**
 * @file
 * TCP transport of the sweep service: a single-listener,
 * thread-per-connection server speaking the newline-delimited JSON
 * protocol of protocol.hh, built directly on POSIX sockets (the repo
 * takes no third-party dependencies).
 *
 * Concurrency model.  The accept loop runs on the caller of run();
 * each connection gets a reader thread that parses request lines and
 * answers cheap commands (ping, stats, every rejection) inline.
 * Sweep-class commands pass admission control and then run on a
 * per-request handler thread, so N concurrent identical requests are
 * genuinely concurrent — which is what lets the single-flight layer
 * dedup them — while the AdmissionController's global depth bounds
 * the total number of handler threads alive at once.  The heavy
 * lifting inside a handler (the exploration grid) still fans out on
 * the shared exec::ThreadPool via parallelFor, whose caller
 * participates, so handler threads add parallelism instead of
 * fighting the pool for it.
 *
 * ping/stats bypass admission on purpose: observability must keep
 * answering precisely when the server is saturated enough to reject
 * sweeps.
 *
 * Shutdown.  requestStop() is async-signal-safe (one write() to a
 * self-pipe); the CLI's SIGINT/SIGTERM handlers call it.  run() then
 * stops accepting, half-closes every connection (SHUT_RD: no new
 * requests, responses still flow), waits for admission to drain —
 * every in-flight request computes and writes its response — joins
 * the readers, and returns.  Clients see complete answers to
 * everything the server admitted, then EOF.
 */
#ifndef MOONWALK_SERVE_SERVER_HH
#define MOONWALK_SERVE_SERVER_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.hh"
#include "serve/service.hh"
#include "serve/telemetry.hh"

namespace moonwalk::serve {

/** Transport knobs, wrapping the service's own options. */
struct ServerOptions
{
    /** Numeric listen address; the default keeps the service private
     *  to the machine (the protocol is unauthenticated). */
    std::string host = "127.0.0.1";
    /** 0 picks an ephemeral port; port() reports the real one. */
    int port = 0;
    /** Global admitted-but-unfinished request bound. */
    int queue_depth = 64;
    /** Per-connection in-flight cap. */
    int max_conn_inflight = 8;
    ServiceOptions service;
};

/** The server.  start() then run(); requestStop() from anywhere. */
class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind and listen.  False (with a diagnostic in @p error) when the
     * address is invalid or taken; no threads exist yet at that point.
     */
    bool start(std::string *error);

    /** The bound port; meaningful after start() succeeds. */
    int port() const { return port_; }

    /**
     * Serve until requestStop(): accept connections, process requests,
     * then drain and tear everything down.  Returns once every
     * admitted request has been answered and every thread joined.
     */
    void run();

    /**
     * Ask run() to shut down gracefully.  Async-signal-safe: a single
     * write() on a pre-opened pipe, callable from a signal handler.
     */
    void requestStop();

    SweepService &service() { return service_; }
    const ServerOptions &options() const { return options_; }

  private:
    struct Connection;

    void acceptOne();
    void readerLoop(const std::shared_ptr<Connection> &conn);
    /** Parse + dispatch one request line; false closes the
     *  connection (poisoned framing).  @p arrival_ns is the steady
     *  clock when the line's last byte was received — the request's
     *  telemetry epoch. */
    bool handleLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line, uint64_t arrival_ns);
    void spawnHandler(const std::shared_ptr<Connection> &conn,
                      Request request, RequestTelemetry telemetry);
    /** Write one response line, timing the write phase and recording
     *  the byte count into @p telemetry. */
    void writeResponse(const std::shared_ptr<Connection> &conn,
                       const std::string &response,
                       RequestTelemetry &telemetry);
    /** Reap reader threads whose connections have finished. */
    void reapConnections(bool all);

    ServerOptions options_;
    SweepService service_;
    AdmissionController admission_;

    int listen_fd_ = -1;
    int wake_read_fd_ = -1;
    int wake_write_fd_ = -1;
    int port_ = 0;
    std::atomic<bool> stopping_{false};

    struct ConnEntry
    {
        std::shared_ptr<Connection> conn;
        std::thread reader;
    };
    std::mutex conns_mutex_;
    std::vector<ConnEntry> conns_;
};

} // namespace moonwalk::serve

#endif // MOONWALK_SERVE_SERVER_HH
