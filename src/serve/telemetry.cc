#include "serve/telemetry.hh"

#include <atomic>
#include <cstdio>

#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace moonwalk::serve {

namespace {

std::atomic<uint64_t> g_next_request_id{0};
std::atomic<uint64_t> g_serve_start_ns{0};
std::atomic<double> g_slow_threshold_ms{-1.0};

/** Fixed-point milliseconds for the access log: stable to parse,
 *  precise enough (1 µs) for the additivity check. */
std::string
formatMs(uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(ns) / 1e6);
    return buf;
}

} // namespace

const std::array<Phase, kPhaseCount> kAllPhases = {
    Phase::Parse,     Phase::Validate,  Phase::Admission,
    Phase::FlightWait, Phase::Compute,  Phase::Serialize,
    Phase::Write,
};

const std::array<const char *, 6> kCmdLabels = {
    "ping", "stats", "explore", "sweep", "report", "other",
};

const char *
phaseName(Phase phase)
{
    switch (phase) {
    case Phase::Parse:
        return "parse";
    case Phase::Validate:
        return "validate";
    case Phase::Admission:
        return "admission";
    case Phase::FlightWait:
        return "flight_wait";
    case Phase::Compute:
        return "compute";
    case Phase::Serialize:
        return "serialize";
    case Phase::Write:
        return "write";
    }
    return "unknown";
}

const char *
cmdLabel(const std::string &cmd)
{
    for (const char *label : kCmdLabels)
        if (cmd == label)
            return label;
    return "other";
}

void
RequestTelemetry::addPhase(Phase phase, uint64_t begin_ns,
                           uint64_t dur_ns)
{
    const size_t i = static_cast<size_t>(phase);
    if (phase_begin_ns[i] == 0)
        phase_begin_ns[i] = begin_ns;
    phase_ns[i] += dur_ns;
}

PhaseTimer::PhaseTimer(RequestTelemetry *telemetry, Phase phase)
    : telemetry_(telemetry), phase_(phase)
{
    if (telemetry_)
        begin_ns_ = obs::monotonicNowNs();
}

void
PhaseTimer::stop()
{
    if (!telemetry_)
        return;
    const uint64_t end_ns = obs::monotonicNowNs();
    const uint64_t dur =
        end_ns > begin_ns_ ? end_ns - begin_ns_ : 1;
    telemetry_->addPhase(phase_, begin_ns_, dur);
    telemetry_ = nullptr;
}

RequestTelemetry
beginRequest(const std::string &peer, uint64_t start_ns)
{
    RequestTelemetry t;
    t.id = g_next_request_id.fetch_add(1,
                                       std::memory_order_relaxed) +
        1;
    t.peer = peer;
    t.start_ns = start_ns;
    return t;
}

uint64_t
lastRequestId()
{
    return g_next_request_id.load(std::memory_order_relaxed);
}

void
markServeStart()
{
    g_serve_start_ns.store(obs::monotonicNowNs(),
                           std::memory_order_relaxed);
}

double
serveUptimeSeconds()
{
    const uint64_t start =
        g_serve_start_ns.load(std::memory_order_relaxed);
    if (start == 0)
        return 0.0;
    const uint64_t now = obs::monotonicNowNs();
    return now > start ? static_cast<double>(now - start) / 1e9 : 0.0;
}

void
setSlowThresholdMs(double ms)
{
    g_slow_threshold_ms.store(ms, std::memory_order_relaxed);
}

double
slowThresholdMs()
{
    return g_slow_threshold_ms.load(std::memory_order_relaxed);
}

void
registerServeMetrics()
{
    auto &reg = obs::metrics();
    for (const char *which :
         {"accepted", "completed", "failed", "invalid", "rejected"})
        reg.counter(std::string("serve.requests.") + which);
    reg.counter("serve.connections.accepted");
    for (const char *name :
         {"serve.connections.open", "serve.queue.depth",
          "serve.queue.depth_max", "serve.singleflight.hits",
          "serve.singleflight.misses", "serve.profiles.open",
          "serve.requests.last_id", "serve.uptime_s"})
        reg.gauge(name);
    for (const char *cmd : kCmdLabels)
        reg.histogram(std::string("serve.latency.") + cmd + ".ns");
    for (Phase phase : kAllPhases)
        reg.histogram(std::string("serve.phase.") + phaseName(phase) +
                      ".ns");
}

void
finishRequest(RequestTelemetry &telemetry)
{
    const uint64_t end_ns = obs::monotonicNowNs();
    const uint64_t total_ns = end_ns > telemetry.start_ns
        ? end_ns - telemetry.start_ns
        : 1;

    if (obs::metricsEnabled()) {
        auto &reg = obs::metrics();
        reg.histogram(std::string("serve.latency.") + telemetry.cmd +
                      ".ns")
            .record(static_cast<double>(total_ns));
        for (Phase phase : kAllPhases) {
            const size_t i = static_cast<size_t>(phase);
            if (telemetry.phase_begin_ns[i] == 0)
                continue;
            reg.histogram(std::string("serve.phase.") +
                          phaseName(phase) + ".ns")
                .record(static_cast<double>(telemetry.phase_ns[i]));
        }
        reg.gauge("serve.requests.last_id")
            .max(static_cast<double>(telemetry.id));
    }

    const double total_ms = static_cast<double>(total_ns) / 1e6;
    const double slow_ms = slowThresholdMs();
    const bool slow = slow_ms >= 0.0 && total_ms >= slow_ms;
    const obs::LogLevel level =
        slow ? obs::LogLevel::Warn : obs::LogLevel::Info;
    if (obs::logEnabled(level)) {
        // MOONWALK_LOG takes a compile-time level token; the access
        // log picks its level at runtime, so build the record direct.
        obs::LogRecord record(level, "serve.access");
        record.msg("request")
            .field("id", telemetry.id)
            .field("peer", telemetry.peer)
            .field("cmd", telemetry.cmd)
            .field("outcome", telemetry.outcome)
            .field("status", telemetry.status)
            .field("flight", telemetry.flight)
            .field("source", telemetry.source)
            .field("bytes_in", telemetry.bytes_in)
            .field("bytes_out", telemetry.bytes_out)
            .field("slow", slow ? "true" : "false")
            .field("total_ms", formatMs(total_ns));
        for (Phase phase : kAllPhases) {
            const size_t i = static_cast<size_t>(phase);
            if (telemetry.phase_begin_ns[i] == 0)
                continue;
            record.field(
                (std::string(phaseName(phase)) + "_ms").c_str(),
                formatMs(telemetry.phase_ns[i]));
        }
    }

    auto &collector = obs::traceCollector();
    if (collector.enabled()) {
        // Map the request's steady-clock interval onto the
        // collector's epoch: now is end-of-request, so the span
        // starts total_us earlier.
        const double end_us = collector.nowUs();
        const double total_us = static_cast<double>(total_ns) / 1e3;
        const double req_ts_us =
            end_us > total_us ? end_us - total_us : 0.0;
        obs::TraceEvent request;
        request.name = std::string("serve.") + telemetry.cmd;
        request.category = "serve";
        request.ts_us = req_ts_us;
        request.dur_us = total_us;
        request.args = {
            {"id", std::to_string(telemetry.id)},
            {"peer", telemetry.peer},
            {"outcome", telemetry.outcome},
            {"flight", telemetry.flight},
            {"source", telemetry.source},
        };
        collector.record(std::move(request));
        for (Phase phase : kAllPhases) {
            const size_t i = static_cast<size_t>(phase);
            if (telemetry.phase_begin_ns[i] == 0)
                continue;
            obs::TraceEvent span;
            span.name = std::string("serve.phase.") + phaseName(phase);
            span.category = "serve";
            span.ts_us = req_ts_us +
                static_cast<double>(telemetry.phase_begin_ns[i] -
                                    telemetry.start_ns) /
                    1e3;
            span.dur_us =
                static_cast<double>(telemetry.phase_ns[i]) / 1e3;
            span.args = {{"id", std::to_string(telemetry.id)}};
            collector.record(std::move(span));
        }
    }
}

} // namespace moonwalk::serve
