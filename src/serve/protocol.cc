#include "serve/protocol.hh"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/error.hh"

namespace moonwalk::serve {

namespace {

constexpr const char *kValidCmds =
    "ping, stats, explore, sweep, report";

/** Option bounds: generous enough for any legitimate study, tight
 *  enough that one request cannot commission an unbounded sweep. */
constexpr int kMaxVoltageSteps = 512;
constexpr int kMaxRcaCountSteps = 512;
constexpr int kMaxDramsPerDie = 64;
constexpr size_t kMaxDarkFractions = 16;

bool
fail(RequestError *error, int code, std::string reason,
     std::string message)
{
    error->code = code;
    error->reason = std::move(reason);
    error->message = std::move(message);
    return false;
}

/** Read an integral member in [lo, hi]; false (+diagnostic) on a
 *  non-number, non-integer, or out-of-range value. */
bool
intOption(const Json &value, const std::string &key, int lo, int hi,
          int *out, RequestError *error)
{
    if (!value.isNumber())
        return fail(error, 400, "bad_option",
                    "option '" + key + "' must be a number");
    const double v = value.asDouble();
    if (!std::isfinite(v) || v != std::floor(v) || v < lo || v > hi) {
        return fail(error, 400, "bad_option",
                    "option '" + key + "' must be an integer in [" +
                        std::to_string(lo) + ", " +
                        std::to_string(hi) + "]");
    }
    *out = static_cast<int>(v);
    return true;
}

bool
parseOptions(const Json &options, dse::ExplorerOptions *out,
             RequestError *error)
{
    if (!options.isObject())
        return fail(error, 400, "bad_option",
                    "'options' must be an object");
    for (const auto &key : options.keys()) {
        const Json &value = options.at(key);
        if (key == "voltage_steps") {
            if (!intOption(value, key, 2, kMaxVoltageSteps,
                           &out->voltage_steps, error))
                return false;
        } else if (key == "rca_count_steps") {
            if (!intOption(value, key, 2, kMaxRcaCountSteps,
                           &out->rca_count_steps, error))
                return false;
        } else if (key == "max_drams_per_die") {
            if (!intOption(value, key, 1, kMaxDramsPerDie,
                           &out->max_drams_per_die, error))
                return false;
        } else if (key == "dark_fractions") {
            if (!value.isArray() || value.size() == 0 ||
                value.size() > kMaxDarkFractions) {
                return fail(error, 400, "bad_option",
                            "option 'dark_fractions' must be an array "
                            "of 1.." +
                                std::to_string(kMaxDarkFractions) +
                                " fractions");
            }
            std::vector<double> darks;
            for (size_t i = 0; i < value.size(); ++i) {
                const Json &d = value.at(i);
                if (!d.isNumber() || !std::isfinite(d.asDouble()) ||
                    d.asDouble() < 0.0 || d.asDouble() > 0.95) {
                    return fail(error, 400, "bad_option",
                                "dark_fractions entries must be "
                                "numbers in [0, 0.95]");
                }
                darks.push_back(d.asDouble());
            }
            out->dark_fractions = std::move(darks);
        } else {
            return fail(error, 400, "unknown_option",
                        "unknown option '" + key +
                            "' (valid: voltage_steps, rca_count_steps, "
                            "max_drams_per_die, dark_fractions)");
        }
    }
    return true;
}

std::string
validAppNames()
{
    std::string names;
    for (const auto &app : apps::allApps()) {
        if (!names.empty())
            names += ", ";
        names += app.name();
    }
    return names;
}

std::string
validNodeNames()
{
    std::string names;
    for (tech::NodeId node : tech::kAllNodes) {
        if (!names.empty())
            names += ", ";
        names += tech::to_string(node);
    }
    return names;
}

void
addBits(std::string &key, double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    char buf[2 + sizeof(bits) * 2 + 1];
    std::snprintf(buf, sizeof(buf), "%016llx|",
                  static_cast<unsigned long long>(bits));
    key += buf;
}

} // namespace

bool
parseRequest(const std::string &line, Request *request,
             RequestError *error, RequestTelemetry *telemetry)
{
    Json doc;
    {
        PhaseTimer parse(telemetry, Phase::Parse);
        try {
            doc = Json::parse(line);
        } catch (const ModelError &e) {
            return fail(error, 400, "bad_json",
                        std::string("request is not valid JSON: ") +
                            e.what());
        }
    }
    // Everything below is semantic validation of the parsed document;
    // the timer covers every return path.
    PhaseTimer validate(telemetry, Phase::Validate);
    if (!doc.isObject())
        return fail(error, 400, "bad_request",
                    "request must be a JSON object");

    *request = Request{};
    for (const auto &key : doc.keys()) {
        const Json &value = doc.at(key);
        if (key == "cmd") {
            if (!value.isString())
                return fail(error, 400, "bad_request",
                            "'cmd' must be a string");
            request->cmd = value.asString();
        } else if (key == "app") {
            if (!value.isString())
                return fail(error, 400, "bad_request",
                            "'app' must be a string");
            for (const auto &app : apps::allApps())
                if (app.name() == value.asString())
                    request->app = app;
            if (!request->app) {
                return fail(error, 404, "unknown_app",
                            "unknown application '" +
                                value.asString() +
                                "' (valid: " + validAppNames() + ")");
            }
        } else if (key == "node") {
            if (!value.isString())
                return fail(error, 400, "bad_request",
                            "'node' must be a string");
            for (tech::NodeId node : tech::kAllNodes)
                if (tech::to_string(node) == value.asString())
                    request->node = node;
            if (!request->node) {
                return fail(error, 404, "unknown_node",
                            "unknown node '" + value.asString() +
                                "' (valid: " + validNodeNames() +
                                ")");
            }
        } else if (key == "tco") {
            if (!value.isNumber() ||
                !std::isfinite(value.asDouble()) ||
                value.asDouble() < 0.0) {
                return fail(error, 400, "bad_request",
                            "'tco' must be a finite number >= 0");
            }
            request->workload_tco = value.asDouble();
        } else if (key == "options") {
            if (!parseOptions(value, &request->options, error))
                return false;
        } else if (key == "id") {
            request->has_id = true;
            request->id = value;
        } else {
            return fail(error, 400, "unknown_field",
                        "unknown request field '" + key +
                            "' (valid: cmd, app, node, tco, options, "
                            "id)");
        }
    }

    if (request->cmd.empty())
        return fail(error, 400, "bad_request",
                    "request needs a 'cmd' (one of: " +
                        std::string(kValidCmds) + ")");
    const bool known =
        request->cmd == "ping" || request->cmd == "stats" ||
        request->cmd == "explore" || request->cmd == "sweep" ||
        request->cmd == "report";
    if (!known)
        return fail(error, 400, "unknown_cmd",
                    "unknown cmd '" + request->cmd +
                        "' (valid: " + kValidCmds + ")");

    const bool needs_app = request->cmd == "explore" ||
        request->cmd == "sweep" || request->cmd == "report";
    if (needs_app && !request->app)
        return fail(error, 400, "bad_request",
                    "cmd '" + request->cmd + "' needs an 'app' "
                    "(valid: " + validAppNames() + ")");
    if (request->cmd == "explore" && !request->node)
        return fail(error, 400, "bad_request",
                    "cmd 'explore' needs a 'node' (valid: " +
                        validNodeNames() + ")");
    return true;
}

std::string
optionsProfileKey(const dse::ExplorerOptions &options)
{
    // Verbatim field serialization, same discipline as sweepKey():
    // profiles differing in any knob must never alias.
    std::string key;
    key += std::to_string(options.voltage_steps);
    key += '|';
    key += std::to_string(options.rca_count_steps);
    key += '|';
    key += std::to_string(options.max_drams_per_die);
    key += '|';
    key += std::to_string(options.keep_feasible_points ? 1 : 0);
    key += '|';
    key += std::to_string(options.dark_fractions.size());
    key += '|';
    for (double dark : options.dark_fractions)
        addBits(key, dark);
    return key;
}

std::string
requestKey(const Request &request,
           const dse::DesignSpaceExplorer &explorer)
{
    if (request.cmd == "explore")
        return "explore|" +
            explorer.sweepKey(request.app->rca, *request.node);
    std::string key = request.cmd;
    key += '|';
    key += request.app ? request.app->name() : "";
    key += '|';
    addBits(key, request.workload_tco);
    key += optionsProfileKey(explorer.options());
    return key;
}

std::string
okEnvelope(const std::string &result_payload, const Request *request)
{
    // Built by concatenation so all sharers of one result payload
    // (see SingleFlight) emit byte-identical responses.
    std::string out = "{\"ok\":true";
    if (request && request->has_id) {
        out += ",\"id\":";
        out += request->id.dump();
    }
    out += ",\"result\":";
    out += result_payload;
    out += "}";
    return out;
}

std::string
errorEnvelope(const RequestError &error, bool has_id, const Json &id)
{
    Json err = Json::object();
    err.set("code", error.code);
    err.set("reason", error.reason);
    err.set("message", error.message);
    std::string out = "{\"ok\":false";
    if (has_id) {
        out += ",\"id\":";
        out += id.dump();
    }
    out += ",\"error\":";
    out += err.dump();
    out += "}";
    return out;
}

} // namespace moonwalk::serve
