/**
 * @file
 * Request-scoped execution core of the sweep service.
 *
 * SweepService turns validated protocol requests into serialized JSON
 * result payloads.  It is the reentrancy boundary the CLI never
 * needed: where the one-shot front end owned a single process-lifetime
 * optimizer, the service materializes an optimizer *per sweep-options
 * profile*, on demand, in a small LRU-bounded pool.  Requests sharing
 * a profile share an optimizer — and with it the explorer's sharded
 * in-memory memo and warm per-worker thermal caches — while requests
 * with different granularity get isolated instances whose sweep keys
 * can never alias.  Every profile's explorer layers over the same
 * persistent disk cache directory, so results survive both profile
 * eviction and process restarts.
 *
 * Above the memo sits the single-flight layer, keyed by the full
 * serialized sweepKey (see protocol.hh): N concurrent identical
 * requests run one exploration, and the N-1 waiters share the
 * leader's serialized payload pointer, making their response bytes
 * identical by construction.  handle() is safe to call from any
 * number of threads at once; it is designed to run on the shared
 * exec::ThreadPool, whose caller-participating parallelFor guarantees
 * a leader can always finish even when every other worker is parked
 * on the same flight.
 */
#ifndef MOONWALK_SERVE_SERVICE_HH
#define MOONWALK_SERVE_SERVICE_HH

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/optimizer.hh"
#include "serve/protocol.hh"
#include "serve/single_flight.hh"

namespace moonwalk::serve {

/** Service-level knobs (the server adds transport knobs on top). */
struct ServiceOptions
{
    /** Persistent sweep-cache directory shared by every options
     *  profile; empty falls back to MOONWALK_CACHE_DIR, else off. */
    std::string cache_dir;
    /**
     * Distinct sweep-options profiles kept warm at once.  Each
     * profile owns an optimizer (explorer + memo caches); the least
     * recently used is dropped beyond this bound, so a client cycling
     * through option values cannot grow the server without limit.
     */
    int max_profiles = 16;
    /**
     * Test hook: artificial delay (ms) inside every leader
     * computation, before the sweep runs.  Lets the e2e test hold a
     * flight open long enough to deterministically observe
     * single-flight sharing and admission overflow.  0 in production.
     */
    int handler_delay_ms = 0;
};

/** The service.  One instance per server process. */
class SweepService
{
  public:
    explicit SweepService(ServiceOptions options);

    const ServiceOptions &options() const { return options_; }

    /**
     * Execute @p request and return its serialized "result" payload
     * (shared with every concurrent identical request).  Throws
     * ModelError on model-level failure (e.g. no feasible design);
     * the transport maps exceptions to 500 responses.  @p telemetry
     * (optional) receives the compute/serialize (leader) or
     * flight-wait (waiter) phase timings, the single-flight role,
     * and the result source (memo/disk/computed/flight).
     */
    std::shared_ptr<const std::string>
    handle(const Request &request,
           RequestTelemetry *telemetry = nullptr);

    /** Single-flight totals (also published as serve.singleflight.*
     *  counters when metrics are on). */
    uint64_t singleFlightHits() const { return flight_.hits(); }
    uint64_t singleFlightMisses() const { return flight_.misses(); }

    /**
     * Publish every live profile's cache statistics plus the disk
     * cache's entry-count/byte gauges into the metrics registry (the
     * "stats" command calls this before snapshotting, so its answer
     * reflects the moment of the request).
     */
    void publishStats() const;

  private:
    /** One warm options profile: the optimizer plus its LRU hook. */
    struct Profile
    {
        std::shared_ptr<core::MoonwalkOptimizer> optimizer;
        std::list<std::string>::iterator lru_pos;
    };

    /** Optimizer for @p options' profile, creating/evicting under the
     *  profile lock. */
    std::shared_ptr<core::MoonwalkOptimizer>
    profileFor(const dse::ExplorerOptions &options);

    std::string computeResult(
        const Request &request,
        const std::shared_ptr<core::MoonwalkOptimizer> &optimizer,
        RequestTelemetry *telemetry);

    ServiceOptions options_;
    SingleFlight<std::string> flight_;

    mutable std::mutex profiles_mutex_;
    std::map<std::string, Profile> profiles_;
    /** Most recent at front; guarded by profiles_mutex_. */
    std::list<std::string> lru_;
};

} // namespace moonwalk::serve

#endif // MOONWALK_SERVE_SERVICE_HH
