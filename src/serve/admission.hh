/**
 * @file
 * Admission control for the sweep service: a bounded in-flight
 * request budget (global queue depth) plus a per-connection cap, with
 * fast-fail semantics — a request that cannot be admitted is rejected
 * immediately with a 429-style error instead of queueing without
 * bound and timing every client out at once.
 *
 * "In flight" spans admission to completion: requests waiting in pool
 * deques and requests actively computing both hold a slot, so the
 * global depth bounds the server's total outstanding work, which is
 * what actually protects memory and tail latency.  The per-connection
 * cap keeps one pipelining client from monopolizing the budget.
 *
 * drain() is the graceful-shutdown primitive: it blocks until every
 * admitted request has released its slot, which (with the listener
 * closed and readers stopped) means every response has been computed
 * and handed to its connection writer.
 */
#ifndef MOONWALK_SERVE_ADMISSION_HH
#define MOONWALK_SERVE_ADMISSION_HH

#include <condition_variable>
#include <mutex>

#include "serve/telemetry.hh"

namespace moonwalk::serve {

/** One connection's admission state; owned by the connection. */
struct ConnectionBudget
{
    int inflight = 0;  ///< guarded by the controller's mutex
};

/** Why tryAdmit() said no. */
enum class AdmitReject
{
    Admitted,
    QueueFull,        ///< global depth exhausted
    ConnectionLimit,  ///< this connection's cap exhausted
};

/** The controller.  All methods are thread-safe. */
class AdmissionController
{
  public:
    /**
     * @p queue_depth: total admitted-but-unfinished requests allowed
     * across all connections.  @p per_connection: cap per connection.
     * Both are clamped to >= 1.
     */
    AdmissionController(int queue_depth, int per_connection);

    /** Claim a slot for @p conn, or say (cheaply) why not.
     *  @p telemetry (optional) receives the admission phase time —
     *  mostly lock wait under contention. */
    AdmitReject tryAdmit(ConnectionBudget &conn,
                         RequestTelemetry *telemetry = nullptr);

    /** Release a slot claimed by tryAdmit(); wakes drain(). */
    void release(ConnectionBudget &conn);

    /** Block until no request holds a slot. */
    void drain();

    int inflight() const;
    int queueDepth() const { return queue_depth_; }
    int perConnectionLimit() const { return per_connection_; }

  private:
    const int queue_depth_;
    const int per_connection_;
    mutable std::mutex mutex_;
    std::condition_variable idle_cv_;
    int inflight_ = 0;
};

} // namespace moonwalk::serve

#endif // MOONWALK_SERVE_ADMISSION_HH
