/**
 * @file
 * Request-scoped telemetry for the sweep service.
 *
 * Every request line the server reads gets a RequestTelemetry: a
 * process-monotonic id, the steady-clock instant the line arrived,
 * and a per-phase stopwatch.  The transport threads the context
 * through parse → validate → admission → single-flight →
 * compute → serialize → write; each layer times only its own phase
 * (PhaseTimer is a cheap RAII scope, two monotonic reads).  When the
 * request completes, finishRequest():
 *
 *   - records the end-to-end latency into the per-command histogram
 *     `serve.latency.<cmd>.ns` and each phase duration into
 *     `serve.phase.<phase>.ns` (log-bucketed Histograms; P50/P90/P99
 *     surface in `stats` and --metrics),
 *   - emits one structured access-log line (component "serve.access")
 *     with id, peer, cmd, outcome, byte counts, single-flight role,
 *     result source, and the phase breakdown in milliseconds — at
 *     info level normally, upgraded to warn when the request's total
 *     latency reaches the --slow-ms threshold,
 *   - under --trace, records a Chrome trace span for the request plus
 *     one child span per phase, so the viewer shows the journey.
 *
 * Phases are disjoint intervals inside the request's lifetime, so
 * their sum is ≤ the end-to-end latency by construction (the gap is
 * untimed glue: thread dispatch, lock handoff).  The e2e test asserts
 * this additivity.
 *
 * Everything here is transport-agnostic plain state; no sockets, no
 * service types — server.cc, protocol.cc, admission.cc and service.cc
 * all include this header without cycles.
 */
#ifndef MOONWALK_SERVE_TELEMETRY_HH
#define MOONWALK_SERVE_TELEMETRY_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace moonwalk::serve {

/** The timed phases of a request's journey, in pipeline order. */
enum class Phase
{
    Parse = 0,   ///< line framing + JSON parse
    Validate,    ///< semantic request validation
    Admission,   ///< admission-control decision
    FlightWait,  ///< waiter blocked on another caller's computation
    Compute,     ///< leader model computation (sweep/explore/report)
    Serialize,   ///< result document → wire bytes
    Write,       ///< envelope onto the socket
};

inline constexpr size_t kPhaseCount = 7;

/** Stable lowercase token ("parse", ..., "write"); names the
 *  serve.phase.<phase>.ns histogram and the <phase>_ms log field. */
const char *phaseName(Phase phase);

/** All phases, pipeline order (for eager registration and dumps). */
extern const std::array<Phase, kPhaseCount> kAllPhases;

/** The known commands, for per-command latency histogram names;
 *  unparseable or unknown commands fold into "other". */
extern const std::array<const char *, 6> kCmdLabels;

/** Map a request's cmd string onto a histogram label. */
const char *cmdLabel(const std::string &cmd);

/** One request's telemetry context.  Plain movable state; created by
 *  beginRequest() on the reader thread and handed (by move) to the
 *  handler thread that finishes the request. */
struct RequestTelemetry
{
    /** Process-monotonic request id (first request is 1). */
    uint64_t id = 0;
    /** Peer address "ip:port" ("-" when unknown). */
    std::string peer = "-";
    /** Command label (see cmdLabel); "other" until parsed. */
    const char *cmd = "other";
    /** Steady-clock ns when the request line arrived. */
    uint64_t start_ns = 0;

    /** Per-phase duration and absolute start, ns.  A phase that never
     *  ran has zero in both (phase_begin_ns distinguishes "ran for
     *  <1ns" from "never ran" only in theory; durations are clamped
     *  to >= 1ns when recorded). */
    std::array<uint64_t, kPhaseCount> phase_ns{};
    std::array<uint64_t, kPhaseCount> phase_begin_ns{};

    size_t bytes_in = 0;
    size_t bytes_out = 0;

    /** Single-flight role: "none" | "leader" | "waiter". */
    const char *flight = "none";
    /** Where the result came from: "none" (control/rejected),
     *  "computed", "memo", "disk", "flight" (shared from a leader),
     *  or "error". */
    const char *source = "none";

    /** HTTP-style status of the response envelope. */
    int status = 200;
    /** "ok" | "invalid" | "rejected" | "error". */
    const char *outcome = "ok";

    /** Record one phase interval explicitly (PhaseTimer calls this). */
    void addPhase(Phase phase, uint64_t begin_ns, uint64_t dur_ns);
};

/** RAII stopwatch for one phase.  Null telemetry makes it a no-op, so
 *  library callers without a request context pay nothing. */
class PhaseTimer
{
  public:
    PhaseTimer(RequestTelemetry *telemetry, Phase phase);
    ~PhaseTimer() { stop(); }

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

    /** Stop early (idempotent); the destructor calls this. */
    void stop();

  private:
    RequestTelemetry *telemetry_;
    Phase phase_;
    uint64_t begin_ns_ = 0;
};

/** Mint the telemetry for one arriving request line: assigns the next
 *  process-monotonic id and stamps @p start_ns as its arrival. */
RequestTelemetry beginRequest(const std::string &peer,
                              uint64_t start_ns);

/** High-water mark of assigned request ids (0 before any request). */
uint64_t lastRequestId();

/** Stamp the server's start instant; serveUptimeSeconds() measures
 *  from here.  Called once by Server::start(). */
void markServeStart();

/** Seconds since markServeStart() (0 when never marked). */
double serveUptimeSeconds();

/** Slow-request threshold in ms for the access log; negative turns
 *  the upgrade off (the default).  At or above the threshold a
 *  request logs at warn instead of info. */
void setSlowThresholdMs(double ms);
double slowThresholdMs();

/**
 * Eagerly register every serve.* metric this layer (and the
 * transport) emits — counters, gauges, and all latency/phase
 * histograms — so `stats` and --metrics report explicit zeros from
 * the first snapshot instead of omitting never-touched metrics.
 */
void registerServeMetrics();

/**
 * Complete @p telemetry: record histograms, bump the request-id
 * high-water gauge, emit the access-log line (warn when slow), and
 * record Chrome trace spans when the collector is enabled.  Call
 * exactly once, after the response has been written.
 */
void finishRequest(RequestTelemetry &telemetry);

} // namespace moonwalk::serve

#endif // MOONWALK_SERVE_TELEMETRY_HH
