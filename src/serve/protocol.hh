/**
 * @file
 * Wire protocol of the sweep service: newline-delimited JSON over a
 * plain TCP stream, one request object per line, one response object
 * per line.  No third-party dependencies — util/json parses and
 * serializes both sides.
 *
 * Requests:
 *
 *   {"cmd":"ping"}
 *   {"cmd":"stats"}
 *   {"cmd":"explore","app":"Bitcoin","node":"28nm",
 *    "options":{"voltage_steps":8,...}}
 *   {"cmd":"sweep","app":"Bitcoin","options":{...}}
 *   {"cmd":"report","app":"Bitcoin","tco":30e6,"options":{...}}
 *
 * Every request may carry an "id" member (any JSON value), echoed
 * verbatim in the response so pipelining clients can match responses
 * that complete out of order.  "options" (optional) overrides sweep
 * granularity per request; unknown fields, unknown option keys, and
 * out-of-range values are rejected — the service is as strict as the
 * CLI, a malformed request never silently degrades into a default.
 *
 * Responses:
 *
 *   {"ok":true,"id":...,"result":{...}}
 *   {"ok":false,"id":...,"error":{"code":429,"reason":"overloaded",
 *                                 "message":"..."}}
 *
 * Error codes follow HTTP conventions: 400 malformed request, 404
 * unknown app/node, 429 admission rejected (fast-fail; retry later),
 * 500 internal failure.  Identical requests always produce
 * byte-identical "result" bytes (the single-flight layer shares the
 * serialized payload; see service.hh).
 */
#ifndef MOONWALK_SERVE_PROTOCOL_HH
#define MOONWALK_SERVE_PROTOCOL_HH

#include <optional>
#include <string>

#include "apps/apps.hh"
#include "dse/explorer.hh"
#include "serve/telemetry.hh"
#include "tech/node.hh"
#include "util/json.hh"

namespace moonwalk::serve {

/** Longest accepted request line (bytes, newline excluded); longer
 *  lines poison the connection (it is closed after one 400). */
inline constexpr size_t kMaxRequestBytes = 1 << 20;

/** A validated request, ready to execute. */
struct Request
{
    std::string cmd;             ///< ping | stats | explore | sweep | report
    std::optional<apps::AppSpec> app;  ///< explore/sweep/report
    std::optional<tech::NodeId> node;  ///< explore
    double workload_tco = 0.0;         ///< report
    /** Sweep granularity for this request: defaults overridden by the
     *  "options" member.  cache_dir/max_threads stay server-owned. */
    dse::ExplorerOptions options;
    bool has_id = false;
    Json id;                     ///< echoed verbatim when has_id
};

/** A rejected request: HTTP-style code + machine reason + prose. */
struct RequestError
{
    int code = 400;
    std::string reason;   ///< stable token, e.g. "unknown_app"
    std::string message;  ///< human diagnostic
};

/**
 * Parse and validate one request line.  Returns true and fills
 * @p request on success; returns false and fills @p error otherwise.
 * @p error.code is 400 for malformed JSON/fields, 404 for an unknown
 * app or node.  @p telemetry (optional) receives the parse and
 * validate phase timings plus the command label.
 */
bool parseRequest(const std::string &line, Request *request,
                  RequestError *error,
                  RequestTelemetry *telemetry = nullptr);

/**
 * Canonical serialization of the per-request sweep options — the
 * profile key under which the service shares explorer/optimizer
 * instances (and their warm memo caches) across requests.
 */
std::string optionsProfileKey(const dse::ExplorerOptions &options);

/**
 * Single-flight key for @p request.  For "explore" this is the full
 * serialized sweepKey of the (app, node, options, spec) tuple —
 * byte-identical inputs, never a digest; other commands prepend their
 * command and workload to the options profile.  @p explorer must be
 * the explorer the request will run on (its options are part of the
 * key).
 */
std::string requestKey(const Request &request,
                       const dse::DesignSpaceExplorer &explorer);

/** {"ok":true,...} envelope around an already-serialized result. */
std::string okEnvelope(const std::string &result_payload,
                       const Request *request);

/** {"ok":false,...} envelope; @p id (may be null) is echoed when
 *  @p has_id. */
std::string errorEnvelope(const RequestError &error, bool has_id,
                          const Json &id);

} // namespace moonwalk::serve

#endif // MOONWALK_SERVE_PROTOCOL_HH
