#include "serve/admission.hh"

#include <algorithm>

#include "obs/metrics.hh"

namespace moonwalk::serve {

AdmissionController::AdmissionController(int queue_depth,
                                        int per_connection)
    : queue_depth_(std::max(1, queue_depth)),
      per_connection_(std::max(1, per_connection))
{
}

AdmitReject
AdmissionController::tryAdmit(ConnectionBudget &conn,
                              RequestTelemetry *telemetry)
{
    PhaseTimer admission(telemetry, Phase::Admission);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (inflight_ >= queue_depth_)
            return AdmitReject::QueueFull;
        if (conn.inflight >= per_connection_)
            return AdmitReject::ConnectionLimit;
        ++inflight_;
        ++conn.inflight;
    }
    if (obs::metricsEnabled()) {
        auto &g = obs::metrics().gauge("serve.queue.depth");
        g.set(static_cast<double>(inflight()));
        obs::metrics().gauge("serve.queue.depth_max")
            .max(static_cast<double>(inflight()));
    }
    return AdmitReject::Admitted;
}

void
AdmissionController::release(ConnectionBudget &conn)
{
    bool idle;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --inflight_;
        --conn.inflight;
        idle = inflight_ == 0;
    }
    if (obs::metricsEnabled()) {
        obs::metrics().gauge("serve.queue.depth")
            .set(static_cast<double>(inflight()));
    }
    if (idle)
        idle_cv_.notify_all();
}

void
AdmissionController::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [&] { return inflight_ == 0; });
}

int
AdmissionController::inflight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return inflight_;
}

} // namespace moonwalk::serve
