#include "serve/service.hh"

#include <chrono>
#include <thread>
#include <vector>

#include "core/report.hh"
#include "obs/metrics.hh"
#include "tech/node.hh"
#include "util/error.hh"

namespace moonwalk::serve {

namespace {

/** Serialize one evaluated design point for the wire.  A subset of
 *  DesignPoint chosen to match the CLI's report output: the full
 *  configuration plus every figure of merit a client selecting
 *  designs needs; per-component cost/TCO breakdowns stay behind the
 *  "report" command, which returns the ReportGenerator's document. */
Json
pointJson(const dse::DesignPoint &p)
{
    Json j = Json::object();
    j.set("rcas_per_die", p.config.rcas_per_die);
    j.set("dies_per_lane", p.config.dies_per_lane);
    j.set("drams_per_die", p.config.drams_per_die);
    j.set("dies_per_server", p.config.diesPerServer());
    j.set("vdd", p.config.vdd);
    j.set("dark_fraction", p.config.dark_silicon_fraction);
    j.set("die_area_mm2", p.die_area_mm2);
    j.set("freq_mhz", p.freq_mhz);
    j.set("die_power_w", p.die_power_w);
    j.set("perf_ops", p.perf_ops);
    j.set("wall_power_w", p.wall_power_w);
    j.set("server_cost", p.server_cost);
    j.set("cost_per_ops", p.cost_per_ops);
    j.set("watts_per_ops", p.watts_per_ops);
    j.set("tco_per_ops", p.tco_per_ops);
    return j;
}

} // namespace

SweepService::SweepService(ServiceOptions options)
    : options_(std::move(options))
{
    if (options_.max_profiles < 1)
        options_.max_profiles = 1;
}

std::shared_ptr<core::MoonwalkOptimizer>
SweepService::profileFor(const dse::ExplorerOptions &options)
{
    const std::string key = optionsProfileKey(options);
    std::lock_guard<std::mutex> lock(profiles_mutex_);
    auto it = profiles_.find(key);
    if (it != profiles_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return it->second.optimizer;
    }

    // Server-owned knobs never come from the wire: every profile
    // shares one disk cache directory, and thread width follows the
    // process-global pool (options.max_threads stays 0).
    dse::ExplorerOptions effective = options;
    effective.cache_dir = options_.cache_dir;
    auto optimizer = std::make_shared<core::MoonwalkOptimizer>(
        dse::DesignSpaceExplorer{effective});

    lru_.push_front(key);
    profiles_.emplace(key, Profile{optimizer, lru_.begin()});
    while (profiles_.size() >
           static_cast<size_t>(options_.max_profiles)) {
        profiles_.erase(lru_.back());
        lru_.pop_back();
    }
    return optimizer;
}

std::shared_ptr<const std::string>
SweepService::handle(const Request &request,
                     RequestTelemetry *telemetry)
{
    if (request.cmd == "ping") {
        Json j;
        {
            PhaseTimer compute(telemetry, Phase::Compute);
            j = Json::object();
            j.set("pong", true);
        }
        PhaseTimer serialize(telemetry, Phase::Serialize);
        return std::make_shared<const std::string>(j.dump());
    }
    if (request.cmd == "stats") {
        // Never single-flighted: a stats snapshot must reflect the
        // moment of *this* request, not share a concurrent one.
        Json j;
        {
            PhaseTimer compute(telemetry, Phase::Compute);
            publishStats();
            j = Json::object();
            j.set("uptime_s", serveUptimeSeconds());
            Json requests = Json::object();
            requests.set("last_id",
                         static_cast<double>(lastRequestId()));
            j.set("requests", std::move(requests));
            j.set("metrics",
                  obs::MetricsRegistry::instance().toJson());
            Json flight = Json::object();
            flight.set("hits", static_cast<double>(flight_.hits()));
            flight.set("misses",
                       static_cast<double>(flight_.misses()));
            flight.set("inflight",
                       static_cast<double>(flight_.inflightKeys()));
            j.set("singleflight", std::move(flight));
            {
                std::lock_guard<std::mutex> lock(profiles_mutex_);
                j.set("profiles",
                      static_cast<double>(profiles_.size()));
            }
        }
        PhaseTimer serialize(telemetry, Phase::Serialize);
        return std::make_shared<const std::string>(j.dump());
    }

    auto optimizer = profileFor(request.options);
    const std::string key = requestKey(request, optimizer->explorer());
    bool shared = false;
    uint64_t wait_ns = 0;
    const uint64_t flight_begin_ns = obs::monotonicNowNs();
    auto result = flight_.run(
        key,
        [&] {
            // Only the leader's lambda runs, on the leader's own
            // thread, so @p telemetry here is always the leader's.
            if (telemetry)
                telemetry->flight = "leader";
            if (options_.handler_delay_ms > 0) {
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    options_.handler_delay_ms));
            }
            return computeResult(request, optimizer, telemetry);
        },
        &shared, &wait_ns);
    if (telemetry && shared) {
        telemetry->flight = "waiter";
        telemetry->source = "flight";
        telemetry->addPhase(Phase::FlightWait, flight_begin_ns,
                            wait_ns);
    }
    return result;
}

std::string
SweepService::computeResult(
    const Request &request,
    const std::shared_ptr<core::MoonwalkOptimizer> &optimizer,
    RequestTelemetry *telemetry)
{
    if (request.cmd == "explore") {
        Json j;
        {
            PhaseTimer compute(telemetry, Phase::Compute);
            dse::ExploreSource source = dse::ExploreSource::Computed;
            const auto result = optimizer->explorer().explore(
                request.app->rca, *request.node, &source);
            if (telemetry)
                telemetry->source = dse::to_string(source);
            j = Json::object();
            j.set("app", request.app->name());
            j.set("node", tech::to_string(*request.node));
            j.set("evaluated", static_cast<double>(result.evaluated));
            j.set("feasible", static_cast<double>(result.feasible));
            if (result.tco_optimal)
                j.set("tco_optimal", pointJson(*result.tco_optimal));
            else
                j.set("tco_optimal", nullptr);
            Json pareto = Json::array();
            for (const auto &p : result.pareto)
                pareto.push(pointJson(p));
            j.set("pareto", std::move(pareto));
        }
        PhaseTimer serialize(telemetry, Phase::Serialize);
        return j.dump();
    }
    if (request.cmd == "sweep") {
        Json j;
        {
            PhaseTimer compute(telemetry, Phase::Compute);
            if (telemetry)
                telemetry->source =
                    optimizer->hasSweepCached(*request.app)
                    ? "memo"
                    : "computed";
            const auto &sweep = optimizer->sweepNodes(*request.app);
            j = Json::object();
            j.set("app", request.app->name());
            Json nodes = Json::array();
            for (const auto &r : sweep) {
                Json row = Json::object();
                row.set("node", tech::to_string(r.node));
                row.set("tco_per_ops", r.optimal.tco_per_ops);
                row.set("cost_per_ops", r.optimal.cost_per_ops);
                row.set("watts_per_ops", r.optimal.watts_per_ops);
                row.set("nre_total", r.nre.total());
                row.set("design", pointJson(r.optimal));
                nodes.push(std::move(row));
            }
            j.set("nodes", std::move(nodes));
        }
        PhaseTimer serialize(telemetry, Phase::Serialize);
        return j.dump();
    }
    if (request.cmd == "report") {
        Json doc;
        {
            PhaseTimer compute(telemetry, Phase::Compute);
            if (telemetry)
                telemetry->source =
                    optimizer->hasSweepCached(*request.app)
                    ? "memo"
                    : "computed";
            core::ReportGenerator gen(*optimizer);
            doc = gen.toJson(*request.app, request.workload_tco);
        }
        PhaseTimer serialize(telemetry, Phase::Serialize);
        return doc.dump();
    }
    throw ModelError("serve: unhandled command " + request.cmd);
}

void
SweepService::publishStats() const
{
    if (!obs::metricsEnabled())
        return;
    std::vector<std::shared_ptr<core::MoonwalkOptimizer>> live;
    {
        std::lock_guard<std::mutex> lock(profiles_mutex_);
        live.reserve(profiles_.size());
        for (const auto &[key, profile] : profiles_)
            live.push_back(profile.optimizer);
    }
    for (size_t i = 0; i < live.size(); ++i) {
        live[i]->explorer().publishStats();
        // Every profile layers over the same directory; one scan.
        if (i == 0)
            live[i]->explorer().publishDiskUsage();
    }
    auto &reg = obs::metrics();
    reg.gauge("serve.singleflight.hits")
        .set(static_cast<double>(flight_.hits()));
    reg.gauge("serve.singleflight.misses")
        .set(static_cast<double>(flight_.misses()));
    reg.gauge("serve.profiles.open")
        .set(static_cast<double>(live.size()));
    reg.gauge("serve.uptime_s").set(serveUptimeSeconds());
    reg.gauge("serve.requests.last_id")
        .max(static_cast<double>(lastRequestId()));
}

} // namespace moonwalk::serve
