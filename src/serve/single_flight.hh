/**
 * @file
 * Single-flight deduplication for identical concurrent computations.
 *
 * A long-lived sweep service facing a thundering herd of identical
 * requests must not run the same multi-second exploration once per
 * caller.  SingleFlight keys each computation by a string (the serve
 * layer uses the full serialized sweepKey, so "identical" means
 * bit-identical inputs, never a hash guess): the first caller on a
 * key becomes the *leader* and runs the computation; every caller
 * arriving while the leader is in flight becomes a *waiter* and
 * blocks until the leader publishes, then receives the same
 * shared_ptr — waiters observe byte-identical results by
 * construction, without recomputing or copying.
 *
 * Entries live only while a computation is in flight: once the leader
 * publishes (or throws), the key is removed, and the next caller
 * leads again.  Memoization across completed requests is a different
 * concern and stays where it already lives (the explorer's sharded
 * memo and the persistent disk cache underneath it); stacking
 * single-flight on top closes exactly the window those layers leave
 * open — the interval between the first miss and its insert, during
 * which a naive server computes N times.
 *
 * A leader's exception propagates to every waiter (each waiter
 * rethrows the shared exception_ptr); the failed key is removed
 * first, so a retry computes afresh instead of inheriting the error.
 *
 * Waiters block the calling thread.  When callers run on the shared
 * exec pool this parks a worker, which is safe — the leader never
 * needs an idle worker to finish, because exec::parallelFor's caller
 * always participates in (and can fully drain) its own work — but it
 * does reduce the pool's effective width; the serve layer bounds the
 * damage with admission control.
 */
#ifndef MOONWALK_SERVE_SINGLE_FLIGHT_HH
#define MOONWALK_SERVE_SINGLE_FLIGHT_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "obs/metrics.hh"

namespace moonwalk::serve {

/**
 * The deduplicator.  Value is the (immutable, shared) computation
 * result; all methods are safe to call from many threads.
 */
template <typename Value>
class SingleFlight
{
  public:
    /**
     * Run @p compute for @p key, deduplicating against concurrent
     * calls: the leader computes, waiters block and share the
     * leader's result.  @p was_shared (optional) reports whether this
     * call received another caller's in-flight result rather than
     * computing; @p wait_ns (optional) reports how long a waiter
     * blocked on the leader (0 for the leader itself), so the serve
     * telemetry can attribute a deduped request's latency to the
     * flight-wait phase.  Rethrows the leader's exception on failure.
     */
    template <typename Compute>
    std::shared_ptr<const Value> run(const std::string &key,
                                     Compute &&compute,
                                     bool *was_shared = nullptr,
                                     uint64_t *wait_ns = nullptr)
    {
        std::shared_ptr<Flight> flight;
        bool leader = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = inflight_.find(key);
            if (it == inflight_.end()) {
                flight = std::make_shared<Flight>();
                inflight_.emplace(key, flight);
                leader = true;
            } else {
                flight = it->second;
            }
        }
        if (was_shared)
            *was_shared = !leader;
        if (wait_ns)
            *wait_ns = 0;

        if (!leader) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            const uint64_t wait_begin =
                wait_ns ? obs::monotonicNowNs() : 0;
            std::unique_lock<std::mutex> lock(flight->mutex);
            flight->done_cv.wait(lock, [&] { return flight->done; });
            if (wait_ns)
                *wait_ns = obs::monotonicNowNs() - wait_begin;
            if (flight->error)
                std::rethrow_exception(flight->error);
            return flight->value;
        }

        misses_.fetch_add(1, std::memory_order_relaxed);
        std::shared_ptr<const Value> value;
        std::exception_ptr error;
        try {
            value = std::make_shared<const Value>(compute());
        } catch (...) {
            error = std::current_exception();
        }
        // Unpublish before waking waiters: a brand-new caller landing
        // after the erase must lead its own flight (and, on failure,
        // must not join a flight that only carries an exception).
        {
            std::lock_guard<std::mutex> lock(mutex_);
            inflight_.erase(key);
        }
        {
            std::lock_guard<std::mutex> lock(flight->mutex);
            flight->value = value;
            flight->error = error;
            flight->done = true;
        }
        flight->done_cv.notify_all();
        if (error)
            std::rethrow_exception(error);
        return value;
    }

    /** Calls served by another caller's in-flight computation. */
    uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }
    /** Calls that led a computation of their own. */
    uint64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }
    /** Keys currently in flight (diagnostics). */
    size_t inflightKeys() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return inflight_.size();
    }

  private:
    struct Flight
    {
        std::mutex mutex;
        std::condition_variable done_cv;
        bool done = false;
        std::shared_ptr<const Value> value;
        std::exception_ptr error;
    };

    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<Flight>> inflight_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

} // namespace moonwalk::serve

#endif // MOONWALK_SERVE_SINGLE_FLIGHT_HH
