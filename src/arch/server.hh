/**
 * @file
 * ASIC Cloud server structure (Section 3): RCAs -> die -> packaged
 * ASIC -> lane -> 1U server with 8 ducted lanes.
 */
#ifndef MOONWALK_ARCH_SERVER_HH
#define MOONWALK_ARCH_SERVER_HH

#include "arch/dram.hh"
#include "arch/rca.hh"
#include "tech/node.hh"

namespace moonwalk::arch {

/** Number of ducted lanes in a 1U ASIC Cloud server (Section 5.3). */
constexpr int kLanesPerServer = 8;

/**
 * A point in the server design space: everything the designer chooses.
 */
struct ServerConfig
{
    tech::NodeId node = tech::NodeId::N28;
    int rcas_per_die = 1;
    int dies_per_lane = 1;
    int drams_per_die = 0;
    /** Logic supply voltage (V). */
    double vdd = 0.9;
    /** Extra dark silicon fraction added to the die to spread hotspots
     *  (Deep Learning, Section 6.3). */
    double dark_silicon_fraction = 0.0;

    int diesPerServer() const { return dies_per_lane * kLanesPerServer; }
    int rcasPerServer() const { return diesPerServer() * rcas_per_die; }
    int dramsPerServer() const { return diesPerServer() * drams_per_die; }
};

/**
 * Die floorplan areas implied by a config (mm^2).
 */
struct DieFloorplan
{
    double rca_area = 0;      ///< replicated array
    double dram_if_area = 0;  ///< DRAM controller + PHY macros
    double top_area = 0;      ///< NoC column + IO ring
    double dark_area = 0;     ///< hotspot-spreading fill

    double total() const
    {
        return rca_area + dram_if_area + top_area + dark_area;
    }
};

/**
 * Compute the floorplan of @p cfg for @p rca at @p node.
 *
 * The top level carries the 15K-gate NoC/IO overhead of the NRE model
 * (Table 3); its area is negligible but kept explicit so yield math
 * has a defect-sensitive region.
 */
DieFloorplan computeFloorplan(const RcaSpec &rca,
                              const tech::TechNode &node,
                              const ServerConfig &cfg);

} // namespace moonwalk::arch

#endif // MOONWALK_ARCH_SERVER_HH
