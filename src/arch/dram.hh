/**
 * @file
 * Per-generation DRAM device parameters (Section 6.3: SDRAM at
 * 250/180nm, DDR at 130/90nm, LPDDR3 from 65nm).
 */
#ifndef MOONWALK_ARCH_DRAM_HH
#define MOONWALK_ARCH_DRAM_HH

#include "tech/node.hh"

namespace moonwalk::arch {

/** One DRAM device as placed next to an ASIC on the lane PCB. */
struct DramSpec
{
    /** Peak interface bandwidth per device (bytes/s). */
    double bandwidth_bps;
    /** Device unit cost ($). */
    double unit_cost;
    /** Active device power (W). */
    double power_w;
    /** Lane board length consumed per device (mm). */
    double board_pitch_mm;
};

/** Device parameters for the generation available at @p gen. */
inline DramSpec
dramSpec(tech::DramGeneration gen)
{
    switch (gen) {
      case tech::DramGeneration::SDR:
        // PC133-class SDRAM; slightly dearer than LPDDR per device
        // (Section 6.3: "DRAM cost increases marginally due to use of
        // SDRAM instead of LPDDR").
        return {0.5e9, 6.0, 0.9, 10.0};
      case tech::DramGeneration::DDR:
        return {1.6e9, 5.0, 0.9, 10.0};
      case tech::DramGeneration::LPDDR3:
        return {6.4e9, 5.0, 0.7, 9.0};
    }
    return {0, 0, 0, 0};
}

/** Die area (mm^2) of one DRAM controller + PHY macro at a node;
 *  mixed-signal PHYs scale roughly with S, not S^2. */
inline double
dramInterfaceAreaMm2(const tech::TechNode &node)
{
    return 10.0 * (node.feature_nm / 28.0);
}

} // namespace moonwalk::arch

#endif // MOONWALK_ARCH_DRAM_HH
