/**
 * @file
 * Off-PCB interface selection (paper Section 3: "RPCs that come from
 * the off-PCB interface (1-100 GigE, RDMA, PCI-e, etc)").  Each
 * application moves some bytes per op across the server boundary;
 * the cheapest interface tier that sustains the server's throughput
 * is selected, and its cost replaces the flat NIC charge.
 */
#ifndef MOONWALK_ARCH_OFFCHIP_HH
#define MOONWALK_ARCH_OFFCHIP_HH

#include <optional>
#include <string>
#include <vector>

namespace moonwalk::arch {

/** One selectable off-PCB interface option. */
struct OffPcbInterface
{
    std::string name;
    double bandwidth_bps;  ///< full-duplex payload bandwidth
    double cost;           ///< NIC/PHY + cabling share ($)
    double power_w;        ///< interface power at the server
};

/** The selectable menu, cheapest first (late-2016 pricing). */
const std::vector<OffPcbInterface> &offPcbMenu();

/** A selected interface, possibly replicated (multiple cages of the
 *  top tier for bandwidth-extreme servers). */
struct OffPcbSelection
{
    OffPcbInterface nic;
    int count = 1;

    double totalCost() const { return nic.cost * count; }
    double totalPowerW() const { return nic.power_w * count; }
    double totalBandwidthBps() const
    {
        return nic.bandwidth_bps * count;
    }
};

/**
 * Cheapest selection sustaining @p required_bps; the top tier is
 * replicated when a single interface is insufficient.  A
 * non-positive requirement selects the control-plane minimum
 * (one 1 GigE).
 */
OffPcbSelection selectOffPcb(double required_bps);

} // namespace moonwalk::arch

#endif // MOONWALK_ARCH_OFFCHIP_HH
