#include "arch/offchip.hh"

namespace moonwalk::arch {

const std::vector<OffPcbInterface> &
offPcbMenu()
{
    // Payload bandwidths are deliberately conservative (~80% of line
    // rate) to cover protocol overheads.
    static const std::vector<OffPcbInterface> menu = {
        {"1 GigE", 0.1e9, 15.0, 2.0},
        {"10 GigE", 1.0e9, 80.0, 6.0},
        {"40 GigE", 4.0e9, 180.0, 10.0},
        {"100 GigE", 10.0e9, 400.0, 18.0},
    };
    return menu;
}

OffPcbSelection
selectOffPcb(double required_bps)
{
    const auto &menu = offPcbMenu();
    for (const auto &nic : menu)
        if (nic.bandwidth_bps >= required_bps)
            return {nic, 1};
    // Replicate the top tier (multiple QSFP cages + bonded links).
    const auto &top = menu.back();
    const int count = static_cast<int>(
        (required_bps + top.bandwidth_bps - 1.0) /
        top.bandwidth_bps);
    return {top, count};
}

} // namespace moonwalk::arch
