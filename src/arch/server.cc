#include "arch/server.hh"

#include "util/error.hh"

namespace moonwalk::arch {

DieFloorplan
computeFloorplan(const RcaSpec &rca, const tech::TechNode &node,
                 const ServerConfig &cfg)
{
    if (cfg.rcas_per_die < 1)
        fatal("die needs at least one RCA");
    if (cfg.dark_silicon_fraction < 0.0 ||
        cfg.dark_silicon_fraction > 0.5) {
        fatal("dark silicon fraction out of range: ",
              cfg.dark_silicon_fraction);
    }

    DieFloorplan fp;
    fp.rca_area = cfg.rcas_per_die * rca.areaAtNode(node.density_factor);
    fp.dram_if_area = cfg.drams_per_die * dramInterfaceAreaMm2(node);
    // 15K gates of top-level NoC/IO at the node's logic density;
    // 460K gates/mm^2 at the 28nm reference (see DESIGN.md).
    constexpr double kRefGatesPerMm2 = 460e3;
    fp.top_area = 15e3 / (kRefGatesPerMm2 * node.density_factor);
    fp.dark_area = cfg.dark_silicon_fraction *
        (fp.rca_area + fp.dram_if_area);
    return fp;
}

} // namespace moonwalk::arch
