/**
 * @file
 * Replicated Compute Accelerator (RCA) specification.
 *
 * An RCA is the unit of replication in an ASIC Cloud die (Section 3).
 * Performance and energy are anchored at the 28nm reference node and
 * nominal voltage (0.9V) and projected to other (node, voltage) points
 * by tech::ScalingModel; the anchors for the paper's four applications
 * are derived from Tables 5-10 (see DESIGN.md).
 */
#ifndef MOONWALK_ARCH_RCA_HH
#define MOONWALK_ARCH_RCA_HH

#include <string>
#include <vector>

namespace moonwalk::arch {

/**
 * One replicated compute accelerator.
 *
 * "op" below is the application-level operation: a double-SHA256 hash
 * for Bitcoin, an scrypt hash for Litecoin, a transcoded frame for
 * Video Transcode, a fixed-point MAC-equivalent op for Deep Learning.
 */
struct RcaSpec
{
    std::string name;
    /** Display unit for server throughput, e.g. "GH/s". */
    std::string perf_unit;
    /** ops/s divided by this gives the display unit value. */
    double perf_unit_scale = 1.0;

    /** Unique design gates per RCA (paper Table 5). */
    double gate_count = 0;
    /** Application ops completed per RCA per clock cycle. */
    double ops_per_cycle = 0;
    /** Clock frequency at 28nm, 0.9V (MHz). */
    double f_nominal_28_mhz = 0;
    /** Silicon energy per op at 28nm, 0.9V (J); excludes power
     *  delivery losses and fans, which the server model adds. */
    double energy_per_op_28_j = 0;
    /** Die area per RCA at 28nm including its NoC share (mm^2). */
    double area_28_mm2 = 0;
    /** Fraction of RCA area that is SRAM (informational). */
    double sram_fraction = 0;
    /** Fraction of the energy per op that scales with node
     *  capacitance (1/S).  The remainder (eDRAM arrays, off-chip I/O
     *  drivers) stays constant across nodes.  1.0 for pure-logic
     *  accelerators. */
    double energy_scaling_fraction = 1.0;

    // -- Constraints and platform needs --------------------------------
    /** If positive, the clock is pinned to this frequency at every node
     *  to satisfy the application SLA (Deep Learning, Section 5.3). */
    double sla_fixed_freq_mhz = 0;
    /** DRAM bytes moved per op; zero means no external DRAM. */
    double bytes_per_op = 0;
    /** Bytes crossing the server's off-PCB interface per op (RPC
     *  payload in + out); zero means control-plane traffic only. */
    double offpcb_bytes_per_op = 0;
    /** Needs a PCI-E / HyperTransport class link (Deep Learning). */
    bool needs_high_speed_link = false;
    /** Uses LVDS off-chip signaling (high off-PCB bandwidth). */
    bool needs_lvds = false;
    /** If non-empty, only these RCA-per-die counts are allowed (the
     *  DaDianNao 1x1/2x1/2x2/3x3/2x4 grids, Section 5.3). */
    std::vector<int> allowed_rcas_per_die;
    /** Server-level RCA count must be a multiple of this (the 8x8 DDN
     *  system needs 64 nodes). */
    int server_rca_multiple = 1;
    /** Explorer may add dark silicon to spread hotspots
     *  (Section 6.3, Deep Learning). */
    bool allow_dark_silicon = false;

    /** Per-RCA die area (mm^2) at a node with the given density factor
     *  (relative to 28nm). */
    double areaAtNode(double density_factor) const
    {
        return area_28_mm2 / density_factor;
    }
};

} // namespace moonwalk::arch

#endif // MOONWALK_ARCH_RCA_HH
