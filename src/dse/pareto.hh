/**
 * @file
 * Pareto-front extraction over (cost per op/s, watts per op/s), the
 * two figures of merit of the paper's Figures 4 and 6.
 */
#ifndef MOONWALK_DSE_PARETO_HH
#define MOONWALK_DSE_PARETO_HH

#include <vector>

#include "dse/design_point.hh"

namespace moonwalk::dse {

/**
 * Return the non-dominated subset of @p points, sorted by ascending
 * cost_per_ops (and hence descending watts_per_ops).
 */
std::vector<DesignPoint> paretoFront(std::vector<DesignPoint> points);

/**
 * True if no point in @p front dominates another (sanity invariant
 * used by property tests).
 */
bool isParetoFront(const std::vector<DesignPoint> &front);

} // namespace moonwalk::dse

#endif // MOONWALK_DSE_PARETO_HH
