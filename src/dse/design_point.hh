/**
 * @file
 * A fully evaluated server design point: the unit of currency of the
 * design-space explorer and of every results table in the paper.
 */
#ifndef MOONWALK_DSE_DESIGN_POINT_HH
#define MOONWALK_DSE_DESIGN_POINT_HH

#include <string>

#include "arch/server.hh"
#include "cost/server_bom.hh"
#include "tco/tco_model.hh"

namespace moonwalk::dse {

/**
 * One feasible server design with all derived metrics.
 */
struct DesignPoint
{
    arch::ServerConfig config;

    // -- Physical ------------------------------------------------------
    double die_area_mm2 = 0;
    double freq_mhz = 0;
    /** Fraction of peak compute throughput actually delivered (below
     *  1.0 when DRAM bandwidth is the binding constraint). */
    double compute_utilization = 1.0;
    /** Thermal headroom: per-die power limit from the lane model (W). */
    double max_die_power_w = 0;
    double die_power_w = 0;

    // -- Server-level results -------------------------------------------
    double perf_ops = 0;          ///< application ops/s per server
    double silicon_power_w = 0;   ///< all dies, dynamic + leakage
    double dram_power_w = 0;
    double fan_power_w = 0;
    double wall_power_w = 0;      ///< at the plug, after PSU/DCDC loss
    double die_cost = 0;          ///< one die, $
    /** Selected off-PCB interface (e.g. "10 GigE") and cage count. */
    std::string offpcb_interface;
    int offpcb_count = 1;
    cost::ServerCostBreakdown cost_breakdown;
    double server_cost = 0;       ///< cost_breakdown.total()
    tco::TcoBreakdown tco_breakdown;

    // -- Figures of merit ------------------------------------------------
    double cost_per_ops = 0;   ///< $ per op/s   (x axis of Fig 4/6)
    double watts_per_ops = 0;  ///< W per op/s   (y axis of Fig 4/6)
    double tco_per_ops = 0;    ///< the optimization target

    /** True iff this point dominates @p o in both Pareto metrics. */
    bool dominates(const DesignPoint &o) const
    {
        return cost_per_ops <= o.cost_per_ops &&
            watts_per_ops <= o.watts_per_ops &&
            (cost_per_ops < o.cost_per_ops ||
             watts_per_ops < o.watts_per_ops);
    }
};

} // namespace moonwalk::dse

#endif // MOONWALK_DSE_DESIGN_POINT_HH
