#include "dse/evaluator.hh"

#include <algorithm>
#include <cmath>

#include "arch/dram.hh"
#include "arch/offchip.hh"
#include "obs/metrics.hh"
#include "util/error.hh"

namespace moonwalk::dse {

namespace {

// Out-of-line so the registry lookup never lands in evaluate()'s hot
// path; only reached when metrics collection is switched on.
[[gnu::noinline]] void
bumpCounter(const std::string &name)
{
    obs::metrics().counter(name).inc();
}

} // namespace

ServerEvaluator::ServerEvaluator(const tech::TechDatabase &db,
                                 thermal::LaneEnvironment lane_env,
                                 cost::ServerBomParams bom,
                                 tco::TcoParameters tco_params,
                                 EvaluatorOptions options)
    : scaling_(db), lane_(lane_env), bom_(bom), tco_(tco_params),
      options_(options)
{}

int
ServerEvaluator::maxRcasPerDie(const arch::RcaSpec &rca,
                               const tech::TechNode &node,
                               int drams_per_die, double dark) const
{
    const double fixed = drams_per_die *
        arch::dramInterfaceAreaMm2(node);
    const double per_rca =
        rca.areaAtNode(node.density_factor) * (1.0 + dark);
    const double budget = node.max_die_area_mm2 - fixed -
        fixed * dark - 0.5;  // small allowance for the top level
    if (budget <= 0.0)
        return 0;
    return static_cast<int>(budget / per_rca);
}

EvalResult
ServerEvaluator::evaluate(const arch::RcaSpec &rca,
                          const arch::ServerConfig &cfg) const
{
    EvalResult result;
    eval_calls_->fetch_add(1, std::memory_order_relaxed);
    // One relaxed load up front; all metric updates below hide
    // behind it (out of line, [[unlikely]]) so the default
    // (disabled) path stays benchmark-neutral.
    const bool counted = obs::metricsEnabled();
    if (counted) [[unlikely]]
        bumpCounter("dse.evaluations");
    // @p slug is a stable machine-readable tag for the reject-reason
    // counters; @p reason stays the human-readable API string.
    auto reject = [&](const char *slug, std::string reason) {
        if (counted) [[unlikely]]
            bumpCounter(std::string("dse.infeasible.") + slug);
        result.infeasible_reason = std::move(reason);
        return result;
    };

    const tech::TechNode &node = scaling_.database().node(cfg.node);

    if (cfg.dies_per_lane < 1 || cfg.rcas_per_die < 1)
        return reject("empty_config", "empty configuration");
    if (rca.bytes_per_op > 0.0 && cfg.drams_per_die < 1)
        return reject("needs_dram", "application needs DRAM");

    // -- Voltage and frequency ------------------------------------------
    double vdd = cfg.vdd;
    double freq_mhz;
    if (rca.sla_fixed_freq_mhz > 0.0) {
        // SLA-pinned clock (Deep Learning): the voltage is whatever
        // reaches the target frequency, never below the node minimum.
        const double v_needed = scaling_.voltageForFrequency(
            node, rca.sla_fixed_freq_mhz, rca.f_nominal_28_mhz);
        if (v_needed < 0.0)
            return reject("sla_unreachable",
                          "SLA frequency unreachable at " + node.name);
        vdd = std::max(v_needed, node.vdd_min);
        freq_mhz = rca.sla_fixed_freq_mhz;
    } else {
        if (vdd < node.vdd_min || vdd > node.vddMax())
            return reject("voltage_range", "voltage out of range");
        freq_mhz = scaling_.frequencyMhz(node, vdd,
                                         rca.f_nominal_28_mhz);
        if (freq_mhz <= 0.0)
            return reject("below_vth", "below threshold voltage");
    }

    // -- Die floorplan ----------------------------------------------------
    const auto fp = computeFloorplan(rca, node, cfg);
    const double area = fp.total();
    if (area > node.max_die_area_mm2)
        return reject("reticle", "die exceeds reticle");

    // -- Server grouping (DaDianNao 8x8 systems) -------------------------
    if (cfg.rcasPerServer() % rca.server_rca_multiple != 0)
        return reject("server_grouping",
                      "server RCA count not a system multiple");
    if (!rca.allowed_rcas_per_die.empty() &&
        std::find(rca.allowed_rcas_per_die.begin(),
                  rca.allowed_rcas_per_die.end(), cfg.rcas_per_die) ==
            rca.allowed_rcas_per_die.end()) {
        return reject("rca_grid", "RCA grid not in allowed set");
    }

    // -- Performance per die ----------------------------------------------
    const double good_rca =
        cost::DieCostModel{}.goodRcaFraction(
            node, rca.areaAtNode(node.density_factor));
    const double compute_ops = cfg.rcas_per_die * freq_mhz * 1e6 *
        rca.ops_per_cycle * good_rca;
    double ops_per_die = compute_ops;
    double utilization = 1.0;
    if (rca.bytes_per_op > 0.0) {
        const auto dram = arch::dramSpec(node.dram_generation);
        const double bw_ops = cfg.drams_per_die * dram.bandwidth_bps /
            rca.bytes_per_op;
        if (bw_ops < ops_per_die) {
            ops_per_die = bw_ops;
            utilization = bw_ops / compute_ops;
        }
    }

    // -- Power per die ------------------------------------------------------
    const double e_op = scaling_.energyPerOpJ(
        node, vdd, rca.energy_per_op_28_j,
        rca.energy_scaling_fraction);
    const double active_area = fp.rca_area + fp.dram_if_area +
        fp.top_area;
    const double leak_w = scaling_.leakagePowerW(node, vdd, active_area);
    const double die_power = e_op * ops_per_die + leak_w;

    // -- Lane board space ----------------------------------------------------
    const auto dram = arch::dramSpec(node.dram_generation);
    const double extra_pitch = options_.die_board_margin_mm +
        cfg.drams_per_die * (rca.bytes_per_op > 0 ?
                             dram.board_pitch_mm : 0.0);
    const int fit = lane_.maxDiesPerLane(area, extra_pitch);
    if (cfg.dies_per_lane > std::min(fit, options_.max_dies_per_lane))
        return reject("lane_fit", "dies do not fit the lane");

    // -- Thermal feasibility -----------------------------------------------
    const auto &thermal = lane_.solve(cfg.dies_per_lane, area);
    if (die_power > thermal.max_power_per_die_w)
        return reject("thermal", "junction temperature limit");

    // -- Server power ----------------------------------------------------------
    const int dies = cfg.diesPerServer();
    const double silicon_power = dies * die_power;
    const double dram_power = rca.bytes_per_op > 0 ?
        cfg.dramsPerServer() * dram.power_w : 0.0;
    const double fan_power =
        arch::kLanesPerServer * thermal.fan_power_w;
    // Off-PCB interface sized to the server's RPC traffic.
    const auto nic = arch::selectOffPcb(
        dies * ops_per_die * rca.offpcb_bytes_per_op);
    // Power delivery sized to this design point: logic rail through
    // current-sized DC/DC phases, 12V-class loads (DRAM, fans, NIC)
    // straight from the PSU.
    const auto pd = power::planPowerDelivery(
        silicon_power, vdd, dies,
        dram_power + fan_power + nic.totalPowerW(), bom_.psu,
        bom_.dcdc);
    const double wall = pd.wall_power_w;
    if (wall > bom_.max_server_power_w)
        return reject("power_budget", "exceeds server power budget");

    // -- Costs ----------------------------------------------------------------
    DesignPoint p;
    p.config = cfg;
    p.config.vdd = vdd;
    p.die_area_mm2 = area;
    p.freq_mhz = freq_mhz;
    p.compute_utilization = utilization;
    p.max_die_power_w = thermal.max_power_per_die_w;
    p.die_power_w = die_power;
    p.perf_ops = dies * ops_per_die;
    p.silicon_power_w = silicon_power;
    p.dram_power_w = dram_power;
    p.fan_power_w = fan_power;
    p.wall_power_w = wall;
    p.die_cost = cost::DieCostModel{}.dieCost(node, area, fp.top_area);

    auto &cb = p.cost_breakdown;
    cb.silicon = dies * p.die_cost;
    cb.package = dies * bom_.packageCost(area);
    cb.cooling = dies * thermal.heatsink_unit_cost +
        arch::kLanesPerServer * lane_.environment().fan.unit_cost;
    cb.power_delivery = pd.totalCost();
    cb.dram = rca.bytes_per_op > 0 ?
        cfg.dramsPerServer() * dram.unit_cost : 0.0;
    cb.system = bom_.pcb_cost + bom_.fpga_controller_cost +
        bom_.chassis_assembly_cost + nic.totalCost();
    p.offpcb_interface = nic.nic.name;
    p.offpcb_count = nic.count;
    p.server_cost = cb.total();

    p.tco_breakdown = tco_.compute(p.server_cost, wall);
    p.cost_per_ops = p.server_cost / p.perf_ops;
    p.watts_per_ops = wall / p.perf_ops;
    p.tco_per_ops = p.tco_breakdown.total() / p.perf_ops;

    if (counted) [[unlikely]]
        bumpCounter("dse.feasible");
    result.point = p;
    return result;
}

} // namespace moonwalk::dse
