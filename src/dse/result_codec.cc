#include "dse/result_codec.hh"

#include <cstring>

namespace moonwalk::dse {

namespace {

constexpr uint32_t kMagic = 0x4d574552;  // "MWER"

/**
 * Append-only little encoder.  Fixed-width values are emitted
 * byte-by-byte, least-significant first — the encoding is defined as
 * little-endian, and shifting (rather than memcpy) makes the emitted
 * bytes independent of the host's own byte order.
 */
class Writer
{
  public:
    explicit Writer(std::string &out) : out_(out) {}

    void u32(uint32_t v) { le(v, 4); }
    void u64(uint64_t v) { le(v, 8); }
    void i32(int32_t v) { le(static_cast<uint32_t>(v), 4); }
    void f64(double v)
    {
        uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        le(bits, 8);
    }
    void str(const std::string &s)
    {
        u64(s.size());
        out_.append(s);
    }

  private:
    void le(uint64_t v, int bytes)
    {
        for (int i = 0; i < bytes; ++i)
            out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    std::string &out_;
};

/** Mirror-image reader; every method reports truncation. */
class Reader
{
  public:
    explicit Reader(std::string_view in) : in_(in) {}

    bool u32(uint32_t *v)
    {
        uint64_t wide = 0;
        if (!le(&wide, 4))
            return false;
        *v = static_cast<uint32_t>(wide);
        return true;
    }
    bool u64(uint64_t *v) { return le(v, 8); }
    bool i32(int32_t *v)
    {
        uint32_t u = 0;
        if (!u32(&u))
            return false;
        *v = static_cast<int32_t>(u);
        return true;
    }
    bool f64(double *v)
    {
        uint64_t bits = 0;
        if (!le(&bits, 8))
            return false;
        std::memcpy(v, &bits, sizeof(*v));
        return true;
    }
    bool str(std::string *s)
    {
        uint64_t n = 0;
        if (!u64(&n) || n > in_.size() - pos_)
            return false;
        s->assign(in_.data() + pos_, n);
        pos_ += n;
        return true;
    }
    bool exhausted() const { return pos_ == in_.size(); }

  private:
    bool le(uint64_t *v, int bytes)
    {
        if (in_.size() - pos_ < static_cast<size_t>(bytes))
            return false;
        uint64_t out = 0;
        for (int i = 0; i < bytes; ++i) {
            out |= static_cast<uint64_t>(
                       static_cast<unsigned char>(in_[pos_ + i]))
                << (8 * i);
        }
        pos_ += static_cast<size_t>(bytes);
        *v = out;
        return true;
    }
    std::string_view in_;
    size_t pos_ = 0;
};

void
encodePoint(Writer &w, const DesignPoint &p)
{
    w.i32(static_cast<int32_t>(p.config.node));
    w.i32(p.config.rcas_per_die);
    w.i32(p.config.dies_per_lane);
    w.i32(p.config.drams_per_die);
    w.f64(p.config.vdd);
    w.f64(p.config.dark_silicon_fraction);

    w.f64(p.die_area_mm2);
    w.f64(p.freq_mhz);
    w.f64(p.compute_utilization);
    w.f64(p.max_die_power_w);
    w.f64(p.die_power_w);

    w.f64(p.perf_ops);
    w.f64(p.silicon_power_w);
    w.f64(p.dram_power_w);
    w.f64(p.fan_power_w);
    w.f64(p.wall_power_w);
    w.f64(p.die_cost);
    w.str(p.offpcb_interface);
    w.i32(p.offpcb_count);
    w.f64(p.cost_breakdown.silicon);
    w.f64(p.cost_breakdown.package);
    w.f64(p.cost_breakdown.cooling);
    w.f64(p.cost_breakdown.power_delivery);
    w.f64(p.cost_breakdown.dram);
    w.f64(p.cost_breakdown.system);
    w.f64(p.server_cost);
    w.f64(p.tco_breakdown.server_capex);
    w.f64(p.tco_breakdown.datacenter_capex);
    w.f64(p.tco_breakdown.energy);
    w.f64(p.tco_breakdown.interest);

    w.f64(p.cost_per_ops);
    w.f64(p.watts_per_ops);
    w.f64(p.tco_per_ops);
}

bool
decodePoint(Reader &r, DesignPoint *p)
{
    int32_t node = 0;
    bool ok = r.i32(&node);
    p->config.node = static_cast<tech::NodeId>(node);
    ok = ok && r.i32(&p->config.rcas_per_die);
    ok = ok && r.i32(&p->config.dies_per_lane);
    ok = ok && r.i32(&p->config.drams_per_die);
    ok = ok && r.f64(&p->config.vdd);
    ok = ok && r.f64(&p->config.dark_silicon_fraction);

    ok = ok && r.f64(&p->die_area_mm2);
    ok = ok && r.f64(&p->freq_mhz);
    ok = ok && r.f64(&p->compute_utilization);
    ok = ok && r.f64(&p->max_die_power_w);
    ok = ok && r.f64(&p->die_power_w);

    ok = ok && r.f64(&p->perf_ops);
    ok = ok && r.f64(&p->silicon_power_w);
    ok = ok && r.f64(&p->dram_power_w);
    ok = ok && r.f64(&p->fan_power_w);
    ok = ok && r.f64(&p->wall_power_w);
    ok = ok && r.f64(&p->die_cost);
    ok = ok && r.str(&p->offpcb_interface);
    ok = ok && r.i32(&p->offpcb_count);
    ok = ok && r.f64(&p->cost_breakdown.silicon);
    ok = ok && r.f64(&p->cost_breakdown.package);
    ok = ok && r.f64(&p->cost_breakdown.cooling);
    ok = ok && r.f64(&p->cost_breakdown.power_delivery);
    ok = ok && r.f64(&p->cost_breakdown.dram);
    ok = ok && r.f64(&p->cost_breakdown.system);
    ok = ok && r.f64(&p->server_cost);
    ok = ok && r.f64(&p->tco_breakdown.server_capex);
    ok = ok && r.f64(&p->tco_breakdown.datacenter_capex);
    ok = ok && r.f64(&p->tco_breakdown.energy);
    ok = ok && r.f64(&p->tco_breakdown.interest);

    ok = ok && r.f64(&p->cost_per_ops);
    ok = ok && r.f64(&p->watts_per_ops);
    ok = ok && r.f64(&p->tco_per_ops);
    return ok;
}

} // namespace

std::string
encodeExplorationResult(const ExplorationResult &result)
{
    std::string out;
    // Dominated by the point lists; 300 bytes is a generous per-point
    // estimate that avoids repeated growth.
    out.reserve(64 +
                300 * (result.pareto.size() +
                       result.all_feasible.size() + 1));
    Writer w(out);
    w.u32(kMagic);
    w.u32(kResultCodecVersion);
    w.u32(kResultCodecByteOrderMark);
    w.u64(result.evaluated);
    w.u64(result.feasible);
    w.u32(result.tco_optimal ? 1 : 0);
    if (result.tco_optimal)
        encodePoint(w, *result.tco_optimal);
    w.u64(result.pareto.size());
    for (const auto &p : result.pareto)
        encodePoint(w, p);
    w.u64(result.all_feasible.size());
    for (const auto &p : result.all_feasible)
        encodePoint(w, p);
    return out;
}

std::optional<ExplorationResult>
decodeExplorationResult(std::string_view bytes)
{
    Reader r(bytes);
    uint32_t magic = 0, version = 0, bom = 0;
    if (!r.u32(&magic) || magic != kMagic || !r.u32(&version) ||
        version != kResultCodecVersion)
        return std::nullopt;
    // The mark reads back correctly only from a little-endian
    // encoding; a byte-swapped (foreign-order or legacy host-endian)
    // payload fails here instead of misdecoding every field after it.
    if (!r.u32(&bom) || bom != kResultCodecByteOrderMark)
        return std::nullopt;

    ExplorationResult result;
    uint64_t evaluated = 0, feasible = 0, count = 0;
    uint32_t has_optimal = 0;
    if (!r.u64(&evaluated) || !r.u64(&feasible) ||
        !r.u32(&has_optimal) || has_optimal > 1)
        return std::nullopt;
    result.evaluated = evaluated;
    result.feasible = feasible;
    if (has_optimal) {
        DesignPoint p;
        if (!decodePoint(r, &p))
            return std::nullopt;
        result.tco_optimal = std::move(p);
    }
    if (!r.u64(&count) || count > bytes.size())
        return std::nullopt;
    result.pareto.resize(count);
    for (auto &p : result.pareto)
        if (!decodePoint(r, &p))
            return std::nullopt;
    if (!r.u64(&count) || count > bytes.size())
        return std::nullopt;
    result.all_feasible.resize(count);
    for (auto &p : result.all_feasible)
        if (!decodePoint(r, &p))
            return std::nullopt;
    if (!r.exhausted())
        return std::nullopt;  // trailing garbage is not our encoding
    return result;
}

} // namespace moonwalk::dse
