#include "dse/explorer.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>

#include "dse/result_codec.hh"
#include "dse/sweep_model_hash.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/math.hh"

namespace moonwalk::dse {

namespace {

/**
 * Voltage span below which an adaptive sweep window counts as a
 * single point.  The bisection in maxFeasibleVoltage resolves the
 * boundary to (vddMax - vdd_min) / 2^30 ≈ 5e-10 V, so any window
 * tighter than a nanovolt is numerically one voltage: sweeping
 * voltage_steps copies of it would waste evaluations and emit
 * duplicate design points.
 */
constexpr double kVoltageSpanTolV = 1e-9;

} // namespace

const char *const kSweepModelVersion =
    "sweep-model-" MOONWALK_SWEEP_MODEL_HASH;

std::string
sweepCacheVersionStamp()
{
    // The stamp couples model semantics (kSweepModelVersion) with
    // the payload layout (codec version): bumping either makes
    // every old entry evict on load instead of misdecoding.
    return std::string(kSweepModelVersion) + "/codec-" +
        std::to_string(kResultCodecVersion);
}

DesignSpaceExplorer::DesignSpaceExplorer(ExplorerOptions options,
                                         ServerEvaluator evaluator)
    : options_(std::move(options)), evaluator_(std::move(evaluator)),
      sweep_cache_(std::make_shared<SweepCache>())
{
    const std::string dir =
        exec::PersistentCache::resolveDir(options_.cache_dir);
    if (!dir.empty()) {
        disk_cache_ = std::make_shared<exec::PersistentCache>(
            dir, sweepCacheVersionStamp());
    }
}

std::vector<int>
DesignSpaceExplorer::rcaCountCandidates(const arch::RcaSpec &rca,
                                        tech::NodeId node,
                                        int drams_per_die,
                                        double dark) const
{
    const auto &tn = evaluator_.scaling().database().node(node);
    const int n_max =
        evaluator_.maxRcasPerDie(rca, tn, drams_per_die, dark);
    if (n_max < 1)
        return {};

    if (!rca.allowed_rcas_per_die.empty()) {
        std::vector<int> out;
        for (int n : rca.allowed_rcas_per_die)
            if (n <= n_max)
                out.push_back(n);
        return out;
    }

    // Geometric grid from 1 to n_max, deduplicated; always includes
    // the reticle-limited maximum, since amortizing fixed server cost
    // over the largest possible die is frequently optimal (Fig 4).
    std::set<int> grid;
    const int steps = std::max(2, options_.rca_count_steps);
    const double ratio = std::pow(static_cast<double>(n_max),
                                  1.0 / (steps - 1));
    double x = 1.0;
    for (int i = 0; i < steps; ++i) {
        grid.insert(static_cast<int>(std::lround(x)));
        x *= ratio;
    }
    grid.insert(n_max);
    return {grid.begin(), grid.end()};
}

DesignSpaceExplorer::VoltageWindow
DesignSpaceExplorer::maxFeasibleVoltage(const ServerEvaluator &ev,
                                        const arch::RcaSpec &rca,
                                        tech::NodeId node,
                                        int rcas_per_die,
                                        int dies_per_lane,
                                        int drams_per_die,
                                        double dark) const
{
    const auto &tn = ev.scaling().database().node(node);
    arch::ServerConfig cfg;
    cfg.node = node;
    cfg.rcas_per_die = rcas_per_die;
    cfg.dies_per_lane = dies_per_lane;
    cfg.drams_per_die = drams_per_die;
    cfg.dark_silicon_fraction = dark;

    // Every probe below is an evaluate() call and is tallied in the
    // returned window so ExplorationResult::evaluated can report the
    // evaluator's true workload (the self-check harness holds it to
    // exact equality against ServerEvaluator::evaluateCalls()).
    VoltageWindow win;

    cfg.vdd = tn.vdd_min;
    ++win.evaluated;
    if (!ev.evaluate(rca, cfg).feasible())
        return win;  // structurally infeasible (or too hot even NTV)

    cfg.vdd = tn.vddMax();
    ++win.evaluated;
    if (ev.evaluate(rca, cfg).feasible()) {
        win.v_hi = tn.vddMax();
        return win;
    }

    // Thermal and power-budget violations are monotone in voltage:
    // bisect the feasibility boundary.
    double lo = tn.vdd_min;
    double hi = tn.vddMax();
    for (int i = 0; i < 30; ++i) {
        cfg.vdd = 0.5 * (lo + hi);
        ++win.evaluated;
        if (ev.evaluate(rca, cfg).feasible())
            lo = cfg.vdd;
        else
            hi = cfg.vdd;
    }
    win.v_hi = lo;
    return win;
}

double
DesignSpaceExplorer::maxFeasibleVoltage(const arch::RcaSpec &rca,
                                        tech::NodeId node,
                                        int rcas_per_die,
                                        int dies_per_lane,
                                        int drams_per_die,
                                        double dark) const
{
    return maxFeasibleVoltage(evaluator_, rca, node, rcas_per_die,
                              dies_per_lane, drams_per_die, dark).v_hi;
}

void
DesignSpaceExplorer::sweepConfig(const ServerEvaluator &ev,
                                 const arch::RcaSpec &rca,
                                 tech::NodeId node, int rcas_per_die,
                                 int drams_per_die, double dark,
                                 std::vector<DesignPoint> &feasible,
                                 size_t &evaluated) const
{
    const auto &tn = ev.scaling().database().node(node);
    const int max_dies = ev.options().max_dies_per_lane;

    for (int dies = 1; dies <= max_dies; ++dies) {
        arch::ServerConfig cfg;
        cfg.node = node;
        cfg.rcas_per_die = rcas_per_die;
        cfg.dies_per_lane = dies;
        cfg.drams_per_die = drams_per_die;
        cfg.dark_silicon_fraction = dark;

        if (rca.sla_fixed_freq_mhz > 0.0) {
            // The SLA pins the voltage; a single evaluation suffices.
            cfg.vdd = tn.vdd_nominal;
            ++evaluated;
            auto r = ev.evaluate(rca, cfg);
            if (r.feasible())
                feasible.push_back(std::move(*r.point));
            continue;
        }

        // Adaptive window: sweep only up to the highest feasible
        // voltage, so power-dense designs (whose thermal ceiling sits
        // barely above Vmin) still get a dense grid.  The boundary
        // search's own probes (up to 2 + 30 bisection steps) count
        // toward `evaluated`; a window collapsed to vdd_min yields one
        // sweep point, not voltage_steps copies of the same voltage.
        const auto win = maxFeasibleVoltage(
            ev, rca, node, rcas_per_die, dies, drams_per_die, dark);
        evaluated += win.evaluated;
        if (win.v_hi < 0.0)
            continue;
        for (double vdd : linspace(tn.vdd_min, win.v_hi,
                                   options_.voltage_steps,
                                   kVoltageSpanTolV)) {
            cfg.vdd = vdd;
            ++evaluated;
            auto r = ev.evaluate(rca, cfg);
            if (r.feasible())
                feasible.push_back(std::move(*r.point));
        }
    }
}

ServerEvaluator &
DesignSpaceExplorer::workerEvaluator() const
{
    // Each participating thread clones the prototype on first use and
    // keeps the clone (and its warming thermal cache) for all later
    // sweeps by this explorer.  The prototype itself is never solved
    // during parallel sections, so cloning races only against other
    // read-only uses.
    return worker_evaluators_.get([this] { return evaluator_; });
}

std::string
DesignSpaceExplorer::sweepKey(const arch::RcaSpec &rca,
                              tech::NodeId node) const
{
    // Every distinguishing field is serialized into the key verbatim
    // (doubles by exact bit pattern) rather than folded into a 64-bit
    // digest: a hash collision between two perturbed specs sharing an
    // application name would silently return the wrong cached sweep,
    // and sensitivity studies generate exactly that key population.
    // Vector fields are length-prefixed so adjacent fields can never
    // alias across the separator.
    std::string key;
    key.reserve(384);
    auto addInt = [&key](long long v) {
        key += std::to_string(v);
        key += '|';
    };
    auto addBits = [&key](double v) {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        char buf[2 + sizeof(bits) * 2 + 1];
        std::snprintf(buf, sizeof(buf), "%016llx|",
                      static_cast<unsigned long long>(bits));
        key += buf;
    };
    key += rca.name;
    key += '|';
    key += evaluator_.scaling().database().node(node).name;
    key += '|';
    addInt(options_.voltage_steps);
    addInt(options_.rca_count_steps);
    addInt(options_.max_drams_per_die);
    addInt(options_.keep_feasible_points);
    addInt(static_cast<long long>(options_.dark_fractions.size()));
    for (double dark : options_.dark_fractions)
        addBits(dark);
    // Evaluator policy knobs shape the sweep too (sweepConfig reads
    // max_dies_per_lane, evaluate() reads the board margin), and the
    // cache is shared across explorer copies — omitting them aliased
    // copies differing only in evaluator options to one key.
    addInt(evaluator_.options().max_dies_per_lane);
    addBits(evaluator_.options().die_board_margin_mm);
    // The RCA spec by content, not identity: sensitivity studies sweep
    // perturbed specs under one application name.
    addBits(rca.gate_count);
    addBits(rca.ops_per_cycle);
    addBits(rca.f_nominal_28_mhz);
    addBits(rca.energy_per_op_28_j);
    addBits(rca.area_28_mm2);
    addBits(rca.energy_scaling_fraction);
    addBits(rca.sla_fixed_freq_mhz);
    addBits(rca.bytes_per_op);
    addBits(rca.offpcb_bytes_per_op);
    addInt(rca.needs_high_speed_link);
    addInt(rca.needs_lvds);
    addInt(rca.server_rca_multiple);
    addInt(rca.allow_dark_silicon);
    addInt(static_cast<long long>(rca.allowed_rcas_per_die.size()));
    for (int n : rca.allowed_rcas_per_die)
        addInt(n);
    return key;
}

const char *
to_string(ExploreSource source)
{
    switch (source) {
    case ExploreSource::Memo:
        return "memo";
    case ExploreSource::Disk:
        return "disk";
    case ExploreSource::Computed:
        return "computed";
    }
    return "unknown";
}

ExplorationResult
DesignSpaceExplorer::explore(const arch::RcaSpec &rca,
                             tech::NodeId node,
                             ExploreSource *source) const
{
    if (!options_.cache_sweeps) {
        if (source)
            *source = ExploreSource::Computed;
        return exploreUncached(rca, node);
    }
    // A memo hit never runs the lambda, so Memo is the default the
    // lambda overwrites when it does run.
    if (source)
        *source = ExploreSource::Memo;
    const std::string key = sweepKey(rca, node);
    auto result = sweep_cache_->getOrCompute(key, [&] {
        // Miss in memory: try the disk layer before recomputing.  A
        // valid entry must decode — the digest already checked out —
        // but a decode failure is still treated as corruption, never
        // trusted or propagated.
        if (disk_cache_) {
            if (auto blob = disk_cache_->load(key)) {
                if (auto decoded = decodeExplorationResult(*blob)) {
                    if (source)
                        *source = ExploreSource::Disk;
                    return std::move(*decoded);
                }
                disk_cache_->discardCorrupt(key);
            }
        }
        if (source)
            *source = ExploreSource::Computed;
        auto computed = exploreUncached(rca, node);
        if (disk_cache_)
            disk_cache_->store(key,
                               encodeExplorationResult(computed));
        return computed;
    });
    publishStats();
    return result;
}

void
DesignSpaceExplorer::publishStats() const
{
    if (!obs::metricsEnabled())
        return;
    auto &reg = obs::metrics();
    auto rate = [](uint64_t hits, uint64_t misses) {
        const uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    };
    const uint64_t sweep_hits = sweep_cache_->hits();
    const uint64_t sweep_misses = sweep_cache_->misses();
    reg.gauge("dse.sweep_cache.hits")
        .set(static_cast<double>(sweep_hits));
    reg.gauge("dse.sweep_cache.misses")
        .set(static_cast<double>(sweep_misses));
    reg.gauge("dse.sweep_cache.inserts")
        .set(static_cast<double>(sweep_cache_->inserts()));
    reg.gauge("dse.sweep_cache.hit_rate")
        .set(rate(sweep_hits, sweep_misses));
    if (disk_cache_) {
        const auto disk = disk_cache_->stats();
        reg.gauge("sweep.diskcache.hits")
            .set(static_cast<double>(disk.hits));
        reg.gauge("sweep.diskcache.misses")
            .set(static_cast<double>(disk.misses));
        reg.gauge("sweep.diskcache.inserts")
            .set(static_cast<double>(disk.inserts));
        reg.gauge("sweep.diskcache.evictions")
            .set(static_cast<double>(disk.evictions));
        reg.gauge("sweep.diskcache.corrupt")
            .set(static_cast<double>(disk.corrupt));
    }
    const uint64_t th_hits = thermalCacheHits();
    const uint64_t th_misses = thermalCacheMisses();
    reg.gauge("thermal.cache.hits").set(static_cast<double>(th_hits));
    reg.gauge("thermal.cache.misses")
        .set(static_cast<double>(th_misses));
    reg.gauge("thermal.cache.hit_rate").set(rate(th_hits, th_misses));
}

void
DesignSpaceExplorer::publishDiskUsage() const
{
    if (!obs::metricsEnabled() || !disk_cache_)
        return;
    const auto usage = disk_cache_->usage();
    auto &reg = obs::metrics();
    reg.gauge("sweep.diskcache.entries")
        .set(static_cast<double>(usage.entries));
    reg.gauge("sweep.diskcache.bytes")
        .set(static_cast<double>(usage.bytes));
}

ExplorationResult
DesignSpaceExplorer::exploreUncached(const arch::RcaSpec &rca,
                                     tech::NodeId node) const
{
    const std::string node_name =
        evaluator_.scaling().database().node(node).name;
    // One span per (application, node) sweep; the trace file shows
    // where a multi-node optimization spends its time.
    obs::TraceSpan span("explore " + rca.name + " @ " + node_name,
                        "dse");
    span.arg("app", rca.name).arg("node", node_name);
    const bool counted = obs::metricsEnabled();
    const uint64_t t0 = counted ? obs::monotonicNowNs() : 0;

    ExplorationResult result;
    std::vector<DesignPoint> feasible;

    const std::vector<double> darks = rca.allow_dark_silicon ?
        options_.dark_fractions : std::vector<double>{0.0};

    std::vector<int> dram_counts;
    if (rca.bytes_per_op > 0.0) {
        for (int d = 1; d <= options_.max_drams_per_die; ++d)
            dram_counts.push_back(d);
    } else {
        dram_counts.push_back(0);
    }

    // Materialize the (dark, DRAMs/die, RCAs/die) outer grid in the
    // exact order the serial nested loops visited it, then sweep the
    // cells in parallel.  Concatenating per-cell results in grid order
    // (the ordered-reduction rule) makes the feasible list — and every
    // tie-break downstream — bit-identical at any thread count.
    struct GridCell { double dark; int drams; int rcas; };
    std::vector<GridCell> grid;
    for (double dark : darks) {
        for (int drams : dram_counts) {
            for (int n : rcaCountCandidates(rca, node, drams, dark))
                grid.push_back({dark, drams, n});
        }
    }

    struct CellResult
    {
        std::vector<DesignPoint> feasible;
        size_t evaluated = 0;
    };
    auto cells = exec::parallelMap<CellResult>(
        grid.size(),
        [&](size_t i) {
            const ServerEvaluator &ev = workerEvaluator();
            CellResult cell;
            sweepConfig(ev, rca, node, grid[i].rcas, grid[i].drams,
                        grid[i].dark, cell.feasible, cell.evaluated);
            return cell;
        },
        options_.max_threads);
    for (auto &cell : cells) {
        result.evaluated += cell.evaluated;
        std::move(cell.feasible.begin(), cell.feasible.end(),
                  std::back_inserter(feasible));
    }

    const size_t coarse_evaluated = result.evaluated;

    // Local refinement around the best RCA count: the geometric grid
    // can miss the true optimum by a few RCAs, which matters when
    // comparing against ported designs (Section 6.2).  Six cells only,
    // so it runs on the calling thread (with its worker clone — the
    // prototype must stay quiescent while sibling explorations run).
    if (!feasible.empty() && rca.allowed_rcas_per_die.empty()) {
        const auto coarse_best = *std::min_element(
            feasible.begin(), feasible.end(),
            [](const DesignPoint &a, const DesignPoint &b) {
                return a.tco_per_ops < b.tco_per_ops;
            });
        const ServerEvaluator &ev = workerEvaluator();
        const int n0 = coarse_best.config.rcas_per_die;
        const int step = std::max(1, n0 / 50);
        // The coarse grid for the best cell was already swept above;
        // re-sweeping a candidate that sits on it (near-certain at
        // small n0, where step == 1 makes n0±1..3 land on the dense
        // low end of the geometric grid) would append duplicate
        // DesignPoints, inflating result.feasible and polluting the
        // Pareto front.  Candidates past the reticle limit are
        // skipped too — every voltage there is rejected anyway.
        const int drams = coarse_best.config.drams_per_die;
        const double dark = coarse_best.config.dark_silicon_fraction;
        const auto coarse_counts =
            rcaCountCandidates(rca, node, drams, dark);
        const std::set<int> visited(coarse_counts.begin(),
                                    coarse_counts.end());
        const int n_max = ev.maxRcasPerDie(
            rca, ev.scaling().database().node(node), drams, dark);
        for (int n : {n0 - 3 * step, n0 - 2 * step, n0 - step,
                      n0 + step, n0 + 2 * step, n0 + 3 * step}) {
            if (n < 1 || n > n_max || visited.count(n))
                continue;
            sweepConfig(ev, rca, node, n, drams, dark, feasible,
                        result.evaluated);
        }
    }

    result.feasible = feasible.size();
    if (!feasible.empty()) {
        result.tco_optimal = *std::min_element(
            feasible.begin(), feasible.end(),
            [](const DesignPoint &a, const DesignPoint &b) {
                return a.tco_per_ops < b.tco_per_ops;
            });
        if (options_.keep_feasible_points)
            result.all_feasible = feasible;
        result.pareto = paretoFront(std::move(feasible));
    }

    if (counted) {
        auto &reg = obs::metrics();
        reg.timer("dse.sweep." + rca.name + "." + node_name)
            .record(obs::monotonicNowNs() - t0);
        reg.counter("dse.refinement.evaluations")
            .inc(result.evaluated - coarse_evaluated);
        // Snapshot both caches' totals (prototype plus all worker
        // clones) so the dump shows how well sweeps reuse solves.
        publishStats();
    }
    span.arg("evaluated", static_cast<double>(result.evaluated))
        .arg("feasible", static_cast<double>(result.feasible));
    MOONWALK_LOG(Info, "dse.explore")
        .msg("sweep done")
        .field("app", rca.name)
        .field("node", node_name)
        .field("evaluated", result.evaluated)
        .field("feasible", result.feasible)
        .field("pareto", result.pareto.size());
    return result;
}

uint64_t
DesignSpaceExplorer::thermalCacheHits() const
{
    uint64_t total = evaluator_.lane().cacheHits();
    worker_evaluators_.forEach([&](const ServerEvaluator &ev) {
        total += ev.lane().cacheHits();
    });
    return total;
}

uint64_t
DesignSpaceExplorer::thermalCacheMisses() const
{
    uint64_t total = evaluator_.lane().cacheMisses();
    worker_evaluators_.forEach([&](const ServerEvaluator &ev) {
        total += ev.lane().cacheMisses();
    });
    return total;
}

std::vector<DesignPoint>
DesignSpaceExplorer::sweepVoltage(const arch::RcaSpec &rca,
                                  tech::NodeId node, int rcas_per_die,
                                  int dies_per_lane,
                                  int drams_per_die) const
{
    const auto &tn = evaluator_.scaling().database().node(node);
    std::vector<DesignPoint> out;
    const double v_hi = maxFeasibleVoltage(rca, node, rcas_per_die,
                                           dies_per_lane,
                                           drams_per_die, 0.0);
    if (v_hi < 0.0)
        return out;
    for (double vdd : linspace(tn.vdd_min, v_hi,
                               options_.voltage_steps,
                               kVoltageSpanTolV)) {
        arch::ServerConfig cfg;
        cfg.node = node;
        cfg.rcas_per_die = rcas_per_die;
        cfg.dies_per_lane = dies_per_lane;
        cfg.drams_per_die = drams_per_die;
        cfg.vdd = vdd;
        auto r = evaluator_.evaluate(rca, cfg);
        if (r.feasible())
            out.push_back(std::move(*r.point));
    }
    return out;
}

ExplorationResult
DesignSpaceExplorer::exploreFixedDie(const arch::RcaSpec &rca,
                                     tech::NodeId node,
                                     int rcas_per_die,
                                     int drams_per_die,
                                     double dark) const
{
    ExplorationResult result;
    std::vector<DesignPoint> feasible;
    sweepConfig(evaluator_, rca, node, rcas_per_die, drams_per_die,
                dark, feasible, result.evaluated);
    result.feasible = feasible.size();
    if (!feasible.empty()) {
        result.tco_optimal = *std::min_element(
            feasible.begin(), feasible.end(),
            [](const DesignPoint &a, const DesignPoint &b) {
                return a.tco_per_ops < b.tco_per_ops;
            });
        if (options_.keep_feasible_points)
            result.all_feasible = feasible;
        result.pareto = paretoFront(std::move(feasible));
    }
    return result;
}

} // namespace moonwalk::dse
