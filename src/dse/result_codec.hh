/**
 * @file
 * Bit-exact binary serialization of ExplorationResult, the payload
 * format of the persistent sweep cache (exec/persistent_cache.hh).
 *
 * Every field of every DesignPoint is encoded verbatim — doubles by
 * bit pattern, strings length-prefixed — so a decoded result is
 * byte-for-byte indistinguishable from the freshly computed one (the
 * self-check harness digests both at precision 17 and insists).  The
 * encoding is host-endian: the cache lives on one machine, not on the
 * wire.
 *
 * kResultCodecVersion is folded into the persistent cache's version
 * stamp, so a layout change silently invalidates old entries instead
 * of misdecoding them.  decode additionally re-verifies a leading
 * magic/version and exact trailing length, and returns nullopt — to
 * be treated as a corrupt entry — on any mismatch.
 */
#ifndef MOONWALK_DSE_RESULT_CODEC_HH
#define MOONWALK_DSE_RESULT_CODEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dse/explorer.hh"

namespace moonwalk::dse {

/** Bump on any layout change below. */
inline constexpr uint32_t kResultCodecVersion = 1;

/** Serialize @p result; never fails. */
std::string encodeExplorationResult(const ExplorationResult &result);

/** Parse an encodeExplorationResult() payload; nullopt when @p bytes
 *  is not exactly one well-formed current-version encoding. */
std::optional<ExplorationResult>
decodeExplorationResult(std::string_view bytes);

} // namespace moonwalk::dse

#endif // MOONWALK_DSE_RESULT_CODEC_HH
