/**
 * @file
 * Bit-exact binary serialization of ExplorationResult, the payload
 * format of the persistent sweep cache (exec/persistent_cache.hh).
 *
 * Every field of every DesignPoint is encoded verbatim — doubles by
 * bit pattern, strings length-prefixed — so a decoded result is
 * byte-for-byte indistinguishable from the freshly computed one (the
 * self-check harness digests both at precision 17 and insists).
 *
 * Byte order is little-endian by definition, serialized byte-by-byte
 * (no memcpy of multi-byte values), so the same entry bytes decode on
 * any host.  Version 1 wrote raw host-endian words, which made a
 * cache directory silently non-portable between hosts of different
 * endianness; version 2 adds an explicit byte-order mark right after
 * the magic/version words, and the decoder rejects any payload whose
 * mark does not read back as little-endian — a foreign or legacy
 * encoding is treated as corrupt and recomputed, never misdecoded.
 *
 * kResultCodecVersion is folded into the persistent cache's version
 * stamp, so a layout change silently invalidates old entries instead
 * of misdecoding them.  decode additionally re-verifies a leading
 * magic/version/byte-order mark and exact trailing length, and
 * returns nullopt — to be treated as a corrupt entry — on any
 * mismatch.
 */
#ifndef MOONWALK_DSE_RESULT_CODEC_HH
#define MOONWALK_DSE_RESULT_CODEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dse/explorer.hh"

namespace moonwalk::dse {

/** Bump on any layout change below.  v2: explicit little-endian
 *  encoding with a byte-order mark (v1 was raw host-endian). */
inline constexpr uint32_t kResultCodecVersion = 2;

/** The byte-order mark: these exact bytes follow the version word,
 *  i.e. 0x04 0x03 0x02 0x01 on the wire (little-endian). */
inline constexpr uint32_t kResultCodecByteOrderMark = 0x01020304;

/** Serialize @p result; never fails. */
std::string encodeExplorationResult(const ExplorationResult &result);

/** Parse an encodeExplorationResult() payload; nullopt when @p bytes
 *  is not exactly one well-formed current-version encoding. */
std::optional<ExplorationResult>
decodeExplorationResult(std::string_view bytes);

} // namespace moonwalk::dse

#endif // MOONWALK_DSE_RESULT_CODEC_HH
