/**
 * @file
 * Design-space explorer (Section 5.1/5.2): sweeps RCAs per die, dies
 * per lane, DRAMs per ASIC, logic voltage (and dark-silicon fill for
 * Deep Learning), and reports the Pareto frontier and TCO-optimal
 * server design for an application at a technology node.
 *
 * explore() runs the (dark fraction x DRAMs/die x RCAs/die) outer
 * grid in parallel on the exec runtime.  Each participating thread
 * evaluates with its own clone of the ServerEvaluator (whose thermal
 * solve cache is not shareable across threads; see evaluator.hh), and
 * per-cell results are combined strictly in grid-index order — the
 * exec ordered-reduction rule — so every exploration result is
 * bit-identical at any thread count.  Completed explorations are
 * memoized in a sharded cache keyed by the full (app, node, options,
 * spec-content) tuple.
 */
#ifndef MOONWALK_DSE_EXPLORER_HH
#define MOONWALK_DSE_EXPLORER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dse/evaluator.hh"
#include "dse/pareto.hh"
#include "exec/parallel.hh"
#include "exec/persistent_cache.hh"
#include "exec/sweep_cache.hh"

namespace moonwalk::dse {

/**
 * Version stamp of everything that turns a sweep key into numbers:
 * evaluator, thermal, cost, TCO, and explorer code.  Persistent
 * sweep-cache entries written under any other stamp are discarded on
 * load.  The value is "sweep-model-<hash>", where <hash> is a
 * build-time content hash over every model-layer source (see
 * cmake/sweep_model_hash.cmake), so any code change that could alter
 * model results invalidates old entries automatically — there is no
 * manual bump to forget, which previously risked the differential
 * self-check trusting a stale entry as ground truth.  Defined in
 * explorer.cc from the generated header.
 */
extern const char *const kSweepModelVersion;

/**
 * The version stamp persistent sweep-cache entries are written under:
 * kSweepModelVersion coupled with the result-codec version.  The CLI
 * cache subcommands open the cache directory with exactly this stamp
 * so their view matches what the explorer reads and writes.
 */
std::string sweepCacheVersionStamp();

/** Sweep granularity knobs. */
struct ExplorerOptions
{
    int voltage_steps = 40;
    /** Approximate number of RCA-count candidates (geometric grid). */
    int rca_count_steps = 48;
    int max_drams_per_die = 12;
    /** Dark-silicon fractions tried when the RCA allows them. */
    std::vector<double> dark_fractions = {0.0, 0.05, 0.10, 0.15, 0.20};
    /**
     * Threads participating in one exploration (and, via the
     * optimizer, in node/app fan-out): 0 = the global pool width
     * (--jobs / MOONWALK_JOBS / hardware_concurrency), 1 = fully
     * serial.  Results are identical at every setting.
     */
    int max_threads = 0;
    /** Memoize completed explore() calls per (app, node, options).
     *  false bypasses BOTH the in-memory memo and the disk cache. */
    bool cache_sweeps = true;
    /**
     * Directory for the persistent on-disk sweep cache, layered under
     * the in-memory memo.  Empty (the default) falls back to the
     * MOONWALK_CACHE_DIR environment variable; when that is unset too,
     * the disk cache is off.  Entries are keyed by the full sweepKey()
     * and stamped with kSweepModelVersion + the result-codec version,
     * so results survive process restarts but never a model change.
     * Not part of sweepKey(): the directory names where results live,
     * not what they are.
     */
    std::string cache_dir;
    /**
     * Retain every feasible DesignPoint in
     * ExplorationResult::all_feasible, not just the Pareto front.
     * Off by default (the full list can be large); the self-check
     * harness and duplicate-detection tests turn it on.
     */
    bool keep_feasible_points = false;
};

/**
 * Which layer satisfied an explore() call: the in-memory memo, the
 * persistent disk cache, or a fresh computation.  Reported through
 * explore()'s optional out-parameter so callers (the serve access
 * log) can attribute latency to the layer that produced the result.
 */
enum class ExploreSource
{
    Memo,      ///< in-memory sharded memo hit
    Disk,      ///< persistent-cache load (decoded and verified)
    Computed,  ///< full sweep ran (cache miss or caching disabled)
};

const char *to_string(ExploreSource source);

/** Everything an exploration produces. */
struct ExplorationResult
{
    /** Non-dominated designs in ($/op/s, W/op/s). */
    std::vector<DesignPoint> pareto;
    /** The design minimizing TCO per op/s, if any design is feasible. */
    std::optional<DesignPoint> tco_optimal;
    /**
     * Every feasible point, in deterministic sweep order; populated
     * only when ExplorerOptions::keep_feasible_points is set.
     */
    std::vector<DesignPoint> all_feasible;
    /** evaluate() calls issued, including feasibility-boundary
     *  bisection probes. */
    size_t evaluated = 0;
    size_t feasible = 0;
};

/**
 * The explorer.  Holds a prototype ServerEvaluator (cloned per worker
 * thread during parallel sweeps); one instance can explore many
 * (application, node) pairs, concurrently.
 *
 * Thread-safety: explore() may be called from many threads at once
 * (the optimizer fans out across nodes and apps); the sweep cache is
 * sharded and worker clones are per-thread.  The remaining public
 * sweep helpers (sweepVoltage, exploreFixedDie, maxFeasibleVoltage)
 * use the prototype evaluator directly and must not race with each
 * other, but are safe to call between parallel explorations.
 */
class DesignSpaceExplorer
{
  public:
    /** Opens the persistent cache when options (or the environment)
     *  name a cache directory; defined in explorer.cc. */
    explicit DesignSpaceExplorer(ExplorerOptions options = {},
                                 ServerEvaluator evaluator = {});

    const ServerEvaluator &evaluator() const { return evaluator_; }
    const ExplorerOptions &options() const { return options_; }

    /** Full sweep for @p rca at @p node.  @p source (optional)
     *  reports which cache layer satisfied the call. */
    ExplorationResult explore(const arch::RcaSpec &rca,
                              tech::NodeId node,
                              ExploreSource *source = nullptr) const;

    /**
     * Voltage sweep at a fixed (RCAs/die, dies/lane, DRAMs/die)
     * configuration; the curves of Figure 4.  Infeasible voltages are
     * omitted.
     */
    std::vector<DesignPoint> sweepVoltage(const arch::RcaSpec &rca,
                                          tech::NodeId node,
                                          int rcas_per_die,
                                          int dies_per_lane,
                                          int drams_per_die = 0) const;

    /** RCA-count candidates used by explore() at @p node. */
    std::vector<int> rcaCountCandidates(const arch::RcaSpec &rca,
                                        tech::NodeId node,
                                        int drams_per_die,
                                        double dark) const;

    /**
     * Re-optimize only voltage and lane packing for a fixed die design
     * (used by the Section 6.2 porting study, where RCAs per die and
     * DRAMs per ASIC are frozen but the PCB is redesigned).
     */
    ExplorationResult exploreFixedDie(const arch::RcaSpec &rca,
                                      tech::NodeId node,
                                      int rcas_per_die,
                                      int drams_per_die,
                                      double dark) const;

    /**
     * Highest feasible supply voltage for a configuration (thermal
     * and power limits are monotone in voltage), or a negative value
     * when the configuration is infeasible at every voltage.
     */
    double maxFeasibleVoltage(const arch::RcaSpec &rca,
                              tech::NodeId node, int rcas_per_die,
                              int dies_per_lane, int drams_per_die,
                              double dark) const;

    // -- Aggregated runtime statistics ---------------------------------
    /** Thermal solve-cache totals summed over the prototype evaluator
     *  and every per-worker clone. */
    uint64_t thermalCacheHits() const;
    uint64_t thermalCacheMisses() const;
    /** Exploration memo-cache totals for this explorer instance. */
    uint64_t sweepCacheHits() const { return sweep_cache_->hits(); }
    uint64_t sweepCacheMisses() const { return sweep_cache_->misses(); }
    uint64_t sweepCacheInserts() const { return sweep_cache_->inserts(); }

    /** The persistent disk cache, or nullptr when off.  Shared (like
     *  the in-memory memo) across copies of this explorer. */
    const exec::PersistentCache *diskCache() const
    {
        return disk_cache_.get();
    }
    uint64_t diskCacheHits() const
    {
        return disk_cache_ ? disk_cache_->hits() : 0;
    }
    uint64_t diskCacheMisses() const
    {
        return disk_cache_ ? disk_cache_->misses() : 0;
    }
    uint64_t diskCacheInserts() const
    {
        return disk_cache_ ? disk_cache_->inserts() : 0;
    }

    /**
     * Publish both caches' totals (and derived hit rates) as gauges in
     * the metrics registry: thermal.cache.{hits,misses,hit_rate},
     * dse.sweep_cache.{hits,misses,inserts,hit_rate} and — when the
     * disk layer is on —
     * sweep.diskcache.{hits,misses,inserts,evictions,corrupt}.
     * Called after
     * each memoized explore(); callers that bypass explore() (or want
     * final totals in a run report) may call it directly.  No-op when
     * metrics collection is off.
     */
    void publishStats() const;

    /**
     * Publish the disk cache's on-disk footprint as
     * sweep.diskcache.{entries,bytes} gauges.  Unlike publishStats()
     * this scans the cache directory (O(entries)), so it is called
     * only on explicit demand — `moonwalk cache stats`, the serve
     * layer's "stats" command — never per sweep.  No-op when metrics
     * collection or the disk layer is off.
     */
    void publishDiskUsage() const;

    /**
     * Memo key for the sweep cache: app|node|every sweep-relevant
     * explorer option, evaluator option, and RCA-spec field serialized
     * verbatim (no hashing, so no collisions).  Public so the
     * self-check harness and regression tests can assert that every
     * result-distinguishing knob — including EvaluatorOptions, which
     * an earlier version omitted — reaches the key.
     */
    std::string sweepKey(const arch::RcaSpec &rca,
                         tech::NodeId node) const;

  private:
    using SweepCache = exec::ShardedCache<std::string, ExplorationResult>;

    /** Feasibility-boundary search result: the highest feasible
     *  voltage (negative when none) and the evaluate() calls spent
     *  finding it, which accounting must charge to the sweep. */
    struct VoltageWindow
    {
        double v_hi = -1.0;
        size_t evaluated = 0;
    };

    /** The actual sweep, bypassing the memo cache. */
    ExplorationResult exploreUncached(const arch::RcaSpec &rca,
                                      tech::NodeId node) const;

    VoltageWindow maxFeasibleVoltage(const ServerEvaluator &ev,
                                     const arch::RcaSpec &rca,
                                     tech::NodeId node, int rcas_per_die,
                                     int dies_per_lane, int drams_per_die,
                                     double dark) const;

    void sweepConfig(const ServerEvaluator &ev,
                     const arch::RcaSpec &rca, tech::NodeId node,
                     int rcas_per_die, int drams_per_die, double dark,
                     std::vector<DesignPoint> &feasible,
                     size_t &evaluated) const;

    /** This thread's evaluator clone (clone-per-worker contract). */
    ServerEvaluator &workerEvaluator() const;

    ExplorerOptions options_;
    ServerEvaluator evaluator_;
    /** Per-thread evaluator clones for parallel sweeps.  Copies of
     *  the explorer start with no clones. */
    mutable exec::WorkerLocal<ServerEvaluator> worker_evaluators_;
    /** Shared across copies of this explorer (same models, same
     *  options => same results). */
    std::shared_ptr<SweepCache> sweep_cache_;
    /** Disk layer under the memo; nullptr when no cache directory is
     *  configured.  Stats are per-instance but shared by copies. */
    std::shared_ptr<exec::PersistentCache> disk_cache_;
};

} // namespace moonwalk::dse

#endif // MOONWALK_DSE_EXPLORER_HH
