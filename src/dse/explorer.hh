/**
 * @file
 * Design-space explorer (Section 5.1/5.2): sweeps RCAs per die, dies
 * per lane, DRAMs per ASIC, logic voltage (and dark-silicon fill for
 * Deep Learning), and reports the Pareto frontier and TCO-optimal
 * server design for an application at a technology node.
 *
 * explore() runs the (dark fraction x DRAMs/die x RCAs/die) outer
 * grid in parallel on the exec runtime.  Each participating thread
 * evaluates with its own clone of the ServerEvaluator (whose thermal
 * solve cache is not shareable across threads; see evaluator.hh), and
 * per-cell results are combined strictly in grid-index order — the
 * exec ordered-reduction rule — so every exploration result is
 * bit-identical at any thread count.  Completed explorations are
 * memoized in a sharded cache keyed by the full (app, node, options,
 * spec-content) tuple.
 */
#ifndef MOONWALK_DSE_EXPLORER_HH
#define MOONWALK_DSE_EXPLORER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dse/evaluator.hh"
#include "dse/pareto.hh"
#include "exec/parallel.hh"
#include "exec/sweep_cache.hh"

namespace moonwalk::dse {

/** Sweep granularity knobs. */
struct ExplorerOptions
{
    int voltage_steps = 40;
    /** Approximate number of RCA-count candidates (geometric grid). */
    int rca_count_steps = 48;
    int max_drams_per_die = 12;
    /** Dark-silicon fractions tried when the RCA allows them. */
    std::vector<double> dark_fractions = {0.0, 0.05, 0.10, 0.15, 0.20};
    /**
     * Threads participating in one exploration (and, via the
     * optimizer, in node/app fan-out): 0 = the global pool width
     * (--jobs / MOONWALK_JOBS / hardware_concurrency), 1 = fully
     * serial.  Results are identical at every setting.
     */
    int max_threads = 0;
    /** Memoize completed explore() calls per (app, node, options). */
    bool cache_sweeps = true;
    /**
     * Retain every feasible DesignPoint in
     * ExplorationResult::all_feasible, not just the Pareto front.
     * Off by default (the full list can be large); the self-check
     * harness and duplicate-detection tests turn it on.
     */
    bool keep_feasible_points = false;
};

/** Everything an exploration produces. */
struct ExplorationResult
{
    /** Non-dominated designs in ($/op/s, W/op/s). */
    std::vector<DesignPoint> pareto;
    /** The design minimizing TCO per op/s, if any design is feasible. */
    std::optional<DesignPoint> tco_optimal;
    /**
     * Every feasible point, in deterministic sweep order; populated
     * only when ExplorerOptions::keep_feasible_points is set.
     */
    std::vector<DesignPoint> all_feasible;
    /** evaluate() calls issued, including feasibility-boundary
     *  bisection probes. */
    size_t evaluated = 0;
    size_t feasible = 0;
};

/**
 * The explorer.  Holds a prototype ServerEvaluator (cloned per worker
 * thread during parallel sweeps); one instance can explore many
 * (application, node) pairs, concurrently.
 *
 * Thread-safety: explore() may be called from many threads at once
 * (the optimizer fans out across nodes and apps); the sweep cache is
 * sharded and worker clones are per-thread.  The remaining public
 * sweep helpers (sweepVoltage, exploreFixedDie, maxFeasibleVoltage)
 * use the prototype evaluator directly and must not race with each
 * other, but are safe to call between parallel explorations.
 */
class DesignSpaceExplorer
{
  public:
    explicit DesignSpaceExplorer(ExplorerOptions options = {},
                                 ServerEvaluator evaluator = {})
        : options_(std::move(options)), evaluator_(std::move(evaluator)),
          sweep_cache_(std::make_shared<SweepCache>())
    {}

    const ServerEvaluator &evaluator() const { return evaluator_; }
    const ExplorerOptions &options() const { return options_; }

    /** Full sweep for @p rca at @p node. */
    ExplorationResult explore(const arch::RcaSpec &rca,
                              tech::NodeId node) const;

    /**
     * Voltage sweep at a fixed (RCAs/die, dies/lane, DRAMs/die)
     * configuration; the curves of Figure 4.  Infeasible voltages are
     * omitted.
     */
    std::vector<DesignPoint> sweepVoltage(const arch::RcaSpec &rca,
                                          tech::NodeId node,
                                          int rcas_per_die,
                                          int dies_per_lane,
                                          int drams_per_die = 0) const;

    /** RCA-count candidates used by explore() at @p node. */
    std::vector<int> rcaCountCandidates(const arch::RcaSpec &rca,
                                        tech::NodeId node,
                                        int drams_per_die,
                                        double dark) const;

    /**
     * Re-optimize only voltage and lane packing for a fixed die design
     * (used by the Section 6.2 porting study, where RCAs per die and
     * DRAMs per ASIC are frozen but the PCB is redesigned).
     */
    ExplorationResult exploreFixedDie(const arch::RcaSpec &rca,
                                      tech::NodeId node,
                                      int rcas_per_die,
                                      int drams_per_die,
                                      double dark) const;

    /**
     * Highest feasible supply voltage for a configuration (thermal
     * and power limits are monotone in voltage), or a negative value
     * when the configuration is infeasible at every voltage.
     */
    double maxFeasibleVoltage(const arch::RcaSpec &rca,
                              tech::NodeId node, int rcas_per_die,
                              int dies_per_lane, int drams_per_die,
                              double dark) const;

    // -- Aggregated runtime statistics ---------------------------------
    /** Thermal solve-cache totals summed over the prototype evaluator
     *  and every per-worker clone. */
    uint64_t thermalCacheHits() const;
    uint64_t thermalCacheMisses() const;
    /** Exploration memo-cache totals for this explorer instance. */
    uint64_t sweepCacheHits() const { return sweep_cache_->hits(); }
    uint64_t sweepCacheMisses() const { return sweep_cache_->misses(); }
    uint64_t sweepCacheInserts() const { return sweep_cache_->inserts(); }

    /**
     * Publish both caches' totals (and derived hit rates) as gauges in
     * the metrics registry: thermal.cache.{hits,misses,hit_rate} and
     * dse.sweep_cache.{hits,misses,inserts,hit_rate}.  Called after
     * each memoized explore(); callers that bypass explore() (or want
     * final totals in a run report) may call it directly.  No-op when
     * metrics collection is off.
     */
    void publishStats() const;

    /**
     * Memo key for the sweep cache: app|node|every sweep-relevant
     * explorer option, evaluator option, and RCA-spec field serialized
     * verbatim (no hashing, so no collisions).  Public so the
     * self-check harness and regression tests can assert that every
     * result-distinguishing knob — including EvaluatorOptions, which
     * an earlier version omitted — reaches the key.
     */
    std::string sweepKey(const arch::RcaSpec &rca,
                         tech::NodeId node) const;

  private:
    using SweepCache = exec::ShardedCache<std::string, ExplorationResult>;

    /** Feasibility-boundary search result: the highest feasible
     *  voltage (negative when none) and the evaluate() calls spent
     *  finding it, which accounting must charge to the sweep. */
    struct VoltageWindow
    {
        double v_hi = -1.0;
        size_t evaluated = 0;
    };

    /** The actual sweep, bypassing the memo cache. */
    ExplorationResult exploreUncached(const arch::RcaSpec &rca,
                                      tech::NodeId node) const;

    VoltageWindow maxFeasibleVoltage(const ServerEvaluator &ev,
                                     const arch::RcaSpec &rca,
                                     tech::NodeId node, int rcas_per_die,
                                     int dies_per_lane, int drams_per_die,
                                     double dark) const;

    void sweepConfig(const ServerEvaluator &ev,
                     const arch::RcaSpec &rca, tech::NodeId node,
                     int rcas_per_die, int drams_per_die, double dark,
                     std::vector<DesignPoint> &feasible,
                     size_t &evaluated) const;

    /** This thread's evaluator clone (clone-per-worker contract). */
    ServerEvaluator &workerEvaluator() const;

    ExplorerOptions options_;
    ServerEvaluator evaluator_;
    /** Per-thread evaluator clones for parallel sweeps.  Copies of
     *  the explorer start with no clones. */
    mutable exec::WorkerLocal<ServerEvaluator> worker_evaluators_;
    /** Shared across copies of this explorer (same models, same
     *  options => same results). */
    std::shared_ptr<SweepCache> sweep_cache_;
};

} // namespace moonwalk::dse

#endif // MOONWALK_DSE_EXPLORER_HH
