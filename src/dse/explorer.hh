/**
 * @file
 * Design-space explorer (Section 5.1/5.2): sweeps RCAs per die, dies
 * per lane, DRAMs per ASIC, logic voltage (and dark-silicon fill for
 * Deep Learning), and reports the Pareto frontier and TCO-optimal
 * server design for an application at a technology node.
 */
#ifndef MOONWALK_DSE_EXPLORER_HH
#define MOONWALK_DSE_EXPLORER_HH

#include <optional>
#include <vector>

#include "dse/evaluator.hh"
#include "dse/pareto.hh"

namespace moonwalk::dse {

/** Sweep granularity knobs. */
struct ExplorerOptions
{
    int voltage_steps = 40;
    /** Approximate number of RCA-count candidates (geometric grid). */
    int rca_count_steps = 48;
    int max_drams_per_die = 12;
    /** Dark-silicon fractions tried when the RCA allows them. */
    std::vector<double> dark_fractions = {0.0, 0.05, 0.10, 0.15, 0.20};
};

/** Everything an exploration produces. */
struct ExplorationResult
{
    /** Non-dominated designs in ($/op/s, W/op/s). */
    std::vector<DesignPoint> pareto;
    /** The design minimizing TCO per op/s, if any design is feasible. */
    std::optional<DesignPoint> tco_optimal;
    size_t evaluated = 0;
    size_t feasible = 0;
};

/**
 * The explorer.  Holds a ServerEvaluator (and its thermal cache); one
 * instance can explore many (application, node) pairs.
 */
class DesignSpaceExplorer
{
  public:
    explicit DesignSpaceExplorer(ExplorerOptions options = {},
                                 ServerEvaluator evaluator = {})
        : options_(options), evaluator_(std::move(evaluator))
    {}

    const ServerEvaluator &evaluator() const { return evaluator_; }
    const ExplorerOptions &options() const { return options_; }

    /** Full sweep for @p rca at @p node. */
    ExplorationResult explore(const arch::RcaSpec &rca,
                              tech::NodeId node) const;

    /**
     * Voltage sweep at a fixed (RCAs/die, dies/lane, DRAMs/die)
     * configuration; the curves of Figure 4.  Infeasible voltages are
     * omitted.
     */
    std::vector<DesignPoint> sweepVoltage(const arch::RcaSpec &rca,
                                          tech::NodeId node,
                                          int rcas_per_die,
                                          int dies_per_lane,
                                          int drams_per_die = 0) const;

    /** RCA-count candidates used by explore() at @p node. */
    std::vector<int> rcaCountCandidates(const arch::RcaSpec &rca,
                                        tech::NodeId node,
                                        int drams_per_die,
                                        double dark) const;

    /**
     * Re-optimize only voltage and lane packing for a fixed die design
     * (used by the Section 6.2 porting study, where RCAs per die and
     * DRAMs per ASIC are frozen but the PCB is redesigned).
     */
    ExplorationResult exploreFixedDie(const arch::RcaSpec &rca,
                                      tech::NodeId node,
                                      int rcas_per_die,
                                      int drams_per_die,
                                      double dark) const;

    /**
     * Highest feasible supply voltage for a configuration (thermal
     * and power limits are monotone in voltage), or a negative value
     * when the configuration is infeasible at every voltage.
     */
    double maxFeasibleVoltage(const arch::RcaSpec &rca,
                              tech::NodeId node, int rcas_per_die,
                              int dies_per_lane, int drams_per_die,
                              double dark) const;

  private:
    void sweepConfig(const arch::RcaSpec &rca, tech::NodeId node,
                     int rcas_per_die, int drams_per_die, double dark,
                     std::vector<DesignPoint> &feasible,
                     size_t &evaluated) const;

    ExplorerOptions options_;
    ServerEvaluator evaluator_;
};

} // namespace moonwalk::dse

#endif // MOONWALK_DSE_EXPLORER_HH
