/**
 * @file
 * Server design-point evaluator: turns one (RCA, node, configuration)
 * triple into a DesignPoint, or reports why it is infeasible.
 *
 * Implements the constraint set of Section 5.1: junction temperature
 * (via the lane thermal model), reticle-bounded die size, lane board
 * space (including DRAM devices), supply-voltage range, SLA frequency,
 * server wall-power budget, and the DaDianNao server-grouping rule.
 */
#ifndef MOONWALK_DSE_EVALUATOR_HH
#define MOONWALK_DSE_EVALUATOR_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "arch/rca.hh"
#include "arch/server.hh"
#include "cost/die_cost.hh"
#include "cost/server_bom.hh"
#include "dse/design_point.hh"
#include "tco/tco_model.hh"
#include "tech/scaling.hh"
#include "thermal/lane.hh"

namespace moonwalk::dse {

/** Outcome of evaluating one configuration. */
struct EvalResult
{
    std::optional<DesignPoint> point;
    /** Empty when feasible; otherwise names the violated constraint. */
    std::string infeasible_reason;

    bool feasible() const { return point.has_value(); }
};

/** Evaluator policy knobs. */
struct EvaluatorOptions
{
    /** Board margin per die beyond its own edge (mm). */
    double die_board_margin_mm = 2.0;
    /** Hard cap on dies per lane regardless of geometry. */
    int max_dies_per_lane = 15;
};

/**
 * Shared model bundle + evaluation logic.
 *
 * The evaluator owns the thermal model so its per-(dies, area) solve
 * cache is reused across the hundreds of thousands of voltage steps an
 * exploration visits.
 *
 * THREADING CONTRACT (clone-per-worker): evaluate() is const but NOT
 * thread-safe — it mutates the thermal model's hidden solve cache.
 * Parallel sweeps must give each worker thread its own copy of the
 * evaluator (exec::WorkerLocal does this in the explorer); a copy
 * inherits a warm thermal cache with fresh statistics and thread
 * affinity, and the thermal model panics if one instance is solved
 * from two threads.  All other accessors are read-only and safe to
 * share.
 */
class ServerEvaluator
{
  public:
    using Options = EvaluatorOptions;

    ServerEvaluator(const tech::TechDatabase &db =
                        tech::defaultTechDatabase(),
                    thermal::LaneEnvironment lane_env = {},
                    cost::ServerBomParams bom = {},
                    tco::TcoParameters tco_params = {},
                    EvaluatorOptions options = {});

    const tech::ScalingModel &scaling() const { return scaling_; }
    const thermal::LaneThermalModel &lane() const { return lane_; }
    const cost::ServerBomParams &bom() const { return bom_; }
    const tco::TcoModel &tco() const { return tco_; }
    const Options &options() const { return options_; }

    /** Evaluate @p cfg for @p rca; never throws on infeasibility. */
    EvalResult evaluate(const arch::RcaSpec &rca,
                        const arch::ServerConfig &cfg) const;

    /**
     * Largest RCA count whose die (with @p drams_per_die interfaces
     * and @p dark fraction) still fits the node's reticle.
     */
    int maxRcasPerDie(const arch::RcaSpec &rca,
                      const tech::TechNode &node, int drams_per_die = 0,
                      double dark = 0.0) const;

    /**
     * Total evaluate() calls observed by this evaluator and every copy
     * of it — copies share the counter, so the explorer's per-worker
     * clones bill their evaluations to the prototype they were cloned
     * from.  The self-check harness (src/check/) diffs this around an
     * exploration to validate ExplorationResult::evaluated; unlike the
     * dse.evaluations metrics counter it needs no global registry
     * state and always counts.
     */
    uint64_t evaluateCalls() const
    {
        return eval_calls_->load(std::memory_order_relaxed);
    }

  private:
    tech::ScalingModel scaling_;
    thermal::LaneThermalModel lane_;
    cost::DieCostModel die_cost_;
    cost::ServerBomParams bom_;
    tco::TcoModel tco_;
    Options options_;
    /** Shared across copies; relaxed increments only. */
    std::shared_ptr<std::atomic<uint64_t>> eval_calls_ =
        std::make_shared<std::atomic<uint64_t>>(0);
};

} // namespace moonwalk::dse

#endif // MOONWALK_DSE_EVALUATOR_HH
