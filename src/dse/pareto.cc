#include "dse/pareto.hh"

#include <algorithm>
#include <limits>

namespace moonwalk::dse {

std::vector<DesignPoint>
paretoFront(std::vector<DesignPoint> points)
{
    std::sort(points.begin(), points.end(),
              [](const DesignPoint &a, const DesignPoint &b) {
                  if (a.cost_per_ops != b.cost_per_ops)
                      return a.cost_per_ops < b.cost_per_ops;
                  return a.watts_per_ops < b.watts_per_ops;
              });

    std::vector<DesignPoint> front;
    double best_watts = std::numeric_limits<double>::infinity();
    for (auto &p : points) {
        if (p.watts_per_ops < best_watts) {
            best_watts = p.watts_per_ops;
            front.push_back(std::move(p));
        }
    }
    return front;
}

bool
isParetoFront(const std::vector<DesignPoint> &front)
{
    for (size_t i = 0; i < front.size(); ++i)
        for (size_t j = 0; j < front.size(); ++j)
            if (i != j && front[i].dominates(front[j]))
                return false;
    return true;
}

} // namespace moonwalk::dse
