#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace moonwalk {

double
quantile(std::span<const double> sorted, double q)
{
    if (sorted.empty())
        fatal("quantile of empty sample set");
    if (q < 0.0 || q > 1.0)
        fatal("quantile q out of [0,1]: ", q);
    const double idx = q * (sorted.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - lo;
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary
summarize(std::span<const double> samples)
{
    if (samples.empty())
        fatal("summarize of empty sample set");

    std::vector<double> sorted(samples.begin(), samples.end());
    std::sort(sorted.begin(), sorted.end());

    Summary s;
    s.count = sorted.size();
    double sum = 0.0;
    for (double v : sorted)
        sum += v;
    s.mean = sum / s.count;
    double var = 0.0;
    for (double v : sorted)
        var += (v - s.mean) * (v - s.mean);
    s.stddev = s.count > 1 ? std::sqrt(var / (s.count - 1)) : 0.0;
    s.min = sorted.front();
    s.max = sorted.back();
    s.p10 = quantile(sorted, 0.10);
    s.median = quantile(sorted, 0.50);
    s.p90 = quantile(sorted, 0.90);
    return s;
}

} // namespace moonwalk
