#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/error.hh"

namespace moonwalk {

Json
Json::array()
{
    Json j;
    j.value_ = std::make_shared<Array>();
    return j;
}

Json
Json::object()
{
    Json j;
    j.value_ = std::make_shared<Object>();
    return j;
}

bool
Json::isNull() const
{
    return std::holds_alternative<std::nullptr_t>(value_);
}

bool
Json::isBool() const
{
    return std::holds_alternative<bool>(value_);
}

bool
Json::isNumber() const
{
    return std::holds_alternative<double>(value_);
}

bool
Json::isString() const
{
    return std::holds_alternative<std::string>(value_);
}

bool
Json::isArray() const
{
    return std::holds_alternative<std::shared_ptr<Array>>(value_);
}

bool
Json::isObject() const
{
    return std::holds_alternative<std::shared_ptr<Object>>(value_);
}

size_t
Json::size() const
{
    if (isArray())
        return std::get<std::shared_ptr<Array>>(value_)->items.size();
    if (isObject())
        return std::get<std::shared_ptr<Object>>(value_)
            ->members.size();
    return 0;
}

const Json &
Json::at(size_t index) const
{
    if (!isArray())
        fatal("Json::at(index) on a non-array");
    const auto &items = std::get<std::shared_ptr<Array>>(value_)->items;
    if (index >= items.size())
        fatal("Json::at: index ", index, " out of range (size ",
              items.size(), ")");
    return items[index];
}

const Json &
Json::at(const std::string &key) const
{
    if (!isObject())
        fatal("Json::at(key) on a non-object");
    for (const auto &m :
         std::get<std::shared_ptr<Object>>(value_)->members) {
        if (m.first == key)
            return m.second;
    }
    fatal("Json::at: no member '", key, "'");
}

bool
Json::contains(const std::string &key) const
{
    if (!isObject())
        return false;
    for (const auto &m :
         std::get<std::shared_ptr<Object>>(value_)->members) {
        if (m.first == key)
            return true;
    }
    return false;
}

std::vector<std::string>
Json::keys() const
{
    std::vector<std::string> out;
    if (!isObject())
        return out;
    for (const auto &m :
         std::get<std::shared_ptr<Object>>(value_)->members)
        out.push_back(m.first);
    return out;
}

bool
Json::asBool() const
{
    if (!isBool())
        fatal("Json::asBool on a non-boolean");
    return std::get<bool>(value_);
}

double
Json::asDouble() const
{
    if (!isNumber())
        fatal("Json::asDouble on a non-number");
    return std::get<double>(value_);
}

const std::string &
Json::asString() const
{
    if (!isString())
        fatal("Json::asString on a non-string");
    return std::get<std::string>(value_);
}

Json &
Json::push(Json v)
{
    if (!isArray())
        fatal("Json::push on a non-array");
    std::get<std::shared_ptr<Array>>(value_)->items.push_back(
        std::move(v));
    return *this;
}

Json &
Json::set(const std::string &key, Json v)
{
    if (!isObject())
        fatal("Json::set on a non-object");
    auto &members = std::get<std::shared_ptr<Object>>(value_)->members;
    for (auto &m : members) {
        if (m.first == key) {
            m.second = std::move(v);
            return *this;
        }
    }
    members.emplace_back(key, std::move(v));
    return *this;
}

void
Json::escapeInto(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? std::string(indent * (depth + 1), ' ') : "";
    const std::string close_pad =
        indent > 0 ? std::string(indent * depth, ' ') : "";
    const char *nl = indent > 0 ? "\n" : "";

    if (std::holds_alternative<std::nullptr_t>(value_)) {
        out += "null";
    } else if (std::holds_alternative<bool>(value_)) {
        out += std::get<bool>(value_) ? "true" : "false";
    } else if (std::holds_alternative<double>(value_)) {
        const double d = std::get<double>(value_);
        if (!std::isfinite(d)) {
            out += "null";  // JSON has no inf/nan
        } else if (d == std::floor(d) && std::fabs(d) < 1e15) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.0f", d);
            out += buf;
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.12g", d);
            out += buf;
        }
    } else if (std::holds_alternative<std::string>(value_)) {
        escapeInto(out, std::get<std::string>(value_));
    } else if (isArray()) {
        const auto &items =
            std::get<std::shared_ptr<Array>>(value_)->items;
        if (items.empty()) {
            out += "[]";
            return;
        }
        out += "[";
        out += nl;
        for (size_t i = 0; i < items.size(); ++i) {
            out += pad;
            items[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < items.size())
                out += ",";
            out += nl;
        }
        out += close_pad;
        out += "]";
    } else {
        const auto &members =
            std::get<std::shared_ptr<Object>>(value_)->members;
        if (members.empty()) {
            out += "{}";
            return;
        }
        out += "{";
        out += nl;
        for (size_t i = 0; i < members.size(); ++i) {
            out += pad;
            escapeInto(out, members[i].first);
            out += indent > 0 ? ": " : ":";
            members[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < members.size())
                out += ",";
            out += nl;
        }
        out += close_pad;
        out += "}";
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent JSON reader over a string. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json parseDocument()
    {
        Json v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void fail(const char *what) const
    {
        fatal("JSON parse error at offset ", pos_, ": ", what);
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail("unexpected character");
        ++pos_;
    }

    bool consumeLiteral(const char *lit)
    {
        const size_t n = std::strlen(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json parseValue()
    {
        // Containers recurse one stack frame per nesting level, so an
        // adversarial input of brackets could otherwise overflow the
        // stack (found by the Json::parse fuzz target).  256 levels is
        // far beyond any document the model reads or writes.
        if (depth_ > kMaxDepth)
            fail("nesting deeper than 256 levels");
        skipWs();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Json(parseString());
          case 't':
            if (!consumeLiteral("true"))
                fail("invalid literal");
            return Json(true);
          case 'f':
            if (!consumeLiteral("false"))
                fail("invalid literal");
            return Json(false);
          case 'n':
            if (!consumeLiteral("null"))
                fail("invalid literal");
            return Json(nullptr);
          default:
            return parseNumber();
        }
    }

    Json parseObject()
    {
        ++depth_;
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return obj;
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            skipWs();
            expect(':');
            obj.set(key, parseValue());
            skipWs();
            const char c = peek();
            ++pos_;
            if (c == '}') {
                --depth_;
                return obj;
            }
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Json parseArray()
    {
        ++depth_;
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return arr;
        }
        while (true) {
            arr.push(parseValue());
            skipWs();
            const char c = peek();
            ++pos_;
            if (c == ']') {
                --depth_;
                return arr;
            }
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            c = text_[pos_++];
            switch (c) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("invalid \\u escape digit");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are beyond what our own writer ever emits).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("invalid escape character");
            }
        }
    }

    Json parseNumber()
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            fail("malformed number");
        return Json(d);
    }

    static constexpr int kMaxDepth = 256;

    const std::string &text_;
    size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

} // namespace moonwalk
