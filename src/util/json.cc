#include "util/json.hh"

#include <cmath>
#include <cstdio>

#include "util/error.hh"

namespace moonwalk {

Json
Json::array()
{
    Json j;
    j.value_ = std::make_shared<Array>();
    return j;
}

Json
Json::object()
{
    Json j;
    j.value_ = std::make_shared<Object>();
    return j;
}

bool
Json::isArray() const
{
    return std::holds_alternative<std::shared_ptr<Array>>(value_);
}

bool
Json::isObject() const
{
    return std::holds_alternative<std::shared_ptr<Object>>(value_);
}

Json &
Json::push(Json v)
{
    if (!isArray())
        fatal("Json::push on a non-array");
    std::get<std::shared_ptr<Array>>(value_)->items.push_back(
        std::move(v));
    return *this;
}

Json &
Json::set(const std::string &key, Json v)
{
    if (!isObject())
        fatal("Json::set on a non-object");
    auto &members = std::get<std::shared_ptr<Object>>(value_)->members;
    for (auto &m : members) {
        if (m.first == key) {
            m.second = std::move(v);
            return *this;
        }
    }
    members.emplace_back(key, std::move(v));
    return *this;
}

void
Json::escapeInto(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? std::string(indent * (depth + 1), ' ') : "";
    const std::string close_pad =
        indent > 0 ? std::string(indent * depth, ' ') : "";
    const char *nl = indent > 0 ? "\n" : "";

    if (std::holds_alternative<std::nullptr_t>(value_)) {
        out += "null";
    } else if (std::holds_alternative<bool>(value_)) {
        out += std::get<bool>(value_) ? "true" : "false";
    } else if (std::holds_alternative<double>(value_)) {
        const double d = std::get<double>(value_);
        if (!std::isfinite(d)) {
            out += "null";  // JSON has no inf/nan
        } else if (d == std::floor(d) && std::fabs(d) < 1e15) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.0f", d);
            out += buf;
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.12g", d);
            out += buf;
        }
    } else if (std::holds_alternative<std::string>(value_)) {
        escapeInto(out, std::get<std::string>(value_));
    } else if (isArray()) {
        const auto &items =
            std::get<std::shared_ptr<Array>>(value_)->items;
        if (items.empty()) {
            out += "[]";
            return;
        }
        out += "[";
        out += nl;
        for (size_t i = 0; i < items.size(); ++i) {
            out += pad;
            items[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < items.size())
                out += ",";
            out += nl;
        }
        out += close_pad;
        out += "]";
    } else {
        const auto &members =
            std::get<std::shared_ptr<Object>>(value_)->members;
        if (members.empty()) {
            out += "{}";
            return;
        }
        out += "{";
        out += nl;
        for (size_t i = 0; i < members.size(); ++i) {
            out += pad;
            escapeInto(out, members[i].first);
            out += indent > 0 ? ": " : ":";
            members[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < members.size())
                out += ",";
            out += nl;
        }
        out += close_pad;
        out += "}";
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

} // namespace moonwalk
