/**
 * @file
 * Summary statistics over samples: mean, standard deviation and
 * quantiles.  Used by the Monte Carlo uncertainty analysis.
 */
#ifndef MOONWALK_UTIL_STATS_HH
#define MOONWALK_UTIL_STATS_HH

#include <span>
#include <vector>

namespace moonwalk {

/** Summary of a sample set. */
struct Summary
{
    size_t count = 0;
    double mean = 0;
    double stddev = 0;
    double min = 0;
    double p10 = 0;
    double median = 0;
    double p90 = 0;
    double max = 0;
};

/** Compute a Summary of @p samples (must be non-empty). */
Summary summarize(std::span<const double> samples);

/**
 * Linear-interpolated quantile of @p sorted (ascending) samples at
 * @p q in [0, 1].
 */
double quantile(std::span<const double> sorted, double q);

} // namespace moonwalk

#endif // MOONWALK_UTIL_STATS_HH
