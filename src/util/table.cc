#include "util/table.hh"

#include <algorithm>
#include <iomanip>

#include "util/error.hh"

namespace moonwalk {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        fatal("TextTable row arity ", cells.size(),
              " != header arity ", headers_.size());
    }
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << "  ";
            // Left-align the first (label) column, right-align the rest.
            if (c == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        os << "\n";
    };

    print_row(headers_);

    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << "\n";

    for (const auto &row : rows_)
        print_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            // Quote cells containing commas.
            if (row[c].find(',') != std::string::npos)
                os << '"' << row[c] << '"';
            else
                os << row[c];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace moonwalk
