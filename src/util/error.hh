/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * `fatal()` is for user errors (bad configuration, impossible design
 * request): it throws a ModelError that callers may catch.  `panic()` is
 * for internal invariant violations (a bug in moonwalk itself): it aborts.
 */
#ifndef MOONWALK_UTIL_ERROR_HH
#define MOONWALK_UTIL_ERROR_HH

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace moonwalk {

/** Exception thrown for user-caused model errors (bad inputs, infeasible
 *  configurations).  Analogous to gem5's fatal(). */
class ModelError : public std::runtime_error
{
  public:
    explicit ModelError(const std::string &what)
        : std::runtime_error(what)
    {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    formatInto(os, rest...);
}

} // namespace detail

/**
 * Report a user error: throws ModelError with the concatenation of all
 * arguments.  Use when the simulation cannot continue due to a condition
 * that is the caller's fault.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    throw ModelError(os.str());
}

/**
 * Report an internal bug: prints the message and aborts.  Use only for
 * conditions that should never happen regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    std::fputs("moonwalk panic: ", stderr);
    std::fputs(os.str().c_str(), stderr);
    std::fputs("\n", stderr);
    std::abort();
}

} // namespace moonwalk

#endif // MOONWALK_UTIL_ERROR_HH
