/**
 * @file
 * Aligned ASCII table writer used by the benchmark harness to print the
 * paper's tables and figure series.  Also emits CSV for plotting.
 */
#ifndef MOONWALK_UTIL_TABLE_HH
#define MOONWALK_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace moonwalk {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t({"Tech", "Mask cost"});
 *   t.addRow({"250nm", "$65K"});
 *   t.print(std::cout);
 * @endcode
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Optional table title printed above the header. */
    void setTitle(std::string title) { title_ = std::move(title); }

    /** Number of data rows added so far. */
    size_t rowCount() const { return rows_.size(); }

    /** Render with padded, right-aligned numeric-looking columns. */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows). */
    void printCsv(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace moonwalk

#endif // MOONWALK_UTIL_TABLE_HH
