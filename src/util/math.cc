#include "util/math.hh"

#include <cmath>

#include "util/error.hh"

namespace moonwalk {

double
geomean(std::span<const double> values)
{
    if (values.empty())
        fatal("geomean of empty range");
    double acc = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geomean requires positive values, got ", v);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

MinimizeResult
minimizeGolden(const std::function<double(double)> &f,
               double lo, double hi, double tol)
{
    if (!(lo <= hi))
        fatal("minimizeGolden: invalid interval [", lo, ", ", hi, "]");

    constexpr double inv_phi = 0.6180339887498949;
    double a = lo;
    double b = hi;
    double c = b - (b - a) * inv_phi;
    double d = a + (b - a) * inv_phi;
    double fc = f(c);
    double fd = f(d);

    while (b - a > tol) {
        if (fc < fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * inv_phi;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * inv_phi;
            fd = f(d);
        }
    }

    const double x = 0.5 * (a + b);
    return {x, f(x)};
}

MinimizeResult
minimizeGrid(const std::function<double(double)> &f,
             double lo, double hi, int n)
{
    if (n < 2)
        fatal("minimizeGrid needs at least 2 points, got ", n);

    MinimizeResult best{lo, f(lo)};
    for (int i = 1; i < n; ++i) {
        const double x = lo + (hi - lo) * i / (n - 1);
        const double v = f(x);
        if (v < best.value)
            best = {x, v};
    }
    return best;
}

std::vector<double>
linspace(double lo, double hi, int n, double collapse_tol)
{
    if (n < 1)
        fatal("linspace needs at least 1 point, got ", n);
    std::vector<double> out;
    out.reserve(n);
    if (n == 1 ||
        (collapse_tol > 0.0 && std::fabs(hi - lo) <= collapse_tol)) {
        out.push_back(lo);
        return out;
    }
    for (int i = 0; i < n; ++i)
        out.push_back(lo + (hi - lo) * i / (n - 1));
    return out;
}

} // namespace moonwalk
