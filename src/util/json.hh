/**
 * @file
 * Minimal JSON value type for exporting results to plotting pipelines
 * and reading them back.  Writing is deterministic and correctly
 * escaped; parse() accepts standard JSON (used by the observability
 * tests to validate trace output).
 */
#ifndef MOONWALK_UTIL_JSON_HH
#define MOONWALK_UTIL_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace moonwalk {

/**
 * A JSON value: null, bool, number, string, array or object.
 * Objects keep insertion order.
 */
class Json
{
  public:
    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(double d) : value_(d) {}
    Json(int i) : value_(static_cast<double>(i)) {}
    Json(long l) : value_(static_cast<double>(l)) {}
    Json(unsigned long l) : value_(static_cast<double>(l)) {}
    Json(const char *s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}

    /** Create an empty array. */
    static Json array();
    /** Create an empty object. */
    static Json object();

    /**
     * Parse a JSON document.  Throws ModelError on malformed input
     * (including trailing garbage).
     */
    static Json parse(const std::string &text);

    /** Append to an array (the value must be an array). */
    Json &push(Json v);
    /** Set an object key (the value must be an object). */
    Json &set(const std::string &key, Json v);

    bool isNull() const;
    bool isBool() const;
    bool isNumber() const;
    bool isString() const;
    bool isArray() const;
    bool isObject() const;

    /** Element count of an array or object; 0 for scalars. */
    size_t size() const;

    /** Array element access; throws on non-arrays / out of range. */
    const Json &at(size_t index) const;
    /** Object member access; throws when absent or non-object. */
    const Json &at(const std::string &key) const;
    /** True when this is an object with member @p key. */
    bool contains(const std::string &key) const;
    /** Member names of an object, in insertion order; empty for
     *  non-objects. */
    std::vector<std::string> keys() const;

    /** Scalar readers; throw on type mismatch. */
    bool asBool() const;
    double asDouble() const;
    const std::string &asString() const;

    /** Serialize; @p indent > 0 pretty-prints. */
    std::string dump(int indent = 0) const;

  private:
    struct Array
    {
        std::vector<Json> items;
    };
    struct Object
    {
        std::vector<std::pair<std::string, Json>> members;
    };

    void dumpTo(std::string &out, int indent, int depth) const;
    static void escapeInto(std::string &out, const std::string &s);

    std::variant<std::nullptr_t, bool, double, std::string,
                 std::shared_ptr<Array>, std::shared_ptr<Object>>
        value_;
};

} // namespace moonwalk

#endif // MOONWALK_UTIL_JSON_HH
