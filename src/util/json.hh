/**
 * @file
 * Minimal JSON writer for exporting results to plotting pipelines.
 * Produces deterministic, correctly escaped output; no parsing.
 */
#ifndef MOONWALK_UTIL_JSON_HH
#define MOONWALK_UTIL_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace moonwalk {

/**
 * A JSON value: null, bool, number, string, array or object.
 * Objects keep insertion order.
 */
class Json
{
  public:
    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(double d) : value_(d) {}
    Json(int i) : value_(static_cast<double>(i)) {}
    Json(long l) : value_(static_cast<double>(l)) {}
    Json(unsigned long l) : value_(static_cast<double>(l)) {}
    Json(const char *s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}

    /** Create an empty array. */
    static Json array();
    /** Create an empty object. */
    static Json object();

    /** Append to an array (the value must be an array). */
    Json &push(Json v);
    /** Set an object key (the value must be an object). */
    Json &set(const std::string &key, Json v);

    bool isArray() const;
    bool isObject() const;

    /** Serialize; @p indent > 0 pretty-prints. */
    std::string dump(int indent = 0) const;

  private:
    struct Array
    {
        std::vector<Json> items;
    };
    struct Object
    {
        std::vector<std::pair<std::string, Json>> members;
    };

    void dumpTo(std::string &out, int indent, int depth) const;
    static void escapeInto(std::string &out, const std::string &s);

    std::variant<std::nullptr_t, bool, double, std::string,
                 std::shared_ptr<Array>, std::shared_ptr<Object>>
        value_;
};

} // namespace moonwalk

#endif // MOONWALK_UTIL_JSON_HH
