#include "util/format.hh"

#include <cmath>
#include <cstdio>

namespace moonwalk {

namespace {

std::string
sigDigits(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
    return buf;
}

} // namespace

std::string
si(double value, int digits)
{
    const double a = std::fabs(value);
    if (a >= 1e9)
        return sigDigits(value / 1e9, digits) + "B";
    if (a >= 1e6)
        return sigDigits(value / 1e6, digits) + "M";
    if (a >= 1e3)
        return sigDigits(value / 1e3, digits) + "K";
    return sigDigits(value, digits);
}

std::string
money(double dollars, int digits)
{
    if (dollars < 0)
        return "-$" + si(-dollars, digits);
    return "$" + si(dollars, digits);
}

std::string
sig(double value, int digits)
{
    return sigDigits(value, digits);
}

std::string
fixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
times(double ratio, int digits)
{
    return sigDigits(ratio, digits) + "x";
}

std::string
percent(double fraction, int decimals)
{
    return fixed(fraction * 100.0, decimals) + "%";
}

} // namespace moonwalk
