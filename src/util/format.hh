/**
 * @file
 * Number formatting helpers matching the presentation style of the paper's
 * tables: engineering suffixes (65K, 5.70M, 1.9B), fixed significant
 * digits, and money formatting.
 */
#ifndef MOONWALK_UTIL_FORMAT_HH
#define MOONWALK_UTIL_FORMAT_HH

#include <string>

namespace moonwalk {

/**
 * Format @p value with an engineering suffix (K, M, B) and @p digits
 * significant digits, e.g. si(5.7e6) == "5.70M".  Values below 1000 are
 * printed without a suffix.
 */
std::string si(double value, int digits = 3);

/** Format as dollars with engineering suffix, e.g. "$1.25M". */
std::string money(double dollars, int digits = 3);

/** Format with @p digits significant digits and no suffix. */
std::string sig(double value, int digits = 4);

/** Format as fixed-point with @p decimals digits after the point. */
std::string fixed(double value, int decimals);

/** Format a ratio as a multiplier, e.g. "3.68x". */
std::string times(double ratio, int digits = 3);

/** Format as a percentage with @p decimals digits, e.g. "15.5%". */
std::string percent(double fraction, int decimals = 1);

} // namespace moonwalk

#endif // MOONWALK_UTIL_FORMAT_HH
