/**
 * @file
 * Small math helpers shared across the model: interpolation, geometric
 * mean, and a 1-D golden-section minimizer used by the heatsink optimizer
 * and voltage sweeps.
 */
#ifndef MOONWALK_UTIL_MATH_HH
#define MOONWALK_UTIL_MATH_HH

#include <cmath>
#include <functional>
#include <span>
#include <vector>

namespace moonwalk {

/** Clamp @p x into [lo, hi]. */
inline double
clamp(double x, double lo, double hi)
{
    return x < lo ? lo : (x > hi ? hi : x);
}

/** Linear interpolation between (x0,y0) and (x1,y1) at x. */
inline double
lerp(double x, double x0, double y0, double x1, double y1)
{
    if (x1 == x0)
        return 0.5 * (y0 + y1);
    return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
}

/**
 * Log-log interpolation: fits y = a * x^b through the two points and
 * evaluates at @p x.  Natural for CMOS scaling curves, which are straight
 * lines on log-log axes (paper, Figure 1).
 */
inline double
loglogInterp(double x, double x0, double y0, double x1, double y1)
{
    const double lx = std::log(x);
    const double lx0 = std::log(x0);
    const double lx1 = std::log(x1);
    const double ly0 = std::log(y0);
    const double ly1 = std::log(y1);
    return std::exp(lerp(lx, lx0, ly0, lx1, ly1));
}

/** Geometric mean of a non-empty range of positive values. */
double geomean(std::span<const double> values);

/** Relative error |a - b| / |b|; returns |a| when b == 0. */
inline double
relativeError(double a, double b)
{
    if (b == 0.0)
        return std::fabs(a);
    return std::fabs(a - b) / std::fabs(b);
}

/**
 * Result of a 1-D minimization.
 */
struct MinimizeResult
{
    double x;       ///< argmin
    double value;   ///< f(argmin)
};

/**
 * Golden-section search for the minimum of a unimodal function on
 * [lo, hi].
 *
 * @param f function to minimize
 * @param lo lower bound
 * @param hi upper bound
 * @param tol absolute tolerance on x
 * @return argmin and minimum value
 */
MinimizeResult minimizeGolden(const std::function<double(double)> &f,
                              double lo, double hi, double tol = 1e-6);

/**
 * Evaluate @p f on a uniform grid of @p n points over [lo, hi] and return
 * the grid point with the smallest value.  Robust for non-unimodal
 * objectives; often used to seed minimizeGolden.
 */
MinimizeResult minimizeGrid(const std::function<double(double)> &f,
                            double lo, double hi, int n);

/**
 * Uniformly spaced vector of @p n values covering [lo, hi] inclusive.
 *
 * When @p collapse_tol is positive and |hi - lo| is at or below it,
 * the grid collapses to the single value @p lo: emitting @p n copies
 * of (numerically) one point only duplicates downstream work, and a
 * sweep whose adaptive window has shrunk to a point wants exactly one
 * evaluation there (see dse::DesignSpaceExplorer::sweepConfig).
 */
std::vector<double> linspace(double lo, double hi, int n,
                             double collapse_tol = 0.0);

} // namespace moonwalk

#endif // MOONWALK_UTIL_MATH_HH
