#include "tech/scaling.hh"

#include <cmath>
#include <numbers>

#include "util/error.hh"
#include "util/math.hh"

namespace moonwalk::tech {

double
ScalingModel::speedTerm(const TechNode &node, double vdd) const
{
    if (vdd <= node.vth)
        return 0.0;
    return std::pow(vdd - node.vth, kAlpha) / vdd;
}

double
ScalingModel::frequencyMhz(const TechNode &node, double vdd,
                           double f_nominal_28_mhz) const
{
    const double nominal = speedTerm(node, node.vdd_nominal);
    if (nominal <= 0.0)
        panic("node ", node.name, " nominal voltage below threshold");
    return f_nominal_28_mhz * node.freq_factor *
        speedTerm(node, vdd) / nominal;
}

double
ScalingModel::voltageForFrequency(const TechNode &node, double target_mhz,
                                  double f_nominal_28_mhz) const
{
    const double v_max = node.vddMax();
    if (frequencyMhz(node, v_max, f_nominal_28_mhz) < target_mhz)
        return -1.0;
    // frequencyMhz is monotonically increasing in vdd above threshold;
    // bisect.
    double lo = node.vth + 1e-4;
    double hi = v_max;
    for (int i = 0; i < 80; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (frequencyMhz(node, mid, f_nominal_28_mhz) < target_mhz)
            lo = mid;
        else
            hi = mid;
    }
    return hi;
}

double
ScalingModel::energyPerOpJ(const TechNode &node, double vdd,
                           double e_nominal_28_j,
                           double scaling_fraction) const
{
    const double v_ratio = vdd / kRefVdd;
    const double cap = scaling_fraction * node.cap_factor +
        (1.0 - scaling_fraction);
    return e_nominal_28_j * cap * v_ratio * v_ratio;
}

double
ScalingModel::leakagePowerW(const TechNode &node, double vdd,
                            double area_mm2) const
{
    const double v_ratio = vdd / node.vdd_nominal;
    return node.leakage_w_per_mm2 * area_mm2 * v_ratio * v_ratio;
}

double
ScalingModel::waferCostPerMm2(const TechNode &node) const
{
    return node.wafer_cost / node.waferAreaMm2();
}

double
ScalingModel::maskCostNorm(NodeId id) const
{
    const auto &base = db_->node(NodeId::N250);
    return db_->node(id).mask_cost / base.mask_cost;
}

namespace {

/** Energy/op at nominal voltage, arbitrary units: C * V^2. */
double
nominalEnergyAu(const TechNode &n)
{
    return n.cap_factor * n.vdd_nominal * n.vdd_nominal;
}

/** $ per op/s with no power-density limit: wafer $/mm^2 over
 *  (density * frequency) compute density, arbitrary units. */
double
unlimitedCostAu(const TechNode &n)
{
    const double r = n.wafer_diameter_mm / 2.0;
    const double wafer_cost_mm2 =
        n.wafer_cost / (std::numbers::pi * r * r);
    return wafer_cost_mm2 / (n.density_factor * n.freq_factor);
}

/** $ per op/s with compute density capped by a fixed power-density
 *  budget: ops/s/mm^2 ~ 1 / energy-per-op, arbitrary units. */
double
powerLimitedCostAu(const TechNode &n)
{
    const double r = n.wafer_diameter_mm / 2.0;
    const double wafer_cost_mm2 =
        n.wafer_cost / (std::numbers::pi * r * r);
    return wafer_cost_mm2 * nominalEnergyAu(n);
}

} // namespace

double
ScalingModel::energyPerOpNorm(NodeId id) const
{
    return nominalEnergyAu(db_->node(id)) /
        nominalEnergyAu(db_->node(NodeId::N250));
}

double
ScalingModel::energyPerOpDennardNorm(NodeId id) const
{
    // Hypothetical Dennard continuation: voltage keeps scaling with
    // feature width, so E ~ C * V^2 ~ (1/S) * (1/S)^2 = S^-3.
    const auto &n = db_->node(id);
    const auto &base = db_->node(NodeId::N250);
    const double s = base.feature_nm / n.feature_nm;
    return 1.0 / (s * s * s);
}

double
ScalingModel::costPerOpsNormUnlimited(NodeId id) const
{
    return unlimitedCostAu(db_->node(id)) /
        unlimitedCostAu(db_->node(NodeId::N250));
}

double
ScalingModel::costPerOpsNormPowerLimited(NodeId id) const
{
    // Dennard scaling ends at 90nm (Section 2): before it, designs are
    // not power-density limited and follow the unlimited curve; after
    // it the power-limited curve applies, anchored for continuity at
    // 90nm.
    const auto &n = db_->node(id);
    const auto &n90 = db_->node(NodeId::N90);
    const double base = unlimitedCostAu(db_->node(NodeId::N250));
    if (n.feature_nm >= n90.feature_nm)
        return unlimitedCostAu(n) / base;
    const double anchor = unlimitedCostAu(n90) / powerLimitedCostAu(n90);
    return anchor * powerLimitedCostAu(n) / base;
}

double
ScalingModel::maxTransistorsNorm(NodeId id) const
{
    const auto &n = db_->node(id);
    const auto &base = db_->node(NodeId::N250);
    return (n.density_factor * n.max_die_area_mm2) /
        (base.density_factor * base.max_die_area_mm2);
}

double
ScalingModel::frequencyNorm(NodeId id) const
{
    return db_->node(id).freq_factor /
        db_->node(NodeId::N250).freq_factor;
}

} // namespace moonwalk::tech
