#include "tech/database.hh"

#include <cmath>
#include <numbers>

#include "util/error.hh"

namespace moonwalk::tech {

std::string
to_string(NodeId id)
{
    switch (id) {
      case NodeId::N250: return "250nm";
      case NodeId::N180: return "180nm";
      case NodeId::N130: return "130nm";
      case NodeId::N90: return "90nm";
      case NodeId::N65: return "65nm";
      case NodeId::N40: return "40nm";
      case NodeId::N28: return "28nm";
      case NodeId::N16: return "16nm";
    }
    panic("invalid NodeId ", static_cast<int>(id));
}

double
TechNode::waferAreaMm2() const
{
    const double r = wafer_diameter_mm / 2.0;
    return std::numbers::pi * r * r;
}

double
TechNode::grossDiesPerWafer(double die_area_mm2) const
{
    if (die_area_mm2 <= 0.0)
        fatal("die area must be positive, got ", die_area_mm2);
    // Classic gross-die estimate: wafer area over die area, minus an
    // edge-loss term proportional to the wafer circumference over the
    // die diagonal.
    const double gross = waferAreaMm2() / die_area_mm2 -
        std::numbers::pi * wafer_diameter_mm /
        std::sqrt(2.0 * die_area_mm2);
    return gross > 0.0 ? gross : 0.0;
}

namespace {

/**
 * One row of the node database.  Factors that follow clean CMOS scaling
 * (density S^2, frequency S, capacitance 1/S — see Section 2 of the
 * paper) are derived from the feature width rather than tabulated.
 */
TechNode
makeNode(NodeId id, double feature_nm, double mask_cost, double wafer_cost,
         double wafer_diameter_mm, double backend_cost_per_gate,
         int metal_layers, double vdd_nominal, double vth,
         double leakage_w_per_mm2, double defect_density_per_cm2,
         DramGeneration dram_generation)
{
    TechNode n;
    n.id = id;
    n.feature_nm = feature_nm;
    n.name = to_string(id);
    n.mask_cost = mask_cost;
    n.wafer_cost = wafer_cost;
    n.wafer_diameter_mm = wafer_diameter_mm;
    n.backend_cost_per_gate = backend_cost_per_gate;
    n.metal_layers = metal_layers;
    n.vdd_nominal = vdd_nominal;
    n.vth = vth;
    n.vdd_min = vth + 0.09;
    n.leakage_w_per_mm2 = leakage_w_per_mm2;
    n.defect_density_per_cm2 = defect_density_per_cm2;
    // Classic scaling relative to the 28nm reference node (Section 2):
    // transistor count ~ S^2, frequency ~ S, capacitance (and energy/op
    // at fixed voltage) ~ 1/S.
    const double s = 28.0 / feature_nm;
    n.density_factor = s * s;
    n.freq_factor = s;
    n.cap_factor = 1.0 / s;
    n.dram_generation = dram_generation;
    // Reticle-bounded maximum die size; the paper's largest evaluated
    // die is 634mm^2 (Table 10, 180nm).
    n.max_die_area_mm2 = 640.0;
    return n;
}

} // namespace

TechDatabase::TechDatabase()
{
    using enum DramGeneration;
    // Columns: id, feature, mask $, wafer $, wafer mm, backend $/gate,
    // metal layers (Table 1); nominal Vdd (Table 2); effective Vth,
    // leakage W/mm^2 at nominal, defect density /cm^2; DRAM generation
    // (Section 6.3: no DDR IP at 250/180nm, LPDDR3 ramps at 65nm).
    //
    // The effective threshold voltages are *fitted* so the alpha-power
    // delay model (alpha = 1.5) reproduces the paper's published
    // (voltage, frequency) operating points across all eight nodes
    // (Bitcoin row of Table 7).  They rise toward newer nodes: real
    // Vth stopped scaling while nominal Vdd kept dropping, so newer
    // nodes lose relatively more speed at a given fraction of nominal
    // voltage.  They are behavioral parameters, not device Vth values.
    nodes_ = {
        makeNode(NodeId::N250, 250, 65e3, 720, 200, 0.127, 5,
                 2.5, 0.121, 0.0005, 0.04, SDR),
        makeNode(NodeId::N180, 180, 105e3, 790, 200, 0.127, 6,
                 1.8, 0.103, 0.001, 0.04, SDR),
        makeNode(NodeId::N130, 130, 290e3, 2950, 300, 0.127, 9,
                 1.2, 0.115, 0.002, 0.06, DDR),
        makeNode(NodeId::N90, 90, 560e3, 3200, 300, 0.127, 9,
                 1.0, 0.205, 0.006, 0.08, DDR),
        makeNode(NodeId::N65, 65, 700e3, 3300, 300, 0.127, 9,
                 1.0, 0.246, 0.012, 0.10, LPDDR3),
        makeNode(NodeId::N40, 40, 1.25e6, 4850, 300, 0.129, 9,
                 0.9, 0.250, 0.020, 0.15, LPDDR3),
        makeNode(NodeId::N28, 28, 2.25e6, 7600, 300, 0.131, 9,
                 0.9, 0.300, 0.030, 0.20, LPDDR3),
        makeNode(NodeId::N16, 16, 5.70e6, 11100, 300, 0.263, 9,
                 0.8, 0.328, 0.045, 0.30, LPDDR3),
    };
}

const TechNode &
TechDatabase::node(NodeId id) const
{
    return nodes_.at(static_cast<size_t>(id));
}

const TechNode &
TechDatabase::nodeByFeature(double feature_nm) const
{
    for (const auto &n : nodes_)
        if (n.feature_nm == feature_nm)
            return n;
    fatal("no such node: ", feature_nm, "nm");
}

TechNode &
TechDatabase::mutableNode(NodeId id)
{
    return nodes_.at(static_cast<size_t>(id));
}

double
TechDatabase::scalingFactor(NodeId from, NodeId to) const
{
    return node(from).feature_nm / node(to).feature_nm;
}

const TechDatabase &
defaultTechDatabase()
{
    static const TechDatabase db;
    return db;
}

} // namespace moonwalk::tech
