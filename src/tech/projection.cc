#include "tech/projection.hh"

#include <cmath>

#include "util/error.hh"
#include "util/math.hh"

namespace moonwalk::tech {

namespace {

/** Continue y through (f1,y1) and (f0,y0) to feature f (log-log). */
double
extrapolate(double f, double f1, double y1, double f0, double y0)
{
    return loglogInterp(f, f1, y1, f0, y0);
}

} // namespace

TechNode
projectNode(double feature_nm, const TechDatabase &db)
{
    const TechNode &newest = db.node(NodeId::N16);
    const TechNode &prev = db.node(NodeId::N28);
    if (feature_nm >= newest.feature_nm)
        fatal("projection target must be newer than ",
              newest.feature_nm, "nm");
    if (feature_nm < 3.0)
        fatal("projection beyond 3nm is not credible");

    TechNode n = newest;  // reuse the newest id for catalog lookups
    n.feature_nm = feature_nm;
    n.name = std::to_string(static_cast<int>(feature_nm)) +
        "nm (projected)";

    auto ext = [&](double v16, double v28) {
        return extrapolate(feature_nm, newest.feature_nm, v16,
                           prev.feature_nm, v28);
    };
    n.mask_cost = ext(newest.mask_cost, prev.mask_cost);
    n.wafer_cost = ext(newest.wafer_cost, prev.wafer_cost);
    n.backend_cost_per_gate = ext(newest.backend_cost_per_gate,
                                  prev.backend_cost_per_gate);
    n.vdd_nominal = ext(newest.vdd_nominal, prev.vdd_nominal);
    n.vth = ext(newest.vth, prev.vth);
    n.vdd_min = n.vth + 0.09;
    n.leakage_w_per_mm2 = ext(newest.leakage_w_per_mm2,
                              prev.leakage_w_per_mm2);
    n.defect_density_per_cm2 = ext(newest.defect_density_per_cm2,
                                   prev.defect_density_per_cm2);

    const double s = 28.0 / feature_nm;
    n.density_factor = s * s;
    n.freq_factor = s;
    n.cap_factor = 1.0 / s;
    return n;
}

} // namespace moonwalk::tech
