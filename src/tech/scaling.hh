/**
 * @file
 * CMOS scaling engine: voltage/frequency/energy models per node, and the
 * normalized cross-node trade-off curves of the paper's Figure 1.
 *
 * Frequency follows the alpha-power law f ~ (V - Vth)^alpha / V,
 * normalized so that a design's frequency at a node's nominal voltage
 * equals its 28nm nominal frequency times the node's frequency factor.
 * Dynamic energy per op follows C V^2 with capacitance scaling ~ 1/S.
 *
 * Verified ranges reproduced from the paper (Section 2): 250nm -> 16nm
 * spans 89x in mask cost, 152x in energy/op, 558x in $ per op/s for
 * non-power-limited designs (28x power-limited), and 15.5x in frequency.
 */
#ifndef MOONWALK_TECH_SCALING_HH
#define MOONWALK_TECH_SCALING_HH

#include "tech/database.hh"
#include "tech/node.hh"

namespace moonwalk::tech {

/**
 * Scaling model bound to a technology database.
 *
 * Per-application anchors (28nm nominal-voltage frequency, 28nm
 * nominal-voltage energy per op) are supplied by the caller; the model
 * projects them to any (node, voltage) point.
 */
class ScalingModel
{
  public:
    /** Alpha exponent of the alpha-power delay model; 1.5 calibrates
     *  the 40nm overdrive point to the paper's Deep Learning design
     *  (606 MHz at 1.285V, Table 8). */
    static constexpr double kAlpha = 1.5;
    /** Reference node for application anchors. */
    static constexpr double kRefVdd = 0.9;  // 28nm nominal (Table 2)

    explicit ScalingModel(const TechDatabase &db = defaultTechDatabase())
        : db_(&db)
    {}

    const TechDatabase &database() const { return *db_; }

    /**
     * Raw alpha-power speed term (V - Vth)^alpha / V for @p node at
     * voltage @p vdd; zero at or below threshold.
     */
    double speedTerm(const TechNode &node, double vdd) const;

    /**
     * Operating frequency (MHz) of a design at (node, vdd).
     *
     * @param node target node
     * @param vdd logic supply voltage (V)
     * @param f_nominal_28_mhz the design's frequency at 28nm, 0.9V
     */
    double frequencyMhz(const TechNode &node, double vdd,
                        double f_nominal_28_mhz) const;

    /**
     * Voltage required to reach @p target_mhz at @p node, or a negative
     * value if unreachable even at the node's maximum voltage.
     */
    double voltageForFrequency(const TechNode &node, double target_mhz,
                               double f_nominal_28_mhz) const;

    /**
     * Dynamic energy per op (J) at (node, vdd).
     *
     * @param e_nominal_28_j the design's energy/op at 28nm, 0.9V
     * @param scaling_fraction fraction of that energy that scales
     *        with node capacitance; the rest (eDRAM, I/O drivers)
     *        only sees the voltage term
     */
    double energyPerOpJ(const TechNode &node, double vdd,
                        double e_nominal_28_j,
                        double scaling_fraction = 1.0) const;

    /**
     * Leakage power (W) of @p area_mm2 of active silicon at
     * (node, vdd); quadratic in voltage relative to nominal.
     */
    double leakagePowerW(const TechNode &node, double vdd,
                         double area_mm2) const;

    // -- Figure 1 series (normalized so 250nm == 1.0) -------------------

    /** Fig 1-A: mask cost. */
    double maskCostNorm(NodeId id) const;
    /** Fig 1-B: energy per op at nominal voltage; *decreases* with node,
     *  so the value is <= 1 for newer nodes. */
    double energyPerOpNorm(NodeId id) const;
    /** Fig 1-B dotted line: hypothetical Dennard voltage scaling. */
    double energyPerOpDennardNorm(NodeId id) const;
    /** Fig 1-C: $ per op/s for designs not limited by power density. */
    double costPerOpsNormUnlimited(NodeId id) const;
    /** Fig 1-C: $ per op/s with power-density-limited compute density
     *  after 90nm (the end of Dennard scaling). */
    double costPerOpsNormPowerLimited(NodeId id) const;
    /** Fig 1-D: maximum logic transistors per die. */
    double maxTransistorsNorm(NodeId id) const;
    /** Fig 1-E: maximum transistor frequency. */
    double frequencyNorm(NodeId id) const;

    /** Wafer cost per mm^2 of silicon for @p node. */
    double waferCostPerMm2(const TechNode &node) const;

  private:
    const TechDatabase *db_;
};

} // namespace moonwalk::tech

#endif // MOONWALK_TECH_SCALING_HH
