/**
 * @file
 * The canonical technology-node database (paper Tables 1 and 2).
 */
#ifndef MOONWALK_TECH_DATABASE_HH
#define MOONWALK_TECH_DATABASE_HH

#include <vector>

#include "tech/node.hh"

namespace moonwalk::tech {

/**
 * Read-only database of the eight nodes the paper evaluates.
 *
 * The default-constructed database holds the paper's published values;
 * tests may construct variants through the mutable accessor to model
 * sensitivity studies.
 */
class TechDatabase
{
  public:
    /** Build the database with the paper's published parameters. */
    TechDatabase();

    /** Node record for @p id. */
    const TechNode &node(NodeId id) const;

    /** Node record by feature width in nm (must match exactly). */
    const TechNode &nodeByFeature(double feature_nm) const;

    /** All nodes, oldest first. */
    const std::vector<TechNode> &nodes() const { return nodes_; }

    /** Mutable access for sensitivity studies (tests only). */
    TechNode &mutableNode(NodeId id);

    /**
     * CMOS scaling factor S between two nodes: ratio of feature widths,
     * e.g. S(180nm, 130nm) = 1.38.
     */
    double scalingFactor(NodeId from, NodeId to) const;

  private:
    std::vector<TechNode> nodes_;
};

/** Process-wide shared default database. */
const TechDatabase &defaultTechDatabase();

} // namespace moonwalk::tech

#endif // MOONWALK_TECH_DATABASE_HH
