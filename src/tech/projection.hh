/**
 * @file
 * Future-node projection: extrapolate the node database's cost and
 * device trends (log-log, from the two newest real nodes) to
 * hypothetical nodes like 10nm and 7nm, extending the paper's
 * "advanced nodes like 16nm are not always better" argument forward.
 *
 * Projected nodes carry honest silicon parameters (mask/wafer cost,
 * scaling factors, Vdd/Vth trends) but are analysis-level objects:
 * they reuse the newest real node's id, and the IP catalog does not
 * extend to them, so NRE projections extrapolate the PHY trends
 * separately (see nre::projectedIpCost).
 */
#ifndef MOONWALK_TECH_PROJECTION_HH
#define MOONWALK_TECH_PROJECTION_HH

#include "tech/database.hh"

namespace moonwalk::tech {

/**
 * Project a hypothetical node at @p feature_nm (< the newest real
 * node) by continuing the 28nm -> 16nm log-log trends of every
 * extrapolatable parameter.  Density/frequency/capacitance factors
 * follow the same S relations as real nodes.
 */
TechNode projectNode(double feature_nm,
                     const TechDatabase &db = defaultTechDatabase());

} // namespace moonwalk::tech

#endif // MOONWALK_TECH_PROJECTION_HH
