/**
 * @file
 * Technology node identifiers and per-node silicon parameters.
 *
 * The eight nodes are the ones the paper evaluates (Section 2): 250, 180,
 * 130, 90, 65, 40, 28 and 16 nm.  Numeric parameters come from the paper's
 * Table 1 (mask/wafer cost, backend $/gate), Table 2 (nominal Vdd) and
 * Figure 1 (scaling factors); remaining parameters (threshold voltage,
 * defect density, DRAM generation) are documented estimates consistent
 * with the paper's narrative.
 */
#ifndef MOONWALK_TECH_NODE_HH
#define MOONWALK_TECH_NODE_HH

#include <array>
#include <cstdint>
#include <string>

namespace moonwalk::tech {

/** The eight process nodes evaluated by the paper, oldest first. */
enum class NodeId : uint8_t
{
    N250 = 0,
    N180,
    N130,
    N90,
    N65,
    N40,
    N28,
    N16,
};

/** Number of nodes in NodeId. */
constexpr int kNumNodes = 8;

/** All nodes, oldest (250nm) to newest (16nm). */
constexpr std::array<NodeId, kNumNodes> kAllNodes = {
    NodeId::N250, NodeId::N180, NodeId::N130, NodeId::N90,
    NodeId::N65, NodeId::N40, NodeId::N28, NodeId::N16,
};

/** DRAM interface generation available to a node (Section 6.3). */
enum class DramGeneration : uint8_t
{
    SDR,     ///< single-data-rate SDRAM; the only option at 250/180nm
    DDR,     ///< DDR/DDR2 era (130/90nm)
    LPDDR3,  ///< "ramping to LPDDR3 in 65nm" (65nm and newer)
};

/**
 * Silicon and cost parameters for one technology node.
 *
 * All dollar figures are late-2016 US dollars as published in the paper.
 */
struct TechNode
{
    NodeId id;
    /** Feature width in nm (the X axis of Figure 1). */
    double feature_nm;
    /** Human-readable name, e.g. "65nm". */
    std::string name;

    // -- Table 1 -----------------------------------------------------
    /** Full mask-set cost ($); 9 metal layers where supported. */
    double mask_cost;
    /** Processed wafer cost ($). */
    double wafer_cost;
    /** Wafer diameter (mm); 200mm for 250/180nm, 300mm otherwise. */
    double wafer_diameter_mm;
    /** Backend (RTL-to-GDS) labor cost per unique design gate ($),
     *  per the IBS model [30]; jumps at 16nm with double patterning. */
    double backend_cost_per_gate;
    /** Metal layer count assumed for the mask set. */
    int metal_layers;

    // -- Table 2 -----------------------------------------------------
    /** Nominal supply voltage (V). */
    double vdd_nominal;

    // -- Device model (estimates; see DESIGN.md) ----------------------
    /** Effective threshold voltage (V) for the alpha-power delay model. */
    double vth;
    /** Lowest practical (near-threshold) operating voltage (V). */
    double vdd_min;
    /** Leakage power density at nominal Vdd (W/mm^2), roughly zero for
     *  pre-90nm nodes and growing with density afterwards. */
    double leakage_w_per_mm2;
    /** Defect density (defects/cm^2) for the Murphy yield model. */
    double defect_density_per_cm2;

    // -- Scaling factors (Figure 1), relative to 28nm == 1.0 ----------
    /** Logic density factor: gates/mm^2 relative to 28nm (scales S^2). */
    double density_factor;
    /** Transistor frequency factor relative to 28nm (scales S). */
    double freq_factor;
    /** Switched capacitance per gate relative to 28nm (scales 1/S):
     *  energy/op at a fixed voltage is proportional to this. */
    double cap_factor;

    // -- Platform ------------------------------------------------------
    /** DRAM interface generation available in this node. */
    DramGeneration dram_generation;
    /** Maximum die area (mm^2), bounded by the lithography reticle. */
    double max_die_area_mm2;

    /** Highest allowed operating voltage (V): 50% above nominal
     *  (Section 5.2). */
    double vddMax() const { return 1.5 * vdd_nominal; }

    /** Usable wafer area (mm^2) = pi * r^2. */
    double waferAreaMm2() const;

    /** Gross die candidates per wafer for a square die of @p area_mm2,
     *  including the standard edge-loss correction. */
    double grossDiesPerWafer(double die_area_mm2) const;
};

/** Short name for a node, e.g. "65nm". */
std::string to_string(NodeId id);

/** Index of @p id in kAllNodes (0 == 250nm). */
constexpr int
nodeIndex(NodeId id)
{
    return static_cast<int>(id);
}

} // namespace moonwalk::tech

#endif // MOONWALK_TECH_NODE_HH
