#include "nre/ip_catalog.hh"

#include <array>

#include "util/error.hh"
#include "util/math.hh"

namespace moonwalk::nre {

std::string
to_string(IpBlock block)
{
    switch (block) {
      case IpBlock::DramController: return "DRAM Ctlr";
      case IpBlock::DramPhy: return "DRAM PHY";
      case IpBlock::PcieController: return "PCI-E Ctlr";
      case IpBlock::PciePhy: return "PCI-E PHY";
      case IpBlock::Pll: return "PLL";
      case IpBlock::LvdsIo: return "LVDS IO";
      case IpBlock::StdCellsSram: return "Standard Cells, SRAM";
    }
    panic("invalid IpBlock ", static_cast<int>(block));
}

namespace {

constexpr double kNA = -1.0;

// Table 4, thousands of USD; columns are nodes oldest (250nm) first.
struct CatalogRow
{
    IpBlock block;
    std::array<double, tech::kNumNodes> cost_k;
};

constexpr std::array<CatalogRow, 7> kCatalog = {{
    {IpBlock::DramController, {kNA, kNA, 125, 125, 125, 125, 125, 125}},
    {IpBlock::DramPhy,        {kNA, kNA, 150, 165, 175, 280, 390, 750}},
    {IpBlock::PcieController, {kNA, kNA,  90,  90, 125, 125, 125, 125}},
    {IpBlock::PciePhy,        {kNA, kNA, 160, 180, 325, 375, 510, 775}},
    {IpBlock::Pll,            { 15,  15,  15,  20,  30,  50,  35,  50}},
    {IpBlock::LvdsIo,         {7.5, 7.5,   0, 150,  90,  36,  40, 200}},
    {IpBlock::StdCellsSram,   {  0,   0,   0,   0,   0, 100, 100, 100}},
}};

} // namespace

std::optional<double>
IpCatalog::cost(IpBlock block, tech::NodeId node) const
{
    for (const auto &row : kCatalog) {
        if (row.block != block)
            continue;
        const double k = row.cost_k[tech::nodeIndex(node)];
        if (k == kNA)
            return std::nullopt;
        return k * 1e3;
    }
    panic("IpBlock ", static_cast<int>(block), " missing from catalog");
}

bool
IpCatalog::available(IpBlock block, tech::NodeId node) const
{
    return cost(block, node).has_value();
}

double
projectedIpCost(IpBlock block, double feature_nm)
{
    if (feature_nm >= 16.0 || feature_nm < 3.0)
        fatal("IP projection expects a feature width in [3, 16)nm");
    IpCatalog catalog;
    const double c16 = catalog.cost(block, tech::NodeId::N16).value();
    const double c28 = catalog.cost(block, tech::NodeId::N28).value();
    if (c16 <= 0.0 || c28 <= 0.0 || c16 == c28)
        return c16;  // flat (or free) pricing stays flat
    return loglogInterp(feature_nm, 16.0, c16, 28.0, c28);
}

} // namespace moonwalk::nre
