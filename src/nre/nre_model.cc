#include "nre/nre_model.hh"

#include "util/error.hh"

namespace moonwalk::nre {

double
NreModel::ipCost(const tech::TechNode &node, const AppNreParams &app,
                 const DesignIpNeeds &needs) const
{
    const tech::NodeId id = node.id;
    double cost = app.extra_ip_cost;

    // Standard cells + SRAM generators: free at 65nm and older,
    // ~$100K at 40nm and newer (Section 4).
    cost += catalog_.cost(IpBlock::StdCellsSram, id).value();

    if (needs.clock_mhz > IpCatalog::kPllThresholdMhz)
        cost += catalog_.cost(IpBlock::Pll, id).value();

    if (needs.dram_interfaces > 0) {
        const auto ctlr = catalog_.cost(IpBlock::DramController, id);
        const auto phy = catalog_.cost(IpBlock::DramPhy, id);
        if (ctlr && phy) {
            // One controller + PHY license covers all instances.
            cost += *ctlr + *phy;
        } else {
            // 250/180nm: no DDR IP exists; a free SDR controller
            // suffices (Sections 4 and 6.3).
        }
    }

    if (needs.high_speed_link) {
        const auto ctlr = catalog_.cost(IpBlock::PcieController, id);
        const auto phy = catalog_.cost(IpBlock::PciePhy, id);
        if (!ctlr || !phy) {
            fatal("no PCI-E/HyperTransport IP exists at ", node.name,
                  "; the design cannot be built on this node");
        }
        cost += *ctlr + *phy;
    }

    if (needs.lvds_io)
        cost += catalog_.cost(IpBlock::LvdsIo, id).value();

    return cost * params_.ip_cost_scale;
}

double
NreModel::backendManMonths(const tech::TechNode &node,
                           const AppNreParams &app) const
{
    const double gates = app.rca_gate_count + params_.top_level_gates;
    const double backend_labor = gates * node.backend_cost_per_gate;
    // Divide by the fully-loaded monthly rate: the IBS dollars-per-gate
    // figure covers loaded labor cost, so the implied schedule uses the
    // same basis.  (Calibrated: this reproduces the paper's Bitcoin
    // 250nm NRE of $561K exactly; see tests/nre/nre_paper_test.cc.)
    return backend_labor /
        (params_.backend_salary / 12.0 * (1.0 + params_.overhead));
}

NreBreakdown
NreModel::compute(const tech::TechNode &node, const AppNreParams &app,
                  const DesignIpNeeds &needs) const
{
    NreBreakdown b;
    b.mask = node.mask_cost;
    b.package = params_.package_nre;

    b.frontend_labor =
        params_.laborCost(app.frontend_mm, params_.frontend_salary);
    b.frontend_cad =
        app.frontend_cad_months * params_.frontend_cad_per_mm;

    // Backend: the IBS model [30] gives total backend labor in dollars
    // per unique gate; tool cost follows from the implied schedule
    // (Section 4: "we divide the backend cost by the backend labor
    // salary" to get CAD tool months).
    const double gates = app.rca_gate_count + params_.top_level_gates;
    b.backend_labor = gates * node.backend_cost_per_gate;
    const double backend_months = backendManMonths(node, app);
    b.backend_cad = backend_months * params_.backend_cad_per_month;

    b.ip = ipCost(node, app, needs);

    const double system_mm = app.fpga_job_distribution_mm +
        app.fpga_bios_mm + app.cloud_software_mm;
    b.system_labor = params_.laborCost(system_mm,
                                       params_.frontend_salary);
    b.pcb_design = app.pcb_design_cost;
    return b;
}

} // namespace moonwalk::nre
