#include "nre/structured_asic.hh"

#include "util/error.hh"

namespace moonwalk::nre {

arch::RcaSpec
applyStructuredPenalties(const arch::RcaSpec &rca,
                         const StructuredAsicParams &p)
{
    if (p.area_penalty < 1.0 || p.energy_penalty < 1.0 ||
        p.freq_penalty > 1.0 || p.freq_penalty <= 0.0) {
        fatal("structured-ASIC penalties must not beat full custom");
    }

    arch::RcaSpec s = rca;
    s.name = rca.name + " (structured)";
    s.area_28_mm2 = rca.area_28_mm2 * p.area_penalty;
    s.energy_per_op_28_j = rca.energy_per_op_28_j * p.energy_penalty;
    s.f_nominal_28_mhz = rca.f_nominal_28_mhz * p.freq_penalty;
    return s;
}

NreBreakdown
structuredAsicNre(const NreModel &model, const tech::TechNode &node,
                  const AppNreParams &app, const DesignIpNeeds &needs,
                  const StructuredAsicParams &p)
{
    if (p.mask_fraction <= 0.0 || p.mask_fraction > 1.0)
        fatal("mask fraction must be in (0, 1]");
    if (p.backend_scale <= 0.0 || p.backend_scale > 1.0)
        fatal("backend scale must be in (0, 1]");

    NreBreakdown b = model.compute(node, app, needs);
    b.mask *= p.mask_fraction;
    b.backend_labor *= p.backend_scale;
    b.backend_cad *= p.backend_scale;
    if (p.reuse_vendor_package)
        b.package = 0.0;
    return b;
}

} // namespace moonwalk::nre
