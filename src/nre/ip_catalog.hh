/**
 * @file
 * IP licensing cost catalog (paper Table 4 and Figure 3).
 *
 * Costs are late-2016 USD.  "NA" entries in the paper (no DDR DRAM or
 * PCI-E blocks exist for 250/180nm) are modeled as unavailable; per
 * Section 6.3, designs needing DRAM on those nodes fall back to a free
 * SDR controller.
 */
#ifndef MOONWALK_NRE_IP_CATALOG_HH
#define MOONWALK_NRE_IP_CATALOG_HH

#include <array>
#include <optional>
#include <string>

#include "tech/node.hh"

namespace moonwalk::nre {

/** Third-party IP block categories from Table 4. */
enum class IpBlock
{
    DramController,
    DramPhy,
    PcieController,
    PciePhy,
    Pll,
    LvdsIo,
    StdCellsSram,  ///< standard cells + SRAM generators
};

/** All catalog entries, in Table 4 order. */
constexpr std::array<IpBlock, 7> kAllIpBlocks = {
    IpBlock::DramController, IpBlock::DramPhy,
    IpBlock::PcieController, IpBlock::PciePhy,
    IpBlock::Pll, IpBlock::LvdsIo, IpBlock::StdCellsSram,
};

/** Human-readable block name. */
std::string to_string(IpBlock block);

/**
 * Licensing cost catalog indexed by (block, node).
 */
class IpCatalog
{
  public:
    /**
     * Licensing cost in dollars for @p block at @p node, or nullopt if
     * no such IP exists for that node (Table 4 "NA").
     */
    std::optional<double> cost(IpBlock block, tech::NodeId node) const;

    /** True if the block can be licensed at @p node. */
    bool available(IpBlock block, tech::NodeId node) const;

    /** Frequency (MHz) above which a design needs an internal PLL
     *  (Section 4: "designs that use fast (> 150 MHz) clocks"). */
    static constexpr double kPllThresholdMhz = 150.0;
};

/**
 * Extrapolated licensing cost ($) of @p block at a hypothetical node
 * of @p feature_nm (< 16), continuing the 28nm -> 16nm price trend
 * on log-log axes; blocks priced flat across those nodes stay flat.
 * Companion to tech::projectNode for future-node studies.
 */
double projectedIpCost(IpBlock block, double feature_nm);

} // namespace moonwalk::nre

#endif // MOONWALK_NRE_IP_CATALOG_HH
