/**
 * @file
 * The NRE model of Section 4: labor, package design, CAD tools, IP and
 * mask costs for developing an ASIC Cloud design at a given node.
 */
#ifndef MOONWALK_NRE_NRE_MODEL_HH
#define MOONWALK_NRE_NRE_MODEL_HH

#include <string>
#include <vector>

#include "nre/ip_catalog.hh"
#include "tech/node.hh"

namespace moonwalk::nre {

/**
 * Node-independent NRE parameters (paper Table 3; San Diego, late 2016).
 */
struct NreParameters
{
    double frontend_salary = 115e3;       ///< $/yr [19]
    double frontend_cad_per_mm = 4e3;     ///< $/man-month of FE CAD
    double backend_salary = 95e3;         ///< $/yr [19]
    double backend_cad_per_month = 20e3;  ///< $/month of BE tool license
    double overhead = 0.65;               ///< benefits + supplies on salary
    double top_level_gates = 15e3;        ///< I/O + NoC top-level overhead
    double package_nre = 105e3;           ///< flip-chip BGA design+tooling
    /** Multiplier on all licensed IP (sensitivity studies; 1.0 is the
     *  paper's Table 4 pricing). */
    double ip_cost_scale = 1.0;

    /** Fully-loaded labor cost for @p man_months at @p salary $/yr. */
    double laborCost(double man_months, double salary) const
    {
        return man_months * (salary / 12.0) * (1.0 + overhead);
    }
};

/**
 * Application-dependent NRE parameters (paper Table 5).
 */
struct AppNreParams
{
    std::string app_name;
    double rca_gate_count = 0;       ///< unique design gates per RCA
    double frontend_cad_months = 0;  ///< FE CAD-months
    double frontend_mm = 0;          ///< FE man-months
    double fpga_job_distribution_mm = 0;
    double fpga_bios_mm = 0;
    double cloud_software_mm = 0;
    double pcb_design_cost = 0;      ///< vendor-quoted PCB design ($)
    /** Application-specific licensed IP beyond the catalog, e.g. the
     *  $200K H.265 decoder license for Video Transcode (Section 5.3). */
    double extra_ip_cost = 0;
};

/**
 * What the chosen design point actually needs from the node, which
 * determines IP licensing cost (Section 4).
 */
struct DesignIpNeeds
{
    double clock_mhz = 0;        ///< PLL needed above 150 MHz
    int dram_interfaces = 0;     ///< DRAM ctlr+PHY if > 0
    bool high_speed_link = false;///< PCI-E / HyperTransport ctlr+PHY
    bool lvds_io = false;        ///< LVDS off-chip interface
};

/**
 * Per-component NRE breakdown ($).
 */
struct NreBreakdown
{
    double mask = 0;
    double package = 0;
    double frontend_labor = 0;
    double frontend_cad = 0;
    double backend_labor = 0;
    double backend_cad = 0;
    double ip = 0;
    double system_labor = 0;  ///< FPGA firmware + cloud software
    double pcb_design = 0;

    double total() const
    {
        return mask + package + frontend_labor + frontend_cad +
            backend_labor + backend_cad + ip + system_labor + pcb_design;
    }

    /** System-level (non-ASIC) NRE shown in Figure 5. */
    double systemLevel() const { return system_labor + pcb_design; }
};

/**
 * The NRE model: combines Table 3 parameters, the Table 4 IP catalog and
 * Table 5 application parameters into a per-node NRE estimate.
 */
class NreModel
{
  public:
    explicit NreModel(NreParameters params = {})
        : params_(params)
    {}

    const NreParameters &parameters() const { return params_; }
    const IpCatalog &ipCatalog() const { return catalog_; }

    /**
     * Compute the NRE of implementing @p app on @p node with a design
     * point whose IP needs are @p needs.
     *
     * Backend labor scales with unique design gates (one RCA plus
     * top-level overhead; the hierarchical backend flow of Section 4
     * scales with RCA complexity, not die instance count).
     *
     * @throws ModelError if the design needs IP that does not exist at
     *         this node (e.g. PCI-E at 180nm).
     */
    NreBreakdown compute(const tech::TechNode &node,
                         const AppNreParams &app,
                         const DesignIpNeeds &needs) const;

    /** IP licensing cost alone for (node, needs); DRAM interfaces on
     *  SDR-only nodes use the free SDR controller (Section 4). */
    double ipCost(const tech::TechNode &node, const AppNreParams &app,
                  const DesignIpNeeds &needs) const;

    /** Backend labor man-months implied by the IBS gate model. */
    double backendManMonths(const tech::TechNode &node,
                            const AppNreParams &app) const;

  private:
    NreParameters params_;
    IpCatalog catalog_;
};

} // namespace moonwalk::nre

#endif // MOONWALK_NRE_NRE_MODEL_HH
