/**
 * @file
 * Structured-ASIC implementation option (paper Section 8: "Structured
 * ASICs try to reduce NRE [58, 59, 63], but with significant
 * penalties").
 *
 * A structured ASIC prefabricates the transistor layers ("base
 * masks") shared across customers; each design pays only for the
 * upper-metal customization masks and a lighter backend flow, at the
 * price of lower logic density, higher energy, and slower clocks.
 * This module turns an RcaSpec into its structured-ASIC equivalent
 * and prices the reduced NRE, letting the optimizer compare both
 * implementation paths per node.
 */
#ifndef MOONWALK_NRE_STRUCTURED_ASIC_HH
#define MOONWALK_NRE_STRUCTURED_ASIC_HH

#include "arch/rca.hh"
#include "nre/nre_model.hh"

namespace moonwalk::nre {

/**
 * Penalty and saving factors for a structured-ASIC flow.  Defaults
 * follow the ranges reported in the structured-ASIC literature the
 * paper cites (2-3x area, ~2x power, ~0.6-0.8x frequency; only the
 * via/metal mask subset is design-specific).
 */
struct StructuredAsicParams
{
    /** Fraction of the full mask-set cost that is design-specific
     *  (upper metal + via masks). */
    double mask_fraction = 0.30;
    /** Backend effort multiplier: placement is constrained to the
     *  prefabricated fabric, shrinking the physical-design task. */
    double backend_scale = 0.5;
    /** Logic area penalty versus standard cells. */
    double area_penalty = 2.2;
    /** Dynamic energy penalty (longer wires, generic fabric). */
    double energy_penalty = 1.9;
    /** Achievable frequency multiplier. */
    double freq_penalty = 0.70;
    /** No custom flip-chip package design: the fabric vendor's
     *  qualified package is reused. */
    bool reuse_vendor_package = true;
};

/**
 * The RCA as it would perform on the structured fabric: same
 * function and gate count, penalized area/energy/frequency.
 */
arch::RcaSpec applyStructuredPenalties(const arch::RcaSpec &rca,
                                       const StructuredAsicParams &p);

/**
 * NRE of a structured-ASIC implementation: reduced mask cost and
 * backend effort; frontend, system and IP costs unchanged.
 */
NreBreakdown structuredAsicNre(const NreModel &model,
                               const tech::TechNode &node,
                               const AppNreParams &app,
                               const DesignIpNeeds &needs,
                               const StructuredAsicParams &p);

} // namespace moonwalk::nre

#endif // MOONWALK_NRE_STRUCTURED_ASIC_HH
