/**
 * @file
 * Server bill-of-materials cost model: the component categories of the
 * paper's Figure 7 (silicon, package, power delivery, cooling, DRAM,
 * and node-independent system parts).
 */
#ifndef MOONWALK_COST_SERVER_BOM_HH
#define MOONWALK_COST_SERVER_BOM_HH

#include "power/power_delivery.hh"

namespace moonwalk::cost {

/**
 * Unit-cost and efficiency parameters for the non-silicon parts of an
 * ASIC Cloud server (late-2016 USD; see DESIGN.md calibration notes).
 */
struct ServerBomParams
{
    // Packaging: flip-chip BGA, cost grows with die area.
    double package_base_cost = 2.5;          ///< $ per package
    double package_cost_per_mm2 = 0.010;     ///< $ per mm^2 of die

    // Power delivery: current-sized multiphase converters and a
    // margin-rated PSU with a load-dependent efficiency curve.
    power::PsuParams psu;
    power::DcdcParams dcdc;

    // System components (per server).
    double pcb_cost = 220.0;
    double fpga_controller_cost = 110.0;
    double chassis_assembly_cost = 70.0;

    /** Wall power limit of a 1U supply (W). */
    double max_server_power_w = 4000.0;

    /** Flip-chip package unit cost for a die of @p area_mm2. */
    double packageCost(double die_area_mm2) const
    {
        return package_base_cost + package_cost_per_mm2 * die_area_mm2;
    }
};

/**
 * Per-category server cost ($), the stack of the paper's Figure 7.
 */
struct ServerCostBreakdown
{
    double silicon = 0;
    double package = 0;
    double cooling = 0;         ///< heatsinks + fans
    double power_delivery = 0;  ///< PSU + DC/DC converters
    double dram = 0;
    double system = 0;          ///< PCB, FPGA, NIC, chassis

    double total() const
    {
        return silicon + package + cooling + power_delivery + dram +
            system;
    }
};

} // namespace moonwalk::cost

#endif // MOONWALK_COST_SERVER_BOM_HH
