#include "cost/die_cost.hh"

#include "cost/yield.hh"
#include "util/error.hh"

namespace moonwalk::cost {

double
DieCostModel::dieCost(const tech::TechNode &node, double area_mm2,
                      double top_level_area_mm2) const
{
    const double gross = node.grossDiesPerWafer(area_mm2);
    if (gross < 1.0)
        fatal("die of ", area_mm2, " mm^2 does not fit a ",
              node.wafer_diameter_mm, "mm wafer");
    const double y_top =
        murphyYield(top_level_area_mm2, node.defect_density_per_cm2);
    return node.wafer_cost / (gross * y_top);
}

double
DieCostModel::goodRcaFraction(const tech::TechNode &node,
                              double rca_area_mm2) const
{
    return poissonYield(rca_area_mm2, node.defect_density_per_cm2);
}

} // namespace moonwalk::cost
