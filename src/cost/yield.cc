#include "cost/yield.hh"

#include <cmath>

#include "util/error.hh"

namespace moonwalk::cost {

double
murphyYield(double area_mm2, double defects_per_cm2)
{
    if (area_mm2 < 0.0 || defects_per_cm2 < 0.0)
        fatal("yield model needs non-negative area and defect density");
    const double ad = (area_mm2 / 100.0) * defects_per_cm2;
    if (ad < 1e-12)
        return 1.0;
    const double t = (1.0 - std::exp(-ad)) / ad;
    return t * t;
}

double
poissonYield(double area_mm2, double defects_per_cm2)
{
    if (area_mm2 < 0.0 || defects_per_cm2 < 0.0)
        fatal("yield model needs non-negative area and defect density");
    return std::exp(-(area_mm2 / 100.0) * defects_per_cm2);
}

} // namespace moonwalk::cost
