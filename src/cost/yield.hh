/**
 * @file
 * Die yield models.  ASIC Cloud dies are regular RCA arrays that
 * tolerate defects by disabling faulty RCAs (defect harvesting), so
 * classic die yield applies only to the small top-level logic while
 * array defects show up as a slightly reduced good-RCA fraction.
 */
#ifndef MOONWALK_COST_YIELD_HH
#define MOONWALK_COST_YIELD_HH

namespace moonwalk::cost {

/**
 * Murphy yield model.
 *
 * @param area_mm2 die area in mm^2
 * @param defects_per_cm2 process defect density
 * @return fraction of dies with zero defects
 */
double murphyYield(double area_mm2, double defects_per_cm2);

/**
 * Poisson probability that a block of @p area_mm2 is defect free; used
 * per-RCA for the harvested-array model.
 */
double poissonYield(double area_mm2, double defects_per_cm2);

} // namespace moonwalk::cost

#endif // MOONWALK_COST_YIELD_HH
