/**
 * @file
 * Per-die silicon cost: wafer cost over gross dies, with defect
 * harvesting for the RCA array (Section 6.3 die costs, Table 7-10
 * "Die Cost" rows).
 */
#ifndef MOONWALK_COST_DIE_COST_HH
#define MOONWALK_COST_DIE_COST_HH

#include "tech/node.hh"

namespace moonwalk::cost {

/**
 * Die cost model for harvested RCA-array ASICs.
 */
class DieCostModel
{
  public:
    /**
     * Cost ($) of one die of @p area_mm2 in @p node.
     *
     * The RCA array harvests defects (bad RCAs are disabled), so only
     * the top-level logic must be defect free; with the paper's small
     * 15K-gate top level this yield term is ~1 and cost is dominated
     * by gross dies per wafer.
     */
    double dieCost(const tech::TechNode &node, double area_mm2,
                   double top_level_area_mm2 = 2.0) const;

    /**
     * Expected fraction of RCAs that survive fabrication (Poisson
     * defect model per RCA); discounts deliverable performance.
     */
    double goodRcaFraction(const tech::TechNode &node,
                           double rca_area_mm2) const;
};

} // namespace moonwalk::cost

#endif // MOONWALK_COST_DIE_COST_HH
