/**
 * @file
 * The paper's "two-for-two rule" (Section 1): an accelerator-based
 * cloud at least breaks even when (1) the computation's TCO exceeds
 * twice the NRE, and (2) the ASIC improves TCO per op/s by at least
 * 2x over the best alternative.
 */
#ifndef MOONWALK_CORE_TWO_FOR_TWO_HH
#define MOONWALK_CORE_TWO_FOR_TWO_HH

#include <optional>
#include <vector>

#include "core/optimizer.hh"

namespace moonwalk::core {

/** Verdict of the two-for-two rule for one candidate node. */
struct TwoForTwoVerdict
{
    tech::NodeId node;
    /** Condition 1: workload TCO / NRE (must exceed ratio, def. 2). */
    double tco_over_nre = 0;
    /** Condition 2: baseline TCO/op/s over ASIC TCO/op/s. */
    double tco_per_ops_gain = 0;
    bool condition1 = false;
    bool condition2 = false;

    bool passes() const { return condition1 && condition2; }

    /** Net saving ($) over the workload versus staying on the
     *  baseline, after paying NRE. */
    double net_saving = 0;
};

/**
 * Applies the rule across nodes for a given workload scale.
 */
class TwoForTwoRule
{
  public:
    explicit TwoForTwoRule(const MoonwalkOptimizer &optimizer,
                           double ratio = 2.0)
        : optimizer_(&optimizer), ratio_(ratio)
    {}

    double ratio() const { return ratio_; }

    /**
     * Evaluate every feasible node for @p app given a workload whose
     * pre-ASIC TCO is @p workload_tco dollars.
     */
    std::vector<TwoForTwoVerdict>
    evaluate(const apps::AppSpec &app, double workload_tco) const;

    /**
     * Smallest workload TCO at which some node passes both
     * conditions, or nullopt if no node can ever pass (condition 2
     * fails everywhere).
     */
    std::optional<double> breakEvenTco(const apps::AppSpec &app) const;

  private:
    const MoonwalkOptimizer *optimizer_;
    double ratio_;
};

} // namespace moonwalk::core

#endif // MOONWALK_CORE_TWO_FOR_TWO_HH
