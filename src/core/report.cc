#include "core/report.hh"

#include <cmath>

#include "util/format.hh"
#include "util/table.hh"

namespace moonwalk::core {

void
ReportGenerator::writeText(std::ostream &os, const apps::AppSpec &app,
                           double workload_tco) const
{
    const auto &opt = *optimizer_;
    const auto &sweep = opt.sweepNodes(app);
    const double scale = app.rca.perf_unit_scale;
    const std::string &unit = app.rca.perf_unit;

    os << "==============================================\n"
       << "Moonwalk report: " << app.name() << "\n"
       << "==============================================\n\n"
       << "Baseline: " << app.baseline.hardware << ", "
       << sig(opt.baselineTcoPerOps(app) * scale, 4) << " $ TCO per "
       << unit << "\n\n";

    os << "-- TCO-optimal ASIC Cloud server per node --\n";
    TextTable t({"Tech", "RCAs/die", "mm^2", "DRAM", "Vdd", "MHz",
                 unit, "W", "Server $", "TCO/" + unit, "NRE"});
    for (const auto &r : sweep) {
        const auto &p = r.optimal;
        t.addRow({tech::to_string(r.node),
                  std::to_string(p.config.rcas_per_die),
                  fixed(p.die_area_mm2, 0),
                  std::to_string(p.config.drams_per_die),
                  fixed(p.config.vdd, 3), fixed(p.freq_mhz, 0),
                  sig(p.perf_ops / scale, 4),
                  fixed(p.wall_power_w, 0), money(p.server_cost),
                  sig(p.tco_per_ops * scale, 4),
                  money(r.nre.total())});
    }
    t.print(os);

    os << "\n-- NRE breakdown (K$) --\n";
    TextTable n({"Tech", "Mask", "FE", "BE", "IP", "System", "Pkg",
                 "Total"});
    for (const auto &r : sweep) {
        const auto &b = r.nre;
        auto k = [](double v) { return fixed(v / 1e3, 0); };
        n.addRow({tech::to_string(r.node), k(b.mask),
                  k(b.frontend_labor + b.frontend_cad),
                  k(b.backend_labor + b.backend_cad), k(b.ip),
                  k(b.system_labor + b.pcb_design), k(b.package),
                  k(b.total())});
    }
    n.print(os);

    os << "\n-- Optimal node vs workload scale --\n";
    for (const auto &range : opt.optimalNodeRanges(app)) {
        const std::string who = range.line.node ?
            tech::to_string(*range.line.node) : app.baseline.hardware;
        os << "  " << money(range.b_low, 3) << " .. "
           << (std::isinf(range.b_high) ? std::string("inf")
                                        : money(range.b_high, 3))
           << " : " << who << "\n";
    }

    if (workload_tco > 0.0) {
        os << "\n-- Two-for-two rule at " << money(workload_tco)
           << " workload TCO --\n";
        TwoForTwoRule rule(opt);
        TextTable v({"Tech", "TCO/NRE", ">2?", "TCO/op/s gain", ">2?",
                     "net saving"});
        for (const auto &verdict : rule.evaluate(app, workload_tco)) {
            v.addRow({tech::to_string(verdict.node),
                      times(verdict.tco_over_nre, 3),
                      verdict.condition1 ? "yes" : "no",
                      times(verdict.tco_per_ops_gain, 3),
                      verdict.condition2 ? "yes" : "no",
                      money(verdict.net_saving, 3)});
        }
        v.print(os);

        std::string pick = app.baseline.hardware;
        for (const auto &range : opt.optimalNodeRanges(app)) {
            if (workload_tco >= range.b_low && range.line.node)
                pick = tech::to_string(*range.line.node);
        }
        os << "\nRecommendation: build at " << pick << "\n";
    }
}

Json
ReportGenerator::toJson(const apps::AppSpec &app,
                        double workload_tco) const
{
    const auto &opt = *optimizer_;
    const double scale = app.rca.perf_unit_scale;

    Json root = Json::object();
    root.set("application", app.name());
    root.set("perf_unit", app.rca.perf_unit);

    Json baseline = Json::object();
    baseline.set("hardware", app.baseline.hardware);
    baseline.set("tco_per_unit",
                 opt.baselineTcoPerOps(app) * scale);
    root.set("baseline", std::move(baseline));

    Json nodes = Json::array();
    for (const auto &r : opt.sweepNodes(app)) {
        const auto &p = r.optimal;
        Json nj = Json::object();
        nj.set("node", tech::to_string(r.node));
        nj.set("rcas_per_die", p.config.rcas_per_die);
        nj.set("dies_per_lane", p.config.dies_per_lane);
        nj.set("drams_per_die", p.config.drams_per_die);
        nj.set("dark_silicon_fraction",
               p.config.dark_silicon_fraction);
        nj.set("die_area_mm2", p.die_area_mm2);
        nj.set("vdd", p.config.vdd);
        nj.set("freq_mhz", p.freq_mhz);
        nj.set("perf_units", p.perf_ops / scale);
        nj.set("wall_power_w", p.wall_power_w);
        nj.set("server_cost", p.server_cost);
        nj.set("tco_per_unit", p.tco_per_ops * scale);

        Json cost = Json::object();
        cost.set("silicon", p.cost_breakdown.silicon);
        cost.set("package", p.cost_breakdown.package);
        cost.set("cooling", p.cost_breakdown.cooling);
        cost.set("power_delivery", p.cost_breakdown.power_delivery);
        cost.set("dram", p.cost_breakdown.dram);
        cost.set("system", p.cost_breakdown.system);
        nj.set("server_cost_breakdown", std::move(cost));

        Json nre = Json::object();
        nre.set("mask", r.nre.mask);
        nre.set("package", r.nre.package);
        nre.set("frontend_labor", r.nre.frontend_labor);
        nre.set("frontend_cad", r.nre.frontend_cad);
        nre.set("backend_labor", r.nre.backend_labor);
        nre.set("backend_cad", r.nre.backend_cad);
        nre.set("ip", r.nre.ip);
        nre.set("system_labor", r.nre.system_labor);
        nre.set("pcb_design", r.nre.pcb_design);
        nre.set("total", r.nre.total());
        nj.set("nre", std::move(nre));

        nodes.push(std::move(nj));
    }
    root.set("nodes", std::move(nodes));

    Json ranges = Json::array();
    for (const auto &range : opt.optimalNodeRanges(app)) {
        Json rj = Json::object();
        rj.set("choice", range.line.node ?
               Json(tech::to_string(*range.line.node)) :
               Json("baseline"));
        rj.set("from_tco", range.b_low);
        rj.set("to_tco", std::isinf(range.b_high) ?
               Json(nullptr) : Json(range.b_high));
        ranges.push(std::move(rj));
    }
    root.set("optimal_node_ranges", std::move(ranges));

    if (workload_tco > 0.0) {
        root.set("workload_tco", workload_tco);
        TwoForTwoRule rule(opt);
        Json verdicts = Json::array();
        for (const auto &v : rule.evaluate(app, workload_tco)) {
            Json vj = Json::object();
            vj.set("node", tech::to_string(v.node));
            vj.set("tco_over_nre", v.tco_over_nre);
            vj.set("tco_per_ops_gain", v.tco_per_ops_gain);
            vj.set("passes", v.passes());
            vj.set("net_saving", v.net_saving);
            verdicts.push(std::move(vj));
        }
        root.set("two_for_two", std::move(verdicts));
    }
    return root;
}

} // namespace moonwalk::core
