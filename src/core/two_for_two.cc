#include "core/two_for_two.hh"

#include <algorithm>

#include "util/error.hh"

namespace moonwalk::core {

std::vector<TwoForTwoVerdict>
TwoForTwoRule::evaluate(const apps::AppSpec &app,
                        double workload_tco) const
{
    if (workload_tco < 0.0)
        fatal("workload TCO must be non-negative");

    const double base = optimizer_->baselineTcoPerOps(app);
    std::vector<TwoForTwoVerdict> verdicts;
    for (const auto &r : optimizer_->sweepNodes(app)) {
        TwoForTwoVerdict v;
        v.node = r.node;
        const double nre = r.nre.total();
        v.tco_over_nre = nre > 0.0 ? workload_tco / nre : 0.0;
        v.tco_per_ops_gain = base / r.tcoPerOps();
        v.condition1 = v.tco_over_nre > ratio_;
        v.condition2 = v.tco_per_ops_gain > ratio_;
        // Serving the same workload on the ASIC costs
        // workload_tco / gain plus the NRE.
        v.net_saving = workload_tco -
            (workload_tco / v.tco_per_ops_gain + nre);
        verdicts.push_back(v);
    }
    return verdicts;
}

std::optional<double>
TwoForTwoRule::breakEvenTco(const apps::AppSpec &app) const
{
    const double base = optimizer_->baselineTcoPerOps(app);
    std::optional<double> best;
    for (const auto &r : optimizer_->sweepNodes(app)) {
        const double gain = base / r.tcoPerOps();
        if (gain <= ratio_)
            continue;  // condition 2 unfixable by scale
        // Condition 1 binds: workload > ratio * NRE.
        const double needed = ratio_ * r.nre.total();
        if (!best || needed < *best)
            best = needed;
    }
    return best;
}

} // namespace moonwalk::core
