#include "core/agility.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace moonwalk::core {

std::vector<AgilityPlan>
AgilityPlanner::evaluateAll(const apps::AppSpec &app,
                            const AgilityParams &params) const
{
    if (params.horizon_years < 1)
        fatal("horizon must be at least one year");
    if (params.annual_workload_tco <= 0.0)
        fatal("annual workload TCO must be positive");
    if (params.software_drift_per_year < 0.0)
        fatal("software drift cannot be negative");

    const double base = optimizer_->baselineTcoPerOps(app);
    std::vector<AgilityPlan> plans;

    for (const auto &r : optimizer_->sweepNodes(app)) {
        const double fresh_ratio = r.tcoPerOps() / base;
        for (int period : params.respin_periods) {
            if (period < 1 || period > params.horizon_years)
                continue;
            AgilityPlan plan;
            plan.node = r.node;
            plan.respin_period_years = period;
            plan.tapeouts = (params.horizon_years + period - 1) /
                period;
            plan.total_nre = plan.tapeouts * r.nre.total();
            for (int year = 0; year < params.horizon_years; ++year) {
                const int age = year % period;
                // Stale silicon serves the evolved workload less
                // efficiently; never worse than falling back to the
                // baseline.
                const double ratio = std::min(
                    1.0,
                    fresh_ratio *
                        std::pow(1.0 + params.software_drift_per_year,
                                 age));
                plan.total_served_tco +=
                    params.annual_workload_tco * ratio;
            }
            plans.push_back(plan);
        }
    }
    return plans;
}

AgilityPlan
AgilityPlanner::best(const apps::AppSpec &app,
                     const AgilityParams &params) const
{
    const auto plans = evaluateAll(app, params);
    if (plans.empty())
        fatal("no feasible agility strategies for ", app.name());
    return *std::min_element(
        plans.begin(), plans.end(),
        [](const AgilityPlan &a, const AgilityPlan &b) {
            return a.totalCost() < b.totalCost();
        });
}

} // namespace moonwalk::core
