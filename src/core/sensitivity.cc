#include "core/sensitivity.hh"

#include "util/error.hh"

namespace moonwalk::core {

ScenarioRunner::ScenarioRunner(Scenario scenario,
                               dse::ExplorerOptions options)
    : scenario_(std::move(scenario))
{
    for (double s : {scenario_.mask_cost_scale,
                     scenario_.wafer_cost_scale,
                     scenario_.defect_density_scale,
                     scenario_.salary_scale, scenario_.ip_cost_scale,
                     scenario_.backend_cost_scale,
                     scenario_.electricity_scale,
                     scenario_.dc_capex_scale,
                     scenario_.fan_pressure_scale}) {
        if (s <= 0.0)
            fatal("scenario scales must be positive");
    }

    db_ = std::make_unique<tech::TechDatabase>();
    for (tech::NodeId id : tech::kAllNodes) {
        auto &n = db_->mutableNode(id);
        n.mask_cost *= scenario_.mask_cost_scale;
        n.wafer_cost *= scenario_.wafer_cost_scale;
        n.defect_density_per_cm2 *= scenario_.defect_density_scale;
        n.backend_cost_per_gate *= scenario_.backend_cost_scale;
    }

    thermal::LaneEnvironment lane;
    lane.fan.p_max *= scenario_.fan_pressure_scale;
    lane.fan.q_max *= scenario_.fan_pressure_scale;
    lane.tj_max_c += scenario_.tj_margin_c;

    tco::TcoParameters tco;
    tco.electricity_per_kwh *= scenario_.electricity_scale;
    tco.datacenter_capex_per_w *= scenario_.dc_capex_scale;

    nre::NreParameters nre_params;
    nre_params.frontend_salary *= scenario_.salary_scale;
    nre_params.backend_salary *= scenario_.salary_scale;
    nre_params.ip_cost_scale = scenario_.ip_cost_scale;

    dse::ServerEvaluator evaluator(*db_, lane, cost::ServerBomParams{},
                                   tco);
    optimizer_ = std::make_unique<MoonwalkOptimizer>(
        dse::DesignSpaceExplorer(options, std::move(evaluator)),
        nre::NreModel(nre_params));
}

} // namespace moonwalk::core
