/**
 * @file
 * The Moonwalk optimizer (Sections 6 and 7): per-node TCO-optimal
 * designs with their NREs, total-cost-versus-workload analysis, optimal
 * node ranges, tech parity nodes, and the tick/tock porting study.
 */
#ifndef MOONWALK_CORE_OPTIMIZER_HH
#define MOONWALK_CORE_OPTIMIZER_HH

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "apps/apps.hh"
#include "dse/explorer.hh"
#include "nre/nre_model.hh"

namespace moonwalk::core {

/** TCO-optimal design at one node, with the NRE of building it. */
struct NodeResult
{
    tech::NodeId node;
    dse::DesignPoint optimal;
    nre::NreBreakdown nre;

    double tcoPerOps() const { return optimal.tco_per_ops; }
};

/**
 * Total cost of serving a workload on one node as a function of the
 * workload's pre-ASIC (baseline) TCO B:
 *
 *   total(B) = nre + slope * B,   slope = tco_asic / tco_baseline.
 *
 * The baseline itself is the line (nre = 0, slope = 1).
 */
struct TotalCostLine
{
    std::optional<tech::NodeId> node;  ///< nullopt == stay on baseline
    double nre = 0;
    double slope = 1.0;

    double at(double baseline_tco) const
    {
        return nre + slope * baseline_tco;
    }
};

/** A segment of the lower envelope: @c line is cheapest for baseline
 *  TCOs in [b_low, b_high). */
struct NodeRange
{
    TotalCostLine line;
    double b_low = 0;
    double b_high = 0;  ///< +inf for the last segment
};

/** One (source -> destination) porting penalty (Section 6.2). */
struct PortingEntry
{
    tech::NodeId from;
    tech::NodeId to;
    /** TCO per op/s of the ported design over the destination-native
     *  optimal design (>= 1). */
    double tco_penalty = 1.0;
};

/**
 * Ties the whole model together for one process: explores every node
 * for an application, prices the NRE of each optimal design, and
 * answers the paper's node-selection questions.  Exploration results
 * are cached per application name.
 *
 * sweepNodes() fans out across technology nodes on the exec runtime
 * (and prefetch() additionally across applications, for the
 * multi-app envelope/parity analyses); results are reduced in node
 * order, so every answer is identical at any thread count.  The
 * per-app cache is mutex-guarded, making the optimizer safe to query
 * from concurrent analyses.
 */
class MoonwalkOptimizer
{
  public:
    explicit MoonwalkOptimizer(
        dse::DesignSpaceExplorer explorer = dse::DesignSpaceExplorer{},
        nre::NreModel nre_model = nre::NreModel{});

    const dse::DesignSpaceExplorer &explorer() const { return explorer_; }
    const nre::NreModel &nreModel() const { return nre_model_; }

    /**
     * TCO-optimal design and NRE for every feasible node, oldest
     * first.  Nodes where the application cannot be built (SLA
     * unreachable, missing IP) are omitted.
     */
    const std::vector<NodeResult> &sweepNodes(const apps::AppSpec &app)
        const;

    /**
     * Whether sweepNodes(@p app) would be answered from the per-app
     * cache (true after the first sweep for the app's name).  Lets
     * the serve layer attribute a request's result to "memo" versus
     * "computed" without racing the sweep itself.
     */
    bool hasSweepCached(const apps::AppSpec &app) const;

    /**
     * Warm the per-app sweep cache for many applications in parallel
     * (apps x nodes x sweep cells all share the exec pool).  The
     * envelope (Figure 11) and parity (Figure 12) analyses call this
     * before their per-app loops so the heavy exploration work fans
     * out instead of running app-by-app.
     */
    void prefetch(const std::vector<apps::AppSpec> &apps) const;

    /** NRE of one concrete design point. */
    nre::NreBreakdown nreOf(const apps::AppSpec &app,
                            const dse::DesignPoint &point) const;

    /** Baseline (best non-ASIC) TCO per op/s from Table 6 data. */
    double baselineTcoPerOps(const apps::AppSpec &app) const;

    /** Total-cost lines for Figure 10: baseline plus one per node. */
    std::vector<TotalCostLine> totalCostLines(const apps::AppSpec &app)
        const;

    /**
     * Lower envelope of @p lines over baseline TCO in [0, inf): which
     * choice minimizes total cost for each workload scale (the arrows
     * of Figures 10 and 11).
     */
    static std::vector<NodeRange>
    optimalNodeRanges(const std::vector<TotalCostLine> &lines);

    /** Convenience: ranges for @p app. */
    std::vector<NodeRange> optimalNodeRanges(const apps::AppSpec &app)
        const
    {
        return optimalNodeRanges(totalCostLines(app));
    }

    /**
     * Optimal node (or baseline) for a workload of pre-ASIC TCO
     * @p baseline_tco when the baseline's TCO per op/s is scaled such
     * that it equals the ASIC's at @p parity tech node — the Figure 12
     * "tech parity node" formalism.  @p parity_scale further divides
     * the baseline TCO/op/s (the figure's "/N" keys, hypothetical
     * baselines N times better than the 250nm ASIC).
     */
    std::optional<tech::NodeId>
    optimalNodeForParity(const apps::AppSpec &app, tech::NodeId parity,
                         double parity_scale,
                         double baseline_tco) const;

    /**
     * Section 6.2 "how many ticks before a tock": port each node's
     * optimal die design to every newer node, re-optimizing only
     * voltage and lane packing, and report TCO penalties.
     */
    std::vector<PortingEntry> portingStudy(const apps::AppSpec &app)
        const;

  private:
    dse::DesignSpaceExplorer explorer_;
    nre::NreModel nre_model_;
    /** Guards cache_.  References returned by sweepNodes stay valid:
     *  the map is node-based and entries are never erased. */
    mutable std::mutex cache_mutex_;
    mutable std::map<std::string, std::vector<NodeResult>> cache_;
};

} // namespace moonwalk::core

#endif // MOONWALK_CORE_OPTIMIZER_HH
