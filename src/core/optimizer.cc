#include "core/optimizer.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "exec/parallel.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/error.hh"

namespace moonwalk::core {

MoonwalkOptimizer::MoonwalkOptimizer(dse::DesignSpaceExplorer explorer,
                                     nre::NreModel nre_model)
    : explorer_(std::move(explorer)), nre_model_(std::move(nre_model))
{}

nre::NreBreakdown
MoonwalkOptimizer::nreOf(const apps::AppSpec &app,
                         const dse::DesignPoint &point) const
{
    const auto &node = explorer_.evaluator().scaling().database()
        .node(point.config.node);
    nre::DesignIpNeeds needs;
    needs.clock_mhz = point.freq_mhz;
    needs.dram_interfaces = point.config.drams_per_die;
    needs.high_speed_link = app.rca.needs_high_speed_link;
    needs.lvds_io = app.rca.needs_lvds;
    return nre_model_.compute(node, app.nre, needs);
}

const std::vector<NodeResult> &
MoonwalkOptimizer::sweepNodes(const apps::AppSpec &app) const
{
    {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        auto it = cache_.find(app.name());
        if (it != cache_.end()) {
            if (obs::metricsEnabled())
                obs::metrics().counter("core.sweep.cache.hits").inc();
            return it->second;
        }
    }

    obs::TraceSpan span("sweepNodes " + app.name(), "core");
    const bool counted = obs::metricsEnabled();
    const uint64_t t0 = counted ? obs::monotonicNowNs() : 0;

    // Explore every node in parallel (each exploration itself fans
    // out over its sweep grid on the same pool), then reduce in node
    // order — identical results and ordering at any thread count.
    const auto per_node = exec::parallelMap<std::optional<NodeResult>>(
        tech::kAllNodes.size(),
        [&](size_t i) -> std::optional<NodeResult> {
            const tech::NodeId id = tech::kAllNodes[i];
            const uint64_t node_t0 =
                counted ? obs::monotonicNowNs() : 0;
            auto exploration = explorer_.explore(app.rca, id);
            if (counted) {
                // Per-node explore timing, independent of whether the
                // node turns out feasible.
                obs::metrics()
                    .timer("core.explore." + app.name() + "." +
                           tech::to_string(id))
                    .record(obs::monotonicNowNs() - node_t0);
            }
            if (!exploration.tco_optimal) {
                MOONWALK_LOG(Debug, "core.sweep")
                    .msg("node infeasible")
                    .field("app", app.name())
                    .field("node", tech::to_string(id));
                return std::nullopt;  // SLA unreachable or nothing fits
            }
            NodeResult r;
            r.node = id;
            r.optimal = *exploration.tco_optimal;
            try {
                r.nre = nreOf(app, r.optimal);
            } catch (const ModelError &) {
                MOONWALK_LOG(Debug, "core.sweep")
                    .msg("missing IP")
                    .field("app", app.name())
                    .field("node", tech::to_string(id));
                return std::nullopt;  // required IP missing at node
            }
            return r;
        },
        explorer_.options().max_threads);

    std::vector<NodeResult> results;
    for (const auto &r : per_node)
        if (r)
            results.push_back(*r);

    if (counted) {
        obs::metrics()
            .timer("core.sweep." + app.name())
            .record(obs::monotonicNowNs() - t0);
    }
    MOONWALK_LOG(Info, "core.sweep")
        .msg("node sweep complete")
        .field("app", app.name())
        .field("feasible_nodes", results.size());
    std::lock_guard<std::mutex> lock(cache_mutex_);
    // emplace keeps the first insertion if a racing thread swept the
    // same app concurrently; both computed identical results.
    return cache_.emplace(app.name(), std::move(results))
        .first->second;
}

bool
MoonwalkOptimizer::hasSweepCached(const apps::AppSpec &app) const
{
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return cache_.find(app.name()) != cache_.end();
}

void
MoonwalkOptimizer::prefetch(const std::vector<apps::AppSpec> &apps)
    const
{
    obs::TraceSpan span("prefetch " + std::to_string(apps.size()) +
                            " apps",
                        "core");
    exec::parallelFor(
        apps.size(), [&](size_t i) { (void)sweepNodes(apps[i]); },
        explorer_.options().max_threads);
}

double
MoonwalkOptimizer::baselineTcoPerOps(const apps::AppSpec &app) const
{
    const auto &b = app.baseline;
    return explorer_.evaluator().tco().tcoPerOps(b.cost, b.power_w,
                                                 b.perf_ops);
}

std::vector<TotalCostLine>
MoonwalkOptimizer::totalCostLines(const apps::AppSpec &app) const
{
    const double base = baselineTcoPerOps(app);
    std::vector<TotalCostLine> lines;
    lines.push_back({std::nullopt, 0.0, 1.0});  // keep the baseline
    for (const auto &r : sweepNodes(app))
        lines.push_back({r.node, r.nre.total(),
                         r.tcoPerOps() / base});
    return lines;
}

std::vector<NodeRange>
MoonwalkOptimizer::optimalNodeRanges(
    const std::vector<TotalCostLine> &lines)
{
    if (lines.empty())
        fatal("optimalNodeRanges needs at least one line");

    // Lower envelope of lines over B >= 0, by decreasing slope
    // (convex hull trick).  Drop lines dominated outright.
    std::vector<TotalCostLine> sorted = lines;
    std::sort(sorted.begin(), sorted.end(),
              [](const TotalCostLine &a, const TotalCostLine &b) {
                  if (a.slope != b.slope)
                      return a.slope > b.slope;
                  return a.nre < b.nre;
              });

    std::vector<TotalCostLine> hull;
    std::vector<double> start;  // hull[i] active from start[i]
    auto intersect = [](const TotalCostLine &a, const TotalCostLine &b) {
        // B where a.at(B) == b.at(B); caller guarantees slopes differ.
        return (b.nre - a.nre) / (a.slope - b.slope);
    };

    for (const auto &line : sorted) {
        if (!hull.empty() && line.slope == hull.back().slope)
            continue;  // same slope, higher NRE: dominated
        if (!hull.empty() && line.nre <= hull.back().nre) {
            // Cheaper NRE and shallower slope: dominates everything
            // steeper; unwind.
            while (!hull.empty() && line.nre <= hull.back().nre) {
                hull.pop_back();
                start.pop_back();
            }
        }
        while (!hull.empty()) {
            const double x = intersect(hull.back(), line);
            if (x <= start.back()) {
                hull.pop_back();
                start.pop_back();
            } else {
                break;
            }
        }
        if (hull.empty()) {
            hull.push_back(line);
            start.push_back(0.0);
        } else {
            const double x = intersect(hull.back(), line);
            hull.push_back(line);
            start.push_back(x);
        }
    }

    std::vector<NodeRange> ranges;
    for (size_t i = 0; i < hull.size(); ++i) {
        NodeRange r;
        r.line = hull[i];
        r.b_low = start[i];
        r.b_high = i + 1 < hull.size() ?
            start[i + 1] : std::numeric_limits<double>::infinity();
        ranges.push_back(r);
    }
    return ranges;
}

std::optional<tech::NodeId>
MoonwalkOptimizer::optimalNodeForParity(const apps::AppSpec &app,
                                        tech::NodeId parity,
                                        double parity_scale,
                                        double baseline_tco) const
{
    const auto &sweep = sweepNodes(app);
    const auto parity_it = std::find_if(
        sweep.begin(), sweep.end(),
        [&](const NodeResult &r) { return r.node == parity; });
    if (parity_it == sweep.end())
        fatal("parity node ", tech::to_string(parity),
              " is not feasible for ", app.name());

    // The hypothetical baseline has TCO/op/s equal to the ASIC at the
    // parity node, divided by parity_scale.
    const double base = parity_it->tcoPerOps() / parity_scale;

    double best = baseline_tco;  // staying on the baseline
    std::optional<tech::NodeId> best_node;
    for (const auto &r : sweep) {
        const double total = r.nre.total() +
            baseline_tco * r.tcoPerOps() / base;
        if (total < best) {
            best = total;
            best_node = r.node;
        }
    }
    return best_node;
}

std::vector<PortingEntry>
MoonwalkOptimizer::portingStudy(const apps::AppSpec &app) const
{
    const auto &sweep = sweepNodes(app);
    std::vector<PortingEntry> out;
    for (size_t i = 0; i < sweep.size(); ++i) {
        const auto &src = sweep[i];
        for (size_t j = i + 1; j < sweep.size(); ++j) {
            const auto &dst = sweep[j];
            auto ported = explorer_.exploreFixedDie(
                app.rca, dst.node, src.optimal.config.rcas_per_die,
                src.optimal.config.drams_per_die,
                src.optimal.config.dark_silicon_fraction);
            if (!ported.tco_optimal)
                continue;  // frozen die infeasible at the new node
            PortingEntry e;
            e.from = src.node;
            e.to = dst.node;
            e.tco_penalty = ported.tco_optimal->tco_per_ops /
                dst.tcoPerOps();
            out.push_back(e);
        }
    }
    return out;
}

} // namespace moonwalk::core
