/**
 * @file
 * Report generator: one call turns an application (plus an optional
 * workload forecast) into the complete Moonwalk analysis — per-node
 * TCO-optimal designs, NRE breakdowns, optimal-node ranges, the
 * two-for-two verdicts, and the porting matrix — as text or JSON.
 */
#ifndef MOONWALK_CORE_REPORT_HH
#define MOONWALK_CORE_REPORT_HH

#include <ostream>
#include <string>

#include "core/optimizer.hh"
#include "core/two_for_two.hh"
#include "util/json.hh"

namespace moonwalk::core {

/**
 * Builds reports from a shared optimizer (explorations are cached
 * across report sections).
 */
class ReportGenerator
{
  public:
    explicit ReportGenerator(const MoonwalkOptimizer &optimizer)
        : optimizer_(&optimizer)
    {}

    /**
     * Human-readable full report.
     *
     * @param app the application
     * @param workload_tco pre-ASIC TCO forecast ($); 0 skips the
     *        workload-dependent sections
     */
    void writeText(std::ostream &os, const apps::AppSpec &app,
                   double workload_tco = 0.0) const;

    /** Machine-readable report with the same content. */
    Json toJson(const apps::AppSpec &app,
                double workload_tco = 0.0) const;

  private:
    const MoonwalkOptimizer *optimizer_;
};

} // namespace moonwalk::core

#endif // MOONWALK_CORE_REPORT_HH
