/**
 * @file
 * Monte Carlo uncertainty analysis: the NRE and TCO inputs (mask
 * prices, salaries, IP quotes, electricity) are estimates, so the
 * "optimal node" is a random variable.  This module perturbs the
 * model with lognormal multipliers and reports how often each node
 * wins and how total cost spreads — answering how robust a
 * node-selection decision is before committing a tapeout.
 */
#ifndef MOONWALK_CORE_UNCERTAINTY_HH
#define MOONWALK_CORE_UNCERTAINTY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/sensitivity.hh"
#include "util/stats.hh"

namespace moonwalk::core {

/**
 * Relative uncertainty (lognormal sigma) of each model input;
 * 0 pins the input at its nominal value.  Defaults reflect
 * quote-to-quote spreads typical of the paper's data sources.
 */
struct UncertaintySpec
{
    double mask_cost_sigma = 0.20;
    double wafer_cost_sigma = 0.10;
    double salary_sigma = 0.15;
    double ip_cost_sigma = 0.25;
    double electricity_sigma = 0.30;
    double backend_cost_sigma = 0.20;

    int samples = 64;
    uint64_t seed = 1;
};

/** Distribution of outcomes across samples. */
struct UncertaintyResult
{
    /** Fraction of samples in which each choice (node name or
     *  "baseline") minimizes NRE+TCO at the studied workload. */
    std::map<std::string, double> choice_fraction;
    /** Total NRE+TCO cost at the studied workload ($). */
    Summary total_cost;
    /** The most frequently optimal choice. */
    std::string modal_choice;
};

/**
 * Runs the Monte Carlo study.  Each sample rebuilds the full model
 * stack under drawn multipliers, so keep ExplorerOptions coarse.
 */
class UncertaintyAnalysis
{
  public:
    explicit UncertaintyAnalysis(UncertaintySpec spec = {},
                                 dse::ExplorerOptions options =
                                     coarseOptions());

    /** Sweep options sized for ~100 model rebuilds. */
    static dse::ExplorerOptions coarseOptions();

    const UncertaintySpec &spec() const { return spec_; }

    /**
     * Distribution of the optimal choice and total cost for @p app at
     * a workload of @p workload_tco pre-ASIC dollars.
     */
    UncertaintyResult run(const apps::AppSpec &app,
                          double workload_tco) const;

  private:
    UncertaintySpec spec_;
    dse::ExplorerOptions options_;
};

} // namespace moonwalk::core

#endif // MOONWALK_CORE_UNCERTAINTY_HH
