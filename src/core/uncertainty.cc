#include "core/uncertainty.hh"

#include <algorithm>
#include <cmath>
#include <random>

#include "util/error.hh"

namespace moonwalk::core {

dse::ExplorerOptions
UncertaintyAnalysis::coarseOptions()
{
    dse::ExplorerOptions o;
    o.voltage_steps = 8;
    o.rca_count_steps = 6;
    o.max_drams_per_die = 6;
    o.dark_fractions = {0.0, 0.10};
    return o;
}

UncertaintyAnalysis::UncertaintyAnalysis(UncertaintySpec spec,
                                         dse::ExplorerOptions options)
    : spec_(spec), options_(options)
{
    if (spec_.samples < 1)
        fatal("uncertainty analysis needs at least one sample");
}

namespace {

/** Mean-one lognormal multiplier with relative sigma @p s. */
double
lognormal(std::mt19937_64 &rng, double s)
{
    if (s <= 0.0)
        return 1.0;
    std::normal_distribution<double> n(0.0, s);
    return std::exp(n(rng) - 0.5 * s * s);
}

} // namespace

UncertaintyResult
UncertaintyAnalysis::run(const apps::AppSpec &app,
                         double workload_tco) const
{
    if (workload_tco <= 0.0)
        fatal("workload TCO must be positive");

    std::mt19937_64 rng(spec_.seed);
    std::map<std::string, int> wins;
    std::vector<double> totals;
    totals.reserve(spec_.samples);

    for (int i = 0; i < spec_.samples; ++i) {
        Scenario s;
        s.name = "mc-" + std::to_string(i);
        s.mask_cost_scale = lognormal(rng, spec_.mask_cost_sigma);
        s.wafer_cost_scale = lognormal(rng, spec_.wafer_cost_sigma);
        s.salary_scale = lognormal(rng, spec_.salary_sigma);
        s.ip_cost_scale = lognormal(rng, spec_.ip_cost_sigma);
        s.electricity_scale = lognormal(rng, spec_.electricity_sigma);
        s.backend_cost_scale =
            lognormal(rng, spec_.backend_cost_sigma);

        ScenarioRunner runner(s, options_);
        const auto lines =
            runner.optimizer().totalCostLines(app);

        double best = 1e300;
        std::string choice = "baseline";
        for (const auto &l : lines) {
            const double total = l.at(workload_tco);
            if (total < best) {
                best = total;
                choice = l.node ? tech::to_string(*l.node)
                                : std::string("baseline");
            }
        }
        ++wins[choice];
        totals.push_back(best);
    }

    UncertaintyResult result;
    int best_count = 0;
    for (const auto &[name, count] : wins) {
        result.choice_fraction[name] =
            static_cast<double>(count) / spec_.samples;
        if (count > best_count) {
            best_count = count;
            result.modal_choice = name;
        }
    }
    result.total_cost = summarize(totals);
    return result;
}

} // namespace moonwalk::core
