/**
 * @file
 * Agility planner: Section 7.4 observes that "reduced NREs allow an
 * ASIC Cloud to be more agile, updating ASICs more frequently to
 * track evolving software."  This module quantifies that remark:
 * given a multi-year horizon, a per-year workload TCO, and a software
 * drift rate (how quickly a frozen ASIC loses efficiency as the
 * workload's software evolves), it finds the (node, respin cadence)
 * pair minimizing total cost — trading per-respin NRE against the
 * efficiency decay of stale silicon.
 */
#ifndef MOONWALK_CORE_AGILITY_HH
#define MOONWALK_CORE_AGILITY_HH

#include <vector>

#include "core/optimizer.hh"

namespace moonwalk::core {

/** Planning inputs. */
struct AgilityParams
{
    /** Planning horizon (whole years). */
    int horizon_years = 6;
    /** Workload TCO per year if served by the baseline ($). */
    double annual_workload_tco = 10e6;
    /** Fractional efficiency loss per year of ASIC age: a frozen
     *  design serves year-a work at (1 + drift)^a times its fresh
     *  TCO (capped at the baseline — operators fall back to the
     *  baseline rather than run worse-than-baseline silicon). */
    double software_drift_per_year = 0.30;
    /** Respin cadences to consider (years between tapeouts). */
    std::vector<int> respin_periods = {1, 2, 3, 6};
};

/** One (node, cadence) strategy with its cost. */
struct AgilityPlan
{
    tech::NodeId node;
    int respin_period_years = 0;
    int tapeouts = 0;
    double total_nre = 0;
    double total_served_tco = 0;

    double totalCost() const { return total_nre + total_served_tco; }
};

/**
 * Evaluates respin strategies on top of a shared optimizer.
 */
class AgilityPlanner
{
  public:
    explicit AgilityPlanner(const MoonwalkOptimizer &optimizer)
        : optimizer_(&optimizer)
    {}

    /** All (feasible node x cadence) strategies, unsorted. */
    std::vector<AgilityPlan>
    evaluateAll(const apps::AppSpec &app,
                const AgilityParams &params) const;

    /** The cheapest strategy. */
    AgilityPlan best(const apps::AppSpec &app,
                     const AgilityParams &params) const;

    /** Cost of never building an ASIC (baseline only). */
    static double
    baselineCost(const AgilityParams &params)
    {
        return params.horizon_years * params.annual_workload_tco;
    }

  private:
    const MoonwalkOptimizer *optimizer_;
};

} // namespace moonwalk::core

#endif // MOONWALK_CORE_AGILITY_HH
