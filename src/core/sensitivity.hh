/**
 * @file
 * Sensitivity & ablation framework: run the whole Moonwalk flow under
 * named perturbations of model parameters (mask/wafer cost, salaries,
 * IP prices, electricity, cooling strength, defect density) and
 * compare node choices.  Backs the ablation benches called out in
 * DESIGN.md.
 */
#ifndef MOONWALK_CORE_SENSITIVITY_HH
#define MOONWALK_CORE_SENSITIVITY_HH

#include <memory>
#include <string>

#include "core/optimizer.hh"

namespace moonwalk::core {

/**
 * A named, multiplicative perturbation of the model.  All scales
 * default to 1.0 (the paper's baseline parameters).
 */
struct Scenario
{
    std::string name = "baseline";

    // -- Silicon / NRE ---------------------------------------------------
    double mask_cost_scale = 1.0;
    double wafer_cost_scale = 1.0;
    double defect_density_scale = 1.0;
    double salary_scale = 1.0;       ///< frontend + backend salaries
    double ip_cost_scale = 1.0;      ///< all licensed IP
    double backend_cost_scale = 1.0; ///< IBS $/gate (flow maturity)

    // -- Datacenter economics ----------------------------------------------
    double electricity_scale = 1.0;
    double dc_capex_scale = 1.0;

    // -- Cooling ------------------------------------------------------------
    double fan_pressure_scale = 1.0; ///< fan p_max and q_max
    double tj_margin_c = 0.0;        ///< added to the junction limit
};

/**
 * Owns a perturbed model stack (tech database, NRE model, thermal
 * environment, TCO parameters) and the optimizer built on it.
 *
 * The runner must outlive any references into its optimizer: the
 * evaluator keeps a pointer to the owned tech database.
 */
class ScenarioRunner
{
  public:
    explicit ScenarioRunner(Scenario scenario,
                            dse::ExplorerOptions options = {});

    ScenarioRunner(const ScenarioRunner &) = delete;
    ScenarioRunner &operator=(const ScenarioRunner &) = delete;

    const Scenario &scenario() const { return scenario_; }
    MoonwalkOptimizer &optimizer() { return *optimizer_; }
    const MoonwalkOptimizer &optimizer() const { return *optimizer_; }

  private:
    Scenario scenario_;
    std::unique_ptr<tech::TechDatabase> db_;
    std::unique_ptr<MoonwalkOptimizer> optimizer_;
};

} // namespace moonwalk::core

#endif // MOONWALK_CORE_SENSITIVITY_HH
