#include "obs/metrics.hh"

#include <algorithm>
#include <chrono>

#include "util/format.hh"
#include "util/table.hh"

namespace moonwalk::obs {

uint64_t
monotonicNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
Timer::record(uint64_t ns)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    uint64_t cur = min_ns_.load(std::memory_order_relaxed);
    while (ns < cur &&
           !min_ns_.compare_exchange_weak(cur, ns,
                                          std::memory_order_relaxed)) {
    }
    cur = max_ns_.load(std::memory_order_relaxed);
    while (ns > cur &&
           !max_ns_.compare_exchange_weak(cur, ns,
                                          std::memory_order_relaxed)) {
    }
}

void
Timer::reset()
{
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
    min_ns_.store(UINT64_MAX, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(Timer &timer)
    : timer_(metricsEnabled() ? &timer : nullptr),
      start_ns_(timer_ ? monotonicNowNs() : 0)
{}

ScopedTimer::~ScopedTimer()
{
    if (timer_)
        timer_->record(monotonicNowNs() - start_ns_);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Timer &
MetricsRegistry::timer(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = timers_[name];
    if (!slot)
        slot = std::make_unique<Timer>();
    return *slot;
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricSample> out;
    for (const auto &[name, c] : counters_) {
        out.push_back({MetricSample::Kind::Counter, name,
                       static_cast<double>(c->value()), 0, 0.0});
    }
    for (const auto &[name, g] : gauges_) {
        out.push_back(
            {MetricSample::Kind::Gauge, name, g->value(), 0, 0.0});
    }
    for (const auto &[name, t] : timers_) {
        out.push_back({MetricSample::Kind::Timer, name,
                       t->totalNs() / 1e6, t->count(),
                       t->meanNs() / 1e6});
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return out;
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, t] : timers_)
        t->reset();
}

void
MetricsRegistry::writeTable(std::ostream &os) const
{
    TextTable t({"Metric", "Type", "Value", "Count", "Mean"});
    t.setTitle("Metrics");
    for (const auto &s : snapshot()) {
        switch (s.kind) {
          case MetricSample::Kind::Counter:
            t.addRow({s.name, "counter", fixed(s.value, 0), "", ""});
            break;
          case MetricSample::Kind::Gauge:
            t.addRow({s.name, "gauge", sig(s.value, 6), "", ""});
            break;
          case MetricSample::Kind::Timer:
            t.addRow({s.name, "timer", fixed(s.value, 3) + " ms",
                      fixed(static_cast<double>(s.count), 0),
                      fixed(s.mean_ms, 3) + " ms"});
            break;
        }
    }
    t.print(os);
}

Json
MetricsRegistry::toJson() const
{
    Json counters = Json::object();
    Json gauges = Json::object();
    Json timers = Json::object();
    for (const auto &s : snapshot()) {
        switch (s.kind) {
          case MetricSample::Kind::Counter:
            counters.set(s.name, s.value);
            break;
          case MetricSample::Kind::Gauge:
            gauges.set(s.name, s.value);
            break;
          case MetricSample::Kind::Timer: {
            Json t = Json::object();
            t.set("count", static_cast<double>(s.count));
            t.set("total_ms", s.value);
            t.set("mean_ms", s.mean_ms);
            timers.set(s.name, std::move(t));
            break;
          }
        }
    }
    Json out = Json::object();
    out.set("counters", std::move(counters));
    out.set("gauges", std::move(gauges));
    out.set("timers", std::move(timers));
    return out;
}

} // namespace moonwalk::obs
