#include "obs/metrics.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/format.hh"
#include "util/table.hh"

namespace moonwalk::obs {

namespace {

/** Relaxed CAS-accumulate for atomic doubles (fetch_add on floating
 *  atomics is C++20 but not universally lowered well; this is cheap
 *  and portable). */
void
atomicAdd(std::atomic<double> &slot, double v)
{
    double cur = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
}

void
atomicMin(std::atomic<double> &slot, double v)
{
    double cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double> &slot, double v)
{
    double cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

int
Histogram::bucketIndex(double v)
{
    if (!(v >= 1.0))  // also catches NaN
        return 0;
    const int e = std::min(kOctaves - 1, std::ilogb(v));
    const double lo = std::ldexp(1.0, e);
    const int sub = std::min(
        kSubBuckets - 1,
        static_cast<int>((v / lo - 1.0) * kSubBuckets));
    return 1 + e * kSubBuckets + std::max(0, sub);
}

double
Histogram::bucketLow(int index)
{
    if (index <= 0)
        return 0.0;
    const int e = (index - 1) / kSubBuckets;
    const int sub = (index - 1) % kSubBuckets;
    return std::ldexp(1.0, e) *
        (1.0 + static_cast<double>(sub) / kSubBuckets);
}

double
Histogram::bucketHigh(int index)
{
    if (index <= 0)
        return 1.0;
    const int e = (index - 1) / kSubBuckets;
    const int sub = (index - 1) % kSubBuckets;
    return std::ldexp(1.0, e) *
        (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
}

void
Histogram::record(double v)
{
    if (!(v >= 0.0))  // negatives and NaN count as zero
        v = 0.0;
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, v);
    if (!has_samples_.load(std::memory_order_relaxed)) {
        // First sample seeds min/max; a racing first sample is folded
        // in by the min/max CAS loops below either way.
        double expected = 0.0;
        min_.compare_exchange_strong(expected, v,
                                     std::memory_order_relaxed);
        has_samples_.store(true, std::memory_order_relaxed);
    }
    atomicMin(min_, v);
    atomicMax(max_, v);
}

double
Histogram::minValue() const
{
    return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double
Histogram::maxValue() const
{
    return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

double
Histogram::percentile(double q) const
{
    const uint64_t n = count();
    if (n == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest-rank target in [1, n], interpolated inside the bucket.
    double target = q * static_cast<double>(n);
    if (target < 1.0)
        target = 1.0;
    uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
        const uint64_t in_bucket =
            buckets_[i].load(std::memory_order_relaxed);
        if (in_bucket == 0)
            continue;
        if (static_cast<double>(cum + in_bucket) >= target) {
            const double within =
                (target - static_cast<double>(cum)) /
                static_cast<double>(in_bucket);
            const double est = bucketLow(i) +
                within * (bucketHigh(i) - bucketLow(i));
            return std::clamp(est, minValue(), maxValue());
        }
        cum += in_bucket;
    }
    return maxValue();  // racing recorders moved the total; best effort
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
    has_samples_.store(false, std::memory_order_relaxed);
}

uint64_t
monotonicNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
Timer::record(uint64_t ns)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    uint64_t cur = min_ns_.load(std::memory_order_relaxed);
    while (ns < cur &&
           !min_ns_.compare_exchange_weak(cur, ns,
                                          std::memory_order_relaxed)) {
    }
    cur = max_ns_.load(std::memory_order_relaxed);
    while (ns > cur &&
           !max_ns_.compare_exchange_weak(cur, ns,
                                          std::memory_order_relaxed)) {
    }
    hist_.record(static_cast<double>(ns));
}

void
Timer::reset()
{
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
    min_ns_.store(UINT64_MAX, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
    hist_.reset();
}

ScopedTimer::ScopedTimer(Timer &timer)
    : timer_(metricsEnabled() ? &timer : nullptr),
      start_ns_(timer_ ? monotonicNowNs() : 0)
{}

ScopedTimer::~ScopedTimer()
{
    if (timer_)
        timer_->record(monotonicNowNs() - start_ns_);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Timer &
MetricsRegistry::timer(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = timers_[name];
    if (!slot)
        slot = std::make_unique<Timer>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricSample> out;
    for (const auto &[name, c] : counters_) {
        out.push_back({MetricSample::Kind::Counter, name,
                       static_cast<double>(c->value()), 0, 0.0});
    }
    for (const auto &[name, g] : gauges_) {
        out.push_back(
            {MetricSample::Kind::Gauge, name, g->value(), 0, 0.0});
    }
    for (const auto &[name, t] : timers_) {
        MetricSample s{};
        s.kind = MetricSample::Kind::Timer;
        s.name = name;
        s.value = t->totalNs() / 1e6;
        s.count = t->count();
        s.mean_ms = t->meanNs() / 1e6;
        s.p50 = t->percentileNs(0.50) / 1e6;
        s.p90 = t->percentileNs(0.90) / 1e6;
        s.p99 = t->percentileNs(0.99) / 1e6;
        s.max = t->maxNs() / 1e6;
        out.push_back(std::move(s));
    }
    for (const auto &[name, h] : histograms_) {
        MetricSample s{};
        s.kind = MetricSample::Kind::Histogram;
        s.name = name;
        s.value = h->sum();
        s.count = h->count();
        s.mean_ms = h->mean();
        s.p50 = h->p50();
        s.p90 = h->p90();
        s.p99 = h->p99();
        s.max = h->maxValue();
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return out;
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, t] : timers_)
        t->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

void
MetricsRegistry::writeTable(std::ostream &os) const
{
    TextTable t({"Metric", "Type", "Value", "Count", "Mean", "P50",
                 "P99"});
    t.setTitle("Metrics");
    for (const auto &s : snapshot()) {
        switch (s.kind) {
          case MetricSample::Kind::Counter:
            t.addRow({s.name, "counter", fixed(s.value, 0), "", "", "",
                      ""});
            break;
          case MetricSample::Kind::Gauge:
            t.addRow({s.name, "gauge", sig(s.value, 6), "", "", "",
                      ""});
            break;
          case MetricSample::Kind::Timer:
            t.addRow({s.name, "timer", fixed(s.value, 3) + " ms",
                      fixed(static_cast<double>(s.count), 0),
                      fixed(s.mean_ms, 3) + " ms",
                      fixed(s.p50, 3) + " ms",
                      fixed(s.p99, 3) + " ms"});
            break;
          case MetricSample::Kind::Histogram:
            t.addRow({s.name, "histogram", sig(s.value, 6),
                      fixed(static_cast<double>(s.count), 0),
                      sig(s.mean_ms, 6), sig(s.p50, 6), sig(s.p99, 6)});
            break;
        }
    }
    t.print(os);
}

Json
MetricsRegistry::toJson() const
{
    Json counters = Json::object();
    Json gauges = Json::object();
    Json timers = Json::object();
    Json histograms = Json::object();
    for (const auto &s : snapshot()) {
        switch (s.kind) {
          case MetricSample::Kind::Counter:
            counters.set(s.name, s.value);
            break;
          case MetricSample::Kind::Gauge:
            gauges.set(s.name, s.value);
            break;
          case MetricSample::Kind::Timer: {
            Json t = Json::object();
            t.set("count", static_cast<double>(s.count));
            t.set("total_ms", s.value);
            t.set("mean_ms", s.mean_ms);
            t.set("p50_ms", s.p50);
            t.set("p90_ms", s.p90);
            t.set("p99_ms", s.p99);
            t.set("max_ms", s.max);
            timers.set(s.name, std::move(t));
            break;
          }
          case MetricSample::Kind::Histogram: {
            Json h = Json::object();
            h.set("count", static_cast<double>(s.count));
            h.set("sum", s.value);
            h.set("mean", s.mean_ms);
            h.set("p50", s.p50);
            h.set("p90", s.p90);
            h.set("p99", s.p99);
            h.set("max", s.max);
            histograms.set(s.name, std::move(h));
            break;
          }
        }
    }
    Json out = Json::object();
    out.set("counters", std::move(counters));
    out.set("gauges", std::move(gauges));
    out.set("timers", std::move(timers));
    out.set("histograms", std::move(histograms));
    return out;
}

} // namespace moonwalk::obs
