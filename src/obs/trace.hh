/**
 * @file
 * Chrome trace-event spans (chrome://tracing / Perfetto viewable).
 *
 * A TraceSpan is an RAII scope; on destruction it records a complete
 * ("ph":"X") event with microsecond start and duration into the
 * process-wide collector.  When collection is disabled (the default)
 * span construction is a single relaxed atomic load and nothing is
 * recorded.
 *
 *   {
 *       obs::TraceSpan span("explore", "dse");
 *       span.arg("node", "28nm");
 *       ...work...
 *   }  // span recorded here
 *
 * traceCollector().writeTo(path) emits the standard
 * {"traceEvents":[...]} JSON object.
 */
#ifndef MOONWALK_OBS_TRACE_HH
#define MOONWALK_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hh"

namespace moonwalk::obs {

/** One completed span, times in microseconds since collection start. */
struct TraceEvent
{
    std::string name;
    std::string category;
    double ts_us = 0;
    double dur_us = 0;
    /** Ordered (key, value) argument pairs shown in the viewer. */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Process-wide span buffer.  Thread-safe; spans record under a mutex
 * (tracing is a debugging aid, not a steady-state code path).
 */
class TraceCollector
{
  public:
    static TraceCollector &instance();

    /** Begin collecting; clears previously buffered events. */
    void start();
    /** Stop collecting; buffered events stay readable. */
    void stop();
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void record(TraceEvent event);
    size_t eventCount() const;

    /** The {"traceEvents": [...]} document. */
    Json toJson() const;
    /** Serialize toJson() into @p path; false on I/O failure. */
    bool writeTo(const std::string &path) const;

    /** Microseconds since collection started. */
    double nowUs() const;

  private:
    TraceCollector() = default;

    std::atomic<bool> enabled_{false};
    uint64_t epoch_ns_ = 0;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

/** Shorthand for TraceCollector::instance(). */
inline TraceCollector &
traceCollector()
{
    return TraceCollector::instance();
}

/** RAII span; see the file comment. */
class TraceSpan
{
  public:
    explicit TraceSpan(std::string name, std::string category = "dse");
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    bool active() const { return active_; }

    /** Attach a key/value argument (no-op when inactive). */
    TraceSpan &arg(const std::string &key, std::string value);
    TraceSpan &arg(const std::string &key, double value);

  private:
    bool active_;
    double start_us_ = 0;
    TraceEvent event_;
};

} // namespace moonwalk::obs

#endif // MOONWALK_OBS_TRACE_HH
