/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and timers.
 *
 * Registration is mutex-guarded and values are atomics, so a future
 * parallel explorer can bump the same counter from many threads.
 * Handles returned by the registry stay valid for the life of the
 * process (metrics are never deleted, only reset).
 *
 * Collection is off by default; the hot paths guard their updates
 * with metricsEnabled() — a single relaxed atomic load — so the
 * instrumentation is benchmark-neutral when unused.
 */
#ifndef MOONWALK_OBS_METRICS_HH
#define MOONWALK_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/json.hh"

namespace moonwalk::obs {

namespace detail {
/** Backing flag for metricsEnabled(); not part of the public API. */
inline std::atomic<bool> g_metrics_enabled{false};
} // namespace detail

/** Global collection switch for hot-path instrumentation.  Inline so
 *  the guard compiles down to one relaxed load at every call site. */
inline bool metricsEnabled()
{
    return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

inline void setMetricsEnabled(bool on)
{
    detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

/** Monotonically increasing event count. */
class Counter
{
  public:
    void inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-written point-in-time value, with a high-water helper. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    /** Raise the gauge to @p v if it is higher (high-water mark). */
    void max(double v)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (v > cur &&
               !value_.compare_exchange_weak(
                   cur, v, std::memory_order_relaxed)) {
        }
    }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-memory log-bucketed distribution of non-negative samples.
 *
 * Values >= 1 land in log-linear buckets: each power-of-two octave is
 * split into kSubBuckets linear slots, bounding the relative error of
 * an interpolated quantile by 1/kSubBuckets; values below 1 (and
 * negatives, clamped) share bucket 0.  All state is relaxed atomics,
 * so many threads may record concurrently and any thread may read a
 * (slightly racy, monotone-safe) snapshot while they do.  Memory is
 * constant: 1 + 64 * kSubBuckets counters, ~4 KB per histogram.
 *
 * The exact minimum and maximum are tracked separately, so
 * percentile() is clamped to the true sample range — single-valued
 * distributions report exact percentiles, and percentile(1) == max.
 */
class Histogram
{
  public:
    static constexpr int kSubBuckets = 8;
    static constexpr int kOctaves = 64;
    static constexpr int kBuckets = 1 + kOctaves * kSubBuckets;

    void record(double v);

    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    double mean() const
    {
        const uint64_t n = count();
        return n ? sum() / n : 0.0;
    }
    double minValue() const;
    double maxValue() const;

    /**
     * Interpolated quantile at @p q in [0, 1] (clamped); 0 when empty.
     * Accurate to the bucket resolution (~12.5% relative), exact at
     * the extremes thanks to the min/max clamp.
     */
    double percentile(double q) const;

    double p50() const { return percentile(0.50); }
    double p90() const { return percentile(0.90); }
    double p99() const { return percentile(0.99); }

    void reset();

    /** Bucket index a value lands in (exposed for boundary tests). */
    static int bucketIndex(double v);
    /** Inclusive lower bound of bucket @p index. */
    static double bucketLow(int index);
    /** Exclusive upper bound of bucket @p index. */
    static double bucketHigh(int index);

  private:
    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};  ///< valid only when count_ > 0
    std::atomic<double> max_{0.0};
    std::atomic<bool> has_samples_{false};
};

/**
 * Duration accumulator (count/total/min/max in nanoseconds), fed by
 * explicit record() calls or the RAII ScopedTimer.  Every recording
 * also feeds a log-bucketed Histogram, so timers expose percentile
 * latencies (p50/p90/p99) for free wherever a ScopedTimer already
 * runs.
 */
class Timer
{
  public:
    void record(uint64_t ns);
    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    uint64_t totalNs() const
    {
        return total_ns_.load(std::memory_order_relaxed);
    }
    uint64_t minNs() const
    {
        return min_ns_.load(std::memory_order_relaxed);
    }
    uint64_t maxNs() const
    {
        return max_ns_.load(std::memory_order_relaxed);
    }
    double meanNs() const
    {
        const uint64_t n = count();
        return n ? static_cast<double>(totalNs()) / n : 0.0;
    }
    /** Interpolated duration quantile in ns (see Histogram). */
    double percentileNs(double q) const
    {
        return hist_.percentile(q);
    }
    const Histogram &histogram() const { return hist_; }
    void reset();

  private:
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> total_ns_{0};
    std::atomic<uint64_t> min_ns_{UINT64_MAX};
    std::atomic<uint64_t> max_ns_{0};
    Histogram hist_;
};

/** Times a scope into a Timer; no-op when metrics are disabled. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer &timer);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Timer *timer_;
    uint64_t start_ns_;
};

/** One row of a registry snapshot. */
struct MetricSample
{
    enum class Kind { Counter, Gauge, Timer, Histogram };
    Kind kind;
    std::string name;
    double value = 0;     ///< count, gauge value, total ms, or sum
    uint64_t count = 0;   ///< observation count (timers/histograms)
    double mean_ms = 0;   ///< timers: ms; histograms: raw mean
    // Distribution accessors — ms for timers, raw for histograms.
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
    double max = 0;
};

/**
 * The registry.  Lookup is by name; the first lookup registers the
 * metric, later lookups return the same instance.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry. */
    static MetricsRegistry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Timer &timer(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** All metrics, sorted by name. */
    std::vector<MetricSample> snapshot() const;

    /** Zero every metric (registration survives). */
    void resetAll();

    /** Render the snapshot as an aligned table via util/table. */
    void writeTable(std::ostream &os) const;

    /** Render the snapshot as a JSON object via util/json. */
    Json toJson() const;

  private:
    MetricsRegistry() = default;

    mutable std::mutex mutex_;
    // node-based maps keep references stable across registrations
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Timer>> timers_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** Shorthand for MetricsRegistry::instance(). */
inline MetricsRegistry &
metrics()
{
    return MetricsRegistry::instance();
}

/** Monotonic wall-clock in nanoseconds (steady_clock). */
uint64_t monotonicNowNs();

} // namespace moonwalk::obs

#endif // MOONWALK_OBS_METRICS_HH
