#include "obs/log.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace moonwalk::obs {

namespace {

/** Reads MOONWALK_LOG once, before any explicit setLogLevel(). */
LogLevel
initialLevel()
{
    const char *env = std::getenv("MOONWALK_LOG");
    if (!env)
        return LogLevel::Off;
    if (auto lvl = logLevelFromString(env))
        return *lvl;
    std::cerr << "moonwalk: ignoring invalid MOONWALK_LOG value '"
              << env << "' (want error|warn|info|debug|off)\n";
    return LogLevel::Off;
}

std::atomic<LogLevel> g_level{initialLevel()};
std::atomic<std::ostream *> g_sink{nullptr};
std::mutex g_emit_mutex;

} // namespace

const char *
to_string(LogLevel level)
{
    switch (level) {
      case LogLevel::Off:   return "off";
      case LogLevel::Error: return "error";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Info:  return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}

std::optional<LogLevel>
logLevelFromString(const std::string &name)
{
    for (LogLevel lvl : {LogLevel::Off, LogLevel::Error, LogLevel::Warn,
                         LogLevel::Info, LogLevel::Debug}) {
        if (name == to_string(lvl))
            return lvl;
    }
    return std::nullopt;
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

void
setLogSink(std::ostream *sink)
{
    g_sink.store(sink, std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return level != LogLevel::Off && level <= logLevel();
}

LogRecord::LogRecord(LogLevel level, const char *component)
{
    os_ << '[' << to_string(level) << "] " << component << ':';
}

LogRecord::~LogRecord()
{
    std::ostream *sink = g_sink.load(std::memory_order_relaxed);
    if (!sink)
        sink = &std::cerr;
    // One lock per emitted record keeps concurrent records intact;
    // disabled call sites never get here.
    std::lock_guard<std::mutex> lock(g_emit_mutex);
    *sink << os_.str() << '\n';
}

LogRecord &
LogRecord::msg(const std::string &text)
{
    os_ << ' ' << text;
    return *this;
}

} // namespace moonwalk::obs
