#include "obs/trace.hh"

#include <fstream>

#include "obs/metrics.hh"
#include "util/format.hh"

namespace moonwalk::obs {

TraceCollector &
TraceCollector::instance()
{
    static TraceCollector collector;
    return collector;
}

void
TraceCollector::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    epoch_ns_ = monotonicNowNs();
    enabled_.store(true, std::memory_order_relaxed);
}

void
TraceCollector::stop()
{
    enabled_.store(false, std::memory_order_relaxed);
}

double
TraceCollector::nowUs() const
{
    return (monotonicNowNs() - epoch_ns_) / 1e3;
}

void
TraceCollector::record(TraceEvent event)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

size_t
TraceCollector::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

Json
TraceCollector::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Json spans = Json::array();
    for (const auto &e : events_) {
        Json ev = Json::object();
        ev.set("name", e.name);
        ev.set("cat", e.category);
        ev.set("ph", "X");
        ev.set("ts", e.ts_us);
        ev.set("dur", e.dur_us);
        ev.set("pid", 1);
        ev.set("tid", 1);
        if (!e.args.empty()) {
            Json args = Json::object();
            for (const auto &[k, v] : e.args)
                args.set(k, v);
            ev.set("args", std::move(args));
        }
        spans.push(std::move(ev));
    }
    Json doc = Json::object();
    doc.set("traceEvents", std::move(spans));
    doc.set("displayTimeUnit", "ms");
    return doc;
}

bool
TraceCollector::writeTo(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson().dump(1) << "\n";
    return static_cast<bool>(out);
}

TraceSpan::TraceSpan(std::string name, std::string category)
    : active_(traceCollector().enabled())
{
    if (!active_)
        return;
    event_.name = std::move(name);
    event_.category = std::move(category);
    start_us_ = traceCollector().nowUs();
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    event_.ts_us = start_us_;
    event_.dur_us = traceCollector().nowUs() - start_us_;
    traceCollector().record(std::move(event_));
}

TraceSpan &
TraceSpan::arg(const std::string &key, std::string value)
{
    if (active_)
        event_.args.emplace_back(key, std::move(value));
    return *this;
}

TraceSpan &
TraceSpan::arg(const std::string &key, double value)
{
    if (active_)
        event_.args.emplace_back(key, sig(value, 6));
    return *this;
}

} // namespace moonwalk::obs
