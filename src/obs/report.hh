/**
 * @file
 * Machine-readable run reports: a versioned JSON artifact describing
 * one CLI run or one benchmark execution — what was asked (inputs),
 * what the model decided (outputs and model-vs-paper rows), and how
 * the run performed (per-phase wall times plus a full metrics-registry
 * snapshot, histograms included).
 *
 * The artifact is the contract of tools/perf_check: two reports with
 * the same schema version can be diffed row-by-row with per-metric
 * tolerances, which is how CI detects model or performance
 * regressions.  Model rows are deterministic at any thread count (the
 * exec ordered-reduction rule), so their serialized form is
 * byte-identical across runs; the perf section is measurement and is
 * never expected to match exactly.
 *
 * Schema (version 1):
 *
 *   {
 *     "schema_version": 1,
 *     "tool": "moonwalk",
 *     "command": "...",            // CLI command or bench name
 *     "inputs":  { ... },          // app, jobs, argv, options
 *     "rows": [                    // model-vs-paper series
 *       {"metric": "...", "labels": [...],
 *        "model": [...], "paper": [... | null]}
 *     ],
 *     "outputs": { ... },          // chosen design summaries
 *     "perf": {
 *       "phases": [{"name": "...", "wall_ms": ...}],
 *       "metrics": {counters, gauges, timers, histograms}
 *     }
 *   }
 */
#ifndef MOONWALK_OBS_REPORT_HH
#define MOONWALK_OBS_REPORT_HH

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hh"

namespace moonwalk::obs {

/** Accumulates one run's report; render with toJson()/writeTo(). */
class RunReport
{
  public:
    static constexpr int kSchemaVersion = 1;

    explicit RunReport(std::string command)
        : command_(std::move(command))
    {}

    /** Record an input parameter (app name, jobs, options...). */
    void setInput(const std::string &key, Json value);
    /** Record an output value (chosen design summary...). */
    void setOutput(const std::string &key, Json value);

    /**
     * Record one model-vs-paper series.  @p labels names the columns
     * (typically technology nodes); @p model and @p paper are aligned
     * with it.  Pass an empty @p paper for model-only rows; individual
     * missing reference values may be NaN and serialize as null.
     */
    void addRow(const std::string &metric,
                const std::vector<std::string> &labels,
                const std::vector<double> &model,
                const std::vector<double> &paper = {});

    /** Record a completed phase's wall time. */
    void recordPhase(const std::string &name, double wall_ms);

    /** RAII phase timer: times construction-to-destruction. */
    class ScopedPhase
    {
      public:
        ScopedPhase(RunReport &report, std::string name);
        ~ScopedPhase();
        ScopedPhase(const ScopedPhase &) = delete;
        ScopedPhase &operator=(const ScopedPhase &) = delete;

      private:
        RunReport &report_;
        std::string name_;
        uint64_t start_ns_;
    };

    /** Render the report, embedding a fresh metrics snapshot. */
    Json toJson() const;

    /**
     * Serialize to @p path ("-" writes to stdout).  Returns false when
     * the file cannot be written.
     */
    bool writeTo(const std::string &path) const;

    /** True when @p path means "the artifact goes to stdout" — the
     *  cue for callers to route human-readable output to stderr. */
    static bool toStdout(const std::string &path)
    {
        return path == "-";
    }

  private:
    struct Row
    {
        std::string metric;
        std::vector<std::string> labels;
        std::vector<double> model;
        std::vector<double> paper;  ///< empty == model-only row
    };
    struct Phase
    {
        std::string name;
        double wall_ms;
    };

    std::string command_;
    std::vector<std::pair<std::string, Json>> inputs_;
    std::vector<std::pair<std::string, Json>> outputs_;
    std::vector<Row> rows_;
    std::vector<Phase> phases_;
};

} // namespace moonwalk::obs

#endif // MOONWALK_OBS_REPORT_HH
