/**
 * @file
 * Leveled structured logger for the observability layer.
 *
 * Messages carry a component tag and ordered key=value fields:
 *
 *   MOONWALK_LOG(Info, "dse.explore")
 *       .msg("sweep done")
 *       .field("node", "28nm")
 *       .field("evaluated", 123456);
 *
 * renders as
 *
 *   [info] dse.explore: sweep done node=28nm evaluated=123456
 *
 * The level defaults to Off so benchmarks and library users pay only
 * one relaxed atomic load per call site; it can be raised with the
 * MOONWALK_LOG environment variable (error|warn|info|debug) or the
 * CLI's --log-level flag.
 */
#ifndef MOONWALK_OBS_LOG_HH
#define MOONWALK_OBS_LOG_HH

#include <atomic>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>

namespace moonwalk::obs {

/** Log severities, most severe first.  Off disables everything. */
enum class LogLevel { Off = 0, Error, Warn, Info, Debug };

/** Short lowercase name ("error", ..., "off"). */
const char *to_string(LogLevel level);

/** Parse a level name; nullopt for an unknown one. */
std::optional<LogLevel> logLevelFromString(const std::string &name);

/** Current threshold: messages at or above it are emitted. */
LogLevel logLevel();

/** Set the threshold programmatically (overrides MOONWALK_LOG). */
void setLogLevel(LogLevel level);

/** Redirect log output (default std::cerr); nullptr restores it. */
void setLogSink(std::ostream *sink);

/** True when a message at @p level would be emitted. */
bool logEnabled(LogLevel level);

/**
 * One structured log record, emitted on destruction.  Construct only
 * through MOONWALK_LOG so disabled levels cost nothing.
 */
class LogRecord
{
  public:
    LogRecord(LogLevel level, const char *component);
    ~LogRecord();

    LogRecord(const LogRecord &) = delete;
    LogRecord &operator=(const LogRecord &) = delete;

    /** Free-text message, printed before the fields. */
    LogRecord &msg(const std::string &text);

    /** Append one key=value field. */
    template <typename T>
    LogRecord &field(const char *key, const T &value)
    {
        os_ << ' ' << key << '=' << value;
        return *this;
    }

  private:
    std::ostringstream os_;
};

} // namespace moonwalk::obs

/**
 * Build-and-emit a log record; evaluates its arguments only when the
 * level is enabled.
 */
#define MOONWALK_LOG(level, component)                                 \
    if (!::moonwalk::obs::logEnabled(                                  \
            ::moonwalk::obs::LogLevel::level))                         \
        ;                                                              \
    else                                                               \
        ::moonwalk::obs::LogRecord(                                    \
            ::moonwalk::obs::LogLevel::level, component)

#endif // MOONWALK_OBS_LOG_HH
