#include "obs/report.hh"

#include <cmath>
#include <fstream>
#include <iostream>

#include "obs/metrics.hh"

namespace moonwalk::obs {

void
RunReport::setInput(const std::string &key, Json value)
{
    inputs_.emplace_back(key, std::move(value));
}

void
RunReport::setOutput(const std::string &key, Json value)
{
    outputs_.emplace_back(key, std::move(value));
}

void
RunReport::addRow(const std::string &metric,
                  const std::vector<std::string> &labels,
                  const std::vector<double> &model,
                  const std::vector<double> &paper)
{
    rows_.push_back({metric, labels, model, paper});
}

void
RunReport::recordPhase(const std::string &name, double wall_ms)
{
    phases_.push_back({name, wall_ms});
}

RunReport::ScopedPhase::ScopedPhase(RunReport &report, std::string name)
    : report_(report), name_(std::move(name)),
      start_ns_(monotonicNowNs())
{}

RunReport::ScopedPhase::~ScopedPhase()
{
    report_.recordPhase(name_,
                        (monotonicNowNs() - start_ns_) / 1e6);
}

namespace {

Json
numberArray(const std::vector<double> &values)
{
    Json arr = Json::array();
    for (double v : values) {
        if (std::isnan(v))
            arr.push(Json(nullptr));  // absent reference value
        else
            arr.push(v);
    }
    return arr;
}

Json
stringArray(const std::vector<std::string> &values)
{
    Json arr = Json::array();
    for (const auto &v : values)
        arr.push(v);
    return arr;
}

} // namespace

Json
RunReport::toJson() const
{
    Json doc = Json::object();
    doc.set("schema_version", kSchemaVersion);
    doc.set("tool", "moonwalk");
    doc.set("command", command_);

    Json inputs = Json::object();
    for (const auto &[key, value] : inputs_)
        inputs.set(key, value);
    doc.set("inputs", std::move(inputs));

    Json rows = Json::array();
    for (const auto &row : rows_) {
        Json r = Json::object();
        r.set("metric", row.metric);
        r.set("labels", stringArray(row.labels));
        r.set("model", numberArray(row.model));
        if (!row.paper.empty())
            r.set("paper", numberArray(row.paper));
        rows.push(std::move(r));
    }
    doc.set("rows", std::move(rows));

    Json outputs = Json::object();
    for (const auto &[key, value] : outputs_)
        outputs.set(key, value);
    doc.set("outputs", std::move(outputs));

    Json phases = Json::array();
    for (const auto &phase : phases_) {
        Json p = Json::object();
        p.set("name", phase.name);
        p.set("wall_ms", phase.wall_ms);
        phases.push(std::move(p));
    }
    Json perf = Json::object();
    perf.set("phases", std::move(phases));
    perf.set("metrics", metrics().toJson());
    doc.set("perf", std::move(perf));
    return doc;
}

bool
RunReport::writeTo(const std::string &path) const
{
    const std::string text = toJson().dump(2) + "\n";
    if (toStdout(path)) {
        std::cout << text << std::flush;
        return static_cast<bool>(std::cout);
    }
    std::ofstream out(path);
    if (!out)
        return false;
    out << text;
    // Flush before the state check: ofstream buffers, so a disk-full
    // or I/O failure otherwise surfaces only inside close() after the
    // check already reported success.  flush() sets badbit on error.
    out.flush();
    return static_cast<bool>(out);
}

} // namespace moonwalk::obs
