#include "power/power_delivery.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace moonwalk::power {

double
PsuParams::efficiencyAt(double load) const
{
    const double l = std::clamp(load, 0.05, 1.0);
    const double dev = 2.0 * l - 1.0;  // -1 at no load, +1 at rating
    return eta_peak - eta_droop * dev * dev;
}

PowerDeliveryPlan
planPowerDelivery(double logic_power_w, double logic_vdd, int dies,
                  double dc_aux_power_w, const PsuParams &psu,
                  const DcdcParams &dcdc)
{
    if (logic_power_w < 0.0 || dc_aux_power_w < 0.0)
        fatal("power delivery needs non-negative loads");
    if (logic_vdd <= 0.0)
        fatal("logic voltage must be positive");
    if (dies < 1)
        fatal("power delivery needs at least one die");

    PowerDeliveryPlan plan;

    // Logic rail: phases sized by current, at least the per-die
    // minimum for local regulation.
    const double amps = logic_power_w / logic_vdd;
    const int by_current = static_cast<int>(
        std::ceil(amps / dcdc.phase_current_a));
    plan.dcdc_phases = std::max(by_current,
                                dies * dcdc.min_phases_per_die);
    plan.dcdc_cost = plan.dcdc_phases * dcdc.phase_cost;
    const double dcdc_input = logic_power_w / dcdc.eta;
    plan.dcdc_loss_w = dcdc_input - logic_power_w;

    // PSU: rated with margin over the DC-side peak; efficiency at
    // the implied operating load.
    const double dc_power = dcdc_input + dc_aux_power_w;
    plan.psu_rated_w = dc_power * psu.rating_margin;
    plan.psu_cost = plan.psu_rated_w * psu.cost_per_rated_w;
    plan.psu_efficiency = psu.efficiencyAt(1.0 / psu.rating_margin);
    plan.wall_power_w = dc_power / plan.psu_efficiency;
    return plan;
}

} // namespace moonwalk::power
