/**
 * @file
 * Server power-delivery model (paper Section 3: "the PSU and DC/DC
 * converters are customized for each server").
 *
 * The AC-DC supply has a load-dependent efficiency curve and is rated
 * with headroom above the server's peak draw; the logic rail uses
 * multiphase buck converters sized by output *current*, so
 * near-threshold designs (high amps at low volts) pay more for
 * conversion — a real cost pressure against very low voltages.
 */
#ifndef MOONWALK_POWER_POWER_DELIVERY_HH
#define MOONWALK_POWER_POWER_DELIVERY_HH

namespace moonwalk::power {

/** AC-DC supply parameters (80 PLUS Titanium class). */
struct PsuParams
{
    double eta_peak = 0.945;      ///< efficiency at 50% load
    double eta_droop = 0.015;     ///< peak - eta at 0/100% load
    double rating_margin = 1.15;  ///< rated W over peak draw
    double cost_per_rated_w = 0.095;

    /** Efficiency at @p load fraction of the rating (clamped). */
    double efficiencyAt(double load) const;
};

/** Multiphase buck converter parameters for the logic rail. */
struct DcdcParams
{
    double phase_current_a = 30.0;  ///< per-phase output current
    double phase_cost = 2.2;        ///< inductor+FETs+controller share
    double eta = 0.93;              ///< conversion efficiency
    /** Each die carries at least this many local phases. */
    int min_phases_per_die = 1;
};

/** A sized power-delivery subsystem for one server. */
struct PowerDeliveryPlan
{
    int dcdc_phases = 0;
    double dcdc_cost = 0;
    double dcdc_loss_w = 0;     ///< dissipated in conversion
    double psu_rated_w = 0;
    double psu_cost = 0;
    double psu_efficiency = 0;  ///< at the operating load
    double wall_power_w = 0;    ///< at the plug

    double totalCost() const { return dcdc_cost + psu_cost; }
};

/**
 * Size the power delivery for a server.
 *
 * @param logic_power_w silicon power on the logic rail
 * @param logic_vdd logic rail voltage (sets converter current)
 * @param dies dies sharing the rail (min phases per die)
 * @param dc_aux_power_w 12V-class loads (DRAM, fans, NIC) fed from
 *        the PSU without the logic-rail conversion stage
 */
PowerDeliveryPlan planPowerDelivery(double logic_power_w,
                                    double logic_vdd, int dies,
                                    double dc_aux_power_w,
                                    const PsuParams &psu = {},
                                    const DcdcParams &dcdc = {});

} // namespace moonwalk::power

#endif // MOONWALK_POWER_POWER_DELIVERY_HH
