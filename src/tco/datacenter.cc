#include "tco/datacenter.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace moonwalk::tco {

DatacenterPlan
DatacenterPlanner::plan(double target_ops, double server_ops,
                        double server_power_w,
                        double server_cost) const
{
    if (target_ops <= 0.0 || server_ops <= 0.0)
        fatal("provisioning needs positive throughput figures");
    if (server_power_w <= 0.0 || server_cost <= 0.0)
        fatal("provisioning needs positive power and cost");

    DatacenterPlan p;
    p.servers = static_cast<long>(
        std::ceil(target_ops / server_ops));
    p.aggregate_ops = static_cast<double>(p.servers) * server_ops;

    // Racks are power-limited first, then space-limited.
    const int by_power = static_cast<int>(
        params_.rack_power_w / server_power_w);
    p.servers_per_rack = std::max(1, std::min(by_power,
                                              params_.rack_units));
    if (by_power < 1) {
        fatal("one server (", server_power_w,
              "W) exceeds the rack power budget");
    }
    p.racks = (p.servers + p.servers_per_rack - 1) /
        p.servers_per_rack;

    p.critical_power_w =
        static_cast<double>(p.servers) * server_power_w;
    p.server_capex = static_cast<double>(p.servers) * server_cost;
    p.rack_capex =
        static_cast<double>(p.racks) * params_.rack_overhead_cost;
    p.tco = tco_.compute(p.server_capex, p.critical_power_w);
    return p;
}

} // namespace moonwalk::tco
