/**
 * @file
 * Datacenter TCO model in the style of Barroso/Clidaras/Holzle [8],
 * the model the paper uses (Section 5).
 *
 * Over a server's deployment lifetime,
 *
 *   TCO = server capex
 *       + (datacenter capex $/W) * (server life / datacenter life) * P
 *       + (electricity $/kWh) * PUE * hours * P
 *       + interest on the amortized capital.
 *
 * With the default parameters this reduces to
 * TCO ~ server_cost + 4.25 $/W * wall_power, matching the linear
 * relation recoverable from the paper's Tables 7-10 (k = 4.18-4.34
 * across all four applications).
 */
#ifndef MOONWALK_TCO_TCO_MODEL_HH
#define MOONWALK_TCO_TCO_MODEL_HH

namespace moonwalk::tco {

/** Parameters of the datacenter cost model [8]. */
struct TcoParameters
{
    double electricity_per_kwh = 0.07; ///< $/kWh, US industrial
    double pue = 1.15;                 ///< power usage effectiveness
    double server_lifetime_years = 3.0;
    double datacenter_capex_per_w = 8.5;  ///< $/W of critical power
    double datacenter_lifetime_years = 12.0;
    double annual_interest = 0.0;      ///< 0 reproduces the paper's fit
};

/** Per-component TCO breakdown ($ over the server lifetime). */
struct TcoBreakdown
{
    double server_capex = 0;
    double datacenter_capex = 0;  ///< power/land/cooling infrastructure
    double energy = 0;
    double interest = 0;

    double total() const
    {
        return server_capex + datacenter_capex + energy + interest;
    }
};

/**
 * The TCO model: converts (server cost, wall power, performance) into
 * lifetime TCO and TCO per op/s.
 */
class TcoModel
{
  public:
    explicit TcoModel(TcoParameters params = {})
        : params_(params)
    {}

    const TcoParameters &parameters() const { return params_; }

    /** Lifetime cost attributable to one watt of wall power ($/W). */
    double wattCost() const;

    /** Full breakdown for one server. */
    TcoBreakdown compute(double server_cost, double wall_power_w) const;

    /** Lifetime TCO ($) for one server. */
    double total(double server_cost, double wall_power_w) const
    {
        return compute(server_cost, wall_power_w).total();
    }

    /** TCO per unit performance ($ per op/s). */
    double tcoPerOps(double server_cost, double wall_power_w,
                     double perf_ops) const;

  private:
    TcoParameters params_;
};

} // namespace moonwalk::tco

#endif // MOONWALK_TCO_TCO_MODEL_HH
