#include "tco/tco_model.hh"

#include "util/error.hh"

namespace moonwalk::tco {

namespace {
constexpr double kHoursPerYear = 8766.0;
} // namespace

double
TcoModel::wattCost() const
{
    const double dc = params_.datacenter_capex_per_w *
        params_.server_lifetime_years /
        params_.datacenter_lifetime_years;
    const double energy = params_.electricity_per_kwh / 1000.0 *
        params_.pue * kHoursPerYear * params_.server_lifetime_years;
    return dc + energy;
}

TcoBreakdown
TcoModel::compute(double server_cost, double wall_power_w) const
{
    if (server_cost < 0.0 || wall_power_w < 0.0)
        fatal("TCO model needs non-negative cost and power");

    TcoBreakdown b;
    b.server_capex = server_cost;
    b.datacenter_capex = params_.datacenter_capex_per_w *
        wall_power_w * params_.server_lifetime_years /
        params_.datacenter_lifetime_years;
    b.energy = params_.electricity_per_kwh / 1000.0 * params_.pue *
        kHoursPerYear * params_.server_lifetime_years * wall_power_w;
    // Simple interest on the average outstanding capital.
    b.interest = params_.annual_interest *
        params_.server_lifetime_years * 0.5 *
        (b.server_capex + b.datacenter_capex);
    return b;
}

double
TcoModel::tcoPerOps(double server_cost, double wall_power_w,
                    double perf_ops) const
{
    if (perf_ops <= 0.0)
        fatal("TCO per op/s needs positive performance");
    return total(server_cost, wall_power_w) / perf_ops;
}

} // namespace moonwalk::tco
