/**
 * @file
 * Datacenter provisioning: scale a designed ASIC Cloud server out to
 * a target aggregate throughput — servers, racks (power-limited),
 * critical power, and total cost of ownership.  This is the
 * aggregate view behind the paper's workload-TCO axis (Figures
 * 10-12): a workload "worth" B dollars of baseline TCO maps to a
 * concrete number of racks of the chosen design.
 */
#ifndef MOONWALK_TCO_DATACENTER_HH
#define MOONWALK_TCO_DATACENTER_HH

#include "tco/tco_model.hh"

namespace moonwalk::tco {

/** Rack and facility parameters. */
struct DatacenterParams
{
    /** Usable power per rack (W): a 1U ASIC Cloud server draws up
     *  to ~4kW, so a 15kW rack holds only a few. */
    double rack_power_w = 15e3;
    /** Rack units available per rack for 1U servers. */
    int rack_units = 42;
    /** Amortized cost of rack infrastructure ($ per rack over the
     *  server lifetime): frame, PDU, ToR switch share. */
    double rack_overhead_cost = 6e3;
};

/** A provisioning plan for one aggregate-throughput target. */
struct DatacenterPlan
{
    long servers = 0;
    long racks = 0;
    int servers_per_rack = 0;
    double aggregate_ops = 0;     ///< delivered ops/s (>= target)
    double critical_power_w = 0;  ///< IT power at the plug
    double server_capex = 0;
    double rack_capex = 0;
    TcoBreakdown tco;             ///< fleet totals incl. energy
    /** Fleet TCO plus rack overheads ($ over the lifetime). */
    double totalCost() const
    {
        return tco.total() + rack_capex;
    }
};

/**
 * Plans datacenter deployments of a fixed server design.
 */
class DatacenterPlanner
{
  public:
    DatacenterPlanner(TcoModel tco_model = TcoModel{},
                      DatacenterParams params = {})
        : tco_(tco_model), params_(params)
    {}

    const DatacenterParams &parameters() const { return params_; }

    /**
     * Provision for @p target_ops aggregate throughput using servers
     * of (@p server_ops, @p server_power_w wall, @p server_cost $).
     */
    DatacenterPlan plan(double target_ops, double server_ops,
                        double server_power_w,
                        double server_cost) const;

  private:
    TcoModel tco_;
    DatacenterParams params_;
};

} // namespace moonwalk::tco

#endif // MOONWALK_TCO_DATACENTER_HH
