/**
 * @file
 * Quickstart: design a TCO-optimal 28nm Bitcoin ASIC Cloud server,
 * price its NRE, and show when an ASIC beats the GPU baseline.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <iostream>

#include "core/optimizer.hh"
#include "util/format.hh"

using namespace moonwalk;

int
main()
{
    // 1. Pick an application (Bitcoin: the paper's running example).
    const apps::AppSpec app = apps::bitcoin();

    // 2. Explore the 28nm design space: RCAs per die, dies per lane,
    //    logic voltage — under thermal / reticle / power constraints.
    dse::DesignSpaceExplorer explorer;
    const auto result = explorer.explore(app.rca, tech::NodeId::N28);
    if (!result.tco_optimal) {
        std::cerr << "no feasible design\n";
        return 1;
    }
    const auto &p = *result.tco_optimal;
    const double scale = app.rca.perf_unit_scale;

    std::cout << "TCO-optimal 28nm Bitcoin server\n"
              << "  RCAs per die     : " << p.config.rcas_per_die << "\n"
              << "  die area         : " << fixed(p.die_area_mm2, 0)
              << " mm^2\n"
              << "  dies per server  : " << p.config.diesPerServer()
              << "\n"
              << "  logic Vdd        : " << fixed(p.config.vdd, 3)
              << " V\n"
              << "  clock            : " << fixed(p.freq_mhz, 0)
              << " MHz\n"
              << "  throughput       : " << fixed(p.perf_ops / scale, 0)
              << " " << app.rca.perf_unit << "\n"
              << "  wall power       : " << fixed(p.wall_power_w, 0)
              << " W\n"
              << "  server cost      : " << money(p.server_cost) << "\n"
              << "  TCO per " << app.rca.perf_unit << "   : "
              << sig(p.tco_per_ops * scale, 3) << " $\n\n";

    // 3. Price the NRE of building this design.
    core::MoonwalkOptimizer optimizer(std::move(explorer));
    const auto nre = optimizer.nreOf(app, p);
    std::cout << "NRE at 28nm: " << money(nre.total())
              << "  (mask " << money(nre.mask) << ", IP "
              << money(nre.ip) << ", backend "
              << money(nre.backend_labor + nre.backend_cad) << ")\n\n";

    // 4. When does which node win?  (Figure 10/11 in one call.)
    std::cout << "Optimal node vs workload scale (pre-ASIC TCO):\n";
    for (const auto &range : optimizer.optimalNodeRanges(app)) {
        const std::string who = range.line.node ?
            tech::to_string(*range.line.node) :
            std::string(app.baseline.hardware);
        std::cout << "  from " << money(range.b_low) << ": " << who
                  << "\n";
    }
    return 0;
}
