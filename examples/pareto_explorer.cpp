/**
 * @file
 * Dump the Pareto frontier ($/op/s vs W/op/s) of an application at a
 * node as CSV, for plotting — the raw data behind Figures 4 and 6.
 *
 * Usage:  pareto_explorer [app] [feature_nm]
 *         pareto_explorer Litecoin 40 > litecoin_40nm.csv
 * Defaults to Bitcoin at 28nm.
 */
#include <cstdlib>
#include <iostream>
#include <string>

#include "dse/explorer.hh"
#include "apps/apps.hh"
#include "util/table.hh"
#include "util/format.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    const std::string app_name = argc > 1 ? argv[1] : "Bitcoin";
    const double feature = argc > 2 ? std::atof(argv[2]) : 28.0;

    const auto app = apps::appByName(app_name);
    const auto &node =
        tech::defaultTechDatabase().nodeByFeature(feature);

    dse::DesignSpaceExplorer explorer;
    const auto result = explorer.explore(app.rca, node.id);

    const double scale = app.rca.perf_unit_scale;
    TextTable t({"dollars_per_" + app.rca.perf_unit,
                 "watts_per_" + app.rca.perf_unit, "vdd", "rcas_per_die",
                 "dies_per_lane", "drams_per_die", "die_area_mm2",
                 "tco_per_" + app.rca.perf_unit});
    for (const auto &p : result.pareto) {
        t.addRow({sig(p.cost_per_ops * scale, 6),
                  sig(p.watts_per_ops * scale, 6),
                  fixed(p.config.vdd, 3),
                  std::to_string(p.config.rcas_per_die),
                  std::to_string(p.config.dies_per_lane),
                  std::to_string(p.config.drams_per_die),
                  fixed(p.die_area_mm2, 0),
                  sig(p.tco_per_ops * scale, 6)});
    }
    t.printCsv(std::cout);

    if (result.tco_optimal) {
        std::cerr << app.name() << " @ " << node.name << ": "
                  << result.pareto.size() << " Pareto points, optimum "
                  << sig(result.tco_optimal->tco_per_ops * scale, 4)
                  << " $/" << app.rca.perf_unit << " ("
                  << result.feasible << "/" << result.evaluated
                  << " feasible)\n";
    }
    return 0;
}
