/**
 * @file
 * Define your own accelerator and find its NRE+TCO-optimal technology
 * node — the workflow of Section 7.3 ("Picking the node") for an
 * emerging application that is not in the paper's suite.
 *
 * The example models a genomics read-aligner ASIC Cloud.
 *
 * Build & run:  ./build/examples/custom_accelerator
 */
#include <iostream>

#include "core/optimizer.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace moonwalk;

namespace {

apps::AppSpec
genomicsAligner()
{
    apps::AppSpec app;
    auto &r = app.rca;
    r.name = "GenomeAlign";
    r.perf_unit = "Mreads/s";
    r.perf_unit_scale = 1e6;
    r.gate_count = 1.2e6;          // systolic alignment array
    r.ops_per_cycle = 1.0 / 2000;  // 2,000 cycles per aligned read
    r.f_nominal_28_mhz = 650.0;
    r.energy_per_op_28_j = 1.1e-6; // 1.1 uJ per read (28nm, 0.9V)
    r.area_28_mm2 = 2.8;
    r.sram_fraction = 0.5;         // reference index caches
    r.bytes_per_op = 6e3;          // streaming reads from DRAM

    auto &n = app.nre;
    n.app_name = r.name;
    n.rca_gate_count = r.gate_count;
    n.frontend_cad_months = 18;
    n.frontend_mm = 20;
    n.fpga_job_distribution_mm = 2;
    n.fpga_bios_mm = 1;
    n.cloud_software_mm = 5;
    n.pcb_design_cost = 45e3;

    // Best software baseline: a dual-socket Xeon server.
    app.baseline = {"2S Xeon E5", 0.9e6, 400.0, 6000.0};
    return app;
}

} // namespace

int
main()
{
    const auto app = genomicsAligner();
    core::MoonwalkOptimizer opt;

    std::cout << "Application: " << app.name() << " (baseline "
              << app.baseline.hardware << ", "
              << sig(opt.baselineTcoPerOps(app) *
                     app.rca.perf_unit_scale, 3)
              << " $ per " << app.rca.perf_unit << ")\n\n";

    TextTable t({"Tech", "RCAs/die", "Die mm^2", "DRAM/die", "Vdd",
                 "MHz", app.rca.perf_unit, "Watts", "Server $",
                 "TCO/unit", "NRE"});
    t.setTitle("TCO-optimal " + app.name() + " servers across nodes");
    for (const auto &r : opt.sweepNodes(app)) {
        const auto &p = r.optimal;
        t.addRow({
            tech::to_string(r.node),
            std::to_string(p.config.rcas_per_die),
            fixed(p.die_area_mm2, 0),
            std::to_string(p.config.drams_per_die),
            fixed(p.config.vdd, 3),
            fixed(p.freq_mhz, 0),
            fixed(p.perf_ops / app.rca.perf_unit_scale, 1),
            fixed(p.wall_power_w, 0),
            money(p.server_cost),
            sig(p.tco_per_ops * app.rca.perf_unit_scale, 4),
            money(r.nre.total()),
        });
    }
    t.print(std::cout);

    std::cout << "\nNode recommendation by workload scale:\n";
    for (const auto &range : opt.optimalNodeRanges(app)) {
        const std::string who = range.line.node ?
            tech::to_string(*range.line.node) : app.baseline.hardware;
        std::cout << "  " << money(range.b_low) << " and up: " << who
                  << "\n";
    }

    const double forecast = 40e6;  // $40M pre-ASIC TCO forecast
    std::cout << "\nWith a " << money(forecast)
              << " workload forecast, build at: ";
    std::string pick = app.baseline.hardware;
    for (const auto &range : opt.optimalNodeRanges(app)) {
        if (forecast >= range.b_low && range.line.node)
            pick = tech::to_string(*range.line.node);
    }
    std::cout << pick << "\n";
    return 0;
}
