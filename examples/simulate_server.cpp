/**
 * @file
 * Drive a designed ASIC Cloud server with simulated RPC traffic: the
 * functional view of the machine the optimizer priced.  Designs the
 * TCO-optimal 28nm Bitcoin server, then sweeps offered load and
 * prints the throughput/latency curve.
 *
 * Build & run:  ./build/examples/simulate_server [app]
 */
#include <iostream>
#include <string>

#include "core/optimizer.hh"
#include "sim/server_sim.hh"
#include "util/error.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    const std::string app_name = argc > 1 ? argv[1] : "Bitcoin";
    apps::AppSpec app;
    try {
        app = apps::appByName(app_name);
    } catch (const ModelError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }

    // 1. Design the server.
    core::MoonwalkOptimizer opt;
    const core::NodeResult *r28 = nullptr;
    for (const auto &r : opt.sweepNodes(app))
        if (r.node == tech::NodeId::N28)
            r28 = &r;
    if (!r28) {
        std::cerr << app.name() << " cannot be built at 28nm\n";
        return 1;
    }
    const auto &p = r28->optimal;

    // 2. Instantiate the simulator from the designed configuration.
    sim::ServerModel m;
    m.asics = p.config.diesPerServer();
    m.rcas_per_asic = p.config.rcas_per_die;
    m.rca_ops_per_s =
        p.perf_ops / (double(m.asics) * m.rcas_per_asic);
    sim::ServerSimulator simulator(m);

    std::cout << app.name() << " 28nm server: " << m.asics
              << " ASICs x " << m.rcas_per_asic
              << " RCAs, analytic throughput "
              << sig(p.perf_ops / app.rca.perf_unit_scale, 4) << " "
              << app.rca.perf_unit << "\n\n";

    // 3. Load sweep.
    TextTable t({"offered load", "achieved", "RCA util", "p50 (ms)",
                 "p99 (ms)", "dropped"});
    for (double load : {0.2, 0.5, 0.8, 0.95, 1.5}) {
        sim::Workload w;
        w.ops_per_job = m.rca_ops_per_s * 1e-3;  // ~1ms RPC batches
        w.arrival_rate =
            load * simulator.capacityOpsPerS() / w.ops_per_job;
        w.duration_s = 0.5;
        const auto s = simulator.run(w);
        t.addRow({percent(load, 0),
                  percent(s.achieved_ops_per_s /
                          simulator.capacityOpsPerS()),
                  percent(s.rca_utilization),
                  fixed(s.latency_p50 * 1e3, 3),
                  fixed(s.latency_p99 * 1e3, 3),
                  std::to_string(s.jobs_dropped)});
    }
    t.print(std::cout);
    return 0;
}
