/**
 * @file
 * Node selection for the paper's applications: give an application
 * name and a forecast of the workload's pre-ASIC TCO, get the node
 * that minimizes NRE + TCO (Section 7.2).
 *
 * Usage:  node_selection [app] [baseline_tco_dollars]
 *         node_selection "Video Transcode" 50e6
 * Defaults to Bitcoin at $25M.
 */
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/optimizer.hh"
#include "util/error.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace moonwalk;

int
main(int argc, char **argv)
{
    const std::string app_name = argc > 1 ? argv[1] : "Bitcoin";
    const double forecast = argc > 2 ? std::atof(argv[2]) : 25e6;

    apps::AppSpec app;
    try {
        app = apps::appByName(app_name);
    } catch (const ModelError &e) {
        std::cerr << e.what()
                  << " (try: Bitcoin, Litecoin, 'Video Transcode', "
                     "'Deep Learning')\n";
        return 1;
    }

    core::MoonwalkOptimizer opt;
    const double base = opt.baselineTcoPerOps(app);

    TextTable t({"Choice", "NRE", "TCO", "Total", "vs best"});
    t.setTitle(app.name() + " @ " + money(forecast) +
               " pre-ASIC TCO");

    struct Row { std::string name; double nre, tco; };
    std::vector<Row> rows;
    rows.push_back({app.baseline.hardware + " (baseline)", 0.0,
                    forecast});
    for (const auto &r : opt.sweepNodes(app)) {
        rows.push_back({tech::to_string(r.node), r.nre.total(),
                        forecast * r.tcoPerOps() / base});
    }

    double best = 1e300;
    for (const auto &r : rows)
        best = std::min(best, r.nre + r.tco);

    std::string winner;
    for (const auto &r : rows) {
        const double total = r.nre + r.tco;
        if (total == best)
            winner = r.name;
        t.addRow({r.name, money(r.nre), money(r.tco), money(total),
                  times(total / best)});
    }
    t.print(std::cout);
    std::cout << "\nBuild at: " << winner << "\n";
    return 0;
}
