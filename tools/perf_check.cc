/**
 * @file
 * perf_check — diff two moonwalk run reports (obs/report.hh schema)
 * and exit nonzero on regression.
 *
 *   perf_check <baseline.json> <candidate.json> [flags]
 *
 * What is compared, and how strictly:
 *
 *   - schema_version, tool, command: must match exactly.
 *   - rows (the model-vs-paper series): labels must match exactly and
 *     model values must agree within --rel-tol (default 1e-9 — model
 *     rows are deterministic, so anything beyond rounding is a model
 *     change).  A row present in the baseline but missing from the
 *     candidate is a regression; extra candidate rows are reported
 *     but tolerated (new coverage is not a regression).
 *   - outputs: numeric leaves compared within --rel-tol, everything
 *     else exactly.
 *   - perf.phases: informational by default (wall time on a shared CI
 *     runner is noise); --wall-tol <x> makes a candidate phase slower
 *     than baseline * (1 + x) a regression.
 *   - perf.metrics: informational by default; each --metric
 *     <name>=<reltol> enforces one counter/gauge value.  A name
 *     ending in '*' is a prefix glob and enforces every metric it
 *     matches in either report (e.g. --metric 'sweep.diskcache.*=0'
 *     pins the whole cache-gauge family at once).
 *   - --metric-min <name>=<floor> checks the candidate alone: the
 *     named counter/gauge must exist and be >= floor.  Useful for
 *     "the warm run actually hit the cache" style assertions where
 *     the baseline legitimately differs (cold run has hits == 0).
 *
 * Exit status: 0 = no regression, 1 = regression, 2 = usage or
 * unreadable/malformed input.
 */
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hh"
#include "util/json.hh"

using moonwalk::Json;

namespace {

int
usage()
{
    std::cerr <<
        "usage: perf_check <baseline.json> <candidate.json>\n"
        "  [--rel-tol <x>]        model/output tolerance "
        "(default 1e-9)\n"
        "  [--wall-tol <x>]       fail when a phase is slower than\n"
        "                         baseline * (1 + x); off by default\n"
        "  [--metric <name>=<x>]  enforce one perf metric within\n"
        "                         relative tolerance x (repeatable;\n"
        "                         a trailing '*' makes <name> a\n"
        "                         prefix glob)\n"
        "  [--metric-min <name>=<v>]  candidate-only floor: the\n"
        "                         metric must exist and be >= v\n"
        "                         (repeatable)\n";
    return 2;
}

struct Options
{
    std::string baseline_path;
    std::string candidate_path;
    double rel_tol = 1e-9;
    double wall_tol = -1.0;  ///< < 0 = wall times informational
    std::map<std::string, double> metric_tols;
    std::map<std::string, double> metric_mins;
};

/**
 * Strict tolerance parse: whole token, finite, >= 0.  std::atof here
 * used to turn `--rel-tol banana` into tolerance 0.0, flipping every
 * rounding difference into a reported regression; garbage tolerances
 * are usage errors (exit 2), not numbers.
 */
std::optional<double>
parseTolerance(const std::string &token)
{
    if (token.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE ||
        !std::isfinite(v) || v < 0.0)
        return std::nullopt;
    return v;
}

int
badTolerance(const std::string &what, const std::string &token)
{
    std::cerr << "perf_check: " << what
              << " wants a finite relative tolerance >= 0, got '"
              << token << "'\n";
    return 2;
}

int g_failures = 0;

void
fail(const std::string &what)
{
    std::cerr << "FAIL: " << what << "\n";
    ++g_failures;
}

void
note(const std::string &what)
{
    std::cerr << "note: " << what << "\n";
}

bool
close(double a, double b, double rel)
{
    if (a == b)
        return true;  // covers exact zeros and equal infinities
    if (std::isnan(a) && std::isnan(b))
        return true;
    const double mag = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= rel * mag;
}

std::string
num(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

/** Tolerant deep comparison; @p where names the JSON path. */
void
compareValues(const std::string &where, const Json &base,
              const Json &cand, double rel_tol)
{
    if (base.isNumber() && cand.isNumber()) {
        if (!close(base.asDouble(), cand.asDouble(), rel_tol)) {
            fail(where + ": " + num(base.asDouble()) + " -> " +
                 num(cand.asDouble()));
        }
        return;
    }
    if (base.isObject() && cand.isObject()) {
        for (const auto &key : base.keys()) {
            if (!cand.contains(key)) {
                fail(where + "." + key + ": missing from candidate");
                continue;
            }
            compareValues(where + "." + key, base.at(key),
                          cand.at(key), rel_tol);
        }
        for (const auto &key : cand.keys()) {
            if (!base.contains(key))
                note(where + "." + key + ": new in candidate");
        }
        return;
    }
    if (base.isArray() && cand.isArray()) {
        if (base.size() != cand.size()) {
            fail(where + ": length " + std::to_string(base.size()) +
                 " -> " + std::to_string(cand.size()));
            return;
        }
        for (size_t i = 0; i < base.size(); ++i) {
            compareValues(where + "[" + std::to_string(i) + "]",
                          base.at(i), cand.at(i), rel_tol);
        }
        return;
    }
    if (base.dump() != cand.dump())
        fail(where + ": " + base.dump() + " -> " + cand.dump());
}

/** Index a report's rows by metric name (first occurrence wins). */
std::map<std::string, const Json *>
rowIndex(const Json &report)
{
    std::map<std::string, const Json *> index;
    const Json &rows = report.at("rows");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Json &row = rows.at(i);
        index.emplace(row.at("metric").asString(), &row);
    }
    return index;
}

void
compareRows(const Json &base, const Json &cand, double rel_tol)
{
    const auto base_rows = rowIndex(base);
    const auto cand_rows = rowIndex(cand);
    for (const auto &[metric, brow] : base_rows) {
        auto it = cand_rows.find(metric);
        if (it == cand_rows.end()) {
            fail("row '" + metric + "' missing from candidate");
            continue;
        }
        const Json &crow = *it->second;
        compareValues("rows." + metric + ".labels",
                      brow->at("labels"), crow.at("labels"), 0.0);
        compareValues("rows." + metric + ".model",
                      brow->at("model"), crow.at("model"), rel_tol);
    }
    for (const auto &[metric, crow] : cand_rows) {
        (void)crow;
        if (!base_rows.count(metric))
            note("candidate adds row '" + metric + "'");
    }
}

void
comparePhases(const Json &base, const Json &cand, double wall_tol)
{
    std::map<std::string, double> base_ms;
    const Json &bp = base.at("perf").at("phases");
    for (size_t i = 0; i < bp.size(); ++i) {
        base_ms[bp.at(i).at("name").asString()] =
            bp.at(i).at("wall_ms").asDouble();
    }
    const Json &cp = cand.at("perf").at("phases");
    for (size_t i = 0; i < cp.size(); ++i) {
        const std::string name = cp.at(i).at("name").asString();
        const double ms = cp.at(i).at("wall_ms").asDouble();
        auto it = base_ms.find(name);
        if (it == base_ms.end())
            continue;
        const double ratio =
            it->second > 0.0 ? ms / it->second : 1.0;
        std::ostringstream line;
        line << "phase '" << name << "': " << it->second << " ms -> "
             << ms << " ms (" << ratio << "x)";
        if (wall_tol >= 0.0 && ms > it->second * (1.0 + wall_tol))
            fail(line.str());
        else
            note(line.str());
    }
}

/** Fetch perf.metrics.<counters|gauges>.<name> as a double. */
bool
metricValue(const Json &report, const std::string &name, double *out)
{
    const Json &metrics = report.at("perf").at("metrics");
    for (const char *kind : {"counters", "gauges"}) {
        if (!metrics.contains(kind))
            continue;
        const Json &table = metrics.at(kind);
        if (table.contains(name)) {
            *out = table.at(name).asDouble();
            return true;
        }
    }
    return false;
}

/** Every counter and gauge name appearing in @p report. */
void
collectMetricNames(const Json &report, std::set<std::string> *names)
{
    const Json &metrics = report.at("perf").at("metrics");
    for (const char *kind : {"counters", "gauges"}) {
        if (!metrics.contains(kind))
            continue;
        for (const auto &key : metrics.at(kind).keys())
            names->insert(key);
    }
}

void
enforceMetric(const Json &base, const Json &cand,
              const std::string &name, double tol)
{
    double b = 0.0, c = 0.0;
    if (!metricValue(base, name, &b)) {
        fail("metric '" + name + "' missing from baseline");
        return;
    }
    if (!metricValue(cand, name, &c)) {
        fail("metric '" + name + "' missing from candidate");
        return;
    }
    if (!close(b, c, tol)) {
        fail("metric '" + name + "': " + num(b) + " -> " + num(c) +
             " (tol " + num(tol) + ")");
    }
}

void
compareMetrics(const Json &base, const Json &cand,
               const std::map<std::string, double> &tols)
{
    std::set<std::string> all_names;
    for (const auto &[name, tol] : tols) {
        if (name.empty() || name.back() != '*') {
            enforceMetric(base, cand, name, tol);
            continue;
        }
        // Prefix glob: enforce every metric the prefix matches in
        // either report.  No match at all means the glob is stale
        // (typo, renamed family) — that's a failure, not a no-op.
        if (all_names.empty()) {
            collectMetricNames(base, &all_names);
            collectMetricNames(cand, &all_names);
        }
        const std::string prefix = name.substr(0, name.size() - 1);
        size_t matched = 0;
        for (const auto &candidate_name : all_names) {
            if (candidate_name.rfind(prefix, 0) != 0)
                continue;
            ++matched;
            enforceMetric(base, cand, candidate_name, tol);
        }
        if (matched == 0)
            fail("--metric glob '" + name +
                 "' matched no metric in either report");
    }
}

void
checkMetricFloors(const Json &cand,
                  const std::map<std::string, double> &mins)
{
    for (const auto &[name, floor] : mins) {
        double c = 0.0;
        if (!metricValue(cand, name, &c)) {
            fail("metric '" + name + "' missing from candidate "
                 "(floor " + num(floor) + ")");
            continue;
        }
        if (c < floor) {
            fail("metric '" + name + "': " + num(c) +
                 " below floor " + num(floor));
        } else {
            note("metric '" + name + "': " + num(c) + " >= " +
                 num(floor));
        }
    }
}

Json
load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw moonwalk::ModelError("cannot read " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return Json::parse(buf.str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> raw(argv + 1, argv + argc);
    std::vector<std::string> paths;
    for (size_t i = 0; i < raw.size(); ++i) {
        const std::string &a = raw[i];
        if (a.rfind("--", 0) != 0) {
            paths.push_back(a);
            continue;
        }
        auto needsValue = [&](const char *flag) -> const char * {
            if (i + 1 >= raw.size()) {
                std::cerr << "perf_check: " << flag
                          << " needs a value\n";
                return nullptr;
            }
            return raw[++i].c_str();
        };
        if (a == "--rel-tol") {
            const char *v = needsValue("--rel-tol");
            if (!v)
                return 2;
            const auto tol = parseTolerance(v);
            if (!tol)
                return badTolerance("--rel-tol", v);
            opt.rel_tol = *tol;
        } else if (a == "--wall-tol") {
            const char *v = needsValue("--wall-tol");
            if (!v)
                return 2;
            const auto tol = parseTolerance(v);
            if (!tol)
                return badTolerance("--wall-tol", v);
            opt.wall_tol = *tol;
        } else if (a == "--metric") {
            const char *v = needsValue("--metric");
            if (!v)
                return 2;
            const std::string spec = v;
            const auto eq = spec.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::cerr << "perf_check: --metric wants "
                             "<name>=<reltol>, got '" << spec
                          << "'\n";
                return 2;
            }
            const auto tol = parseTolerance(spec.substr(eq + 1));
            if (!tol) {
                return badTolerance(
                    "--metric " + spec.substr(0, eq), spec);
            }
            opt.metric_tols[spec.substr(0, eq)] = *tol;
        } else if (a == "--metric-min") {
            const char *v = needsValue("--metric-min");
            if (!v)
                return 2;
            const std::string spec = v;
            const auto eq = spec.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::cerr << "perf_check: --metric-min wants "
                             "<name>=<floor>, got '" << spec
                          << "'\n";
                return 2;
            }
            const auto floor = parseTolerance(spec.substr(eq + 1));
            if (!floor) {
                return badTolerance(
                    "--metric-min " + spec.substr(0, eq), spec);
            }
            opt.metric_mins[spec.substr(0, eq)] = *floor;
        } else {
            std::cerr << "perf_check: unknown flag '" << a << "'\n";
            return usage();
        }
    }
    if (paths.size() != 2)
        return usage();
    opt.baseline_path = paths[0];
    opt.candidate_path = paths[1];

    try {
        const Json base = load(opt.baseline_path);
        const Json cand = load(opt.candidate_path);

        const int bv =
            static_cast<int>(base.at("schema_version").asDouble());
        const int cv =
            static_cast<int>(cand.at("schema_version").asDouble());
        if (bv != cv) {
            std::cerr << "perf_check: schema_version mismatch ("
                      << bv << " vs " << cv << ")\n";
            return 2;
        }
        if (base.at("tool").asString() != cand.at("tool").asString() ||
            base.at("command").asString() !=
                cand.at("command").asString()) {
            fail("tool/command mismatch: comparing '" +
                 base.at("command").asString() + "' against '" +
                 cand.at("command").asString() + "'");
        }

        compareRows(base, cand, opt.rel_tol);
        compareValues("outputs", base.at("outputs"),
                      cand.at("outputs"), opt.rel_tol);
        comparePhases(base, cand, opt.wall_tol);
        compareMetrics(base, cand, opt.metric_tols);
        checkMetricFloors(cand, opt.metric_mins);
    } catch (const moonwalk::ModelError &e) {
        std::cerr << "perf_check: " << e.what() << "\n";
        return 2;
    }

    if (g_failures > 0) {
        std::cerr << "perf_check: " << g_failures
                  << " regression(s) between " << opt.baseline_path
                  << " and " << opt.candidate_path << "\n";
        return 1;
    }
    std::cerr << "perf_check: " << opt.candidate_path
              << " matches " << opt.baseline_path << "\n";
    return 0;
}
