/**
 * @file
 * moonwalk — command-line front end to the library.
 *
 *   moonwalk apps                 list the built-in applications
 *   moonwalk nodes                show the technology node database
 *   moonwalk sweep <app>          per-node TCO-optimal designs + NRE
 *   moonwalk report <app> [tco] [--json]
 *                                 full analysis (optionally JSON)
 *   moonwalk select <app> <tco>   pick the NRE+TCO-optimal node
 *   moonwalk ranges <app>         optimal-node ranges vs scale
 *   moonwalk porting <app>        tick/tock porting penalties
 *   moonwalk simulate <app> [load]
 *                                 discrete-event server validation
 *   moonwalk provision <app> <ops-in-display-units>
 *                                 scale out to a fleet (servers,
 *                                 racks, megawatts, lifetime TCO)
 *   moonwalk check [--seeds N] [--seed S]
 *                                 model self-check: differential
 *                                 invariants (cache transparency,
 *                                 disk-cache transparency, parallel
 *                                 determinism, monotone feasibility,
 *                                 Pareto validity, evaluation
 *                                 accounting) over N seeded random
 *                                 specs; failures print a
 *                                 reproducing seed
 *   moonwalk serve [--port P] [--host H] [--queue-depth N]
 *                  [--max-conn-inflight N]
 *                                 long-lived sweep service: newline-
 *                                 delimited JSON requests over TCP,
 *                                 single-flight dedup of identical
 *                                 concurrent requests, admission
 *                                 control with fast-fail overload
 *                                 errors, graceful SIGINT/SIGTERM
 *                                 drain.  Prints one parseable
 *                                 "listening on <host>:<port>" line
 *                                 (port 0 picks an ephemeral port).
 *   moonwalk cache stats          entry count / bytes of the
 *                                 persistent sweep cache
 *   moonwalk cache prune --max-bytes N
 *                                 shrink the cache to N bytes,
 *                                 oldest entries first
 *
 * <app> is one of: Bitcoin, Litecoin, "Video Transcode",
 * "Deep Learning".  <tco> accepts scientific notation (e.g. 30e6).
 *
 * Observability flags (accepted by every command):
 *   --log-level <error|warn|info|debug|off>   structured logging
 *   --metrics       dump the metrics registry at exit (--json aware)
 *   --trace <file>  write Chrome trace-event spans (Perfetto-viewable)
 *   --report-json <file>
 *                   write a versioned machine-readable run report
 *                   (inputs, model rows, outputs, per-phase wall
 *                   times, full metrics snapshot); implies metrics
 *                   collection.  "-" writes the report to stdout, in
 *                   which case all human-readable output (tables,
 *                   --metrics dump) moves to stderr so stdout stays
 *                   one parseable JSON document.  Diff two reports
 *                   with tools/perf_check.
 *
 * Execution flags:
 *   --jobs <n>      worker threads for parallel sweeps (default: the
 *                   MOONWALK_JOBS environment variable, else all
 *                   hardware threads).  Results are identical at any
 *                   thread count.
 *   --cache-dir <dir>
 *                   persistent on-disk sweep cache (default: the
 *                   MOONWALK_CACHE_DIR environment variable, else
 *                   off).  Entries are versioned and integrity
 *                   checked; results are byte-identical with the
 *                   cache cold, warm, or off.
 */
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/check.hh"
#include "core/report.hh"
#include "core/sensitivity.hh"
#include "exec/persistent_cache.hh"
#include "exec/thread_pool.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/trace.hh"
#include "serve/server.hh"
#include "sim/server_sim.hh"
#include "tco/datacenter.hh"
#include "util/error.hh"
#include "util/format.hh"
#include "util/json.hh"
#include "util/table.hh"

#ifndef MOONWALK_VERSION
#define MOONWALK_VERSION "unknown"
#endif

using namespace moonwalk;

namespace {

constexpr const char *kCommands =
    "apps, nodes, sweep, report, select, ranges, porting, simulate, "
    "provision, check, serve, cache, version";
constexpr const char *kFlags =
    "--json, --jobs <n>, --cache-dir <dir>, --metrics, "
    "--report-json <file>, --trace <file>, "
    "--log-level <error|warn|info|debug|off>, "
    "--seeds <n>, --seed <s>, --port <p>, --host <addr>, "
    "--queue-depth <n>, --max-conn-inflight <n>, "
    "--handler-delay-ms <n>, --slow-ms <ms>, "
    "--max-bytes <n[K|M|G]>";

/**
 * Per-invocation execution context.  Everything the one-shot front
 * end used to keep in process-lifetime globals — the lazily built
 * optimizer, the cache directory it was built with, the active run
 * report and where human-readable output goes — lives here, so a
 * command runs against an explicit, request-scoped object graph (the
 * same shape the serve layer multiplexes per options profile).
 */
class Session
{
  public:
    explicit Session(std::string cache_dir)
        : cache_dir_(std::move(cache_dir))
    {
    }

    /** The optimizer, constructed on first use so metadata commands
     *  (apps, nodes, version, cache, serve) never pay for one. */
    core::MoonwalkOptimizer &optimizer()
    {
        if (!optimizer_) {
            dse::ExplorerOptions eo;
            eo.cache_dir = cache_dir_;
            optimizer_.emplace(
                dse::DesignSpaceExplorer{std::move(eo)});
        }
        return *optimizer_;
    }
    bool optimizerLive() const { return optimizer_.has_value(); }
    const std::string &cacheDir() const { return cache_dir_; }

    void attachReport(obs::RunReport *report, bool to_stdout)
    {
        report_ = report;
        report_stdout_ = to_stdout;
    }
    obs::RunReport *report() { return report_; }

    /** Human-readable output stream: stderr when a stdout-bound run
     *  report needs stdout to stay one parseable JSON document. */
    std::ostream &out()
    {
        return report_stdout_ ? std::cerr : std::cout;
    }

  private:
    std::string cache_dir_;
    std::optional<core::MoonwalkOptimizer> optimizer_;
    obs::RunReport *report_ = nullptr;
    bool report_stdout_ = false;
};

int
usage()
{
    std::cerr <<
        "usage: moonwalk <command> [args] [flags]\n"
        "  apps | nodes | sweep <app> | report <app> [tco] [--json]\n"
        "  select <app> <tco> | ranges <app> | porting <app>\n"
        "  simulate <app> [load] | provision <app> <units>\n"
        "  check [--seeds <n>] [--seed <s>] | version\n"
        "  serve [--port <p>] [--host <addr>] [--queue-depth <n>]\n"
        "        [--max-conn-inflight <n>] [--slow-ms <ms>]\n"
        "  cache stats | cache prune --max-bytes <n[K|M|G]>\n"
        "flags: " << kFlags << "\n";
    return 2;
}

/** One-line diagnostic naming the bad token + valid choices; rc 2. */
int
badToken(const std::string &what, const std::string &token,
         const std::string &valid)
{
    std::cerr << "moonwalk: unknown " << what << " '" << token
              << "' (valid: " << valid << ")\n";
    return 2;
}

std::string
validAppNames()
{
    std::string names;
    for (const auto &app : apps::allApps()) {
        if (!names.empty())
            names += ", ";
        names += app.name();
    }
    return names;
}

/** appByName with a CLI-grade diagnostic instead of an exception. */
std::optional<apps::AppSpec>
findApp(const std::string &name)
{
    for (auto &app : apps::allApps())
        if (app.name() == name)
            return app;
    return std::nullopt;
}

/**
 * Strict finite-double parse for numeric CLI arguments: the whole
 * token must be consumed and the value must be finite and in range.
 * The previous std::atof here turned `select Bitcoin banana` into a
 * silent $0 baseline TCO instead of a usage error.
 */
std::optional<double>
parseFinite(const std::string &token)
{
    if (token.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE ||
        !std::isfinite(v))
        return std::nullopt;
    return v;
}

/** Exit-2 diagnostic naming the unparseable numeric token. */
int
badNumber(const std::string &what, const std::string &token,
          const std::string &want)
{
    std::cerr << "moonwalk: invalid " << what << " '" << token
              << "' (want " << want << ")\n";
    return 2;
}

int
cmdApps(Session &s)
{
    TextTable t({"Application", "RCA gates", "Unit", "Baseline"});
    for (const auto &app : apps::allApps()) {
        t.addRow({app.name(), si(app.rca.gate_count),
                  app.rca.perf_unit, app.baseline.hardware});
    }
    t.print(s.out());
    return 0;
}

int
cmdNodes(Session &s)
{
    TextTable t({"Tech", "Mask $", "Wafer $", "Vdd", "Vth(eff)",
                 "DRAM gen", "BE $/gate"});
    for (const auto &n : tech::defaultTechDatabase().nodes()) {
        const char *gen =
            n.dram_generation == tech::DramGeneration::SDR ? "SDR" :
            n.dram_generation == tech::DramGeneration::DDR ? "DDR" :
            "LPDDR3";
        t.addRow({n.name, money(n.mask_cost), fixed(n.wafer_cost, 0),
                  fixed(n.vdd_nominal, 1), fixed(n.vth, 3), gen,
                  fixed(n.backend_cost_per_gate, 3)});
    }
    t.print(s.out());
    return 0;
}

/**
 * Record the per-node sweep results into the run report: one
 * model-only row per headline metric (aligned across the feasible
 * nodes) plus a summary of the TCO-optimal design.
 */
void
recordSweepReport(Session &s, obs::RunReport &report,
                  const apps::AppSpec &app)
{
    const auto &sweep = s.optimizer().sweepNodes(app);
    if (sweep.empty())
        return;

    std::vector<std::string> nodes;
    std::vector<double> tco, cost, watts, nre;
    for (const auto &r : sweep) {
        nodes.push_back(tech::to_string(r.node));
        tco.push_back(r.optimal.tco_per_ops);
        cost.push_back(r.optimal.cost_per_ops);
        watts.push_back(r.optimal.watts_per_ops);
        nre.push_back(r.nre.total());
    }
    report.addRow("tco_per_ops", nodes, tco);
    report.addRow("cost_per_ops", nodes, cost);
    report.addRow("watts_per_ops", nodes, watts);
    report.addRow("nre_total", nodes, nre);

    const core::NodeResult *best = &sweep.front();
    for (const auto &r : sweep) {
        if (r.optimal.tco_per_ops < best->optimal.tco_per_ops)
            best = &r;
    }
    Json design = Json::object();
    design.set("node", tech::to_string(best->node));
    design.set("rcas_per_die", best->optimal.config.rcas_per_die);
    design.set("drams_per_die", best->optimal.config.drams_per_die);
    design.set("dies_per_server",
               best->optimal.config.diesPerServer());
    design.set("vdd", best->optimal.config.vdd);
    design.set("die_area_mm2", best->optimal.die_area_mm2);
    design.set("freq_mhz", best->optimal.freq_mhz);
    design.set("server_cost", best->optimal.server_cost);
    design.set("tco_per_ops", best->optimal.tco_per_ops);
    design.set("nre_total", best->nre.total());
    report.setOutput("tco_optimal", std::move(design));
}

int
cmdSweep(Session &s, const apps::AppSpec &app)
{
    core::ReportGenerator gen(s.optimizer());
    if (s.report()) {
        {
            // The sweep is memoized, so phasing it separately from
            // rendering costs one cache lookup, not a second sweep.
            obs::RunReport::ScopedPhase phase(*s.report(), "explore");
            s.optimizer().sweepNodes(app);
        }
        obs::RunReport::ScopedPhase phase(*s.report(), "render");
        gen.writeText(s.out(), app, 0.0);
        recordSweepReport(s, *s.report(), app);
        return 0;
    }
    gen.writeText(s.out(), app, 0.0);
    return 0;
}

int
cmdReport(Session &s, const apps::AppSpec &app, double tco, bool json)
{
    core::ReportGenerator gen(s.optimizer());
    if (json)
        s.out() << gen.toJson(app, tco).dump(2) << "\n";
    else
        gen.writeText(s.out(), app, tco);
    if (s.report())
        recordSweepReport(s, *s.report(), app);
    return 0;
}

int
cmdSelect(Session &s, const apps::AppSpec &app, double tco)
{
    auto &opt = s.optimizer();
    std::string pick = app.baseline.hardware;
    double total = tco;
    const double base = opt.baselineTcoPerOps(app);
    for (const auto &range : opt.optimalNodeRanges(app)) {
        if (tco >= range.b_low && tco < range.b_high) {
            total = range.line.at(tco);
            if (range.line.node)
                pick = tech::to_string(*range.line.node);
        }
    }
    s.out() << "workload: " << money(tco) << " pre-ASIC TCO\n"
            << "build at: " << pick << "\n"
            << "total (NRE + served TCO): " << money(total, 3)
            << "  (saves " << money(tco - total, 3) << ", "
            << percent(1.0 - total / tco) << ")\n";
    (void)base;
    return 0;
}

int
cmdRanges(Session &s, const apps::AppSpec &app)
{
    for (const auto &range : s.optimizer().optimalNodeRanges(app)) {
        const std::string who = range.line.node ?
            tech::to_string(*range.line.node) : app.baseline.hardware;
        s.out() << money(range.b_low, 3) << " .. "
                << (std::isinf(range.b_high) ? std::string("inf")
                                             : money(range.b_high, 3))
                << " : " << who << "\n";
    }
    return 0;
}

int
cmdPorting(Session &s, const apps::AppSpec &app)
{
    TextTable t({"From", "To", "TCO penalty"});
    for (const auto &e : s.optimizer().portingStudy(app)) {
        t.addRow({tech::to_string(e.from), tech::to_string(e.to),
                  times(e.tco_penalty, 3)});
    }
    t.print(s.out());
    return 0;
}

int
cmdSimulate(Session &s, const apps::AppSpec &app, double load)
{
    auto &opt = s.optimizer();
    const core::NodeResult *r28 = nullptr;
    for (const auto &r : opt.sweepNodes(app))
        if (r.node == tech::NodeId::N28)
            r28 = &r;
    if (!r28) {
        std::cerr << app.name() << " cannot be built at 28nm\n";
        return 1;
    }
    sim::ServerModel m;
    m.asics = r28->optimal.config.diesPerServer();
    m.rcas_per_asic = r28->optimal.config.rcas_per_die;
    m.rca_ops_per_s = r28->optimal.perf_ops /
        (double(m.asics) * m.rcas_per_asic);
    sim::ServerSimulator simulator(m);
    sim::Workload w;
    w.ops_per_job = m.rca_ops_per_s * 1e-3;
    w.arrival_rate = load * simulator.capacityOpsPerS() /
        w.ops_per_job;
    w.duration_s = 0.5;
    const auto res = simulator.run(w);
    s.out() << "offered " << percent(load, 0) << " of capacity -> "
            << "achieved "
            << percent(res.achieved_ops_per_s /
                       simulator.capacityOpsPerS())
            << ", p99 latency " << sig(res.latency_p99 * 1e3, 3)
            << " ms, dropped " << res.jobs_dropped << "\n";
    return 0;
}

int
cmdProvision(Session &s, const apps::AppSpec &app, double units)
{
    auto &opt = s.optimizer();
    const core::NodeResult *r28 = nullptr;
    for (const auto &r : opt.sweepNodes(app))
        if (r.node == tech::NodeId::N28)
            r28 = &r;
    if (!r28) {
        std::cerr << app.name() << " cannot be built at 28nm\n";
        return 1;
    }
    const auto &p = r28->optimal;
    tco::DatacenterPlanner planner(
        opt.explorer().evaluator().tco());
    const auto plan = planner.plan(
        units * app.rca.perf_unit_scale, p.perf_ops,
        p.wall_power_w, p.server_cost);
    s.out() << "target: " << sig(units, 4) << " "
            << app.rca.perf_unit << " on 28nm " << app.name()
            << " servers\n"
            << "  servers        : " << plan.servers << " ("
            << plan.servers_per_rack << " per rack)\n"
            << "  racks          : " << plan.racks << "\n"
            << "  critical power : "
            << fixed(plan.critical_power_w / 1e6, 2) << " MW\n"
            << "  server capex   : " << money(plan.server_capex, 3)
            << "\n"
            << "  lifetime TCO   : " << money(plan.totalCost(), 3)
            << " (energy " << money(plan.tco.energy, 3) << ")\n";
    return 0;
}

/** Flags shared by every command. */
struct GlobalOptions
{
    bool json = false;
    bool metrics = false;
    std::string trace_path;
    std::string report_path;  ///< --report-json target; "-" = stdout
    int jobs = 0;  ///< 0 = MOONWALK_JOBS / hardware default
    unsigned long check_seeds = 25;  ///< `check`: seeds to run
    unsigned long check_seed = 1;    ///< `check`: first seed

    // `serve` transport knobs.
    std::string serve_host = "127.0.0.1";
    int serve_port = 0;              ///< 0 = ephemeral, printed
    int serve_queue_depth = 64;
    int serve_conn_inflight = 8;
    int serve_handler_delay_ms = 0;  ///< test hook; see service.hh
    double serve_slow_ms = -1.0;     ///< access-log warn threshold
    bool log_level_set = false;      ///< --log-level given explicitly

    // `cache prune` budget; unset means the flag was not given.
    std::optional<unsigned long long> max_bytes;
};

/** Parse a positive integer for --seeds / --seed; nullopt on junk. */
std::optional<unsigned long>
parseCount(const std::string &token)
{
    if (token.empty())
        return std::nullopt;
    unsigned long value = 0;
    for (char ch : token) {
        if (ch < '0' || ch > '9')
            return std::nullopt;
        value = value * 10 + static_cast<unsigned long>(ch - '0');
        if (value > 1000000000UL)
            return std::nullopt;
    }
    if (value == 0)
        return std::nullopt;
    return value;
}

/**
 * Parse a byte count for --max-bytes: a non-negative integer with an
 * optional binary suffix (K, M, G, case-insensitive).  Zero is valid
 * — "prune everything" is a legitimate request.
 */
std::optional<unsigned long long>
parseBytes(const std::string &token)
{
    if (token.empty())
        return std::nullopt;
    size_t digits = token.size();
    unsigned long long scale = 1;
    const char last = token.back();
    if (last == 'k' || last == 'K')
        scale = 1024ULL, --digits;
    else if (last == 'm' || last == 'M')
        scale = 1024ULL * 1024, --digits;
    else if (last == 'g' || last == 'G')
        scale = 1024ULL * 1024 * 1024, --digits;
    if (digits == 0 || digits > 15)
        return std::nullopt;
    unsigned long long value = 0;
    for (size_t i = 0; i < digits; ++i) {
        const char ch = token[i];
        if (ch < '0' || ch > '9')
            return std::nullopt;
        value = value * 10 + static_cast<unsigned long long>(ch - '0');
    }
    return value * scale;
}

/** One-line exit-2 diagnostic for a bad job count. */
int
badJobs(const char *what, const std::string &token)
{
    std::cerr << "moonwalk: " << what << " must be an integer in [1, "
              << exec::kMaxJobs << "], got '" << token << "'\n";
    return 2;
}

/**
 * Dump the metrics registry, first publishing the sweep- and
 * thermal-cache totals (and derived hit rates) aggregated over the
 * long-lived evaluator and every parallel-sweep worker clone.  Routed
 * through Session::out() so a stdout-bound run report keeps stdout to
 * itself.
 */
void
dumpMetrics(Session &s, bool json)
{
    if (s.optimizerLive())
        s.optimizer().explorer().publishStats();
    auto &reg = obs::metrics();
    if (json)
        s.out() << reg.toJson().dump(2) << "\n";
    else
        reg.writeTable(s.out());
}

int
cmdCheck(Session &s, const GlobalOptions &g)
{
    check::CheckOptions opts;
    opts.seeds = g.check_seeds;
    opts.start_seed = g.check_seed;
    opts.progress = &s.out();
    const auto report = check::runSelfCheck(opts);
    check::writeReport(s.out(), report);
    return report.ok() ? 0 : 1;
}

// The live server, for signal plumbing only: POSIX hands signals to a
// bare function pointer, so the SIGINT/SIGTERM handlers need a place
// to find the instance.  requestStop() is async-signal-safe.
serve::Server *volatile g_serve_instance = nullptr;

extern "C" void
serveSignalHandler(int)
{
    if (auto *server = g_serve_instance)
        server->requestStop();
}

int
cmdServe(Session &s, const GlobalOptions &g)
{
    // The stats command answers from the registry, so collection must
    // be on for the daemon regardless of --metrics.
    obs::setMetricsEnabled(true);

    // A daemon's access log is its primary operational record: default
    // to info unless the operator chose a level (flag or environment).
    if (!g.log_level_set && !std::getenv("MOONWALK_LOG"))
        obs::setLogLevel(obs::LogLevel::Info);
    serve::setSlowThresholdMs(g.serve_slow_ms);

    serve::ServerOptions so;
    so.host = g.serve_host;
    so.port = g.serve_port;
    so.queue_depth = g.serve_queue_depth;
    so.max_conn_inflight = g.serve_conn_inflight;
    so.service.cache_dir =
        exec::PersistentCache::resolveDir(s.cacheDir());
    so.service.handler_delay_ms = g.serve_handler_delay_ms;

    serve::Server server(std::move(so));
    std::string error;
    if (!server.start(&error)) {
        std::cerr << "moonwalk: " << error << "\n";
        return 1;
    }

    g_serve_instance = &server;
    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveSignalHandler);

    // One parseable line so scripts (and the e2e test) can discover
    // an ephemeral port; flushed before the accept loop blocks.
    std::cout << "moonwalk: listening on " << server.options().host
              << ":" << server.port() << std::endl;

    server.run();

    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_serve_instance = nullptr;

    // Final telemetry publish after the drain, so the --metrics dump
    // and --report-json artifact main() emits next carry the complete
    // run (a short-lived CI daemon loses nothing at exit).
    server.service().publishStats();
    return 0;
}

/** Shared preamble of the cache subcommands: resolve + open, or say
 *  why not.  The open cache is cheap — construction only creates the
 *  directory; no scan happens until usage()/prune(). */
std::unique_ptr<exec::PersistentCache>
openCache(const std::string &explicit_dir)
{
    const std::string dir =
        exec::PersistentCache::resolveDir(explicit_dir);
    if (dir.empty()) {
        std::cerr << "moonwalk: no cache directory (give --cache-dir "
                     "or set MOONWALK_CACHE_DIR)\n";
        return nullptr;
    }
    return std::make_unique<exec::PersistentCache>(
        dir, dse::sweepCacheVersionStamp());
}

/** Publish the on-disk footprint gauges the warm-cache CI job diffs. */
void
publishUsageGauges(const exec::PersistentCacheUsage &usage)
{
    if (!obs::metricsEnabled())
        return;
    auto &reg = obs::metrics();
    reg.gauge("sweep.diskcache.entries")
        .set(static_cast<double>(usage.entries));
    reg.gauge("sweep.diskcache.bytes")
        .set(static_cast<double>(usage.bytes));
}

int
cmdCacheStats(Session &s, const GlobalOptions &g)
{
    auto cache = openCache(s.cacheDir());
    if (!cache)
        return 2;
    const auto usage = cache->usage();
    publishUsageGauges(usage);
    if (g.json) {
        Json j = Json::object();
        j.set("dir", cache->directory());
        j.set("version", cache->version());
        j.set("entries", static_cast<double>(usage.entries));
        j.set("bytes", static_cast<double>(usage.bytes));
        j.set("temp_files", static_cast<double>(usage.temp_files));
        s.out() << j.dump(2) << "\n";
        return 0;
    }
    s.out() << "cache dir : " << cache->directory() << "\n"
            << "version   : " << cache->version() << "\n"
            << "entries   : " << usage.entries << "\n"
            << "bytes     : " << usage.bytes << "\n"
            << "temp files: " << usage.temp_files << "\n";
    return 0;
}

int
cmdCachePrune(Session &s, const GlobalOptions &g)
{
    if (!g.max_bytes) {
        std::cerr << "moonwalk: cache prune needs --max-bytes "
                     "<n[K|M|G]>\n";
        return 2;
    }
    auto cache = openCache(s.cacheDir());
    if (!cache)
        return 2;
    const auto result = cache->prune(*g.max_bytes);
    publishUsageGauges(result.after);
    if (g.json) {
        Json j = Json::object();
        j.set("dir", cache->directory());
        j.set("max_bytes", static_cast<double>(*g.max_bytes));
        j.set("removed_entries",
              static_cast<double>(result.removed_entries));
        j.set("removed_bytes",
              static_cast<double>(result.removed_bytes));
        j.set("removed_temp_files",
              static_cast<double>(result.removed_temp_files));
        j.set("entries", static_cast<double>(result.after.entries));
        j.set("bytes", static_cast<double>(result.after.bytes));
        s.out() << j.dump(2) << "\n";
        return 0;
    }
    s.out() << "removed " << result.removed_entries << " entries ("
            << result.removed_bytes << " bytes), "
            << result.removed_temp_files << " temp files\n"
            << "remaining: " << result.after.entries << " entries, "
            << result.after.bytes << " bytes\n";
    return 0;
}

int
cmdCache(Session &s, const GlobalOptions &g,
         const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return usage();
    if (args[1] == "stats")
        return cmdCacheStats(s, g);
    if (args[1] == "prune")
        return cmdCachePrune(s, g);
    return badToken("cache subcommand", args[1], "stats, prune");
}

int
run(Session &s, const std::vector<std::string> &args,
    const GlobalOptions &g)
{
    const std::string &cmd = args[0];
    if (cmd == "version") {
        s.out() << "moonwalk " << MOONWALK_VERSION << "\n";
        return 0;
    }
    if (cmd == "apps")
        return cmdApps(s);
    if (cmd == "nodes")
        return cmdNodes(s);
    if (cmd == "check")
        return cmdCheck(s, g);
    if (cmd == "serve")
        return cmdServe(s, g);
    if (cmd == "cache")
        return cmdCache(s, g, args);

    const bool known =
        cmd == "sweep" || cmd == "report" || cmd == "select" ||
        cmd == "ranges" || cmd == "porting" || cmd == "simulate" ||
        cmd == "provision";
    if (!known)
        return badToken("command", cmd, kCommands);
    if (args.size() < 2)
        return usage();

    const auto app = findApp(args[1]);
    if (!app)
        return badToken("application", args[1], validAppNames());

    if (cmd == "sweep")
        return cmdSweep(s, *app);
    if (cmd == "report") {
        double tco = 0.0;
        if (args.size() > 2) {
            const auto v = parseFinite(args[2]);
            if (!v || *v < 0.0)
                return badNumber("baseline TCO", args[2],
                                 "a finite number >= 0");
            tco = *v;
        }
        return cmdReport(s, *app, tco, g.json);
    }
    if (cmd == "select") {
        if (args.size() < 3)
            return usage();
        const auto tco = parseFinite(args[2]);
        if (!tco || *tco <= 0.0)
            return badNumber("baseline TCO", args[2],
                             "a finite number > 0, e.g. 30e6");
        return cmdSelect(s, *app, *tco);
    }
    if (cmd == "ranges")
        return cmdRanges(s, *app);
    if (cmd == "porting")
        return cmdPorting(s, *app);
    if (cmd == "simulate") {
        double load = 0.8;
        if (args.size() > 2) {
            const auto v = parseFinite(args[2]);
            if (!v || *v <= 0.0 || *v > 1.0)
                return badNumber("load", args[2],
                                 "a fraction of capacity in (0, 1]");
            load = *v;
        }
        return cmdSimulate(s, *app, load);
    }
    // provision
    if (args.size() < 3)
        return usage();
    const auto units = parseFinite(args[2]);
    if (!units || *units <= 0.0)
        return badNumber("provision target", args[2],
                         "a finite number > 0 in display units");
    return cmdProvision(s, *app, *units);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> raw(argv + 1, argv + argc);

    GlobalOptions g;
    std::string cache_dir;
    std::vector<std::string> args;
    for (size_t i = 0; i < raw.size(); ++i) {
        const std::string &a = raw[i];
        if (a.rfind("--", 0) != 0) {
            args.push_back(a);
            continue;
        }
        const auto needsValue = [&](const char *what) -> bool {
            if (i + 1 < raw.size())
                return true;
            std::cerr << "moonwalk: " << a << " needs " << what
                      << "\n";
            return false;
        };
        if (a == "--json") {
            g.json = true;
        } else if (a == "--jobs") {
            if (!needsValue("a thread count"))
                return 2;
            const auto jobs = exec::parseJobs(raw[++i]);
            if (!jobs)
                return badJobs("--jobs", raw[i]);
            g.jobs = *jobs;
        } else if (a == "--metrics") {
            g.metrics = true;
        } else if (a == "--seeds" || a == "--seed") {
            if (!needsValue("a positive integer"))
                return 2;
            const auto value = parseCount(raw[++i]);
            if (!value) {
                std::cerr << "moonwalk: " << a
                          << " must be a positive integer, got '"
                          << raw[i] << "'\n";
                return 2;
            }
            if (a == "--seeds")
                g.check_seeds = *value;
            else
                g.check_seed = *value;
        } else if (a == "--cache-dir") {
            if (!needsValue("a directory"))
                return 2;
            cache_dir = raw[++i];
        } else if (a == "--report-json") {
            if (!needsValue("a file path (or - for stdout)"))
                return 2;
            g.report_path = raw[++i];
        } else if (a == "--trace") {
            if (!needsValue("a file path"))
                return 2;
            g.trace_path = raw[++i];
        } else if (a == "--log-level") {
            if (!needsValue("a level"))
                return 2;
            const auto lvl = obs::logLevelFromString(raw[++i]);
            if (!lvl) {
                return badToken("log level", raw[i],
                                "error, warn, info, debug, off");
            }
            obs::setLogLevel(*lvl);
            g.log_level_set = true;
        } else if (a == "--host") {
            if (!needsValue("a numeric IPv4 address"))
                return 2;
            g.serve_host = raw[++i];
        } else if (a == "--port") {
            if (!needsValue("a port number"))
                return 2;
            const auto v = parseFinite(raw[++i]);
            if (!v || *v < 0 || *v > 65535 ||
                *v != static_cast<double>(static_cast<int>(*v)))
                return badNumber("--port", raw[i],
                                 "an integer in [0, 65535]");
            g.serve_port = static_cast<int>(*v);
        } else if (a == "--queue-depth" ||
                   a == "--max-conn-inflight") {
            if (!needsValue("a positive integer"))
                return 2;
            const auto value = parseCount(raw[++i]);
            if (!value || *value > 100000) {
                std::cerr << "moonwalk: " << a
                          << " must be a positive integer, got '"
                          << raw[i] << "'\n";
                return 2;
            }
            if (a == "--queue-depth")
                g.serve_queue_depth = static_cast<int>(*value);
            else
                g.serve_conn_inflight = static_cast<int>(*value);
        } else if (a == "--slow-ms") {
            if (!needsValue("a threshold in milliseconds"))
                return 2;
            const auto v = parseFinite(raw[++i]);
            if (!v || *v < 0)
                return badNumber("--slow-ms", raw[i],
                                 "a number of milliseconds >= 0");
            g.serve_slow_ms = *v;
        } else if (a == "--handler-delay-ms") {
            if (!needsValue("a delay in milliseconds"))
                return 2;
            const auto v = parseFinite(raw[++i]);
            if (!v || *v < 0 || *v > 60000 ||
                *v != static_cast<double>(static_cast<int>(*v)))
                return badNumber("--handler-delay-ms", raw[i],
                                 "an integer in [0, 60000]");
            g.serve_handler_delay_ms = static_cast<int>(*v);
        } else if (a == "--max-bytes") {
            if (!needsValue("a byte count"))
                return 2;
            const auto v = parseBytes(raw[++i]);
            if (!v)
                return badNumber("--max-bytes", raw[i],
                                 "a byte count, e.g. 64M");
            g.max_bytes = *v;
        } else {
            return badToken("flag", a, kFlags);
        }
    }
    if (args.empty())
        return usage();

    // Resolve concurrency before any model work touches the pool:
    // --jobs wins; otherwise a set-but-invalid MOONWALK_JOBS is a
    // user error here, not a silent fall-back deep in the library.
    if (g.jobs > 0) {
        exec::setGlobalConcurrency(g.jobs);
    } else if (const char *env = std::getenv("MOONWALK_JOBS")) {
        const auto jobs = exec::parseJobs(env);
        if (!jobs)
            return badJobs("MOONWALK_JOBS", env);
        exec::setGlobalConcurrency(*jobs);
    }

    // A run report without metrics collection would carry an empty
    // perf section, so --report-json implies the collection switch
    // (though not the human-readable --metrics dump).
    if (g.metrics || !g.report_path.empty())
        obs::setMetricsEnabled(true);
    if (!g.trace_path.empty())
        obs::traceCollector().start();

    Session session(cache_dir);

    std::optional<obs::RunReport> report;
    if (!g.report_path.empty()) {
        std::string command;
        for (const auto &a : args) {
            if (!command.empty())
                command += ' ';
            command += a;
        }
        report.emplace(command);
        session.attachReport(&*report,
                             obs::RunReport::toStdout(g.report_path));
        Json argv_json = Json::array();
        for (const auto &a : raw)
            argv_json.push(a);
        report->setInput("argv", std::move(argv_json));
        report->setInput("jobs", exec::defaultConcurrency());
        if (args.size() > 1)
            report->setInput("app", args[1]);
    }

    int rc;
    try {
        // Phase "total" brackets the whole command; commands add finer
        // phases (explore/render) of their own.
        std::optional<obs::RunReport::ScopedPhase> total;
        if (report)
            total.emplace(*report, "total");
        rc = run(session, args, g);
    } catch (const ModelError &e) {
        std::cerr << "error: " << e.what() << "\n";
        rc = 1;
    }

    if (!g.trace_path.empty()) {
        obs::traceCollector().stop();
        if (obs::traceCollector().writeTo(g.trace_path)) {
            std::cerr << "moonwalk: wrote "
                      << obs::traceCollector().eventCount()
                      << " trace spans to " << g.trace_path << "\n";
        } else {
            std::cerr << "moonwalk: cannot write trace to "
                      << g.trace_path << "\n";
            rc = rc ? rc : 1;
        }
    }
    if (g.metrics)
        dumpMetrics(session, g.json);
    if (report) {
        // Publish final cache totals so the embedded metrics snapshot
        // reflects the whole run, then emit the artifact last.
        if (session.optimizerLive())
            session.optimizer().explorer().publishStats();
        const bool to_stdout =
            obs::RunReport::toStdout(g.report_path);
        if (!report->writeTo(g.report_path)) {
            std::cerr << "moonwalk: cannot write run report to "
                      << g.report_path << "\n";
            rc = rc ? rc : 1;
        } else if (!to_stdout) {
            std::cerr << "moonwalk: wrote run report to "
                      << g.report_path << "\n";
        }
        session.attachReport(nullptr, false);
    }
    return rc;
}
